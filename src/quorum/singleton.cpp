#include "quorum/singleton.hpp"

namespace qp::quorum {

std::vector<Quorum> SingletonQuorum::enumerate_quorums(std::size_t) const {
  return {Quorum{0}};
}

Quorum SingletonQuorum::best_quorum(std::span<const double> values) const {
  check_values_size(*this, values);
  return Quorum{0};
}

double SingletonQuorum::expected_max_uniform(std::span<const double> values) const {
  check_values_size(*this, values);
  return values[0];
}

std::span<const double> SingletonQuorum::order_stat_weights() const {
  static const std::vector<double> weights{1.0};
  return weights;
}

std::vector<double> SingletonQuorum::uniform_load() const { return {1.0}; }

std::vector<Quorum> SingletonQuorum::sample_quorums(std::size_t count,
                                                    common::Rng&) const {
  return std::vector<Quorum>(count, Quorum{0});
}

}  // namespace qp::quorum
