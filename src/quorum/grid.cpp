#include "quorum/grid.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/simd_kernels.hpp"

namespace qp::quorum {

GridQuorum::GridQuorum(std::size_t k) : k_(k) {
  if (k_ == 0) throw std::invalid_argument{"GridQuorum: k must be >= 1"};
}

std::string GridQuorum::name() const {
  return "Grid(" + std::to_string(k_) + "x" + std::to_string(k_) + ")";
}

double GridQuorum::quorum_count() const noexcept {
  return static_cast<double>(k_) * static_cast<double>(k_);
}

Quorum GridQuorum::quorum_for(std::size_t row, std::size_t column) const {
  Quorum quorum;
  quorum_for(row, column, quorum);
  return quorum;
}

void GridQuorum::quorum_for(std::size_t row, std::size_t column, Quorum& out) const {
  if (row >= k_ || column >= k_) throw std::out_of_range{"GridQuorum::quorum_for"};
  out.clear();
  out.reserve(2 * k_ - 1);
  for (std::size_t c = 0; c < k_; ++c) out.push_back(row * k_ + c);
  for (std::size_t r = 0; r < k_; ++r) {
    if (r != row) out.push_back(r * k_ + column);
  }
  std::sort(out.begin(), out.end());
}

std::vector<Quorum> GridQuorum::enumerate_quorums(std::size_t limit) const {
  if (!enumerable(limit)) throw std::domain_error{name() + ": enumeration limit too low"};
  std::vector<Quorum> quorums;
  quorums.reserve(k_ * k_);
  for (std::size_t r = 0; r < k_; ++r) {
    for (std::size_t c = 0; c < k_; ++c) quorums.push_back(quorum_for(r, c));
  }
  return quorums;
}

std::vector<double> GridQuorum::quorum_maxima(std::span<const double> values) const {
  check_values_size(*this, values);
  std::vector<double> row_max(k_, -std::numeric_limits<double>::infinity());
  std::vector<double> col_max(k_, -std::numeric_limits<double>::infinity());
  for (std::size_t r = 0; r < k_; ++r) {
    const std::span<const double> row = values.subspan(r * k_, k_);
    row_max[r] = common::max_reduce(row);
    common::max_accumulate(row, col_max.data());
  }
  std::vector<double> result(k_ * k_, 0.0);
  for (std::size_t r = 0; r < k_; ++r) {
    for (std::size_t c = 0; c < k_; ++c) {
      result[r * k_ + c] = std::max(row_max[r], col_max[c]);
    }
  }
  return result;
}

Quorum GridQuorum::best_quorum(std::span<const double> values) const {
  const std::vector<double> maxima = quorum_maxima(values);
  std::size_t best = 0;
  for (std::size_t i = 1; i < maxima.size(); ++i) {
    if (maxima[i] < maxima[best]) best = i;
  }
  return quorum_for(best / k_, best % k_);
}

double GridQuorum::expected_max_uniform(std::span<const double> values) const {
  std::vector<double> scratch;
  return expected_max_uniform_scratch(values, scratch);
}

double GridQuorum::expected_max_uniform_scratch(std::span<const double> values,
                                                std::vector<double>& scratch) const {
  check_values_size(*this, values);
  // scratch holds row maxima in [0, k) and column maxima in [k, 2k). The
  // row-at-a-time structure keeps every inner loop contiguous so the
  // common/simd_kernels reductions vectorize (the historical fused loop
  // carried both reductions at once, which the vectorizer rejects).
  scratch.assign(2 * k_, -std::numeric_limits<double>::infinity());
  double* row_max = scratch.data();
  double* col_max = scratch.data() + k_;
  for (std::size_t r = 0; r < k_; ++r) {
    const std::span<const double> row = values.subspan(r * k_, k_);
    row_max[r] = common::max_reduce(row);
    common::max_accumulate(row, col_max);
  }
  double sum = 0.0;
  const std::span<const double> cols{col_max, k_};
  for (std::size_t r = 0; r < k_; ++r) {
    sum += common::max_with_bound_sum(row_max[r], cols);
  }
  return sum / static_cast<double>(universe_size());
}

std::vector<double> GridQuorum::uniform_load() const {
  // Element (r, c) is in quorum (r', c') iff r == r' or c == c':
  // k + k - 1 of the k^2 quorums.
  const double load = static_cast<double>(2 * k_ - 1) /
                      (static_cast<double>(k_) * static_cast<double>(k_));
  return std::vector<double>(k_ * k_, load);
}

double GridQuorum::optimal_load() const noexcept {
  return static_cast<double>(2 * k_ - 1) /
         (static_cast<double>(k_) * static_cast<double>(k_));
}

std::vector<Quorum> GridQuorum::sample_quorums(std::size_t count, common::Rng& rng) const {
  std::vector<Quorum> result;
  result.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t r = static_cast<std::size_t>(rng.below(k_));
    const std::size_t c = static_cast<std::size_t>(rng.below(k_));
    result.push_back(quorum_for(r, c));
  }
  return result;
}

void GridQuorum::sample_quorum(common::Rng& rng, Quorum& out) const {
  const std::size_t row = static_cast<std::size_t>(rng.below(k_));
  const std::size_t column = static_cast<std::size_t>(rng.below(k_));
  quorum_for(row, column, out);
}

}  // namespace qp::quorum
