#include "quorum/majority.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/combinatorics.hpp"
#include "quorum/order_stats.hpp"

namespace qp::quorum {

MajorityQuorum::MajorityQuorum(std::size_t universe_size, std::size_t quorum_size)
    : n_(universe_size), q_(quorum_size) {
  if (q_ == 0 || q_ > n_) throw std::invalid_argument{"MajorityQuorum: bad quorum size"};
  if (2 * q_ <= n_) {
    throw std::invalid_argument{"MajorityQuorum: 2q must exceed n for intersection"};
  }
  weights_ = max_order_weights(n_, q_);
}

std::string MajorityQuorum::name() const {
  return "Majority(" + std::to_string(q_) + "/" + std::to_string(n_) + ")";
}

double MajorityQuorum::quorum_count() const noexcept { return common::binomial(n_, q_); }

std::vector<Quorum> MajorityQuorum::enumerate_quorums(std::size_t limit) const {
  if (!enumerable(limit)) {
    throw std::domain_error{name() + ": too many quorums to enumerate"};
  }
  return common::all_subsets(n_, q_, limit);
}

Quorum MajorityQuorum::best_quorum(std::span<const double> values) const {
  check_values_size(*this, values);
  // The max over a q-subset is minimized by the q smallest values.
  std::vector<std::size_t> order(n_);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
  Quorum quorum(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(q_));
  std::sort(quorum.begin(), quorum.end());
  return quorum;
}

double MajorityQuorum::expected_max_uniform(std::span<const double> values) const {
  check_values_size(*this, values);
  return expected_max_uniform_subset(values, q_);
}

double MajorityQuorum::expected_max_uniform_scratch(std::span<const double> values,
                                                    std::vector<double>& scratch) const {
  check_values_size(*this, values);
  scratch.assign(values.begin(), values.end());
  std::sort(scratch.begin(), scratch.end());
  return expected_max_sorted(scratch, weights_);
}

std::span<const double> MajorityQuorum::order_stat_weights() const { return weights_; }

std::vector<double> MajorityQuorum::uniform_load() const {
  // Each element is in a C(n-1, q-1) / C(n, q) = q/n fraction of quorums.
  return std::vector<double>(n_, static_cast<double>(q_) / static_cast<double>(n_));
}

double MajorityQuorum::optimal_load() const noexcept {
  // Naor–Wool: the optimal load of a threshold system is q/n, achieved by
  // the uniform strategy.
  return static_cast<double>(q_) / static_cast<double>(n_);
}

std::vector<Quorum> MajorityQuorum::sample_quorums(std::size_t count,
                                                   common::Rng& rng) const {
  std::vector<Quorum> result;
  result.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Quorum quorum = rng.sample_without_replacement(n_, q_);
    std::sort(quorum.begin(), quorum.end());
    result.push_back(std::move(quorum));
  }
  return result;
}

void MajorityQuorum::sample_quorum(common::Rng& rng, Quorum& out) const {
  // Partial Fisher–Yates in out's own storage — the same index draws as
  // Rng::sample_without_replacement (equality-tested), without its
  // per-call allocation.
  out.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = i;
  for (std::size_t i = 0; i < q_; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(n_ - i));
    std::swap(out[i], out[j]);
  }
  out.resize(q_);
  std::sort(out.begin(), out.end());
}

double MajorityQuorum::uniform_touch_probability(
    std::span<const std::size_t> elements) const {
  for (std::size_t u : elements) {
    if (u >= n_) throw std::out_of_range{"uniform_touch_probability: element out of range"};
  }
  if (elements.empty()) return 0.0;
  if (elements.size() + q_ > n_) return 1.0;  // Too few remaining elements to avoid S.
  return 1.0 - common::binomial_ratio(n_ - elements.size(), n_, q_);
}

std::string family_name(MajorityFamily family) {
  switch (family) {
    case MajorityFamily::SimpleMajority: return "(t+1,2t+1) Maj";
    case MajorityFamily::ByzantineMajority: return "(2t+1,3t+1) Maj";
    case MajorityFamily::QuThreshold: return "(4t+1,5t+1) Maj";
  }
  return "unknown";
}

std::size_t family_universe(MajorityFamily family, std::size_t t) {
  switch (family) {
    case MajorityFamily::SimpleMajority: return 2 * t + 1;
    case MajorityFamily::ByzantineMajority: return 3 * t + 1;
    case MajorityFamily::QuThreshold: return 5 * t + 1;
  }
  throw std::invalid_argument{"family_universe: unknown family"};
}

MajorityQuorum make_majority(MajorityFamily family, std::size_t t) {
  if (t == 0) throw std::invalid_argument{"make_majority: t must be >= 1"};
  switch (family) {
    case MajorityFamily::SimpleMajority: return MajorityQuorum{2 * t + 1, t + 1};
    case MajorityFamily::ByzantineMajority: return MajorityQuorum{3 * t + 1, 2 * t + 1};
    case MajorityFamily::QuThreshold: return MajorityQuorum{5 * t + 1, 4 * t + 1};
  }
  throw std::invalid_argument{"make_majority: unknown family"};
}

}  // namespace qp::quorum
