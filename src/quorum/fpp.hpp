// Finite-projective-plane (FPP) quorum system — the classic load-optimal
// construction (Maekawa; analyzed by Naor & Wool): the universe is the
// q^2+q+1 points of the projective plane PG(2, q) and the quorums are its
// lines. Any two lines meet in exactly one point, every line has q+1 points,
// and the uniform strategy achieves the optimal load (q+1)/(q^2+q+1) ~
// 1/sqrt(n).
//
// Not evaluated in the paper; included as an extension point on the
// quorum-size/load spectrum between Grid (2k-1 of k^2) and Majorities.
#pragma once

#include "quorum/quorum_system.hpp"

namespace qp::quorum {

class FppQuorum final : public QuorumSystem {
 public:
  /// Builds PG(2, order) over GF(order). `order` must be a prime in [2, 31]
  /// (prime powers would need field arithmetic beyond mod-p).
  explicit FppQuorum(std::size_t order);

  [[nodiscard]] std::size_t order() const noexcept { return order_; }
  [[nodiscard]] std::size_t universe_size() const noexcept override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double quorum_count() const noexcept override;
  [[nodiscard]] std::vector<Quorum> enumerate_quorums(std::size_t limit) const override;
  [[nodiscard]] Quorum best_quorum(std::span<const double> values) const override;
  [[nodiscard]] double expected_max_uniform(std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> uniform_load() const override;
  [[nodiscard]] double optimal_load() const override;
  [[nodiscard]] std::vector<Quorum> sample_quorums(std::size_t count,
                                                   common::Rng& rng) const override;

 private:
  std::size_t order_;
  std::vector<Quorum> lines_;  // Precomputed at construction.
};

}  // namespace qp::quorum
