#include "quorum/order_stats.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/combinatorics.hpp"
#include "common/simd_kernels.hpp"

namespace qp::quorum {

std::span<const double> max_order_weights(std::size_t n, std::size_t subset_size) {
  if (subset_size == 0 || subset_size > n) {
    throw std::invalid_argument{"max_order_weights: bad subset size"};
  }
  // std::map nodes are stable, so returned spans survive later inserts.
  static std::map<std::pair<std::size_t, std::size_t>, std::vector<double>> cache;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock{mutex};
  const auto key = std::make_pair(n, subset_size);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const std::vector<double>& cdf = common::binomial_ratio_row(n, subset_size);
    std::vector<double> weights(n, 0.0);
    double previous_cdf = 0.0;
    for (std::size_t i = subset_size; i <= n; ++i) {
      weights[i - 1] = cdf[i] - previous_cdf;
      previous_cdf = cdf[i];
    }
    it = cache.emplace(key, std::move(weights)).first;
  }
  return it->second;
}

double expected_max_sorted(std::span<const double> sorted_values,
                           std::size_t subset_size) {
  const std::span<const double> weights =
      max_order_weights(sorted_values.size(), subset_size);
  // Forward to the kernel over the full span so both overloads reduce in
  // the same order (the prefix weights are exactly 0, contributing exact
  // zeros to the sum).
  return expected_max_sorted(sorted_values, weights);
}

double expected_max_sorted(std::span<const double> sorted_values,
                           std::span<const double> weights) noexcept {
  // Identical value (up to reduction reordering) to the (values,
  // subset_size) overload: the extra leading terms all multiply
  // exactly-zero weights. This is THE per-client inner loop of every
  // Majority evaluation, hence the vectorized kernel.
  return common::weighted_dot(sorted_values, weights);
}

double expected_max_uniform_subset(std::span<const double> values,
                                   std::size_t subset_size) {
  std::vector<double> scratch;
  return expected_max_uniform_subset(values, subset_size, scratch);
}

double expected_max_uniform_subset(std::span<const double> values,
                                   std::size_t subset_size,
                                   std::vector<double>& scratch) {
  const std::size_t n = values.size();
  if (subset_size == 0 || subset_size > n) {
    throw std::invalid_argument{"expected_max_uniform_subset: bad subset size"};
  }
  scratch.assign(values.begin(), values.end());
  std::sort(scratch.begin(), scratch.end());
  return expected_max_sorted(scratch, subset_size);
}

std::vector<double> max_order_distribution(std::span<const double> values,
                                           std::size_t subset_size) {
  const std::size_t n = values.size();
  if (subset_size == 0 || subset_size > n) {
    throw std::invalid_argument{"max_order_distribution: bad subset size"};
  }
  // The pmf is value-independent; return a copy of the cached weights.
  const std::span<const double> weights = max_order_weights(n, subset_size);
  return std::vector<double>(weights.begin(), weights.end());
}

}  // namespace qp::quorum
