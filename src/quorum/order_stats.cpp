#include "quorum/order_stats.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/combinatorics.hpp"

namespace qp::quorum {

std::vector<double> max_order_distribution(std::span<const double> values,
                                           std::size_t subset_size) {
  const std::size_t n = values.size();
  if (subset_size == 0 || subset_size > n) {
    throw std::invalid_argument{"max_order_distribution: bad subset size"};
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  // P(max <= x_(i)) = C(i, q) / C(n, q); the pmf is the CDF difference.
  std::vector<double> pmf(n, 0.0);
  double previous_cdf = 0.0;
  for (std::size_t i = subset_size; i <= n; ++i) {
    const double cdf = common::binomial_ratio(i, n, subset_size);
    pmf[i - 1] = cdf - previous_cdf;
    previous_cdf = cdf;
  }
  return pmf;
}

double expected_max_uniform_subset(std::span<const double> values,
                                   std::size_t subset_size) {
  const std::size_t n = values.size();
  if (subset_size == 0 || subset_size > n) {
    throw std::invalid_argument{"expected_max_uniform_subset: bad subset size"};
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double expectation = 0.0;
  double previous_cdf = 0.0;
  for (std::size_t i = subset_size; i <= n; ++i) {
    const double cdf = common::binomial_ratio(i, n, subset_size);
    expectation += sorted[i - 1] * (cdf - previous_cdf);
    previous_cdf = cdf;
  }
  return expectation;
}

}  // namespace qp::quorum
