#include "quorum/quorum_system.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace qp::quorum {

std::span<const double> QuorumSystem::uniform_load_cached() const {
  // Keyed by (name(), universe_size()): built-in names carry the defining
  // parameters (e.g. "Majority(5/9)", "Grid(3x3)"), but custom systems may
  // reuse a name across different universe sizes — keying on the size too
  // keeps those from colliding (a collision would hand one system the
  // other's load table). Entries live for the program lifetime, making the
  // spans safe to cache in evaluators that outlive this system instance.
  static std::mutex mutex;
  static std::map<std::pair<std::string, std::size_t>, std::vector<double>>& cache =
      *new std::map<std::pair<std::string, std::size_t>, std::vector<double>>;
  std::pair<std::string, std::size_t> key{name(), universe_size()};
  {
    const std::scoped_lock lock{mutex};
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  // Compute outside the lock: enumeration-backed loads (Tree, FPP) can be
  // slow and must not serialize unrelated systems.
  std::vector<double> load = uniform_load();
  const std::scoped_lock lock{mutex};
  return cache.emplace(std::move(key), std::move(load)).first->second;
}

void QuorumSystem::sample_quorum(common::Rng& rng, Quorum& out) const {
  out = sample_quorums(1, rng)[0];
}

bool QuorumSystem::verify_intersection(std::size_t limit) const {
  const std::vector<Quorum> quorums = enumerate_quorums(limit);
  for (std::size_t a = 0; a < quorums.size(); ++a) {
    for (std::size_t b = a + 1; b < quorums.size(); ++b) {
      // Quorums are sorted, so intersection is a linear merge.
      std::size_t i = 0, j = 0;
      bool intersects = false;
      while (i < quorums[a].size() && j < quorums[b].size()) {
        if (quorums[a][i] == quorums[b][j]) {
          intersects = true;
          break;
        }
        if (quorums[a][i] < quorums[b][j]) {
          ++i;
        } else {
          ++j;
        }
      }
      if (!intersects) return false;
    }
  }
  return true;
}

double QuorumSystem::uniform_touch_probability(std::span<const std::size_t> elements) const {
  for (std::size_t u : elements) {
    if (u >= universe_size()) {
      throw std::out_of_range{"uniform_touch_probability: element out of range"};
    }
  }
  if (elements.empty()) return 0.0;
  const std::vector<Quorum> quorums = enumerate_quorums();
  std::vector<bool> marked(universe_size(), false);
  for (std::size_t u : elements) marked[u] = true;
  std::size_t touching = 0;
  for (const Quorum& quorum : quorums) {
    for (std::size_t u : quorum) {
      if (marked[u]) {
        ++touching;
        break;
      }
    }
  }
  return static_cast<double>(touching) / static_cast<double>(quorums.size());
}

void check_values_size(const QuorumSystem& system, std::span<const double> values) {
  if (values.size() != system.universe_size()) {
    throw std::invalid_argument{"quorum: values size != universe size for " + system.name()};
  }
}

}  // namespace qp::quorum
