// Order statistics of the maximum over a uniformly random fixed-size subset.
//
// For Majority quorum systems a quorum is a uniform random q-subset of the
// universe, so the expected response-time term E[ max_{u in Q} x_u ] can be
// computed analytically from the sorted x values instead of enumerating the
// astronomically many quorums:
//   P( max <= x_(i) ) = C(i, q) / C(n, q)    (x sorted ascending, 1-based i)
// Binomials are evaluated in log space so n in the hundreds is exact.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qp::quorum {

/// E[ max_{i in S} values[i] ] over uniform random subsets S of the given
/// size. Throws if subset_size is 0 or exceeds values.size().
[[nodiscard]] double expected_max_uniform_subset(std::span<const double> values,
                                                 std::size_t subset_size);

/// P(max = sorted_values[i]) for each i (values sorted ascending internally;
/// probabilities returned aligned to the sorted order). Mostly a test hook.
[[nodiscard]] std::vector<double> max_order_distribution(std::span<const double> values,
                                                         std::size_t subset_size);

}  // namespace qp::quorum
