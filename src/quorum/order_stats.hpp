// Order statistics of the maximum over a uniformly random fixed-size subset.
//
// For Majority quorum systems a quorum is a uniform random q-subset of the
// universe, so the expected response-time term E[ max_{u in Q} x_u ] can be
// computed analytically from the sorted x values instead of enumerating the
// astronomically many quorums:
//   P( max <= x_(i) ) = C(i, q) / C(n, q)    (x sorted ascending, 1-based i)
// Binomials are evaluated in log space so n in the hundreds is exact.
//
// The pmf of the maximum does not depend on the values at all — only on
// (n, q) — so it is cached once per pair (max_order_weights) and the
// expectation becomes a dot product of the sorted values with the cached
// weight vector. The scratch-buffer overloads let hot loops (placement
// search, delta evaluation) evaluate expectations with zero steady-state
// allocations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qp::quorum {

/// Cached weights w[i] = P( max = sorted_values[i] ) for a uniform random
/// subset of size `subset_size` drawn from `n` values (0-based i; w[i] = 0
/// for i < subset_size - 1). Thread-safe; the returned span stays valid for
/// the lifetime of the program. Throws if subset_size is 0 or exceeds n.
[[nodiscard]] std::span<const double> max_order_weights(std::size_t n,
                                                        std::size_t subset_size);

/// Dot product of an ASCENDING-sorted value span with the cached weights:
/// E[ max over a uniform subset_size-subset ]. The caller guarantees the
/// ordering; no allocation.
[[nodiscard]] double expected_max_sorted(std::span<const double> sorted_values,
                                         std::size_t subset_size);

/// Same dot product against caller-held weights (e.g. a span cached at
/// system construction), skipping the cache lookup and its lock — the form
/// hot loops should use. weights.size() must equal sorted_values.size().
[[nodiscard]] double expected_max_sorted(std::span<const double> sorted_values,
                                         std::span<const double> weights) noexcept;

/// E[ max_{i in S} values[i] ] over uniform random subsets S of the given
/// size. Throws if subset_size is 0 or exceeds values.size().
[[nodiscard]] double expected_max_uniform_subset(std::span<const double> values,
                                                 std::size_t subset_size);

/// Allocation-free overload: copies values into `scratch` (resized as
/// needed), sorts there, and dots with the cached weights. Identical result.
[[nodiscard]] double expected_max_uniform_subset(std::span<const double> values,
                                                 std::size_t subset_size,
                                                 std::vector<double>& scratch);

/// P(max = sorted_values[i]) for each i (values sorted ascending internally;
/// probabilities returned aligned to the sorted order). Mostly a test hook.
[[nodiscard]] std::vector<double> max_order_distribution(std::span<const double> values,
                                                         std::size_t subset_size);

}  // namespace qp::quorum
