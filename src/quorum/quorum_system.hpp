// Quorum-system abstraction (§4 "Quorum placement" / "Load").
//
// A quorum system over a universe U = {0..n-1} is a collection of pairwise
// intersecting subsets. The placement/strategy algorithms need four
// capabilities from a system, each of which concrete systems provide either
// analytically or by enumeration:
//   * best_quorum(x)           — argmin_Q max_{u in Q} x_u (the "closest
//                                 quorum" when x is a distance vector);
//   * expected_max_uniform(x)  — E[max_{u in Q} x_u] under the uniform
//                                 ("balanced") access strategy;
//   * uniform_load()           — load(u) induced by the uniform strategy;
//   * enumerate_quorums()      — explicit quorum list when tractable, used
//                                 by the LP access-strategy optimizer.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace qp::quorum {

/// A quorum: sorted, distinct element indices in [0, universe_size).
using Quorum = std::vector<std::size_t>;

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  [[nodiscard]] virtual std::size_t universe_size() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of quorums, as a double because Majority counts overflow.
  [[nodiscard]] virtual double quorum_count() const noexcept = 0;

  /// True when enumerate_quorums() would produce at most `limit` quorums.
  [[nodiscard]] bool enumerable(std::size_t limit = 100'000) const noexcept {
    return quorum_count() <= static_cast<double>(limit);
  }

  /// Explicit quorum list; throws std::domain_error when not enumerable
  /// within the given limit.
  [[nodiscard]] virtual std::vector<Quorum> enumerate_quorums(
      std::size_t limit = 100'000) const = 0;

  /// A quorum minimizing max_{u in Q} values[u]; requires values.size() == n.
  /// Deterministic tie-breaking (lowest element indices win).
  [[nodiscard]] virtual Quorum best_quorum(std::span<const double> values) const = 0;

  /// E[ max_{u in Q} values[u] ] for Q drawn uniformly over all quorums.
  [[nodiscard]] virtual double expected_max_uniform(std::span<const double> values) const = 0;

  /// Allocation-free expected_max_uniform: systems that need working space
  /// (copy-and-sort, row/column maxima) take it from `scratch` instead of
  /// allocating per call. Identical result to expected_max_uniform; the
  /// default forwards to it. Hot loops (placement search, delta evaluation)
  /// reuse one scratch vector across millions of calls.
  [[nodiscard]] virtual double expected_max_uniform_scratch(
      std::span<const double> values, std::vector<double>& scratch) const {
    (void)scratch;
    return expected_max_uniform(values);
  }

  /// When the uniform quorum distribution is exchangeable in the elements
  /// (E[max] depends only on the multiset of values, as for Majority), the
  /// per-rank weights w such that E[max] = dot(sorted_ascending(values), w).
  /// Empty span otherwise. Enables the order-statistic delta fast path.
  [[nodiscard]] virtual std::span<const double> order_stat_weights() const { return {}; }

  /// load(u) under the uniform access strategy, for each element.
  [[nodiscard]] virtual std::vector<double> uniform_load() const = 0;

  /// Memoized uniform_load() with program-lifetime storage, keyed by the
  /// system's (parameter-carrying) name plus its universe size (same-named
  /// systems of different sizes do not collide). Systems whose uniform load is
  /// computed by enumeration (Tree, FPP) pay that cost once instead of per
  /// evaluation; the load-aware objective layer calls this on every naive
  /// evaluation. Thread-safe.
  [[nodiscard]] std::span<const double> uniform_load_cached() const;

  /// The system's optimal load L_opt (the paper's capacity lower bound, §7).
  /// For the symmetric systems here this is the busiest element's load under
  /// the uniform strategy. Not noexcept: some systems compute it by
  /// enumeration.
  [[nodiscard]] virtual double optimal_load() const = 0;

  /// Verifies the pairwise-intersection property by enumeration. Throws
  /// std::domain_error if the system is too large to enumerate.
  [[nodiscard]] bool verify_intersection(std::size_t limit = 20'000) const;

  /// Draws `count` quorums uniformly at random (with replacement). Supports
  /// Monte-Carlo cross-checks and approximate LP formulations for systems
  /// too large to enumerate.
  [[nodiscard]] virtual std::vector<Quorum> sample_quorums(std::size_t count,
                                                           common::Rng& rng) const = 0;

  /// Draws one uniform quorum into `out` — the allocation-light single-draw
  /// primitive the discrete-event engine (sim/engine) calls once per
  /// balanced-strategy request. Must match sample_quorums(1, rng)[0] for the
  /// same rng state; the default forwards to it, Majority and Grid override
  /// to reuse `out`'s storage.
  virtual void sample_quorum(common::Rng& rng, Quorum& out) const;

  /// P( Q intersects `elements` ) for Q drawn uniformly over all quorums.
  /// Used by the collapsed-execution load model (§8 future work), where a
  /// site hosting several universe elements executes a touching request only
  /// once. `elements` must be distinct and in range. The default enumerates;
  /// Majority overrides with the hypergeometric closed form.
  [[nodiscard]] virtual double uniform_touch_probability(
      std::span<const std::size_t> elements) const;
};

/// Validates a values span against the universe size; shared by systems.
void check_values_size(const QuorumSystem& system, std::span<const double> values);

}  // namespace qp::quorum
