// Majority (threshold) quorum systems: every q-subset of an n-element
// universe is a quorum, with q > n/2 so any two quorums intersect.
//
// The paper evaluates three families parameterized by the fault threshold t:
//   (t+1, 2t+1)   — crash-tolerant majority (Gifford / Thomas),
//   (2t+1, 3t+1)  — Byzantine-safe majority (BFT-style),
//   (4t+1, 5t+1)  — the Q/U threshold.
// Quorum counts are astronomically large, so everything is analytic: the
// best quorum is the q smallest values, and the balanced-strategy maximum
// follows the order statistics in order_stats.h.
#pragma once

#include "quorum/quorum_system.hpp"

namespace qp::quorum {

class MajorityQuorum final : public QuorumSystem {
 public:
  /// Requires 0 < q <= n and 2q > n (otherwise two quorums could be disjoint).
  MajorityQuorum(std::size_t universe_size, std::size_t quorum_size);

  [[nodiscard]] std::size_t universe_size() const noexcept override { return n_; }
  [[nodiscard]] std::size_t quorum_size() const noexcept { return q_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double quorum_count() const noexcept override;
  [[nodiscard]] std::vector<Quorum> enumerate_quorums(std::size_t limit) const override;
  [[nodiscard]] Quorum best_quorum(std::span<const double> values) const override;
  [[nodiscard]] double expected_max_uniform(std::span<const double> values) const override;
  [[nodiscard]] double expected_max_uniform_scratch(
      std::span<const double> values, std::vector<double>& scratch) const override;
  [[nodiscard]] std::span<const double> order_stat_weights() const override;
  [[nodiscard]] std::vector<double> uniform_load() const override;
  [[nodiscard]] double optimal_load() const noexcept override;
  [[nodiscard]] std::vector<Quorum> sample_quorums(std::size_t count,
                                                   common::Rng& rng) const override;
  void sample_quorum(common::Rng& rng, Quorum& out) const override;
  /// Hypergeometric closed form: 1 - C(n-|S|, q) / C(n, q).
  [[nodiscard]] double uniform_touch_probability(
      std::span<const std::size_t> elements) const override;

 private:
  std::size_t n_;
  std::size_t q_;
  /// Cached order-statistic weights (program-lifetime storage), resolved
  /// once at construction so the evaluation hot path never takes the
  /// weight-cache lock.
  std::span<const double> weights_;
};

/// The paper's three Majority families, by fault threshold t >= 1.
enum class MajorityFamily {
  SimpleMajority,    // (t+1,  2t+1)
  ByzantineMajority, // (2t+1, 3t+1)
  QuThreshold,       // (4t+1, 5t+1)
};

[[nodiscard]] std::string family_name(MajorityFamily family);

/// Universe size n for the family at threshold t.
[[nodiscard]] std::size_t family_universe(MajorityFamily family, std::size_t t);

/// Builds the family instance for threshold t (t >= 1).
[[nodiscard]] MajorityQuorum make_majority(MajorityFamily family, std::size_t t);

}  // namespace qp::quorum
