#include "quorum/fpp.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

namespace qp::quorum {

namespace {

bool is_prime(std::size_t p) {
  if (p < 2) return false;
  for (std::size_t d = 2; d * d <= p; ++d) {
    if (p % d == 0) return false;
  }
  return true;
}

using Triple = std::array<std::size_t, 3>;

/// Canonical representatives of the projective points/lines of PG(2, p):
/// (1, a, b), (0, 1, a), (0, 0, 1) — exactly p^2 + p + 1 of them.
std::vector<Triple> canonical_triples(std::size_t p) {
  std::vector<Triple> triples;
  triples.reserve(p * p + p + 1);
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = 0; b < p; ++b) triples.push_back({1, a, b});
  }
  for (std::size_t a = 0; a < p; ++a) triples.push_back({0, 1, a});
  triples.push_back({0, 0, 1});
  return triples;
}

}  // namespace

FppQuorum::FppQuorum(std::size_t order) : order_(order) {
  if (!is_prime(order_) || order_ > 31) {
    throw std::invalid_argument{"FppQuorum: order must be a prime in [2, 31]"};
  }
  const std::vector<Triple> points = canonical_triples(order_);
  const std::vector<Triple>& line_coords = points;  // Plane is self-dual.
  lines_.resize(line_coords.size());
  for (std::size_t l = 0; l < line_coords.size(); ++l) {
    for (std::size_t pt = 0; pt < points.size(); ++pt) {
      const std::size_t dot = line_coords[l][0] * points[pt][0] +
                              line_coords[l][1] * points[pt][1] +
                              line_coords[l][2] * points[pt][2];
      if (dot % order_ == 0) lines_[l].push_back(pt);
    }
    if (lines_[l].size() != order_ + 1) {
      throw std::logic_error{"FppQuorum: line does not have q+1 points"};
    }
  }
}

std::size_t FppQuorum::universe_size() const noexcept {
  return order_ * order_ + order_ + 1;
}

std::string FppQuorum::name() const { return "FPP(q=" + std::to_string(order_) + ")"; }

double FppQuorum::quorum_count() const noexcept {
  return static_cast<double>(lines_.size());
}

std::vector<Quorum> FppQuorum::enumerate_quorums(std::size_t limit) const {
  if (!enumerable(limit)) throw std::domain_error{name() + ": enumeration limit too low"};
  return lines_;
}

Quorum FppQuorum::best_quorum(std::span<const double> values) const {
  check_values_size(*this, values);
  std::size_t best = 0;
  double best_max = std::numeric_limits<double>::infinity();
  for (std::size_t l = 0; l < lines_.size(); ++l) {
    double worst = 0.0;
    for (std::size_t u : lines_[l]) worst = std::max(worst, values[u]);
    if (worst < best_max) {
      best_max = worst;
      best = l;
    }
  }
  return lines_[best];
}

double FppQuorum::expected_max_uniform(std::span<const double> values) const {
  check_values_size(*this, values);
  double total = 0.0;
  for (const Quorum& line : lines_) {
    double worst = 0.0;
    for (std::size_t u : line) worst = std::max(worst, values[u]);
    total += worst;
  }
  return total / static_cast<double>(lines_.size());
}

std::vector<double> FppQuorum::uniform_load() const {
  // Every point lies on exactly q+1 of the q^2+q+1 lines.
  const double load =
      static_cast<double>(order_ + 1) / static_cast<double>(universe_size());
  return std::vector<double>(universe_size(), load);
}

double FppQuorum::optimal_load() const {
  return static_cast<double>(order_ + 1) / static_cast<double>(universe_size());
}

std::vector<Quorum> FppQuorum::sample_quorums(std::size_t count, common::Rng& rng) const {
  std::vector<Quorum> result;
  result.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    result.push_back(lines_[rng.below(lines_.size())]);
  }
  return result;
}

}  // namespace qp::quorum
