#include "quorum/tree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qp::quorum {

namespace {

std::size_t left_child(std::size_t v) { return 2 * v + 1; }
std::size_t right_child(std::size_t v) { return 2 * v + 2; }

Quorum merged(const Quorum& a, const Quorum& b) {
  Quorum out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

Quorum with_root(std::size_t root, const Quorum& sub) {
  Quorum out;
  out.reserve(sub.size() + 1);
  out.push_back(root);
  out.insert(out.end(), sub.begin(), sub.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

TreeQuorum::TreeQuorum(std::size_t height) : height_(height) {
  if (height_ > 4) {
    throw std::invalid_argument{"TreeQuorum: heights above 4 are intractable to enumerate"};
  }
}

std::size_t TreeQuorum::universe_size() const noexcept {
  return (std::size_t{2} << height_) - 1;  // 2^(h+1) - 1.
}

std::string TreeQuorum::name() const { return "Tree(h=" + std::to_string(height_) + ")"; }

double TreeQuorum::subtree_count(std::size_t depth) const noexcept {
  // C(h) = 1; C(d) = 2 C(d+1) + C(d+1)^2.
  double count = 1.0;
  for (std::size_t d = height_; d > depth; --d) {
    count = 2.0 * count + count * count;
  }
  return count;
}

double TreeQuorum::quorum_count() const noexcept { return subtree_count(0); }

std::vector<Quorum> TreeQuorum::enumerate_quorums(std::size_t limit) const {
  if (!enumerable(limit)) throw std::domain_error{name() + ": enumeration limit too low"};
  // Recursive enumeration over heap-indexed nodes.
  const std::size_t n = universe_size();
  auto enumerate = [&](auto&& self, std::size_t v) -> std::vector<Quorum> {
    if (left_child(v) >= n) return {Quorum{v}};
    const std::vector<Quorum> left = self(self, left_child(v));
    const std::vector<Quorum> right = self(self, right_child(v));
    std::vector<Quorum> result;
    result.reserve(left.size() + right.size() + left.size() * right.size());
    for (const Quorum& q : left) result.push_back(with_root(v, q));
    for (const Quorum& q : right) result.push_back(with_root(v, q));
    for (const Quorum& a : left) {
      for (const Quorum& b : right) result.push_back(merged(a, b));
    }
    return result;
  };
  return enumerate(enumerate, 0);
}

Quorum TreeQuorum::best_quorum(std::span<const double> values) const {
  check_values_size(*this, values);
  const std::size_t n = universe_size();
  struct Best {
    double value = 0.0;
    Quorum quorum;
  };
  auto solve = [&](auto&& self, std::size_t v) -> Best {
    if (left_child(v) >= n) return Best{values[v], Quorum{v}};
    const Best left = self(self, left_child(v));
    const Best right = self(self, right_child(v));
    const double via_left = std::max(values[v], left.value);
    const double via_right = std::max(values[v], right.value);
    const double via_both = std::max(left.value, right.value);
    if (via_both <= via_left && via_both <= via_right) {
      return Best{via_both, merged(left.quorum, right.quorum)};
    }
    if (via_left <= via_right) return Best{via_left, with_root(v, left.quorum)};
    return Best{via_right, with_root(v, right.quorum)};
  };
  return solve(solve, 0).quorum;
}

double TreeQuorum::expected_max_uniform(std::span<const double> values) const {
  check_values_size(*this, values);
  double total = 0.0;
  const std::vector<Quorum> quorums = enumerate_quorums(100'000);
  for (const Quorum& quorum : quorums) {
    double worst = 0.0;
    for (std::size_t u : quorum) worst = std::max(worst, values[u]);
    total += worst;
  }
  return total / static_cast<double>(quorums.size());
}

std::vector<double> TreeQuorum::uniform_load() const {
  std::vector<double> load(universe_size(), 0.0);
  const std::vector<Quorum> quorums = enumerate_quorums(100'000);
  for (const Quorum& quorum : quorums) {
    for (std::size_t u : quorum) load[u] += 1.0;
  }
  for (double& l : load) l /= static_cast<double>(quorums.size());
  return load;
}

double TreeQuorum::optimal_load() const {
  const std::vector<double> load = uniform_load();
  return *std::max_element(load.begin(), load.end());
}

std::vector<Quorum> TreeQuorum::sample_quorums(std::size_t count, common::Rng& rng) const {
  const std::size_t n = universe_size();
  auto sample = [&](auto&& self, std::size_t v) -> Quorum {
    if (left_child(v) >= n) return Quorum{v};
    // Choose among the three recursive options proportionally to how many
    // quorums each contributes, so the overall draw is uniform. Children of
    // a node at depth d sit at depth d+1.
    std::size_t depth = 0;
    for (std::size_t w = v; w > 0; w = (w - 1) / 2) ++depth;
    const double c = subtree_count(depth + 1);
    const double weights[3] = {c, c, c * c};
    const std::size_t pick = rng.weighted_index(weights);
    if (pick == 0) return with_root(v, self(self, left_child(v)));
    if (pick == 1) return with_root(v, self(self, right_child(v)));
    return merged(self(self, left_child(v)), self(self, right_child(v)));
  };
  std::vector<Quorum> result;
  result.reserve(count);
  for (std::size_t i = 0; i < count; ++i) result.push_back(sample(sample, 0));
  return result;
}

}  // namespace qp::quorum
