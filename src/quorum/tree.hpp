// Tree quorum system (Agrawal & El Abbadi): the universe is a complete
// binary tree of height h (n = 2^(h+1) - 1 elements). A quorum is obtained
// recursively: for a subtree rooted at v,
//     TQ(v) = {v} u TQ(left)    |  {v} u TQ(right)   |  TQ(left) u TQ(right)
// and a single leaf's only quorum is itself. Any two quorums intersect.
//
// This system is not part of the paper's evaluation; it is included as an
// extension because it offers small quorums (as small as h+1, a root-to-leaf
// path) with graceful degradation, making it an interesting extra point on
// the quorum-size/load spectrum the paper explores.
#pragma once

#include "quorum/quorum_system.hpp"

namespace qp::quorum {

class TreeQuorum final : public QuorumSystem {
 public:
  /// Complete binary tree of the given height; height 0 is a single node.
  /// Heights above 4 (n = 63, ~4.3e9 quorums) are rejected: enumeration and
  /// uniform-load bookkeeping would be intractable.
  explicit TreeQuorum(std::size_t height);

  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t universe_size() const noexcept override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double quorum_count() const noexcept override;
  [[nodiscard]] std::vector<Quorum> enumerate_quorums(std::size_t limit) const override;
  /// Exact via dynamic programming over the tree (no enumeration).
  [[nodiscard]] Quorum best_quorum(std::span<const double> values) const override;
  [[nodiscard]] double expected_max_uniform(std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> uniform_load() const override;
  /// The busiest element's uniform-strategy load. Counter-intuitively this
  /// is NOT the root: the "both children" branch contributes quadratically
  /// many quorums, so deeper elements appear in a larger fraction.
  [[nodiscard]] double optimal_load() const override;
  [[nodiscard]] std::vector<Quorum> sample_quorums(std::size_t count,
                                                   common::Rng& rng) const override;

 private:
  /// Number of quorums of the subtree rooted at a node of depth d.
  [[nodiscard]] double subtree_count(std::size_t depth) const noexcept;

  std::size_t height_;
};

}  // namespace qp::quorum
