// Grid quorum system (Cheung–Ammar–Ahamad / Kumar–Rabinovich–Sinha): the
// universe is a k x k grid; the quorum chosen by picking (row r, column c)
// is the union of row r and column c (2k-1 elements, k^2 quorums). Any two
// quorums intersect because row r1 meets column c2.
#pragma once

#include "quorum/quorum_system.hpp"

namespace qp::quorum {

class GridQuorum final : public QuorumSystem {
 public:
  /// Requires k >= 1. Element (r, c) has index r*k + c.
  explicit GridQuorum(std::size_t k);

  [[nodiscard]] std::size_t side() const noexcept { return k_; }
  [[nodiscard]] std::size_t universe_size() const noexcept override { return k_ * k_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double quorum_count() const noexcept override;
  [[nodiscard]] std::vector<Quorum> enumerate_quorums(std::size_t limit) const override;
  [[nodiscard]] Quorum best_quorum(std::span<const double> values) const override;
  [[nodiscard]] double expected_max_uniform(std::span<const double> values) const override;
  [[nodiscard]] double expected_max_uniform_scratch(
      std::span<const double> values, std::vector<double>& scratch) const override;
  [[nodiscard]] std::vector<double> uniform_load() const override;
  [[nodiscard]] double optimal_load() const noexcept override;
  [[nodiscard]] std::vector<Quorum> sample_quorums(std::size_t count,
                                                   common::Rng& rng) const override;
  void sample_quorum(common::Rng& rng, Quorum& out) const override;

  /// The quorum for a (row, column) choice; exposed for tests and the
  /// placement code, which reasons about grid coordinates directly.
  [[nodiscard]] Quorum quorum_for(std::size_t row, std::size_t column) const;
  /// Allocation-free variant reusing `out`'s storage (sample_quorum's path).
  void quorum_for(std::size_t row, std::size_t column, Quorum& out) const;

 private:
  /// max_{u in row r u column c} values[u] for all (r, c), as a k x k table.
  [[nodiscard]] std::vector<double> quorum_maxima(std::span<const double> values) const;

  std::size_t k_;
};

}  // namespace qp::quorum
