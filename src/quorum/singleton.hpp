// The singleton quorum system: one element, one quorum. Placed on the graph
// median it is Lin's 2-approximation for network delay (§4.1.2) and the
// baseline every figure compares against.
#pragma once

#include "quorum/quorum_system.hpp"

namespace qp::quorum {

class SingletonQuorum final : public QuorumSystem {
 public:
  SingletonQuorum() = default;

  [[nodiscard]] std::size_t universe_size() const noexcept override { return 1; }
  [[nodiscard]] std::string name() const override { return "Singleton"; }
  [[nodiscard]] double quorum_count() const noexcept override { return 1.0; }
  [[nodiscard]] std::vector<Quorum> enumerate_quorums(std::size_t limit) const override;
  [[nodiscard]] Quorum best_quorum(std::span<const double> values) const override;
  [[nodiscard]] double expected_max_uniform(std::span<const double> values) const override;
  [[nodiscard]] std::span<const double> order_stat_weights() const override;
  [[nodiscard]] std::vector<double> uniform_load() const override;
  [[nodiscard]] double optimal_load() const noexcept override { return 1.0; }
  [[nodiscard]] std::vector<Quorum> sample_quorums(std::size_t count,
                                                   common::Rng& rng) const override;
};

}  // namespace qp::quorum
