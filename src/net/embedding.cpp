#include "net/embedding.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"

namespace qp::net {

namespace {

double euclidean(const double* a, const double* b, std::size_t dims) noexcept {
  double sq = 0.0;
  for (std::size_t d = 0; d < dims; ++d) {
    const double diff = a[d] - b[d];
    sq += diff * diff;
  }
  return std::sqrt(sq);
}

}  // namespace

LatencyEmbedding::LatencyEmbedding(std::size_t dimensions, std::vector<double> coordinates,
                                   std::vector<double> heights, double min_rtt_ms)
    : dims_(dimensions),
      coords_(std::move(coordinates)),
      heights_(std::move(heights)),
      min_rtt_(min_rtt_ms) {
  if (dims_ == 0) throw std::invalid_argument{"LatencyEmbedding: dimensions == 0"};
  if (coords_.size() != heights_.size() * dims_) {
    throw std::invalid_argument{"LatencyEmbedding: coordinate/height shape mismatch"};
  }
  if (!(min_rtt_ >= 0.0) || !std::isfinite(min_rtt_)) {
    throw std::invalid_argument{"LatencyEmbedding: min_rtt must be finite and >= 0"};
  }
  for (double c : coords_) {
    if (!std::isfinite(c)) {
      throw std::invalid_argument{"LatencyEmbedding: coordinates must be finite"};
    }
  }
  for (double h : heights_) {
    if (!(h >= 0.0) || !std::isfinite(h)) {
      throw std::invalid_argument{"LatencyEmbedding: heights must be finite and >= 0"};
    }
  }
}

void LatencyEmbedding::check_site(std::size_t v) const {
  if (v >= heights_.size()) {
    throw std::out_of_range{"LatencyEmbedding: site out of range"};
  }
}

double LatencyEmbedding::rtt(std::size_t a, std::size_t b) const {
  check_site(a);
  check_site(b);
  if (a == b) return 0.0;
  // Heights grouped first: (h_a + h_b) is commutative, so rtt(a, b) and
  // rtt(b, a) are the same double — left-to-right (dist + h_a) + h_b is not.
  const double raw = euclidean(coords_.data() + a * dims_, coords_.data() + b * dims_,
                               dims_) +
                     (heights_[a] + heights_[b]);
  return raw > min_rtt_ ? raw : min_rtt_;
}

void LatencyEmbedding::fill_rtts(std::size_t from, const std::size_t* sites,
                                 std::size_t count, double* out) const {
  check_site(from);
  const double* base = coords_.data() + from * dims_;
  const double h_from = heights_[from];
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t s = sites[i];
    check_site(s);
    if (s == from) {
      out[i] = 0.0;
      continue;
    }
    const double raw = euclidean(base, coords_.data() + s * dims_, dims_) +
                       (h_from + heights_[s]);
    out[i] = raw > min_rtt_ ? raw : min_rtt_;
  }
}

std::span<const double> LatencyEmbedding::coordinate(std::size_t site) const {
  check_site(site);
  return {coords_.data() + site * dims_, dims_};
}

double LatencyEmbedding::height(std::size_t site) const {
  check_site(site);
  return heights_[site];
}

LatencyMatrix LatencyEmbedding::densify(std::vector<std::string> site_names) const {
  const std::size_t n = size();
  std::vector<std::vector<double>> table(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      table[i][j] = table[j][i] = rtt(i, j);
    }
  }
  return LatencyMatrix{std::move(table), std::move(site_names)};
}

namespace {

/// Farthest-point traversal from site 0: greedy maxmin landmark set.
std::vector<std::size_t> pick_landmarks(const LatencyMatrix& measured, std::size_t count) {
  const std::size_t n = measured.size();
  count = std::min(count, n);
  std::vector<std::size_t> landmarks;
  landmarks.reserve(count);
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  std::size_t next = 0;
  for (std::size_t round = 0; round < count; ++round) {
    landmarks.push_back(next);
    const auto& row = measured.row(next);
    std::size_t farthest = 0;
    double best = -1.0;
    for (std::size_t v = 0; v < n; ++v) {
      nearest[v] = std::min(nearest[v], row[v]);
      if (nearest[v] > best) {
        best = nearest[v];
        farthest = v;
      }
    }
    next = farthest;
  }
  std::sort(landmarks.begin(), landmarks.end());
  return landmarks;
}

}  // namespace

FittedEmbedding fit_latency_embedding(const LatencyMatrix& measured,
                                      const EmbeddingConfig& config) {
  const std::size_t n = measured.size();
  const std::size_t dims = config.dimensions;
  if (n == 0) throw std::invalid_argument{"fit_latency_embedding: empty matrix"};
  if (dims == 0) throw std::invalid_argument{"fit_latency_embedding: dimensions == 0"};

  common::Rng rng{config.seed};
  common::Rng init_rng = rng.fork(0x1);
  common::Rng peer_rng = rng.fork(0x2);
  common::Rng stats_rng = rng.fork(0x3);

  // The seeded subset of measured pairs each site is fit against: the global
  // landmark anchors plus `peers_per_site` sampled peers for local detail.
  const std::vector<std::size_t> landmarks = pick_landmarks(measured, config.landmarks);
  std::vector<std::vector<std::size_t>> refs(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto& r = refs[v];
    r = landmarks;
    if (n > 1) {
      const std::size_t extra = std::min(config.peers_per_site, n - 1);
      for (std::size_t s : peer_rng.sample_without_replacement(n, extra)) r.push_back(s);
    }
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());
    std::erase(r, v);
  }

  // Init: small isotropic scatter scaled to the typical measured RTT, so the
  // relaxation starts from a symmetric, seed-determined state; heights start
  // near zero and grow as springs demand.
  double rtt_scale = 0.0;
  for (std::size_t l : landmarks) rtt_scale += measured.average_rtt_from(l);
  rtt_scale = landmarks.empty() ? 1.0 : std::max(1.0, rtt_scale / landmarks.size());
  std::vector<double> coords(n * dims);
  std::vector<double> heights(n, 0.05 * rtt_scale);
  for (double& c : coords) c = init_rng.normal(0.0, 0.2 * rtt_scale);

  // Serial spring relaxation: each sweep visits sites in index order and
  // nudges the site's point (and height) toward matching every reference
  // spring. Only the visited endpoint moves, so the result is independent of
  // everything but the seed and sweep count.
  const std::size_t sweeps = std::max<std::size_t>(1, config.iterations);
  for (std::size_t t = 0; t < sweeps; ++t) {
    const double progress = static_cast<double>(t) / static_cast<double>(sweeps);
    const double step = config.initial_step * (1.0 - 0.95 * progress);
    for (std::size_t v = 0; v < n; ++v) {
      double* xv = coords.data() + v * dims;
      const auto& row = measured.row(v);
      for (std::size_t u : refs[v]) {
        const double* xu = coords.data() + u * dims;
        const double dist = euclidean(xv, xu, dims);
        const double est = dist + heights[v] + heights[u];
        const double err = row[u] - est;  // > 0: too close, push apart.
        if (dist > 1e-9) {
          const double scale = step * err / dist;
          for (std::size_t d = 0; d < dims; ++d) xv[d] += scale * (xv[d] - xu[d]);
        } else {
          // Coincident points: deterministic axis kick sized to the error.
          xv[(v + u) % dims] += step * err;
        }
        heights[v] = std::max(0.0, heights[v] + 0.25 * step * err);
      }
    }
  }

  LatencyEmbedding embedding{dims, std::move(coords), std::move(heights), 0.0};

  // Error stats over a seeded sample of all measured pairs (relative error
  // per pair; zero-RTT pairs contribute absolute error only).
  EmbeddingStats stats;
  std::vector<double> rel;
  if (n > 1) {
    const std::size_t want = std::max<std::size_t>(1, config.sample_pairs);
    rel.reserve(want);
    for (std::size_t k = 0; k < want; ++k) {
      const std::size_t a = stats_rng.below(n);
      const std::size_t b = stats_rng.below(n);
      if (a == b) continue;
      const double truth = measured.rtt(a, b);
      const double abs_err = std::abs(embedding.rtt(a, b) - truth);
      stats.max_abs_error_ms = std::max(stats.max_abs_error_ms, abs_err);
      if (truth > 0.0) rel.push_back(abs_err / truth);
    }
  }
  stats.sample_pairs = rel.size();
  if (!rel.empty()) {
    std::sort(rel.begin(), rel.end());
    double sum = 0.0;
    for (double r : rel) sum += r;
    stats.mean_rel_error = sum / static_cast<double>(rel.size());
    stats.median_rel_error = rel[rel.size() / 2];
    stats.p95_rel_error = rel[std::min(rel.size() - 1, (rel.size() * 95) / 100)];
  }
  return FittedEmbedding{std::move(embedding), stats};
}

}  // namespace qp::net
