#include "net/random_graphs.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace qp::net {

Graph waxman_graph(const WaxmanConfig& config) {
  if (config.node_count < 2) throw std::invalid_argument{"waxman_graph: need >= 2 nodes"};
  if (config.alpha <= 0.0 || config.alpha > 1.0 || config.beta <= 0.0) {
    throw std::invalid_argument{"waxman_graph: alpha in (0,1], beta > 0 required"};
  }
  common::Rng rng{config.seed};
  const std::size_t n = config.node_count;
  std::vector<double> x(n), y(n);
  for (std::size_t v = 0; v < n; ++v) {
    x[v] = rng.uniform(0.0, config.region_size_ms);
    y[v] = rng.uniform(0.0, config.region_size_ms);
  }
  const auto rtt = [&](std::size_t a, std::size_t b) {
    const double dx = x[a] - x[b];
    const double dy = y[a] - y[b];
    // RTT = 2x one-way propagation; floor keeps lengths positive.
    return std::max(0.05, 2.0 * std::sqrt(dx * dx + dy * dy));
  };
  const double max_distance = 2.0 * config.region_size_ms * std::numbers::sqrt2;

  Graph graph{n};
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double p = config.alpha * std::exp(-rtt(a, b) / (config.beta * max_distance));
      if (rng.uniform() < p) graph.add_edge(a, b, rtt(a, b));
    }
  }

  // Stitch components together with shortest possible links (union-find).
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const auto find = [&](std::size_t v) {
    while (parent[v] != v) v = parent[v] = parent[parent[v]];
    return v;
  };
  for (std::size_t v = 0; v < n; ++v) {
    for (const Edge& e : graph.neighbors(v)) parent[find(v)] = find(e.to);
  }
  for (;;) {
    // Find the globally closest pair of nodes in different components.
    std::size_t best_a = n, best_b = n;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (find(a) == find(b)) continue;
        if (rtt(a, b) < best) {
          best = rtt(a, b);
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a == n) break;  // Single component.
    graph.add_edge(best_a, best_b, best);
    parent[find(best_a)] = find(best_b);
  }
  return graph;
}

}  // namespace qp::net
