#include "net/graph.hpp"

#include <stdexcept>

namespace qp::net {

Graph::Graph(std::size_t node_count)
    : adjacency_(node_count), capacities_(node_count, 1.0), names_(node_count) {
  for (std::size_t v = 0; v < node_count; ++v) {
    names_[v] = "node-" + std::to_string(v);
  }
}

void Graph::check_node(NodeId v) const {
  if (v >= adjacency_.size()) throw std::out_of_range{"Graph: node id out of range"};
}

void Graph::add_edge(NodeId a, NodeId b, double length) {
  check_node(a);
  check_node(b);
  if (a == b) throw std::invalid_argument{"Graph::add_edge: self-loop"};
  if (length <= 0.0) throw std::invalid_argument{"Graph::add_edge: length must be positive"};
  adjacency_[a].push_back(Edge{b, length});
  adjacency_[b].push_back(Edge{a, length});
  ++edge_count_;
}

std::span<const Edge> Graph::neighbors(NodeId v) const {
  check_node(v);
  return adjacency_[v];
}

double Graph::capacity(NodeId v) const {
  check_node(v);
  return capacities_[v];
}

void Graph::set_capacity(NodeId v, double cap) {
  check_node(v);
  if (cap < 0.0) throw std::invalid_argument{"Graph::set_capacity: negative capacity"};
  capacities_[v] = cap;
}

const std::string& Graph::name(NodeId v) const {
  check_node(v);
  return names_[v];
}

void Graph::set_name(NodeId v, std::string name) {
  check_node(v);
  names_[v] = std::move(name);
}

bool Graph::connected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const Edge& e : adjacency_[v]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        ++visited;
        stack.push_back(e.to);
      }
    }
  }
  return visited == adjacency_.size();
}

}  // namespace qp::net
