// Weighted undirected graph, the paper's network model G = (V, E) with
// positive edge lengths and per-node capacities (§4 "Network").
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace qp::net {

using NodeId = std::size_t;

struct Edge {
  NodeId to = 0;
  double length = 0.0;  // Positive; induces the distance function d.
};

/// Undirected graph with adjacency lists. Node capacities default to 1.0
/// (the paper treats cap(v) in [0,1] as a tunable, §7).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Adds an undirected edge; throws on self-loop, bad ids, or non-positive length.
  void add_edge(NodeId a, NodeId b, double length);

  [[nodiscard]] std::span<const Edge> neighbors(NodeId v) const;

  [[nodiscard]] double capacity(NodeId v) const;
  void set_capacity(NodeId v, double cap);

  [[nodiscard]] const std::string& name(NodeId v) const;
  void set_name(NodeId v, std::string name);

  /// True iff every node can reach every other node.
  [[nodiscard]] bool connected() const;

 private:
  void check_node(NodeId v) const;

  std::vector<std::vector<Edge>> adjacency_;
  std::vector<double> capacities_;
  std::vector<std::string> names_;
  std::size_t edge_count_ = 0;
};

}  // namespace qp::net
