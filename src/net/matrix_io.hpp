// Text serialization for latency matrices so users can plug in real
// measurements (e.g. actual PlanetLab ping data) in place of the synthetic
// generators.
//
// Format (whitespace-separated, '#' comments allowed):
//   line 1: N
//   line 2: N site names (tokens without whitespace)  [optional]
//   then:   N rows of N RTT values in milliseconds
#pragma once

#include <iosfwd>
#include <string>

#include "net/latency_matrix.hpp"

namespace qp::net {

/// Parses the format above. Throws std::runtime_error with a line-oriented
/// message on malformed input.
[[nodiscard]] LatencyMatrix read_matrix(std::istream& in);

/// Loads from a file path; throws std::runtime_error if unreadable.
[[nodiscard]] LatencyMatrix read_matrix_file(const std::string& path);

/// Writes the matrix (with names) in the same format.
void write_matrix(std::ostream& out, const LatencyMatrix& matrix);

void write_matrix_file(const std::string& path, const LatencyMatrix& matrix);

}  // namespace qp::net
