// Low-dimensional latency embedding — the implicit LatencySpace that breaks
// the O(n^2) matrix wall.
//
// Sites get a point x_i in R^d plus a non-negative "height" h_i, and the
// modeled RTT is
//
//     rtt(i, j) = max(min_rtt, ||x_i - x_j||_2 + h_i + h_j)      (i != j)
//
// — the Vivaldi height-vector model: the Euclidean part captures wide-area
// propagation (which is very nearly a low-dimensional metric for
// geographically clustered sites), and the heights capture per-site access
// delay, which is additive per endpoint and NOT Euclidean. The model is a
// metric by construction (the Euclidean part obeys the triangle inequality,
// heights only add endpoint terms, and max(., c) preserves it), so placement
// algorithms that implicitly assume a distance function stay sound. Memory
// is O(n * d) instead of O(n^2): 50k sites in 3-8 dims fit in ~2 MB where a
// dense matrix would need 20 GB.
//
// Two ways to obtain one:
//  * `fit_latency_embedding` fits coordinates to a seeded subset of the
//    pairs of a *measured* dense matrix (landmark-anchored spring
//    relaxation, serial and bit-deterministic in the seed), reporting
//    embedding-error stats over a seeded sample of pairs.
//  * `sim/scenario.hpp` *generates* large synthetic topologies directly in
//    embedding space (3-d Earth-chord coordinates + access-delay heights),
//    where the embedding is exact ground truth — no dense stage at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/latency_matrix.hpp"
#include "net/latency_space.hpp"

namespace qp::net {

class LatencyEmbedding final : public LatencySpace {
 public:
  /// `coordinates` is row-major n x dimensions; `heights` has one
  /// non-negative entry per site. Throws std::invalid_argument on shape
  /// mismatch, non-finite values, or negative heights / min_rtt.
  LatencyEmbedding(std::size_t dimensions, std::vector<double> coordinates,
                   std::vector<double> heights, double min_rtt_ms = 0.0);

  [[nodiscard]] std::size_t size() const noexcept override { return heights_.size(); }
  [[nodiscard]] double rtt(std::size_t a, std::size_t b) const override;
  void fill_rtts(std::size_t from, const std::size_t* sites, std::size_t count,
                 double* out) const override;

  [[nodiscard]] std::size_t dimensions() const noexcept { return dims_; }
  [[nodiscard]] std::span<const double> coordinate(std::size_t site) const;
  [[nodiscard]] double height(std::size_t site) const;
  [[nodiscard]] double min_rtt_ms() const noexcept { return min_rtt_; }

  /// Materializes the dense n x n matrix (entries == rtt() bitwise). O(n^2)
  /// memory — parity tests and small n only.
  [[nodiscard]] LatencyMatrix densify(std::vector<std::string> site_names = {}) const;

 private:
  void check_site(std::size_t v) const;

  std::size_t dims_ = 0;
  std::vector<double> coords_;   // n x dims_, row-major.
  std::vector<double> heights_;  // n.
  double min_rtt_ = 0.0;
};

struct EmbeddingConfig {
  std::size_t dimensions = 5;
  /// Landmarks (chosen by farthest-point traversal) every site is fit
  /// against; anchors the global geometry.
  std::size_t landmarks = 16;
  /// Additional sampled measured peers per site (local refinement).
  std::size_t peers_per_site = 24;
  /// Relaxation sweeps over all (site, reference) springs.
  std::size_t iterations = 64;
  /// Initial relaxation step; decays linearly to ~5% over the sweeps.
  double initial_step = 0.25;
  /// Seeded sample size for the error stats.
  std::size_t sample_pairs = 2000;
  std::uint64_t seed = 20070601;
};

/// Embedding-error statistics over a seeded sample of measured pairs:
/// relative error |est - measured| / measured, plus the worst absolute gap.
struct EmbeddingStats {
  std::size_t sample_pairs = 0;
  double mean_rel_error = 0.0;
  double median_rel_error = 0.0;
  double p95_rel_error = 0.0;
  double max_abs_error_ms = 0.0;
};

struct FittedEmbedding {
  LatencyEmbedding embedding;
  EmbeddingStats stats;
};

/// Fits a height-model embedding to a seeded subset of `measured`'s pairs:
/// farthest-point landmarks, seeded peer sampling, then serial spring
/// relaxation (each (site, reference) spring nudges the site's coordinate
/// and height toward matching the measured RTT). Deterministic bit-for-bit
/// in `config` — the fit is single-threaded by design, so results cannot
/// depend on QP_THREADS. Throws on an empty matrix or dimensions == 0.
[[nodiscard]] FittedEmbedding fit_latency_embedding(const LatencyMatrix& measured,
                                                    const EmbeddingConfig& config = {});

}  // namespace qp::net
