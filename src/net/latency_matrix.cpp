#include "net/latency_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/simd_kernels.hpp"
#include "net/shortest_paths.hpp"

namespace qp::net {

LatencyMatrix::LatencyMatrix(std::vector<std::vector<double>> rtt_ms,
                             std::vector<std::string> site_names,
                             double symmetry_tolerance)
    : rtt_(std::move(rtt_ms)), names_(std::move(site_names)) {
  const std::size_t n = rtt_.size();
  if (!names_.empty() && names_.size() != n) {
    throw std::invalid_argument{"LatencyMatrix: name count != site count"};
  }
  if (names_.empty()) {
    names_.resize(n);
    for (std::size_t i = 0; i < n; ++i) names_[i] = "site-" + std::to_string(i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (rtt_[i].size() != n) throw std::invalid_argument{"LatencyMatrix: non-square"};
    if (rtt_[i][i] != 0.0) throw std::invalid_argument{"LatencyMatrix: nonzero diagonal"};
    for (std::size_t j = 0; j < n; ++j) {
      if (!(rtt_[i][j] >= 0.0) || !std::isfinite(rtt_[i][j])) {
        throw std::invalid_argument{"LatencyMatrix: entries must be finite and >= 0"};
      }
    }
  }
  // Symmetrize: measured RTTs differ slightly by direction; average them.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double gap = std::abs(rtt_[i][j] - rtt_[j][i]);
      const double scale = std::max({1.0, rtt_[i][j], rtt_[j][i]});
      if (gap > symmetry_tolerance * scale) {
        throw std::invalid_argument{"LatencyMatrix: matrix is not symmetric"};
      }
      const double avg = 0.5 * (rtt_[i][j] + rtt_[j][i]);
      rtt_[i][j] = rtt_[j][i] = avg;
    }
  }
}

LatencyMatrix LatencyMatrix::from_graph(const Graph& graph) {
  auto dist = all_pairs_shortest_paths(graph);
  for (const auto& row : dist) {
    for (double d : row) {
      if (!std::isfinite(d)) {
        throw std::invalid_argument{"LatencyMatrix::from_graph: graph is disconnected"};
      }
    }
  }
  std::vector<std::string> names(graph.node_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) names[v] = graph.name(v);
  return LatencyMatrix{std::move(dist), std::move(names)};
}

void LatencyMatrix::check_site(std::size_t v) const {
  if (v >= rtt_.size()) throw std::out_of_range{"LatencyMatrix: site out of range"};
}

double LatencyMatrix::rtt(std::size_t a, std::size_t b) const {
  check_site(a);
  check_site(b);
  return rtt_[a][b];
}

void LatencyMatrix::fill_rtts(std::size_t from, const std::size_t* sites,
                              std::size_t count, double* out) const {
  check_site(from);
  common::gather_indexed(rtt_[from].data(), sites, count, out);
}

const std::vector<double>& LatencyMatrix::row(std::size_t a) const {
  check_site(a);
  return rtt_[a];
}

const std::string& LatencyMatrix::site_name(std::size_t v) const {
  check_site(v);
  return names_[v];
}

bool LatencyMatrix::satisfies_triangle_inequality(double tolerance) const {
  const std::size_t n = size();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t c = 0; c < n; ++c) {
        if (rtt_[a][c] > rtt_[a][b] + rtt_[b][c] + tolerance) return false;
      }
    }
  }
  return true;
}

LatencyMatrix LatencyMatrix::metric_closure() const {
  return LatencyMatrix{floyd_warshall(rtt_), names_};
}

double LatencyMatrix::average_rtt_from(std::size_t v) const {
  check_site(v);
  const auto& r = rtt_[v];
  return std::accumulate(r.begin(), r.end(), 0.0) / static_cast<double>(r.size());
}

std::size_t LatencyMatrix::median_site() const {
  if (rtt_.empty()) throw std::logic_error{"LatencyMatrix::median_site: empty matrix"};
  std::size_t best = 0;
  double best_sum = std::numeric_limits<double>::infinity();
  for (std::size_t v = 0; v < size(); ++v) {
    const double sum = std::accumulate(rtt_[v].begin(), rtt_[v].end(), 0.0);
    if (sum < best_sum) {
      best_sum = sum;
      best = v;
    }
  }
  return best;
}

std::vector<std::size_t> LatencyMatrix::ball(std::size_t v, std::size_t k) const {
  check_site(v);
  if (k > size()) throw std::invalid_argument{"LatencyMatrix::ball: k > site count"};
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rtt_[v][a] != rtt_[v][b]) return rtt_[v][a] < rtt_[v][b];
    return a < b;
  });
  order.resize(k);
  return order;
}

}  // namespace qp::net
