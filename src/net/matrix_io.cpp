#include "net/matrix_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace qp::net {

namespace {

// Strips '#' comments and returns whitespace-separated tokens, streaming
// across lines so rows may be wrapped arbitrarily.
class TokenReader {
 public:
  explicit TokenReader(std::istream& in) : in_(in) {}

  bool next(std::string& token) {
    for (;;) {
      if (line_stream_ >> token) return true;
      std::string line;
      if (!std::getline(in_, line)) return false;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      line_stream_.clear();
      line_stream_.str(line);
    }
  }

 private:
  std::istream& in_;
  std::istringstream line_stream_;
};

double parse_double(const std::string& token, const char* what) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument{token};
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error{std::string{"matrix_io: bad "} + what + ": '" + token + "'"};
  }
}

bool looks_numeric(const std::string& token) {
  try {
    std::size_t pos = 0;
    (void)std::stod(token, &pos);
    return pos == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

LatencyMatrix read_matrix(std::istream& in) {
  TokenReader reader{in};
  std::string token;
  if (!reader.next(token)) throw std::runtime_error{"matrix_io: empty input"};
  const auto n = static_cast<std::size_t>(parse_double(token, "site count"));
  if (n == 0) throw std::runtime_error{"matrix_io: site count must be positive"};

  if (!reader.next(token)) throw std::runtime_error{"matrix_io: truncated input"};

  // The names line is optional: if the first token after N is numeric we
  // assume the matrix follows immediately.
  std::vector<std::string> names;
  if (!looks_numeric(token)) {
    names.push_back(token);
    for (std::size_t i = 1; i < n; ++i) {
      if (!reader.next(token)) throw std::runtime_error{"matrix_io: truncated name list"};
      names.push_back(token);
    }
    if (!reader.next(token)) throw std::runtime_error{"matrix_io: missing matrix body"};
  }

  std::vector<std::vector<double>> rtt(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != 0 || j != 0) {
        if (!reader.next(token)) throw std::runtime_error{"matrix_io: truncated matrix body"};
      }
      rtt[i][j] = parse_double(token, "matrix entry");
    }
  }
  try {
    return LatencyMatrix{std::move(rtt), std::move(names), /*symmetry_tolerance=*/1e-3};
  } catch (const std::invalid_argument& err) {
    throw std::runtime_error{std::string{"matrix_io: "} + err.what()};
  }
}

LatencyMatrix read_matrix_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"matrix_io: cannot open '" + path + "'"};
  return read_matrix(in);
}

void write_matrix(std::ostream& out, const LatencyMatrix& matrix) {
  const std::size_t n = matrix.size();
  out << n << '\n';
  for (std::size_t i = 0; i < n; ++i) {
    out << matrix.site_name(i) << (i + 1 == n ? '\n' : ' ');
  }
  out.precision(17);  // Round-trip exact for doubles.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out << matrix.rtt(i, j) << (j + 1 == n ? '\n' : ' ');
    }
  }
}

void write_matrix_file(const std::string& path, const LatencyMatrix& matrix) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"matrix_io: cannot write '" + path + "'"};
  write_matrix(out, matrix);
}

}  // namespace qp::net
