// KnnIndex: k-nearest-site queries against a LatencySpace without touching
// all n pairs.
//
// Over a LatencyEmbedding the index is a kd-tree on the coordinate part with
// one extra twist for the height model: rtt(q, s) = ||x_q - x_s|| + h_q +
// h_s, so each subtree stores min height alongside its bounding box, and the
// pruning bound is boxdist(x_q, box) + h_q + min_height — a true lower bound
// on any rtt in the subtree (the min-RTT floor is monotone, so flooring the
// bound keeps it valid). Build is O(n log n), queries O(log n + k) for
// clustered inputs.
//
// Over a dense LatencyMatrix the "index" is a brute-force row scan — same
// results, same tie-breaking, no tree; it exists so callers can be written
// against one API in both regimes (and so parity tests can compare the tree
// against it).
//
// Determinism: equal-RTT ties order by site index everywhere (matching
// LatencyMatrix::ball), queries allocate nothing on the steady-state path
// when the caller reuses the out-vectors, and results are identical doubles
// for any thread count (queries are const and lock-free).
#pragma once

#include <cstddef>
#include <vector>

#include "net/embedding.hpp"
#include "net/latency_matrix.hpp"

namespace qp::net {

class KnnIndex {
 public:
  struct Neighbor {
    std::size_t site = 0;
    double rtt_ms = 0.0;
  };

  /// kd-tree over the embedding's coordinates. The embedding must outlive
  /// the index.
  explicit KnnIndex(const LatencyEmbedding& embedding);
  /// Brute-force reference over a dense matrix. The matrix must outlive the
  /// index.
  explicit KnnIndex(const LatencyMatrix& matrix);

  [[nodiscard]] std::size_t size() const noexcept;

  /// The min(k, n) sites nearest `from` by RTT, ascending (ties by site
  /// index); `from` itself is included at distance 0, matching
  /// LatencyMatrix::ball. Throws std::out_of_range on a bad site.
  [[nodiscard]] std::vector<Neighbor> nearest(std::size_t from, std::size_t k) const;
  void nearest(std::size_t from, std::size_t k, std::vector<Neighbor>& out) const;

  /// Every site with rtt(from, s) <= radius (including `from`), ascending
  /// (ties by site index).
  void within(std::size_t from, double radius, std::vector<Neighbor>& out) const;

 private:
  struct Node {
    std::size_t begin = 0;     // leaf: [begin, end) into order_.
    std::size_t end = 0;
    std::size_t left = 0;      // internal: child node ids (0 = leaf).
    std::size_t right = 0;
    double min_height = 0.0;   // min h_s over the subtree's sites.
    std::vector<double> box_min;
    std::vector<double> box_max;
  };

  std::size_t build_node(std::size_t begin, std::size_t end);
  [[nodiscard]] double box_distance(const Node& node, const double* query) const;
  void query_node(std::size_t node_id, std::size_t from, const double* query,
                  std::size_t k, std::vector<Neighbor>& heap) const;
  void within_node(std::size_t node_id, std::size_t from, const double* query,
                   double radius, std::vector<Neighbor>& out) const;

  const LatencyEmbedding* embedding_ = nullptr;  // exactly one backend is set
  const LatencyMatrix* matrix_ = nullptr;
  std::vector<std::size_t> order_;  // site ids, permuted into leaf ranges.
  std::vector<Node> nodes_;         // nodes_[0] unused; root is nodes_[1].
};

}  // namespace qp::net
