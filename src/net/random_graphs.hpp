// Random graph topologies. The paper's matrices come from measurements; the
// Waxman generator below produces *graph* inputs (routers + links) so the
// Graph -> shortest-paths -> LatencyMatrix pipeline is exercised end-to-end
// and users can study placements on synthetic internetwork graphs.
#pragma once

#include <cstdint>

#include "net/graph.hpp"

namespace qp::net {

struct WaxmanConfig {
  std::size_t node_count = 50;
  /// Edge probability scale (higher = denser).
  double alpha = 0.4;
  /// Locality: edge probability decays as exp(-d / (beta * max_distance)).
  double beta = 0.25;
  /// Side of the square region, in milliseconds of one-way propagation:
  /// edge lengths are RTT-like (2x Euclidean distance).
  double region_size_ms = 40.0;
  std::uint64_t seed = 1;
};

/// Classic Waxman random graph on uniformly placed nodes. Extra minimum-
/// distance edges are added between components afterwards, so the result is
/// always connected. Deterministic in the seed.
[[nodiscard]] Graph waxman_graph(const WaxmanConfig& config);

}  // namespace qp::net
