// Shortest-path computations producing the distance function d : V x V -> R+
// that all placement algorithms consume.
#pragma once

#include <vector>

#include "net/graph.hpp"

namespace qp::net {

/// Single-source Dijkstra; unreachable nodes get +infinity.
[[nodiscard]] std::vector<double> dijkstra(const Graph& graph, NodeId source);

/// All-pairs shortest paths. Uses repeated Dijkstra (graphs here are sparse
/// and small: at most a few hundred nodes). result[u][v] symmetric.
[[nodiscard]] std::vector<std::vector<double>> all_pairs_shortest_paths(const Graph& graph);

/// Floyd–Warshall over an explicit matrix (used to metric-close measured
/// latency matrices, which routinely violate the triangle inequality).
/// The input must be square with zero diagonal; entries may be +infinity.
[[nodiscard]] std::vector<std::vector<double>> floyd_warshall(
    std::vector<std::vector<double>> distances);

}  // namespace qp::net
