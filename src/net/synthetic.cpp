#include "net/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/rng.hpp"

namespace qp::net {

namespace {

double deg2rad(double deg) noexcept { return deg * std::numbers::pi / 180.0; }

/// Places sites and draws access delays, consuming forks 1 and 2 of `rng` —
/// shared by generate_topology (which continues with fork 3 for the pair
/// stream) and generate_sites, so both produce bitwise-identical locations.
SyntheticSites place_sites(const SyntheticConfig& config, common::Rng& rng) {
  std::size_t total = 0;
  for (const Region& region : config.regions) total += region.site_count;
  if (total == 0) throw std::invalid_argument{"generate_topology: no sites configured"};

  common::Rng placement_rng = rng.fork(1);
  common::Rng access_rng = rng.fork(2);

  std::vector<SiteLocation> sites;
  sites.reserve(total);
  for (const Region& region : config.regions) {
    for (std::size_t i = 0; i < region.site_count; ++i) {
      SiteLocation site;
      site.region = region.name;
      site.name = region.name + "-" + std::to_string(i);
      site.latitude_deg = region.center_latitude_deg +
                          placement_rng.normal(0.0, region.spread_deg);
      site.latitude_deg = std::clamp(site.latitude_deg, -85.0, 85.0);
      site.longitude_deg = region.center_longitude_deg +
                           placement_rng.normal(0.0, region.spread_deg * 1.4);
      // Wrap longitude into [-180, 180).
      while (site.longitude_deg >= 180.0) site.longitude_deg -= 360.0;
      while (site.longitude_deg < -180.0) site.longitude_deg += 360.0;
      sites.push_back(std::move(site));
    }
  }

  std::vector<double> access_ms(total);
  for (double& a : access_ms) {
    a = access_rng.uniform(config.access_delay_min_ms, config.access_delay_max_ms);
  }
  return SyntheticSites{std::move(sites), std::move(access_ms)};
}

}  // namespace

double great_circle_km(double lat1_deg, double lon1_deg, double lat2_deg,
                       double lon2_deg) noexcept {
  const double lat1 = deg2rad(lat1_deg);
  const double lat2 = deg2rad(lat2_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(lon2_deg - lon1_deg);
  const double a = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(a)));
}

SyntheticSites generate_sites(const SyntheticConfig& config) {
  common::Rng rng{config.seed};
  return place_sites(config, rng);
}

SyntheticTopology generate_topology(const SyntheticConfig& config) {
  common::Rng rng{config.seed};
  SyntheticSites placed = place_sites(config, rng);
  common::Rng pair_rng = rng.fork(3);
  std::vector<SiteLocation>& sites = placed.sites;
  std::vector<double>& access_ms = placed.access_delay_ms;
  const std::size_t total = sites.size();

  std::vector<std::vector<double>> rtt(total, std::vector<double>(total, 0.0));
  for (std::size_t i = 0; i < total; ++i) {
    for (std::size_t j = i + 1; j < total; ++j) {
      const double km = great_circle_km(sites[i].latitude_deg, sites[i].longitude_deg,
                                        sites[j].latitude_deg, sites[j].longitude_deg);
      const double inflation =
          config.route_inflation_mean +
          pair_rng.uniform(-config.route_inflation_spread, config.route_inflation_spread);
      const double propagation_rtt = 2.0 * km / kFiberKmPerMs * inflation;
      const double jitter = pair_rng.lognormal(0.0, config.jitter_sigma);
      double value = (propagation_rtt + access_ms[i] + access_ms[j]) * jitter;
      value = std::max(value, config.min_rtt_ms);
      rtt[i][j] = rtt[j][i] = value;
    }
  }

  std::vector<std::string> names(total);
  for (std::size_t i = 0; i < total; ++i) names[i] = sites[i].name;

  // Metric-close so the matrix is a true distance function (the paper's d is
  // a shortest-path metric; raw measurements violate triangles).
  LatencyMatrix matrix = LatencyMatrix{std::move(rtt), std::move(names)}.metric_closure();
  return SyntheticTopology{std::move(matrix), std::move(sites)};
}

LatencyMatrix planetlab50_synth(std::uint64_t seed) {
  SyntheticConfig config;
  config.seed = seed;
  // PlanetLab circa 2006: dominated by US universities, strong EU presence,
  // an East-Asia cluster, and a handful of far-flung sites.
  config.regions = {
      {"us-east", 40.5, -74.5, 3.5, 12},
      {"us-central", 41.5, -93.0, 4.0, 6},
      {"us-west", 37.5, -122.0, 3.0, 8},
      {"eu-west", 50.5, 4.5, 4.0, 9},
      {"eu-south", 44.0, 9.0, 3.0, 4},
      {"asia-east", 35.5, 135.0, 4.5, 6},
      {"asia-south", 22.5, 114.0, 2.5, 2},
      {"oceania", -33.8, 151.0, 2.0, 2},
      {"sa", -23.5, -46.6, 2.0, 1},
  };
  return generate_topology(config).matrix;
}

LatencyMatrix daxlist161_synth(std::uint64_t seed) {
  SyntheticConfig config;
  config.seed = seed;
  // Commercial web servers (daxlist): very US-heavy with large EU share;
  // King estimates are noisier than pings, hence the higher jitter.
  config.jitter_sigma = 0.14;
  config.access_delay_max_ms = 9.0;
  config.regions = {
      {"us-east", 39.5, -77.0, 4.5, 44},
      {"us-central", 41.0, -95.0, 5.0, 22},
      {"us-west", 37.0, -121.0, 4.0, 30},
      {"eu-west", 51.0, 0.0, 4.5, 26},
      {"eu-central", 50.0, 10.0, 4.0, 12},
      {"asia-east", 35.0, 137.0, 5.0, 14},
      {"asia-south", 19.0, 77.0, 3.0, 4},
      {"oceania", -35.0, 149.0, 3.0, 5},
      {"sa", -25.0, -50.0, 4.0, 4},
  };
  return generate_topology(config).matrix;
}

LatencyMatrix small_synth(std::size_t n, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument{"small_synth: n must be positive"};
  SyntheticConfig config;
  config.seed = seed;
  const std::size_t third = n / 3;
  config.regions = {
      {"us", 40.0, -90.0, 5.0, n - 2 * third},
      {"eu", 50.0, 5.0, 4.0, third},
      {"asia", 35.0, 135.0, 4.0, third},
  };
  return generate_topology(config).matrix;
}

}  // namespace qp::net
