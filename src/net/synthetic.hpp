// Synthetic wide-area latency matrices.
//
// The paper evaluates on two measured datasets we do not have access to:
//  * "Planetlab-50" — ping RTTs among 50 PlanetLab sites (Jul–Nov 2006), and
//  * "daxlist-161"  — King-estimated RTTs among 161 web servers.
//
// These generators reproduce the *statistical shape* those algorithms depend
// on: sites clustered on continents, RTT dominated by great-circle
// propagation through fiber (with route inflation), plus per-site access
// delays and lognormal measurement jitter, finally metric-closed so the
// result is a genuine distance function (the paper's d is shortest-path
// distance). Deterministic in the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/latency_matrix.hpp"

namespace qp::net {

/// A geographic cluster of sites (roughly, a continent or coast).
struct Region {
  std::string name;
  double center_latitude_deg = 0.0;
  double center_longitude_deg = 0.0;
  /// Standard deviation of site scatter around the center, in degrees.
  double spread_deg = 5.0;
  /// Number of sites to place in this region.
  std::size_t site_count = 0;
};

struct SyntheticConfig {
  std::uint64_t seed = 1;
  std::vector<Region> regions;
  /// Multiplier on great-circle propagation accounting for non-geodesic
  /// routing (typical measured inflation is 1.5–2.5x).
  double route_inflation_mean = 1.9;
  double route_inflation_spread = 0.35;  // Uniform half-width around the mean.
  /// Per-site last-mile/access delay added to every RTT touching the site
  /// (one value per direction), drawn uniformly from [min, max] ms.
  double access_delay_min_ms = 0.5;
  double access_delay_max_ms = 6.0;
  /// Lognormal jitter multiplier: exp(N(0, sigma)) applied per pair.
  double jitter_sigma = 0.08;
  /// Floor for any inter-site RTT (two sites in one machine room), ms.
  double min_rtt_ms = 0.3;
};

/// Latitude/longitude of a generated site, exposed for visualization and
/// for tests that check the distance/geography correlation.
struct SiteLocation {
  std::string name;
  std::string region;
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
};

struct SyntheticTopology {
  LatencyMatrix matrix;
  std::vector<SiteLocation> sites;
};

/// Site placements plus per-site access delays — the O(n) part of the
/// generator, without the O(n^2) RTT stage. Input for topologies generated
/// directly in embedding space (sim/scenario sparse scenarios).
struct SyntheticSites {
  std::vector<SiteLocation> sites;
  std::vector<double> access_delay_ms;
};

/// Mean Earth radius (haversine / chord geometry), kilometers.
inline constexpr double kEarthRadiusKm = 6371.0;
/// Light in fiber travels ~200 km per millisecond.
inline constexpr double kFiberKmPerMs = 200.0;

/// Great-circle distance in kilometers (haversine, mean Earth radius).
[[nodiscard]] double great_circle_km(double lat1_deg, double lon1_deg, double lat2_deg,
                                     double lon2_deg) noexcept;

/// Site placements and access delays of `config`, consuming the same seeded
/// streams as generate_topology — the locations match the dense generator
/// bitwise for the same config. O(n) time and memory; no RTT matrix.
[[nodiscard]] SyntheticSites generate_sites(const SyntheticConfig& config);

/// Generates a clustered WAN latency matrix per the config. Throws if the
/// config lists no sites.
[[nodiscard]] SyntheticTopology generate_topology(const SyntheticConfig& config);

/// 50 sites with a PlanetLab-like distribution (NA-heavy, EU, East Asia,
/// plus a few far-flung sites). Stands in for the paper's "Planetlab-50".
[[nodiscard]] LatencyMatrix planetlab50_synth(std::uint64_t seed = 20060701);

/// 161 sites with a commercial-web-server-like distribution (US coasts and
/// EU heavy). Stands in for the paper's "daxlist-161".
[[nodiscard]] LatencyMatrix daxlist161_synth(std::uint64_t seed = 20060702);

/// Small clustered topology for fast tests; `n` sites over three regions.
[[nodiscard]] LatencyMatrix small_synth(std::size_t n, std::uint64_t seed = 7);

}  // namespace qp::net
