#include "net/shortest_paths.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace qp::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<double> dijkstra(const Graph& graph, NodeId source) {
  const std::size_t n = graph.node_count();
  if (source >= n) throw std::out_of_range{"dijkstra: source out of range"};
  std::vector<double> dist(n, kInf);
  dist[source] = 0.0;
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;  // Stale entry.
    for (const Edge& e : graph.neighbors(v)) {
      const double candidate = d + e.length;
      if (candidate < dist[e.to]) {
        dist[e.to] = candidate;
        heap.emplace(candidate, e.to);
      }
    }
  }
  return dist;
}

std::vector<std::vector<double>> all_pairs_shortest_paths(const Graph& graph) {
  std::vector<std::vector<double>> result;
  result.reserve(graph.node_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    result.push_back(dijkstra(graph, v));
  }
  return result;
}

std::vector<std::vector<double>> floyd_warshall(std::vector<std::vector<double>> dist) {
  const std::size_t n = dist.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (dist[i].size() != n) throw std::invalid_argument{"floyd_warshall: non-square matrix"};
    if (dist[i][i] != 0.0) throw std::invalid_argument{"floyd_warshall: nonzero diagonal"};
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = dist[i][k];
      if (dik == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double candidate = dik + dist[k][j];
        if (candidate < dist[i][j]) dist[i][j] = candidate;
      }
    }
  }
  return dist;
}

}  // namespace qp::net
