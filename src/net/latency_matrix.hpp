// LatencyMatrix: the symmetric round-trip-time matrix (in milliseconds) that
// stands in for the paper's measured Planetlab-50 / daxlist-161 datasets.
//
// All placement and strategy algorithms consume a LatencyMatrix rather than a
// Graph: measured WAN data arrives as a distance matrix, and graph inputs are
// converted via all-pairs shortest paths (see from_graph).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "net/latency_space.hpp"

namespace qp::net {

class LatencyMatrix : public LatencySpace {
 public:
  /// Builds from a full matrix. Requires: square, zero diagonal, symmetric to
  /// within `symmetry_tolerance` (asymmetry is averaged away), non-negative.
  explicit LatencyMatrix(std::vector<std::vector<double>> rtt_ms,
                         std::vector<std::string> site_names = {},
                         double symmetry_tolerance = 1e-6);

  /// Distance function of a graph: metric closure via shortest paths.
  [[nodiscard]] static LatencyMatrix from_graph(const Graph& graph);

  [[nodiscard]] std::size_t size() const noexcept override { return rtt_.size(); }

  /// RTT between sites in milliseconds; rtt(v, v) == 0.
  [[nodiscard]] double rtt(std::size_t a, std::size_t b) const override;

  /// Row gather via the SIMD gather kernel (identical doubles to the scalar
  /// loop — the kernel only moves data).
  void fill_rtts(std::size_t from, const std::size_t* sites, std::size_t count,
                 double* out) const override;

  [[nodiscard]] const LatencyMatrix* as_matrix() const noexcept override { return this; }

  [[nodiscard]] const std::vector<double>& row(std::size_t a) const;

  [[nodiscard]] const std::string& site_name(std::size_t v) const;

  /// True iff d(a,c) <= d(a,b) + d(b,c) + tolerance for all triples.
  [[nodiscard]] bool satisfies_triangle_inequality(double tolerance = 1e-9) const;

  /// Returns a metric-closed copy (shortest paths through the complete graph
  /// whose edge weights are the matrix entries). Idempotent on metrics.
  [[nodiscard]] LatencyMatrix metric_closure() const;

  /// Average RTT from `v` to every site (including itself, matching the
  /// paper's avg over all clients V). This is s_i in §7's heuristic.
  [[nodiscard]] double average_rtt_from(std::size_t v) const;

  /// The site minimizing the sum of distances to all sites (graph median);
  /// used by the singleton placement.
  [[nodiscard]] std::size_t median_site() const;

  /// Indices of the `k` sites closest to `v` (v itself first) — the ball
  /// B(v, k) of §4.1.1. Ties broken by site index for determinism.
  [[nodiscard]] std::vector<std::size_t> ball(std::size_t v, std::size_t k) const;

 private:
  void check_site(std::size_t v) const;

  std::vector<std::vector<double>> rtt_;
  std::vector<std::string> names_;
};

}  // namespace qp::net
