#include "net/knn_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace qp::net {

namespace {

constexpr std::size_t kLeafSize = 8;

/// Total order on neighbors: nearer first, ties by site index. A total
/// order makes the k-best set unique, so query results cannot depend on
/// tree layout or scan order.
bool better(const KnnIndex::Neighbor& a, const KnnIndex::Neighbor& b) noexcept {
  if (a.rtt_ms != b.rtt_ms) return a.rtt_ms < b.rtt_ms;
  return a.site < b.site;
}

}  // namespace

KnnIndex::KnnIndex(const LatencyEmbedding& embedding) : embedding_(&embedding) {
  const std::size_t n = embedding.size();
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  nodes_.resize(1);  // sentinel so child id 0 can mean "leaf".
  if (n > 0) build_node(0, n);
}

KnnIndex::KnnIndex(const LatencyMatrix& matrix) : matrix_(&matrix) {}

std::size_t KnnIndex::size() const noexcept {
  return embedding_ != nullptr ? embedding_->size() : matrix_->size();
}

std::size_t KnnIndex::build_node(std::size_t begin, std::size_t end) {
  const std::size_t id = nodes_.size();
  nodes_.emplace_back();
  const std::size_t dims = embedding_->dimensions();
  Node node;
  node.begin = begin;
  node.end = end;
  node.box_min.assign(dims, std::numeric_limits<double>::infinity());
  node.box_max.assign(dims, -std::numeric_limits<double>::infinity());
  node.min_height = std::numeric_limits<double>::infinity();
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t s = order_[i];
    const auto coord = embedding_->coordinate(s);
    for (std::size_t d = 0; d < dims; ++d) {
      node.box_min[d] = std::min(node.box_min[d], coord[d]);
      node.box_max[d] = std::max(node.box_max[d], coord[d]);
    }
    node.min_height = std::min(node.min_height, embedding_->height(s));
  }
  if (end - begin > kLeafSize) {
    std::size_t split_dim = 0;
    double widest = -1.0;
    for (std::size_t d = 0; d < dims; ++d) {
      const double width = node.box_max[d] - node.box_min[d];
      if (width > widest) {
        widest = width;
        split_dim = d;
      }
    }
    const std::size_t mid = begin + (end - begin) / 2;
    std::nth_element(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                     order_.begin() + static_cast<std::ptrdiff_t>(mid),
                     order_.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](std::size_t a, std::size_t b) {
                       const double ca = embedding_->coordinate(a)[split_dim];
                       const double cb = embedding_->coordinate(b)[split_dim];
                       if (ca != cb) return ca < cb;
                       return a < b;
                     });
    node.left = build_node(begin, mid);
    node.right = build_node(mid, end);
  }
  nodes_[id] = std::move(node);  // assign after recursion: emplace may reallocate.
  return id;
}

double KnnIndex::box_distance(const Node& node, const double* query) const {
  double sq = 0.0;
  const std::size_t dims = embedding_->dimensions();
  for (std::size_t d = 0; d < dims; ++d) {
    double gap = 0.0;
    if (query[d] < node.box_min[d]) {
      gap = node.box_min[d] - query[d];
    } else if (query[d] > node.box_max[d]) {
      gap = query[d] - node.box_max[d];
    }
    sq += gap * gap;
  }
  return std::sqrt(sq);
}

void KnnIndex::query_node(std::size_t node_id, std::size_t from, const double* query,
                          std::size_t k, std::vector<Neighbor>& heap) const {
  const Node& node = nodes_[node_id];
  if (node.left == 0) {
    for (std::size_t i = node.begin; i < node.end; ++i) {
      const std::size_t s = order_[i];
      if (s == from) continue;  // self was seeded at distance 0 by the caller.
      const Neighbor cand{s, embedding_->rtt(from, s)};
      if (heap.size() < k) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end(), better);
      } else if (better(cand, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), better);
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end(), better);
      }
    }
    return;
  }
  // Lower bound on rtt(from, s) for any s != from in a subtree; a bound
  // strictly above the current worst cannot improve the answer (an equal
  // bound still can — a tying site with a smaller index wins, so only
  // strict excess prunes).
  const auto bound = [&](const Node& child) {
    const double raw =
        box_distance(child, query) + embedding_->height(from) + child.min_height;
    return raw > embedding_->min_rtt_ms() ? raw : embedding_->min_rtt_ms();
  };
  const double left_bound = bound(nodes_[node.left]);
  const double right_bound = bound(nodes_[node.right]);
  const std::size_t first = left_bound <= right_bound ? node.left : node.right;
  const std::size_t second = first == node.left ? node.right : node.left;
  const double first_bound = std::min(left_bound, right_bound);
  const double second_bound = std::max(left_bound, right_bound);
  if (heap.size() < k || first_bound <= heap.front().rtt_ms) {
    query_node(first, from, query, k, heap);
  }
  if (heap.size() < k || second_bound <= heap.front().rtt_ms) {
    query_node(second, from, query, k, heap);
  }
}

void KnnIndex::within_node(std::size_t node_id, std::size_t from, const double* query,
                           double radius, std::vector<Neighbor>& out) const {
  const Node& node = nodes_[node_id];
  if (node.left == 0) {
    for (std::size_t i = node.begin; i < node.end; ++i) {
      const std::size_t s = order_[i];
      if (s == from) continue;
      const double r = embedding_->rtt(from, s);
      if (r <= radius) out.push_back(Neighbor{s, r});
    }
    return;
  }
  const double h_from = embedding_->height(from);
  for (std::size_t child : {node.left, node.right}) {
    const double raw = box_distance(nodes_[child], query) + h_from +
                       nodes_[child].min_height;
    const double child_bound =
        raw > embedding_->min_rtt_ms() ? raw : embedding_->min_rtt_ms();
    if (child_bound <= radius) within_node(child, from, query, radius, out);
  }
}

std::vector<KnnIndex::Neighbor> KnnIndex::nearest(std::size_t from, std::size_t k) const {
  std::vector<Neighbor> out;
  nearest(from, k, out);
  return out;
}

void KnnIndex::nearest(std::size_t from, std::size_t k, std::vector<Neighbor>& out) const {
  const std::size_t n = size();
  if (from >= n) throw std::out_of_range{"KnnIndex::nearest: site out of range"};
  out.clear();
  k = std::min(k, n);
  if (k == 0) return;
  if (matrix_ != nullptr) {
    const auto& row = matrix_->row(from);
    out.reserve(n);
    for (std::size_t s = 0; s < n; ++s) out.push_back(Neighbor{s, row[s]});
    std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(k),
                      out.end(), better);
    out.resize(k);
    return;
  }
  out.reserve(k);
  out.push_back(Neighbor{from, 0.0});  // self-seed; leaves skip `from`.
  query_node(1, from, embedding_->coordinate(from).data(), k, out);
  std::sort(out.begin(), out.end(), better);
}

void KnnIndex::within(std::size_t from, double radius, std::vector<Neighbor>& out) const {
  const std::size_t n = size();
  if (from >= n) throw std::out_of_range{"KnnIndex::within: site out of range"};
  out.clear();
  if (radius < 0.0) return;
  if (matrix_ != nullptr) {
    const auto& row = matrix_->row(from);
    for (std::size_t s = 0; s < n; ++s) {
      if (row[s] <= radius) out.push_back(Neighbor{s, row[s]});
    }
    std::sort(out.begin(), out.end(), better);
    return;
  }
  out.push_back(Neighbor{from, 0.0});
  within_node(1, from, embedding_->coordinate(from).data(), radius, out);
  std::sort(out.begin(), out.end(), better);
}

}  // namespace qp::net
