// LatencySpace: the abstract pairwise-RTT oracle the placement layers consume.
//
// Historically every algorithm took a `LatencyMatrix` — an explicit n x n
// table — which caps scenarios near n ~ 500 (memory is n^2 doubles and the
// generators metric-close in O(n^3)). The sparse regime instead represents
// latencies *implicitly* (a low-dimensional coordinate embedding, see
// net/embedding.hpp) and only ever evaluates the O(n * k) pairs the search
// actually touches. LatencySpace is the seam: `LatencyMatrix` implements it
// (dense table lookup), `LatencyEmbedding` implements it (coordinate
// arithmetic), and `core::DeltaEvaluator` / `core::local_search_placement`
// are written against the interface.
//
// `as_matrix()` exposes the dense table when one exists; callers use it to
// keep exact historical code paths (canonical `Objective::evaluate`, the
// level-2 parity audits, dense candidate enumeration) bitwise unchanged for
// every matrix-backed caller, and to *detect* the sparse regime (nullptr)
// where those O(n^2) paths must not run.
//
// Contract (matching LatencyMatrix): rtt(a, b) == rtt(b, a) >= 0,
// rtt(v, v) == 0, and repeated calls with the same arguments return the
// same double (the search relies on bitwise-reproducible evaluation).
#pragma once

#include <cstddef>

namespace qp::net {

class LatencyMatrix;

class LatencySpace {
 public:
  virtual ~LatencySpace() = default;

  /// Number of sites.
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// RTT between sites in milliseconds; rtt(v, v) == 0. Implementations
  /// bounds-check and throw std::out_of_range on invalid indices.
  [[nodiscard]] virtual double rtt(std::size_t a, std::size_t b) const = 0;

  /// out[i] = rtt(from, sites[i]) for i in [0, count) — the gather shape of
  /// the evaluator rebuild paths. The default loops over rtt(); dense
  /// implementations override with the SIMD gather kernel.
  virtual void fill_rtts(std::size_t from, const std::size_t* sites, std::size_t count,
                         double* out) const {
    for (std::size_t i = 0; i < count; ++i) out[i] = rtt(from, sites[i]);
  }

  /// The dense table behind this space, or nullptr for implicit (sparse)
  /// representations. See the file comment for how callers use this.
  [[nodiscard]] virtual const LatencyMatrix* as_matrix() const noexcept { return nullptr; }

 protected:
  LatencySpace() = default;
  LatencySpace(const LatencySpace&) = default;
  LatencySpace& operator=(const LatencySpace&) = default;
};

}  // namespace qp::net
