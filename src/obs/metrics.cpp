#include "obs/metrics.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <utility>

// The registry keeps one flat std::uint64_t slot array ("shard") per thread.
// Counters own one slot; gauges own two (set-flag, value bit pattern);
// histograms own 3 + kHistogramBuckets (count is derivable but kept for
// cheap export, then min/max bit patterns, then the buckets). Only the
// owning thread writes its shard; the registry reads other threads' shards
// during snapshot/reset. Both sides go through std::atomic_ref with relaxed
// ordering, which keeps TSan happy without putting a lock — or even a
// `lock`-prefixed RMW — on the record path: the owner does a plain
// load+store to a cache line nobody else writes.
//
// Determinism: every merged quantity is either a u64 sum (counters, bucket
// counts) or a min/max fold (histogram bounds, gauge level), so the merged
// snapshot does not depend on shard count or merge order. Shards of exited
// threads fold into `retired_` under the registry mutex.

namespace qp::obs {

namespace {

// Slot-layout offsets within a histogram's block.
constexpr std::size_t kHistCount = 0;
constexpr std::size_t kHistMinBits = 1;
constexpr std::size_t kHistMaxBits = 2;
constexpr std::size_t kHistBucket0 = 3;
constexpr std::size_t kHistSlots = kHistBucket0 + kHistogramBuckets;
constexpr std::size_t kGaugeSlots = 2;

std::uint64_t load_slot(const std::uint64_t& slot) noexcept {
  return std::atomic_ref<const std::uint64_t>(slot).load(
      std::memory_order_relaxed);
}

void store_slot(std::uint64_t& slot, std::uint64_t v) noexcept {
  std::atomic_ref<std::uint64_t>(slot).store(v, std::memory_order_relaxed);
}

struct MetricInfo {
  std::string name;
  MetricKind kind;
  std::size_t offset;  // First slot in the shard array.
  std::size_t slots;   // Slot count for this metric.
};

struct Shard {
  // Grows under the registry mutex; the owner thread only ever appends, so
  // readers iterating [0, size) under the mutex never see a moved buffer.
  std::vector<std::uint64_t> slots;
};

class Registry {
 public:
  static Registry& instance() {
    static Registry* reg = new Registry();  // Leaky: outlives thread exits.
    return *reg;
  }

  std::uint32_t register_metric(std::string_view name, MetricKind kind) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = by_name_.find(std::string(name));
    if (it != by_name_.end()) {
      const MetricInfo& info = metrics_[it->second];
      if (info.kind != kind) {
        throw std::logic_error("obs: metric '" + std::string(name) +
                               "' re-registered with a different kind");
      }
      return static_cast<std::uint32_t>(it->second);
    }
    const std::size_t slots = kind == MetricKind::Counter   ? 1
                              : kind == MetricKind::Gauge   ? kGaugeSlots
                                                            : kHistSlots;
    MetricInfo info{std::string(name), kind, total_slots_, slots};
    total_slots_ += slots;
    metrics_.push_back(std::move(info));
    const std::size_t id = metrics_.size() - 1;
    by_name_.emplace(metrics_[id].name, id);
    return static_cast<std::uint32_t>(id);
  }

  // Called from the hot path only when the calling thread's shard is too
  // short for the metric being recorded (first record of a late-registered
  // metric on this thread) — amortized away immediately.
  void grow_shard(Shard& shard) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shard.slots.size() < total_slots_) shard.slots.resize(total_slots_, 0);
  }

  void attach(Shard* shard) {
    std::lock_guard<std::mutex> lock(mutex_);
    shard->slots.resize(total_slots_, 0);
    live_.push_back(shard);
  }

  void detach(Shard* shard) {
    std::lock_guard<std::mutex> lock(mutex_);
    fold_into_retired(*shard);
    std::erase(live_, shard);
  }

  std::vector<MetricSnapshot> snapshot_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::uint64_t> merged = retired_;
    merged.resize(total_slots_, 0);
    for (const Shard* shard : live_) merge_slots(merged, shard->slots);
    std::vector<MetricSnapshot> out;
    out.reserve(metrics_.size());
    for (const MetricInfo& info : metrics_) {
      MetricSnapshot snap;
      snap.name = info.name;
      snap.kind = info.kind;
      const std::uint64_t* base = merged.data() + info.offset;
      switch (info.kind) {
        case MetricKind::Counter:
          snap.value = base[0];
          break;
        case MetricKind::Gauge:
          snap.gauge_set = base[0] != 0;
          snap.gauge_value = snap.gauge_set ? std::bit_cast<double>(base[1]) : 0.0;
          break;
        case MetricKind::Histogram: {
          snap.histogram.count = base[kHistCount];
          if (snap.histogram.count > 0) {
            snap.histogram.min = std::bit_cast<double>(base[kHistMinBits]);
            snap.histogram.max = std::bit_cast<double>(base[kHistMaxBits]);
          }
          snap.histogram.buckets.assign(base + kHistBucket0,
                                        base + kHistBucket0 + kHistogramBuckets);
          break;
        }
      }
      out.push_back(std::move(snap));
    }
    return out;
  }

  void reset_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::fill(retired_.begin(), retired_.end(), 0);
    for (Shard* shard : live_) {
      for (std::uint64_t& slot : shard->slots) store_slot(slot, 0);
    }
  }

  const MetricInfo& info(std::uint32_t id) const { return metrics_[id]; }

 private:
  Registry() = default;

  void fold_into_retired(const Shard& shard) {
    retired_.resize(total_slots_, 0);
    merge_slots(retired_, shard.slots);
  }

  // merged[i] (+)= src[i], where (+) depends on which metric slot i belongs
  // to: sum for counters/hist counts/buckets, min/max fold for hist bounds,
  // flag-or + max for gauges. Relies on `metrics_` to interpret offsets.
  void merge_slots(std::vector<std::uint64_t>& merged,
                   const std::vector<std::uint64_t>& src) const {
    for (const MetricInfo& info : metrics_) {
      if (info.offset + info.slots > src.size()) break;  // Shard predates metric.
      std::uint64_t* dst = merged.data() + info.offset;
      const std::uint64_t* s = src.data() + info.offset;
      switch (info.kind) {
        case MetricKind::Counter:
          dst[0] += load_slot(s[0]);
          break;
        case MetricKind::Gauge: {
          const std::uint64_t set = load_slot(s[0]);
          if (set != 0) {
            const double v = std::bit_cast<double>(load_slot(s[1]));
            if (dst[0] == 0 || v > std::bit_cast<double>(dst[1])) {
              dst[1] = std::bit_cast<std::uint64_t>(v);
            }
            dst[0] = 1;
          }
          break;
        }
        case MetricKind::Histogram: {
          const std::uint64_t count = load_slot(s[kHistCount]);
          if (count != 0) {
            const double mn = std::bit_cast<double>(load_slot(s[kHistMinBits]));
            const double mx = std::bit_cast<double>(load_slot(s[kHistMaxBits]));
            if (dst[kHistCount] == 0 ||
                mn < std::bit_cast<double>(dst[kHistMinBits])) {
              dst[kHistMinBits] = std::bit_cast<std::uint64_t>(mn);
            }
            if (dst[kHistCount] == 0 ||
                mx > std::bit_cast<double>(dst[kHistMaxBits])) {
              dst[kHistMaxBits] = std::bit_cast<std::uint64_t>(mx);
            }
            dst[kHistCount] += count;
            for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
              dst[kHistBucket0 + b] += load_slot(s[kHistBucket0 + b]);
            }
          }
          break;
        }
      }
    }
  }

  mutable std::mutex mutex_;
  std::vector<MetricInfo> metrics_;
  std::map<std::string, std::size_t, std::less<>> by_name_;
  std::size_t total_slots_ = 0;
  std::vector<Shard*> live_;
  std::vector<std::uint64_t> retired_;
};

// Thread-local shard, registered with the registry on first use and folded
// into the retired accumulator when the thread exits. The holder is a
// heap-allocated Shard owned by a thread_local unique_ptr so detach() runs
// exactly once per thread even under odd teardown orders.
struct ShardHolder {
  ShardHolder() { Registry::instance().attach(&shard); }
  ~ShardHolder() { Registry::instance().detach(&shard); }
  Shard shard;
};

Shard& local_shard() {
  thread_local ShardHolder holder;
  return holder.shard;
}

// Runtime enable flag. Default comes from the QP_OBS env var; "0" disables.
std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("QP_OBS");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return flag;
}

// QP_OBS_EXPORT=<path>: dump the JSON export at process exit. Installed
// once, lazily, by ensure_export_hook() from the registration path so that
// binaries that never register a metric never touch atexit.
void ensure_export_hook() {
  static const bool installed = [] {
    if (const char* path = std::getenv("QP_OBS_EXPORT");
        path != nullptr && path[0] != '\0') {
      static std::string export_path;  // Outlives atexit callback.
      export_path = path;
      std::atexit([] {
        std::ofstream out(export_path);
        if (out) export_json(out);
      });
    }
    return true;
  }();
  (void)installed;
}

void json_escape(std::ostream& out, std::string_view s);

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

void json_escape(std::ostream& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
          << "0123456789abcdef"[c & 0xF];
    } else {
      out << c;
    }
  }
}

}  // namespace

std::size_t bucket_index(double value) noexcept {
  if (!(value > 0.0)) return 0;  // Non-positive and NaN.
  // ilogb(+inf) is INT_MAX; route it to the overflow bucket before the +22
  // below can overflow the int.
  if (std::isinf(value)) return kHistogramBuckets - 1;
  // ilogb(v) is the binary exponent; +22 places 2^-22 ≈ 0.24 micro-units in
  // bucket 1. Clamped so denormals land in bucket 1 and huge values in the
  // overflow bucket 63.
  const int e = std::ilogb(value) + 22;
  if (e < 1) return 1;
  if (e > 63) return 63;
  return static_cast<std::size_t>(e);
}

double bucket_upper_bound(std::size_t bucket) noexcept {
  if (bucket == 0) return 0.0;
  if (bucket >= kHistogramBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, static_cast<int>(bucket) - 21);
}

namespace detail {

void counter_add(std::uint32_t id, std::uint64_t n) noexcept {
  if (!enabled()) return;
  Registry& reg = Registry::instance();
  Shard& shard = local_shard();
  const MetricInfo& info = reg.info(id);
  if (info.offset + info.slots > shard.slots.size()) reg.grow_shard(shard);
  std::uint64_t& slot = shard.slots[info.offset];
  store_slot(slot, load_slot(slot) + n);
}

void gauge_set(std::uint32_t id, double value) noexcept {
  if (!enabled()) return;
  Registry& reg = Registry::instance();
  Shard& shard = local_shard();
  const MetricInfo& info = reg.info(id);
  if (info.offset + info.slots > shard.slots.size()) reg.grow_shard(shard);
  store_slot(shard.slots[info.offset], 1);
  store_slot(shard.slots[info.offset + 1], std::bit_cast<std::uint64_t>(value));
}

void histogram_record(std::uint32_t id, double value) noexcept {
  if (!enabled()) return;
  Registry& reg = Registry::instance();
  Shard& shard = local_shard();
  const MetricInfo& info = reg.info(id);
  if (info.offset + info.slots > shard.slots.size()) reg.grow_shard(shard);
  std::uint64_t* base = shard.slots.data() + info.offset;
  const std::uint64_t count = load_slot(base[kHistCount]);
  if (count == 0 || value < std::bit_cast<double>(load_slot(base[kHistMinBits]))) {
    store_slot(base[kHistMinBits], std::bit_cast<std::uint64_t>(value));
  }
  if (count == 0 || value > std::bit_cast<double>(load_slot(base[kHistMaxBits]))) {
    store_slot(base[kHistMaxBits], std::bit_cast<std::uint64_t>(value));
  }
  store_slot(base[kHistCount], count + 1);
  std::uint64_t& bucket = base[kHistBucket0 + bucket_index(value)];
  store_slot(bucket, load_slot(bucket) + 1);
}

}  // namespace detail

Counter counter(std::string_view name) {
  ensure_export_hook();
  return Counter(Registry::instance().register_metric(name, MetricKind::Counter));
}

Gauge gauge(std::string_view name) {
  ensure_export_hook();
  return Gauge(Registry::instance().register_metric(name, MetricKind::Gauge));
}

Histogram histogram(std::string_view name) {
  ensure_export_hook();
  return Histogram(
      Registry::instance().register_metric(name, MetricKind::Histogram));
}

bool enabled() noexcept {
  if constexpr (!kCompiled) return false;
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  if constexpr (kCompiled) {
    enabled_flag().store(on, std::memory_order_relaxed);
  } else {
    (void)on;
  }
}

std::vector<MetricSnapshot> snapshot() {
  if constexpr (!kCompiled) return {};
  return Registry::instance().snapshot_all();
}

void reset() {
  if constexpr (kCompiled) Registry::instance().reset_all();
}

double HistogramSnapshot::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  if (p <= 0.0) return min;
  const double clamped = p >= 100.0 ? 100.0 : p;
  // Rank of the percentile (1-based), ceil(count * p / 100).
  const std::uint64_t rank = [&] {
    const double r = static_cast<double>(count) * clamped / 100.0;
    const auto ceil_r = static_cast<std::uint64_t>(std::ceil(r));
    return ceil_r < 1 ? std::uint64_t{1} : ceil_r;
  }();
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      if (b + 1 >= kHistogramBuckets) return max;  // Overflow bucket.
      const double ub = bucket_upper_bound(b);
      return ub < max ? ub : max;
    }
  }
  return max;
}

void export_json(std::ostream& out) {
  out << "{\"qp_obs_version\":1,\"enabled\":" << (enabled() ? "true" : "false")
      << ",\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : snapshot()) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"";
    json_escape(out, m.name);
    out << "\",\"kind\":\"" << kind_name(m.kind) << "\"";
    switch (m.kind) {
      case MetricKind::Counter:
        out << ",\"value\":" << m.value;
        break;
      case MetricKind::Gauge:
        out << ",\"set\":" << (m.gauge_set ? "true" : "false")
            << ",\"value\":" << m.gauge_value;
        break;
      case MetricKind::Histogram: {
        out << ",\"count\":" << m.histogram.count
            << ",\"min\":" << m.histogram.min << ",\"max\":" << m.histogram.max
            << ",\"p50\":" << m.histogram.percentile(50.0)
            << ",\"p95\":" << m.histogram.percentile(95.0)
            << ",\"p99\":" << m.histogram.percentile(99.0) << ",\"buckets\":[";
        for (std::size_t b = 0; b < m.histogram.buckets.size(); ++b) {
          if (b != 0) out << ',';
          out << m.histogram.buckets[b];
        }
        out << ']';
        break;
      }
    }
    out << '}';
  }
  out << "]}\n";
}

void export_csv(std::ostream& out) {
  out << "name,kind,value,count,min,max,p50,p95,p99\n";
  for (const MetricSnapshot& m : snapshot()) {
    out << m.name << ',' << kind_name(m.kind) << ',';
    switch (m.kind) {
      case MetricKind::Counter:
        out << m.value << ",,,,,,\n";
        break;
      case MetricKind::Gauge:
        out << m.gauge_value << ",,,,,,\n";
        break;
      case MetricKind::Histogram:
        out << ',' << m.histogram.count << ',' << m.histogram.min << ','
            << m.histogram.max << ',' << m.histogram.percentile(50.0) << ','
            << m.histogram.percentile(95.0) << ','
            << m.histogram.percentile(99.0) << '\n';
        break;
    }
  }
}

}  // namespace qp::obs
