#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

// Sink design: one leaky singleton owning the FILE* and a mutex; per-thread
// event buffers (name pointer + timestamps + tid) that batch-append under
// the mutex only when full, at thread exit, or on explicit flush. The
// Chrome trace-event JSON-array format explicitly tolerates a missing
// trailing "]", which sidesteps static-destruction-order hazards: an
// atexit hook finalizes best-effort, and an abandoned tail still loads.

namespace qp::obs {

namespace {

constexpr std::size_t kEventsPerBuffer = 4096;

struct TraceEvent {
  const char* name;
  std::uint64_t t0_us;
  std::uint64_t t1_us;
  std::uint32_t tid;
};

class TraceSink {
 public:
  static TraceSink& instance() {
    static TraceSink* sink = new TraceSink();  // Leaky: outlives thread exits.
    return *sink;
  }

  // Process-wide "is a sink open" flag, readable without the lock.
  std::atomic<bool> active{false};

  bool open(std::string_view path) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ != nullptr) return false;
    file_ = std::fopen(std::string(path).c_str(), "w");
    if (file_ == nullptr) return false;
    std::fputs("[\n", file_);
    first_event_ = true;
    active.store(true, std::memory_order_release);
    return true;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ == nullptr) return;
    active.store(false, std::memory_order_release);
    std::fputs("\n]\n", file_);
    std::fclose(file_);
    file_ = nullptr;
  }

  void write_batch(const std::vector<TraceEvent>& events) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ == nullptr) return;
    for (const TraceEvent& ev : events) {
      if (!first_event_) std::fputs(",\n", file_);
      first_event_ = false;
      const std::uint64_t dur = ev.t1_us - ev.t0_us;
      std::fprintf(file_,
                   "{\"name\":\"%s\",\"cat\":\"qp\",\"ph\":\"X\","
                   "\"ts\":%llu,\"dur\":%llu,\"pid\":1,\"tid\":%u}",
                   ev.name, static_cast<unsigned long long>(ev.t0_us),
                   static_cast<unsigned long long>(dur), ev.tid);
    }
    std::fflush(file_);
  }

  std::uint32_t next_tid() {
    return tid_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::uint64_t origin_us() const { return origin_us_; }

 private:
  TraceSink()
      : origin_us_(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count())) {}

  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  bool first_event_ = true;
  std::atomic<std::uint32_t> tid_counter_{0};
  std::uint64_t origin_us_;
};

// Per-thread buffer; flushes to the sink when full and at thread exit.
struct ThreadBuffer {
  ThreadBuffer() : tid(TraceSink::instance().next_tid()) {
    events.reserve(kEventsPerBuffer);
  }
  ~ThreadBuffer() { flush(); }

  void push(const char* name, std::uint64_t t0, std::uint64_t t1) {
    events.push_back(TraceEvent{name, t0, t1, tid});
    if (events.size() >= kEventsPerBuffer) flush();
  }

  void flush() {
    if (events.empty()) return;
    TraceSink::instance().write_batch(events);
    events.clear();
  }

  std::vector<TraceEvent> events;
  std::uint32_t tid;
};

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

// QP_TRACE=<path> auto-start, checked once per process before the first
// span can observe trace_enabled() == true.
bool env_autostart() {
  static const bool started = [] {
    if (const char* path = std::getenv("QP_TRACE");
        path != nullptr && path[0] != '\0') {
      if (TraceSink::instance().open(path)) {
        std::atexit([] { stop_trace(); });
        return true;
      }
    }
    return false;
  }();
  return started;
}

}  // namespace

bool trace_enabled() noexcept {
  static const bool env_checked = env_autostart();
  (void)env_checked;
  return TraceSink::instance().active.load(std::memory_order_acquire);
}

bool start_trace(std::string_view path) {
  (void)trace_enabled();  // Resolve QP_TRACE first so env wins ties.
  return TraceSink::instance().open(path);
}

void stop_trace() {
  trace_flush_current_thread();
  TraceSink::instance().close();
}

void trace_flush_current_thread() {
  if (!TraceSink::instance().active.load(std::memory_order_acquire)) return;
  local_buffer().flush();
}

namespace detail {

std::uint64_t trace_now_us() noexcept {
  const auto now = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  return static_cast<std::uint64_t>(now) - TraceSink::instance().origin_us();
}

void span_emit(const char* name, std::uint64_t t0_us,
               std::uint64_t t1_us) noexcept {
  if (!TraceSink::instance().active.load(std::memory_order_acquire)) return;
  local_buffer().push(name, t0_us, t1_us);
}

}  // namespace detail

}  // namespace qp::obs
