// Process-wide observability metrics: named counters, gauges, and
// log-bucketed latency histograms, recorded through thread-local shards.
//
// Design constraints (this layer observes, it never perturbs):
//   * Recording is a predicated thread-local increment: one relaxed
//     atomic-ref load+store on a slot only the owning thread writes. The
//     hot path never takes a lock; registration, shard growth, export, and
//     reset serialize on the registry mutex.
//   * All merged quantities are order-independent — counters and histogram
//     buckets sum 64-bit integers, gauges and histogram min/max merge by
//     max/min — so exported values are identical for any thread count and
//     any thread-retirement order. Shards of exited threads retire into an
//     integer accumulator; export walks metrics in registration order.
//   * Compiled to true no-ops when the build defines QP_OBS=0 (the CMake
//     QP_OBS cache option); gated at runtime by the QP_OBS environment
//     variable (unset or anything but "0" = on) or set_enabled().
//   * Nothing here feeds back into algorithm state: results are bitwise
//     identical with observability on, off, and at any thread count
//     (tests/obs_test.cpp enforces this across the instrumented layers).
//
// Usage: register handles once (namespace-scope statics in the .cpp being
// instrumented — registration order is static-init order, stable per
// binary), record through them in the hot path:
//
//     namespace {
//     const obs::Counter c_moves = obs::counter("core.local_search.moves");
//     const obs::Histogram h_wait = obs::histogram("common.thread_pool.wait_ms");
//     }
//     ...
//     c_moves.add();
//     h_wait.record(elapsed_ms);
//
// Export: export_json / export_csv (both registration-ordered), snapshot()
// for programmatic access, reset() to zero everything (tests, per-figure
// runs). When the QP_OBS_EXPORT environment variable names a file, the
// registry writes the JSON export there at process exit — bench/run_all.sh
// --metrics drops one such file per figure binary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace qp::obs {

// The compile-time gate: -DQP_OBS=0 turns every handle into an empty
// inline (no registry, no shards, no branches); any other value — or no
// definition at all — compiles the instrumentation in.
#if defined(QP_OBS) && (QP_OBS + 0) == 0
inline constexpr bool kCompiled = false;
#else
inline constexpr bool kCompiled = true;
#endif

/// Log-bucketed histogram resolution: bucket 0 holds non-positive values,
/// buckets 1..62 hold [2^(i-22), 2^(i-21)) — sub-microsecond through ~2^41
/// ms when the recorded unit is milliseconds — and bucket 63 overflows.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket of `value` (pure function of the double, so bucket counts are
/// reproducible everywhere).
[[nodiscard]] std::size_t bucket_index(double value) noexcept;
/// Exclusive upper bound of `bucket` (0.0 for bucket 0, +inf for the
/// overflow bucket).
[[nodiscard]] double bucket_upper_bound(std::size_t bucket) noexcept;

namespace detail {
void counter_add(std::uint32_t id, std::uint64_t n) noexcept;
void gauge_set(std::uint32_t id, double value) noexcept;
void histogram_record(std::uint32_t id, double value) noexcept;
}  // namespace detail

/// Monotonic event count; shard merge sums.
class Counter {
 public:
  constexpr Counter() = default;
  void add(std::uint64_t n = 1) const noexcept {
    if constexpr (kCompiled) detail::counter_add(id_, n);
  }

 private:
  friend Counter counter(std::string_view name);
  explicit constexpr Counter(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_ = 0;
};

/// Last-set level per shard; the merged export takes the maximum across
/// shards (order-independent — use gauges for high-water marks and
/// configuration levels, not for racing last-write-wins state).
class Gauge {
 public:
  constexpr Gauge() = default;
  void set(double value) const noexcept {
    if constexpr (kCompiled) detail::gauge_set(id_, value);
  }

 private:
  friend Gauge gauge(std::string_view name);
  explicit constexpr Gauge(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_ = 0;
};

/// Log-bucketed value distribution (count, min, max, 64 buckets); merge
/// sums buckets and folds min/max.
class Histogram {
 public:
  constexpr Histogram() = default;
  void record(double value) const noexcept {
    if constexpr (kCompiled) detail::histogram_record(id_, value);
  }

 private:
  friend Histogram histogram(std::string_view name);
  explicit constexpr Histogram(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_ = 0;
};

/// Registers (or looks up) a metric. Re-registration under the same name
/// returns the existing handle; the same name with a different kind throws
/// std::logic_error. Registration order is export order.
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Gauge gauge(std::string_view name);
[[nodiscard]] Histogram histogram(std::string_view name);

/// The runtime switch. Initialized from the QP_OBS environment variable on
/// first use ("0" = off, everything else = on); set_enabled overrides it
/// (tests and the bench overhead guard toggle it mid-process).
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

enum class MetricKind { Counter, Gauge, Histogram };

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double min = 0.0;  // 0 when count == 0.
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  // kHistogramBuckets entries.
  /// Upper-bound estimate of the p-th percentile (p in [0, 100]) from the
  /// bucket counts: the upper bound of the bucket containing that rank
  /// (`max` for the overflow bucket; 0 when empty).
  [[nodiscard]] double percentile(double p) const noexcept;
};

struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t value = 0;     // Counter.
  double gauge_value = 0.0;    // Gauge (max across shards; 0 if never set).
  bool gauge_set = false;      // Gauge: was it ever set?
  HistogramSnapshot histogram; // Histogram.
};

/// All metrics, registration-ordered, merged across live and retired
/// shards. Values recorded concurrently with the snapshot may or may not be
/// included; call at quiescent points for exact totals.
[[nodiscard]] std::vector<MetricSnapshot> snapshot();

/// Zeroes every live shard and the retired accumulator (registrations are
/// kept). Call at quiescent points only.
void reset();

/// JSON export: {"qp_obs_version":1,"enabled":...,"metrics":[...]} with one
/// object per metric in registration order (see bench/merge_shards.py for
/// the cross-shard union of these files).
void export_json(std::ostream& out);
/// CSV export: name,kind,value,count,min,max,p50,p95,p99 per metric.
void export_csv(std::ostream& out);

}  // namespace qp::obs
