// Chrome trace-event spans: RAII scopes that emit "X" (complete) events in
// the Chrome trace-event JSON-array format, loadable in chrome://tracing or
// Perfetto (ui.perfetto.dev → "Open trace file").
//
// Tracing is off unless started: either set the QP_TRACE environment
// variable to an output path before the process records its first span, or
// call start_trace(path) programmatically. When off, a span costs one
// relaxed atomic load and two dead stack stores — no clock reads.
//
// Hot-path contract: recording a span appends to a per-thread buffer; the
// sink lock is taken only when a thread's buffer fills (4096 events), when
// the thread exits, or on explicit flush. Worker threads that may park for
// long stretches (the thread pool) call trace_flush_current_thread() after
// finishing a job so their spans appear promptly.
//
// Timestamps are microseconds from a process-wide steady-clock origin.
// Event JSON does not affect any computed result; like obs/metrics, tracing
// observes and never perturbs (span lifetimes bracket existing code only).
//
//     void Engine::run() {
//       QP_TRACE_SPAN("sim.engine.run");
//       ...
//     }
#pragma once

#include <cstdint>
#include <string_view>

namespace qp::obs {

/// True once a sink is open (QP_TRACE env or start_trace) and not stopped.
[[nodiscard]] bool trace_enabled() noexcept;

/// Opens `path` (truncating) and starts recording. Returns false if the
/// file cannot be opened or a sink is already active.
bool start_trace(std::string_view path);

/// Flushes every thread's retired events plus the calling thread's live
/// buffer, writes the closing "]" and stops recording. (Buffers of other
/// still-live threads flush on their next span batch — benign for the
/// Chrome format, which tolerates a truncated tail; call
/// trace_flush_current_thread() from those threads first for completeness.)
void stop_trace();

/// Pushes the calling thread's buffered events to the sink. Cheap no-op
/// when tracing is off or the buffer is empty.
void trace_flush_current_thread();

namespace detail {
void span_emit(const char* name, std::uint64_t t0_us,
               std::uint64_t t1_us) noexcept;
[[nodiscard]] std::uint64_t trace_now_us() noexcept;
}  // namespace detail

/// RAII scoped span. `name` must outlive the span (string literals only —
/// the pointer is buffered, not copied).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept
      : name_(trace_enabled() ? name : nullptr),
        t0_us_(name_ != nullptr ? detail::trace_now_us() : 0) {}
  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::span_emit(name_, t0_us_, detail::trace_now_us());
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t t0_us_;
};

}  // namespace qp::obs

// Scoped span with a unique variable name; compiles to nothing observable
// when tracing is off.
#define QP_TRACE_SPAN_CAT2(a, b) a##b
#define QP_TRACE_SPAN_CAT(a, b) QP_TRACE_SPAN_CAT2(a, b)
#define QP_TRACE_SPAN(name) \
  ::qp::obs::TraceSpan QP_TRACE_SPAN_CAT(qp_trace_span_, __LINE__)(name)
