#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace qp::common {

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument{"Rng::below: bound must be positive"};
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t draw = next();
    if (draw >= threshold) return draw % bound;
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument{"Rng::between: lo > hi"};
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() noexcept {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument{"Rng::exponential: mean must be > 0"};
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument{"sample_without_replacement: k > n"};
  // Partial Fisher–Yates over an index vector.
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"weighted_index: negative weight"};
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument{"weighted_index: all weights zero"};
  double point = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point <= 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point underflow fallback.
}

}  // namespace qp::common
