// Leveled runtime invariant framework.
//
// The repo's correctness claims — delta engines bitwise-repairable to a
// fresh rebuild, demand-weighted objectives collapsing to the uniform
// arithmetic, bit-identical results for any QP_THREADS — used to be guarded
// by ad-hoc `assert`s whose arming depended on NDEBUG, i.e. on build type.
// These macros decouple "which invariants run" from "how the code is
// optimized" behind one knob:
//
//   QP_CHECK_LEVEL 0  — everything compiled out (Release default).
//   QP_CHECK_LEVEL 1  — cheap structural invariants: O(1)-ish conditions on
//                       already-computed state (Debug default).
//   QP_CHECK_LEVEL 2  — additionally arms the parity audits: expensive
//                       recomputation of a result by an independent path
//                       (e.g. DeltaEvaluator::apply_move re-evaluating the
//                       whole objective). CI sanitizer jobs set this
//                       explicitly (see CMakePresets.json `asan`).
//
// Set the level via CMake (-DQP_CHECK_LEVEL=2, plumbed as a compile
// definition) or accept the NDEBUG-derived default below. Call sites guard
// the *setup* for expensive audits with `#if QP_PARITY_AUDIT_ENABLED` so a
// level-0 build pays neither the recomputation nor an unused-variable
// warning.
//
// Failures print the expression, message, and file:line to stderr and
// abort() — sanitizer runs get a clean report, and no exception unwinds
// through noexcept paths.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>

#ifndef QP_CHECK_LEVEL
#ifdef NDEBUG
#define QP_CHECK_LEVEL 0
#else
#define QP_CHECK_LEVEL 1
#endif
#endif

/// True when level-2 parity audits are armed; gates their (often expensive)
/// reference recomputation at call sites.
#define QP_PARITY_AUDIT_ENABLED (QP_CHECK_LEVEL >= 2)

namespace qp::common::detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expression,
                                      const char* message, const char* file,
                                      int line) noexcept {
  std::fprintf(stderr, "%s failed: %s\n  %s\n  at %s:%d\n", kind, expression, message,
               file, line);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void check_eq_failed(const char* kind, const char* expression,
                                         double actual, double expected, double rel_eps,
                                         const char* message, const char* file,
                                         int line) noexcept {
  std::fprintf(stderr,
               "%s failed: %s\n  actual=%.17g expected=%.17g |diff|=%.3g allowed=%.3g\n"
               "  %s\n  at %s:%d\n",
               kind, expression, actual, expected, std::fabs(actual - expected),
               rel_eps * std::fmax(1.0, std::fabs(expected)), message, file, line);
  std::fflush(stderr);
  std::abort();
}

/// |actual - expected| <= rel_eps * max(1, |expected|): the relative-with-
/// absolute-floor comparison every parity suite in the repo uses. NaNs never
/// pass (any comparison with NaN is false).
[[nodiscard]] inline bool nearly_equal(double actual, double expected,
                                       double rel_eps) noexcept {
  return std::fabs(actual - expected) <= rel_eps * std::fmax(1.0, std::fabs(expected));
}

}  // namespace qp::common::detail

// When a level disables a macro it must still parse (and odr-reference) its
// arguments so disabled builds cannot bit-rot, while evaluating nothing at
// runtime — hence the `if (false)` form instead of a bare `((void)0)`.

#if QP_CHECK_LEVEL >= 1
#define QP_CHECK(condition, message)                                                   \
  do {                                                                                 \
    if (!(condition)) {                                                                \
      ::qp::common::detail::check_failed("QP_CHECK", #condition, (message), __FILE__,  \
                                         __LINE__);                                    \
    }                                                                                  \
  } while (false)
#define QP_CHECK_EQ_EPS(actual, expected, rel_eps, message)                            \
  do {                                                                                 \
    const double qp_check_actual_ = (actual);                                          \
    const double qp_check_expected_ = (expected);                                      \
    if (!::qp::common::detail::nearly_equal(qp_check_actual_, qp_check_expected_,      \
                                            (rel_eps))) {                              \
      ::qp::common::detail::check_eq_failed("QP_CHECK_EQ_EPS", #actual " ~= " #expected, \
                                            qp_check_actual_, qp_check_expected_,      \
                                            (rel_eps), (message), __FILE__, __LINE__); \
    }                                                                                  \
  } while (false)
#else
#define QP_CHECK(condition, message)                                                   \
  do {                                                                                 \
    if (false) {                                                                       \
      (void)(condition);                                                               \
      (void)(message);                                                                 \
    }                                                                                  \
  } while (false)
#define QP_CHECK_EQ_EPS(actual, expected, rel_eps, message)                            \
  do {                                                                                 \
    if (false) {                                                                       \
      (void)(actual);                                                                  \
      (void)(expected);                                                                \
      (void)(rel_eps);                                                                 \
      (void)(message);                                                                 \
    }                                                                                  \
  } while (false)
#endif

#if QP_PARITY_AUDIT_ENABLED
#define QP_PARITY_ASSERT(actual, expected, rel_eps, message)                           \
  do {                                                                                 \
    const double qp_parity_actual_ = (actual);                                         \
    const double qp_parity_expected_ = (expected);                                     \
    if (!::qp::common::detail::nearly_equal(qp_parity_actual_, qp_parity_expected_,    \
                                            (rel_eps))) {                              \
      ::qp::common::detail::check_eq_failed("QP_PARITY_ASSERT",                        \
                                            #actual " ~= " #expected,                  \
                                            qp_parity_actual_, qp_parity_expected_,    \
                                            (rel_eps), (message), __FILE__, __LINE__); \
    }                                                                                  \
  } while (false)
#else
#define QP_PARITY_ASSERT(actual, expected, rel_eps, message)                           \
  do {                                                                                 \
    if (false) {                                                                       \
      (void)(actual);                                                                  \
      (void)(expected);                                                                \
      (void)(rel_eps);                                                                 \
      (void)(message);                                                                 \
    }                                                                                  \
  } while (false)
#endif
