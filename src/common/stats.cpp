#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qp::common {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  if (p < 0.0 || p > 100.0) throw std::invalid_argument{"percentile: p out of range"};
  if (xs.empty()) throw std::invalid_argument{"percentile: empty input"};
  std::sort(xs.begin(), xs.end());
  return percentile_sorted(xs, p);
}

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) throw std::invalid_argument{"percentile: empty input"};
  if (p < 0.0 || p > 100.0) throw std::invalid_argument{"percentile: p out of range"};
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument{"correlation: size mismatch"};
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace qp::common
