#include "common/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qp::common {

namespace {

/// The pool a thread is currently working for, if any — lets parallel_for
/// detect reentrancy from its own workers (and from nested calls on the
/// caller thread, which participates in the work) and degrade to inline
/// serial execution instead of deadlocking.
thread_local const ThreadPool* current_pool = nullptr;

// Pool telemetry: job/index throughput, how long callers wait on done_cv
// after finishing their own share, and how long workers stay busy per job
// (the busy-fraction numerator; divide busy_ms totals by wall time). Clock
// reads are skipped entirely when obs is disabled.
const obs::Counter c_jobs = obs::counter("common.thread_pool.jobs");
const obs::Counter c_indices = obs::counter("common.thread_pool.indices");
const obs::Counter c_inline_jobs = obs::counter("common.thread_pool.inline_jobs");
const obs::Histogram h_caller_wait =
    obs::histogram("common.thread_pool.caller_wait_ms");
const obs::Histogram h_worker_busy =
    obs::histogram("common.thread_pool.worker_busy_ms");

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  /// Serializes whole parallel_for invocations from distinct non-worker
  /// threads: the pool runs one job at a time, later callers block until the
  /// current job drains. (Workers and nested calls never take this — they
  /// run inline via the current_pool check.)
  std::mutex submit_mutex;

  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;

  // State of the in-flight parallel_for (guarded by mutex except `next`).
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  std::size_t generation = 0;
  std::size_t busy_workers = 0;
  std::exception_ptr first_error;
  bool stop = false;

  void run_indices() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) break;
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{mutex};
        if (!first_error) first_error = std::current_exception();
      }
    }
  }

  void worker_loop(const ThreadPool* owner) {
    current_pool = owner;
    std::size_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock{mutex};
        work_cv.wait(lock, [&] { return stop || generation != seen_generation; });
        if (stop) return;
        seen_generation = generation;
      }
      if (obs::enabled()) {
        const auto t0 = std::chrono::steady_clock::now();
        run_indices();
        h_worker_busy.record(ms_since(t0));
      } else {
        run_indices();
      }
      // Workers can park for long stretches; push any buffered trace spans
      // now so traces stay current (no-op when tracing is off).
      obs::trace_flush_current_thread();
      {
        std::lock_guard<std::mutex> lock{mutex};
        if (--busy_workers == 0) done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t thread_count) : impl_(std::make_unique<Impl>()) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  impl_->workers.reserve(thread_count - 1);
  for (std::size_t i = 0; i + 1 < thread_count; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(this); });
  }
}

ThreadPool::~ThreadPool() {
  // Serialize teardown behind submit_mutex so a parallel_for still in flight
  // on another thread drains completely before stop is raised. Without this,
  // a worker parked at work_cv could observe stop before the in-flight job's
  // generation bump and exit without decrementing busy_workers, hanging that
  // caller forever (exercised by race_stress_test TeardownRightAfterWork /
  // TeardownWhileAnotherThreadSubmits under TSan).
  const std::lock_guard<std::mutex> submit_lock{impl_->submit_mutex};
  {
    std::lock_guard<std::mutex> lock{impl_->mutex};
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

std::size_t ThreadPool::thread_count() const noexcept {
  return impl_->workers.size() + 1;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  if (impl_->workers.empty() || current_pool == this) {
    c_inline_jobs.add();
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  QP_TRACE_SPAN("common.thread_pool.parallel_for");
  c_jobs.add();
  c_indices.add(end - begin);
  const std::lock_guard<std::mutex> submit_lock{impl_->submit_mutex};
  {
    std::lock_guard<std::mutex> lock{impl_->mutex};
    impl_->body = &body;
    impl_->next.store(begin, std::memory_order_relaxed);
    impl_->end = end;
    impl_->busy_workers = impl_->workers.size();
    impl_->first_error = nullptr;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  // The caller participates; mark it as working for this pool so any nested
  // parallel_for from inside the body runs inline.
  const ThreadPool* previous = current_pool;
  current_pool = this;
  impl_->run_indices();
  current_pool = previous;

  std::unique_lock<std::mutex> lock{impl_->mutex};
  if (obs::enabled() && impl_->busy_workers != 0) {
    const auto t0 = std::chrono::steady_clock::now();
    impl_->done_cv.wait(lock, [&] { return impl_->busy_workers == 0; });
    h_caller_wait.record(ms_since(t0));
  }
  impl_->done_cv.wait(lock, [&] { return impl_->busy_workers == 0; });
  impl_->body = nullptr;
  if (impl_->first_error) {
    std::exception_ptr error = impl_->first_error;
    impl_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool{[] {
    std::size_t count = 0;  // 0 = hardware_concurrency.
    // Read once at static-init of the singleton, before any pool thread
    // exists — the mt-unsafety cannot bite. NOLINT(concurrency-mt-unsafe)
    if (const char* env = std::getenv("QP_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) count = static_cast<std::size_t>(parsed);
    }
    return count;
  }()};
  return pool;
}

}  // namespace qp::common
