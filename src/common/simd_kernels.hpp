// Vectorizable per-client reduction kernels.
//
// The evaluation hot path reduces contiguous per-element value rows millions
// of times (max over a row, dot with the order-statistic weights). Written
// naively, GCC refuses to vectorize the FP-add reduction (reassociation
// changes the rounding) and the fused row/column max updates; the `omp simd`
// pragmas below grant exactly that reassociation permission per loop —
// without -ffast-math and without affecting any other code. The build adds
// -fopenmp-simd (pragma-only OpenMP: no runtime, no threads), so the pragmas
// are honored by GCC/Clang and harmlessly ignored elsewhere.
//
// Because vector reduction reorders the sums, results may differ from the
// scalar loop by O(eps * n) — callers compare evaluation paths with relative
// tolerances (1e-9), never bit-identity across *different* kernels. Each
// kernel is itself deterministic: the same input span always produces the
// same value.
#pragma once

#include <cstddef>
#include <limits>
#include <span>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace qp::common {

/// out[i] = base[idx[i]] — the indexed-load ("gather") shape of the
/// fill_element_* kernels (values indexed by a placement's site_of). The
/// scalar loop is the baseline-x86-64 form (no gather instruction before
/// AVX2, so the autovectorizer leaves it serial); under -mavx2
/// (ENABLE_AVX2 in CMake) the loop body becomes vpgatherqpd over four
/// 64-bit indices per step; under -mavx512f (ENABLE_AVX512) it widens to
/// eight lanes with a write-masked tail, so no scalar remainder loop runs
/// at all. All variants produce identical doubles — the kernel only moves
/// data.
inline void gather_indexed(const double* base, const std::size_t* idx, std::size_t n,
                           double* out) noexcept {
  std::size_t i = 0;
#if defined(__AVX512F__)
  static_assert(sizeof(std::size_t) == sizeof(long long));
  for (; i + 8 <= n; i += 8) {
    const __m512i indices =
        _mm512_loadu_si512(reinterpret_cast<const void*>(idx + i));
    // Full-mask gather with an explicit zero source: the unmasked intrinsic
    // self-initializes its pass-through operand inside GCC's <immintrin.h>,
    // which -Wmaybe-uninitialized rejects under -Werror (GCC 12).
    _mm512_storeu_pd(out + i, _mm512_mask_i64gather_pd(_mm512_setzero_pd(), 0xFF,
                                                       indices, base, 8));
  }
  if (i < n) {
    // Masked tail: inactive lanes neither load indices nor touch base/out,
    // so out-of-bounds lanes cannot fault.
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i indices = _mm512_maskz_loadu_epi64(tail, idx + i);
    const __m512d gathered =
        _mm512_mask_i64gather_pd(_mm512_setzero_pd(), tail, indices, base, 8);
    _mm512_mask_storeu_pd(out + i, tail, gathered);
    i = n;
  }
#elif defined(__AVX2__)
  static_assert(sizeof(std::size_t) == sizeof(long long));
  for (; i + 4 <= n; i += 4) {
    const __m256i indices =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    _mm256_storeu_pd(out + i, _mm256_i64gather_pd(base, indices, 8));
  }
#endif
  for (; i < n; ++i) out[i] = base[idx[i]];
}

/// max over a contiguous span; -infinity for an empty span.
[[nodiscard]] inline double max_reduce(std::span<const double> values) noexcept {
  double result = -std::numeric_limits<double>::infinity();
  const double* x = values.data();
  const std::size_t n = values.size();
#pragma omp simd reduction(max : result)
  for (std::size_t i = 0; i < n; ++i) {
    result = x[i] > result ? x[i] : result;
  }
  return result;
}

/// sum_i values[i] * weights[i]; the caller guarantees equal sizes.
[[nodiscard]] inline double weighted_dot(std::span<const double> values,
                                         std::span<const double> weights) noexcept {
  double sum = 0.0;
  const double* x = values.data();
  const double* w = weights.data();
  const std::size_t n = values.size();
#pragma omp simd reduction(+ : sum)
  for (std::size_t i = 0; i < n; ++i) {
    sum += x[i] * w[i];
  }
  return sum;
}

/// out[i] = max(out[i], values[i]) elementwise (the column-maxima update of
/// the Grid kernels, one contiguous row at a time).
inline void max_accumulate(std::span<const double> values, double* out) noexcept {
  const double* x = values.data();
  const std::size_t n = values.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = x[i] > out[i] ? x[i] : out[i];
  }
}

/// sum_i max(bound, values[i]) — the per-row quorum-maxima sum of the Grid
/// expected-max kernel (bound = the row maximum, values = column maxima).
[[nodiscard]] inline double max_with_bound_sum(double bound,
                                               std::span<const double> values) noexcept {
  double sum = 0.0;
  const double* x = values.data();
  const std::size_t n = values.size();
#pragma omp simd reduction(+ : sum)
  for (std::size_t i = 0; i < n; ++i) {
    sum += x[i] > bound ? x[i] : bound;
  }
  return sum;
}

}  // namespace qp::common
