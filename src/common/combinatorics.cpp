#include "common/combinatorics.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace qp::common {

double log_binomial(std::size_t n, std::size_t k) noexcept {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  const auto dn = static_cast<double>(n);
  const auto dk = static_cast<double>(k);
  return std::lgamma(dn + 1.0) - std::lgamma(dk + 1.0) - std::lgamma(dn - dk + 1.0);
}

double binomial(std::size_t n, std::size_t k) noexcept {
  if (k > n) return 0.0;
  const double value = std::exp(log_binomial(n, k));
  // lgamma is accurate to ~1e-15 relative error, so for counts that are
  // exactly representable in a double the nearest integer is the true value.
  if (value < 0x1.0p53) return std::round(value);
  return value;
}

double binomial_ratio(std::size_t a, std::size_t b, std::size_t k) noexcept {
  if (k > a) return 0.0;
  if (k > b) return std::numeric_limits<double>::infinity();
  return std::exp(log_binomial(a, k) - log_binomial(b, k));
}

const std::vector<double>& binomial_ratio_row(std::size_t n, std::size_t k) {
  // std::map nodes are stable, so returned references survive later inserts.
  static std::map<std::pair<std::size_t, std::size_t>, std::vector<double>> cache;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock{mutex};
  const auto key = std::make_pair(n, k);
  auto it = cache.find(key);
  if (it == cache.end()) {
    std::vector<double> row(n + 1);
    for (std::size_t i = 0; i <= n; ++i) row[i] = binomial_ratio(i, n, k);
    it = cache.emplace(key, std::move(row)).first;
  }
  return it->second;
}

std::uint64_t binomial_exact(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    const std::uint64_t numer = n - k + i;
    // result * numer / i is always integral at this point; check overflow first.
    if (result > std::numeric_limits<std::uint64_t>::max() / numer) {
      throw std::overflow_error{"binomial_exact: overflow"};
    }
    result = result * numer / i;
  }
  return result;
}

std::vector<std::vector<std::size_t>> all_subsets(std::size_t n, std::size_t k,
                                                  std::size_t limit) {
  if (k > n) return {};
  const double count = binomial(n, k);
  if (count > static_cast<double>(limit)) {
    throw std::invalid_argument{"all_subsets: C(n,k) exceeds limit"};
  }
  std::vector<std::vector<std::size_t>> result;
  result.reserve(static_cast<std::size_t>(count));
  std::vector<std::size_t> current(k);
  for (std::size_t i = 0; i < k; ++i) current[i] = i;
  for (;;) {
    result.push_back(current);
    // Advance to the next k-subset in lexicographic order.
    std::size_t i = k;
    while (i > 0 && current[i - 1] == n - k + i - 1) --i;
    if (i == 0) break;
    ++current[i - 1];
    for (std::size_t j = i; j < k; ++j) current[j] = current[j - 1] + 1;
  }
  return result;
}

}  // namespace qp::common
