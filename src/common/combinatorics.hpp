// Combinatorial helpers: binomial coefficients in log space (so that order
// statistics over C(161, 80)-sized spaces do not overflow) and subset
// enumeration for the brute-force oracles used in tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qp::common {

/// ln C(n, k); returns -inf for k > n. Exact via lgamma.
[[nodiscard]] double log_binomial(std::size_t n, std::size_t k) noexcept;

/// C(n, k) as a double (may be inf for huge arguments; callers use ratios).
[[nodiscard]] double binomial(std::size_t n, std::size_t k) noexcept;

/// exp(log_binomial(a, k) - log_binomial(b, k)): numerically stable C(a,k)/C(b,k).
[[nodiscard]] double binomial_ratio(std::size_t a, std::size_t b, std::size_t k) noexcept;

/// Memoized row of binomial ratios: row[i] = binomial_ratio(i, n, k) for
/// i = 0..n (so row.size() == n + 1). Entry i is the order-statistic CDF
/// P(max of a uniform k-subset falls within the i smallest values), which the
/// placement-evaluation hot path consumes per (n, k) instead of recomputing
/// lgamma-based ratios per call. Thread-safe; the returned reference stays
/// valid for the lifetime of the program (entries are never evicted).
[[nodiscard]] const std::vector<double>& binomial_ratio_row(std::size_t n, std::size_t k);

/// All k-subsets of {0..n-1} in lexicographic order. Throws if C(n,k) > limit
/// (guards test oracles against accidental combinatorial explosions).
[[nodiscard]] std::vector<std::vector<std::size_t>> all_subsets(std::size_t n,
                                                                std::size_t k,
                                                                std::size_t limit = 2'000'000);

/// Exact C(n,k) in unsigned 64-bit; throws on overflow.
[[nodiscard]] std::uint64_t binomial_exact(std::size_t n, std::size_t k);

}  // namespace qp::common
