// A small std::thread-based pool for the deterministic fan-out loops in the
// placement search and the figure sweeps. No external dependencies.
//
// Design constraints, in priority order:
//   1. Determinism — parallel_for only schedules which thread computes each
//      index; callers write results into index-addressed slots and reduce
//      serially afterwards, so results are bit-identical to a serial run for
//      any thread count (including 1 and the single-core CI machines).
//   2. Nesting safety — a parallel_for issued from inside a worker of the
//      same pool runs serially inline instead of deadlocking, so library
//      layers can parallelize without coordinating (e.g. a figure sweep over
//      points whose per-point work itself calls the parallel placement
//      search).
//   3. Simplicity — one blocking primitive (parallel_for), the calling
//      thread participates in the work, and exceptions from the body are
//      rethrown on the caller.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace qp::common {

class ThreadPool {
 public:
  /// Total parallelism (worker threads + the participating caller).
  /// 0 means std::thread::hardware_concurrency() (at least 1). A pool of
  /// size 1 spawns no threads and runs everything inline.
  explicit ThreadPool(std::size_t thread_count = 0);

  /// Joins all workers. Serializes with in-flight parallel_for calls from
  /// other threads (they drain before shutdown begins), so destroying a pool
  /// immediately after — or concurrently with — use is safe; scheduling NEW
  /// work after destruction begins is still undefined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept;

  /// Runs body(i) exactly once for every i in [begin, end), blocking until
  /// all are done. Indices are claimed dynamically, so the body must only
  /// write to state owned by index i. The first exception thrown by any body
  /// invocation is rethrown here (remaining indices still run). The pool
  /// runs one job at a time: concurrent calls from distinct non-worker
  /// threads are serialized internally (later callers block), while calls
  /// from inside a running body execute serially inline.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide shared pool, sized from QP_THREADS when set (a positive
/// integer) and std::thread::hardware_concurrency() otherwise. Constructed
/// lazily on first use.
[[nodiscard]] ThreadPool& global_thread_pool();

}  // namespace qp::common
