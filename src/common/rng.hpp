// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in qplace flows through `Rng` (xoshiro256** seeded via
// SplitMix64) so that every topology, workload, and simulation run is
// reproducible bit-for-bit from a single 64-bit seed. We deliberately avoid
// std::mt19937 + std::uniform_*_distribution because their outputs are not
// guaranteed identical across standard-library implementations.
//
// This module is the only place allowed to touch std::random_device /
// std::rand / time-seeded engines: tools/qp_lint.py rule QPL002 flags any
// other use tree-wide (see tests/README.md "Static analysis & sanitizers").
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace qp::common {

/// SplitMix64 step; used to expand a single seed into xoshiro state.
/// Public because tests and seed-derivation helpers use it directly.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed0000c0ffeeULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent child generator; `label` separates streams.
  [[nodiscard]] Rng fork(std::uint64_t label) noexcept {
    std::uint64_t mix = next() ^ (label * 0x9e3779b97f4a7c15ULL);
    return Rng{mix};
  }

  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Unbiased uniform integer in [0, bound). Throws if bound == 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Throws if lo > hi.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean / standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal such that the *underlying* normal is N(mu, sigma).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (order randomized).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                                    std::size_t k);

  /// Index drawn according to the (unnormalized, non-negative) weights.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace qp::common
