// Small statistics helpers shared by the simulator, evaluator, and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qp::common {

/// Streaming mean/variance/extrema accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator (parallel Welford combination).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Linear-interpolation percentile, p in [0,100]. Throws on empty input.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Same interpolation over already-sorted (ascending) data — callers that
/// need several percentiles of one sample sort once and read the ranks.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double p);

/// Pearson correlation; 0 if either side is constant. Throws on size mismatch.
[[nodiscard]] double correlation(std::span<const double> xs, std::span<const double> ys);

}  // namespace qp::common
