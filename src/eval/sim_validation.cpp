#include "eval/sim_validation.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "core/failure_objective.hpp"
#include "core/objective.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "core/strategy.hpp"
#include "obs/trace.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace qp::eval {

namespace {

struct SystemUnderTest {
  const quorum::QuorumSystem* system;
  const core::Placement* placement;
};

struct PointSpec {
  std::string strategy;  // "closest" | "balanced" | "lp".
  double rho = 0.0;
  sim::ArrivalModel arrivals = sim::ArrivalModel::Poisson;
  bool outage = false;
  bool fault = false;  // FaultInjector + Oracle failover + FailureAware analytic.
};

/// Runs one operating point: rate scaling, the analytic prediction at the
/// matching alpha, and the engine. `demand` is the raw per-client demand
/// (empty = uniform clients).
SimValidationPoint run_point(const net::LatencyMatrix& matrix,
                             const std::string& scenario_name,
                             const SystemUnderTest& sut, const PointSpec& spec,
                             std::span<const double> demand,
                             const core::ExplicitStrategy* lp_strategy,
                             const SimValidationConfig& config, std::uint64_t seed) {
  const quorum::QuorumSystem& system = *sut.system;
  const core::Placement& placement = *sut.placement;
  const std::size_t n = matrix.size();
  const std::vector<double> weights = core::demand_shares(demand, demand.size());

  std::vector<double> site_load;
  if (spec.strategy == "closest") {
    site_load = core::site_loads_closest(matrix, system, placement,
                                         std::span<const double>{weights});
  } else if (spec.strategy == "balanced") {
    site_load = core::site_loads_balanced(system, placement, n);
  } else {
    site_load = core::site_loads_explicit(*lp_strategy, placement, n,
                                          std::span<const double>{weights});
  }

  const double service = config.service_time_ms;
  const std::vector<double> base =
      demand.empty() ? std::vector<double>(n, 1.0)
                     : std::vector<double>(demand.begin(), demand.end());
  const std::vector<double> rates =
      sim::scale_rates_to_peak_utilization(base, site_load, service, spec.rho);
  const double total_rate = std::accumulate(rates.begin(), rates.end(), 0.0);
  // alpha * load_f(w) = total_rate * load_f(w) * S^2 = rho_w * S: the linear
  // low-utilization queueing surrogate the analytic objectives charge.
  const double alpha = total_rate * service * service;

  core::Evaluation analytic;
  if (spec.strategy == "closest") {
    analytic = core::evaluate_closest(matrix, system, placement, alpha, demand);
  } else if (spec.strategy == "balanced") {
    analytic = core::evaluate_balanced(matrix, system, placement, alpha, demand);
  } else {
    analytic = core::evaluate_explicit(matrix, system, placement, alpha, *lp_strategy,
                                       demand);
  }

  sim::EngineConfig engine;
  engine.service_time_ms = service;
  engine.warmup_ms = config.warmup_ms;
  engine.duration_ms = config.duration_ms;
  engine.replications = config.replications;
  engine.master_seed = seed;
  engine.arrival_model = spec.arrivals;
  if (spec.strategy == "closest") {
    engine.strategy = sim::EngineStrategy::Closest;
  } else if (spec.strategy == "balanced") {
    engine.strategy = sim::EngineStrategy::Balanced;
  } else {
    engine.strategy = sim::EngineStrategy::Explicit;
    engine.explicit_strategy = lp_strategy;
  }
  if (spec.outage) {
    const std::size_t victim = static_cast<std::size_t>(
        std::max_element(site_load.begin(), site_load.end()) - site_load.begin());
    const double start = config.warmup_ms + 0.25 * config.duration_ms;
    engine.outages.push_back({victim, start, start + 0.25 * config.duration_ms});
  }
  core::FailureAwareEvaluation fault_analytic{};
  if (spec.fault) {
    sim::FaultInjectorConfig fault_config;
    // Decorrelated from the engine's replication chain (same SplitMix64
    // stream family) so fault windows and arrival streams stay independent.
    fault_config.seed = seed ^ 0x9e3779b97f4a7c15ULL;
    fault_config.horizon_ms = config.warmup_ms + config.duration_ms;
    fault_config.site =
        sim::FaultProcess::for_down_probability(config.fault_site_prob,
                                                config.fault_mttr_ms);
    const sim::FaultInjector injector{fault_config};
    engine.outages = injector.schedule(n);
    // Timeout adapted to the topology: twice the slowest client->support
    // RTT plus queueing slack — rare under load alone, short against the
    // MTTR so crashed attempts fail over well inside an outage.
    const std::vector<std::size_t> support = placement.support_set();
    double max_rtt = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t w : support) max_rtt = std::max(max_rtt, matrix.rtt(v, w));
    }
    engine.retry.timeout_ms = 1.25 * max_rtt + 25.0 * service;
    engine.retry.max_attempts = 4;
    engine.retry.backoff_base_ms = 0.0;  // Immediate re-choice, as the model.
    engine.failover = sim::FailoverMode::Oracle;

    core::FailureModel model;
    model.site_failure_prob = injector.steady_state_down();
    core::FailureAwareOptions options;
    options.seed = config.seed;
    options.mc_samples = 20'000;
    const core::FailureAwareObjective objective{alpha, model, demand, options};
    fault_analytic = objective.evaluate_detailed(matrix, system, placement);
  }
  const sim::EngineResult result = run_engine(matrix, system, placement, rates, engine);

  SimValidationPoint point;
  point.scenario = scenario_name;
  point.system = system.name();
  point.strategy = spec.strategy;
  point.arrivals = spec.arrivals == sim::ArrivalModel::Poisson ? "poisson" : "mmpp";
  point.target_rho = spec.rho;
  // Fault rows pin the engine's completed-request mean against the
  // degraded-mode objective's conditional mean E[R | available]; live rows
  // keep the matching live objective. Both add the one service time every
  // simulated reply pays.
  point.analytic_ms = spec.fault ? fault_analytic.expected_response_ms + service
                                 : analytic.avg_response_ms + service;
  point.simulated_ms = result.mean_response_ms;
  point.divergence_pct =
      100.0 * (point.simulated_ms - point.analytic_ms) / point.analytic_ms;
  point.p50_ms = result.p50_ms;
  point.p95_ms = result.p95_ms;
  point.p99_ms = result.p99_ms;
  point.peak_utilization = result.peak_utilization;
  point.completed = result.completed;
  point.dropped_messages = result.dropped_messages;
  point.outage = spec.outage;
  point.fault = spec.fault;
  point.unavailability_analytic = fault_analytic.unavailability;
  point.unavailability_sim = result.unavailability;
  point.retries = result.retries;
  point.abandoned = result.abandoned;
  return point;
}

/// Shared row enumeration: strategies x rho_values plus the optional rows,
/// shard-selected by deterministic point index. Point seeds derive from the
/// index (not the shard), so shards of one figure reproduce the unsharded
/// rows exactly.
std::vector<SimValidationPoint> run_figure(const net::LatencyMatrix& matrix,
                                           const std::string& scenario_name,
                                           std::span<const SystemUnderTest> suts,
                                           std::span<const double> demand,
                                           const core::ExplicitStrategy* grid_lp,
                                           const SimValidationConfig& config) {
  std::vector<PointSpec> specs;
  for (const char* strategy : {"closest", "balanced"}) {
    for (double rho : config.rho_values) specs.push_back({strategy, rho, {}, false});
  }
  std::vector<SimValidationPoint> points;
  std::size_t index = 0;
  const auto maybe_run = [&](const SystemUnderTest& sut, const PointSpec& spec) {
    const std::uint64_t seed =
        config.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index + 1));
    if (config.shard.contains(index)) {
      points.push_back(
          run_point(matrix, scenario_name, sut, spec, demand, grid_lp, config, seed));
    }
    ++index;
  };
  for (const SystemUnderTest& sut : suts) {
    for (const PointSpec& spec : specs) maybe_run(sut, spec);
  }
  if (grid_lp != nullptr) {
    for (double rho : config.rho_values) {
      maybe_run(suts.front(), {"lp", rho, {}, false});
    }
  }
  if (config.include_outage) {
    for (const SystemUnderTest& sut : suts) {
      maybe_run(sut, {"closest", 0.6, {}, true});
    }
  }
  if (config.include_mmpp) {
    for (const SystemUnderTest& sut : suts) {
      maybe_run(sut, {"balanced", 0.6, sim::ArrivalModel::Mmpp, false});
    }
  }
  if (config.include_fault) {
    for (const SystemUnderTest& sut : suts) {
      for (double rho : {0.15, 0.3}) {
        maybe_run(sut, {"closest", rho, {}, false, /*fault=*/true});
      }
    }
  }
  return points;
}

}  // namespace

std::vector<SimValidationPoint> sim_validation_sweep(const net::LatencyMatrix& matrix,
                                                     const SimValidationConfig& config) {
  QP_TRACE_SPAN("eval.sim_validation.sweep");
  const quorum::GridQuorum grid{7};
  const quorum::MajorityQuorum majority{49, 25};
  if (matrix.size() < grid.universe_size()) {
    throw std::invalid_argument{"sim_validation_sweep: need at least 49 sites"};
  }
  const core::Placement grid_placement = core::best_grid_placement(matrix, 7).placement;
  const core::Placement majority_placement =
      core::best_majority_placement(matrix, majority).placement;
  const SystemUnderTest suts[] = {{&grid, &grid_placement},
                                  {&majority, &majority_placement}};

  core::StrategyLpResult lp;
  const core::ExplicitStrategy* grid_lp = nullptr;
  if (config.include_lp) {
    const std::vector<double> caps(matrix.size(), 1.25 * grid.optimal_load());
    lp = core::optimize_access_strategy(matrix, grid, grid_placement, caps);
    if (lp.status == lp::SolveStatus::Optimal) grid_lp = &lp.strategy;
  }
  return run_figure(matrix, "planetlab-50", suts, {}, grid_lp, config);
}

std::vector<SimValidationPoint> sim_validation_scenario(const sim::Scenario& scenario,
                                                        const SimValidationConfig& config) {
  const quorum::GridQuorum grid{7};
  const quorum::MajorityQuorum majority{49, 25};
  const std::vector<std::size_t> anchors = central_sites(scenario.matrix, 16);
  const core::Placement grid_placement =
      core::best_grid_placement(scenario.matrix, 7, anchors).placement;
  const core::Placement majority_placement =
      core::best_majority_placement(scenario.matrix, majority, anchors).placement;
  const SystemUnderTest suts[] = {{&grid, &grid_placement},
                                  {&majority, &majority_placement}};
  return run_figure(scenario.matrix, scenario.name, suts, scenario.client_demand,
                    nullptr, config);
}

}  // namespace qp::eval
