// Cross-validation of the analytic response-time objectives against the
// discrete-event queueing engine (sim/engine).
//
// Each row pins one operating point: a quorum system placed on a topology,
// an access strategy (closest / balanced / an LP-exported explicit
// strategy), and a target peak utilization rho. The client arrival rates
// are scaled so the busiest site reaches rho, and the analytic prediction
// is the matching objective evaluated at alpha = S^2 * total arrival rate —
// the calibration under which alpha * load_f(w) equals rho_w * S, the
// linear low-utilization surrogate for the queueing delay — plus one
// service time (which every simulated reply pays and the objective does
// not model). At rho <= 0.3 the two agree within 3% (test-enforced,
// tests/engine_test.cpp); at rho 0.6/0.9, under bursty MMPP arrivals, and
// under outages the divergence quantifies where the linear model stops
// holding — exactly the regimes no analytic layer reaches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/figures.hpp"
#include "net/latency_matrix.hpp"
#include "sim/scenario.hpp"

namespace qp::eval {

struct SimValidationPoint {
  std::string scenario;  // "planetlab-50", "daxlist-161", "synthetic-500".
  std::string system;    // "Grid(7x7)", "Majority(25/49)".
  std::string strategy;  // "closest", "balanced", or "lp".
  std::string arrivals;  // "poisson" or "mmpp".
  double target_rho = 0.0;
  double analytic_ms = 0.0;   // Objective prediction + one service time.
  double simulated_ms = 0.0;  // Engine mean response (warm-up trimmed).
  double divergence_pct = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double peak_utilization = 0.0;  // Measured; should track target_rho.
  std::size_t completed = 0;
  std::size_t dropped_messages = 0;
  bool outage = false;

  // --- Fault-injection rows (include_fault) ------------------------------
  /// True on rows driven by sim::FaultInjector crash/recovery schedules
  /// with Oracle failover; analytic_ms is then the FailureAwareObjective
  /// conditional mean E[R | available] + service instead of the live
  /// closest/balanced prediction.
  bool fault = false;
  double unavailability_analytic = 0.0;  // FailureAwareObjective prediction.
  double unavailability_sim = 0.0;       // Engine (failed+abandoned)/issued.
  std::size_t retries = 0;               // Engine retry attempts.
  std::size_t abandoned = 0;             // Requests that exhausted attempts.
};

struct SimValidationConfig {
  std::vector<double> rho_values{0.1, 0.2, 0.3};
  double service_time_ms = 1.0;
  double warmup_ms = 2'000.0;
  double duration_ms = 20'000.0;
  std::size_t replications = 3;
  std::uint64_t seed = 20070601;
  /// Also validate an explicit LP strategy on the Grid (one simplex solve,
  /// capacities 1.25 * L_opt).
  bool include_lp = false;
  /// One closest-strategy row per system with the busiest site down for a
  /// quarter of the measured window, at rho = 0.6.
  bool include_outage = false;
  /// One balanced row per system with bursty MMPP arrivals at rho = 0.6.
  bool include_mmpp = false;
  /// Closest-strategy rows per system at rho in {0.15, 0.3} under random
  /// crash/recovery fault injection (sim/fault): every site cycles through
  /// exponential MTTF/MTTR targeting fault_site_prob steady-state downtime,
  /// the engine retries with FailoverMode::Oracle re-choice, and the
  /// analytic column is core::FailureAwareObjective's conditional mean —
  /// the closed-loop check that the degraded-mode objective predicts the
  /// engine under faults (tests/fault_test.cpp pins the band).
  bool include_fault = false;
  /// Stationary per-site down probability of the injected fault process.
  double fault_site_prob = 0.08;
  /// Mean repair time of the injected fault process.
  double fault_mttr_ms = 2'500.0;
  /// Interleaved selection over the enumerated rows (run_all.sh --points).
  PointShard shard{};
};

/// The n = 49 validation figure: {Grid(7x7), Majority(25/49)} placed by the
/// §4.1.1 constructions on `matrix` (uniform client demand), closest and
/// balanced strategies at every rho, plus the optional lp/outage/mmpp rows.
[[nodiscard]] std::vector<SimValidationPoint> sim_validation_sweep(
    const net::LatencyMatrix& matrix, const SimValidationConfig& config = {});

/// Demand-weighted scenario rows: the same systems on a sim::Scenario's
/// topology with its Pareto demand vector driving both the arrival rates
/// and the analytic demand weighting (closest + balanced at every rho).
[[nodiscard]] std::vector<SimValidationPoint> sim_validation_scenario(
    const sim::Scenario& scenario, const SimValidationConfig& config = {});

}  // namespace qp::eval
