// Experiment drivers, one per figure of the paper's evaluation. Each driver
// returns typed rows; the bench binaries print them as CSV and expose them
// as google-benchmark counters, and the integration tests assert the
// qualitative shapes the paper reports.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/local_search.hpp"
#include "net/latency_matrix.hpp"
#include "sim/scenario.hpp"

namespace qp::eval {

// ------------------------------------------------- per-point sharding

/// Interleaved point-range selection *below* figure granularity: a sweep
/// evaluates only the points whose (deterministic) enumeration index i has
/// i % count == index. The default {0, 1} selects everything, producing
/// byte-identical output to an unsharded run; disjoint shards of one figure
/// recombine with bench/merge_shards.py (JSON benchmark arrays + CSV rows).
struct PointShard {
  std::size_t index = 0;  // 0-based shard id, < count.
  std::size_t count = 1;

  [[nodiscard]] bool contains(std::size_t point) const noexcept {
    return count <= 1 || point % count == index;
  }
};

/// Parses "K/N" (1-based K, as run_all.sh --points passes it); nullptr or
/// empty means the full range. Throws std::invalid_argument on malformed
/// specs or K outside [1, N].
[[nodiscard]] PointShard parse_point_shard(const char* spec);

/// parse_point_shard over the QP_POINT_SHARD environment variable — the
/// hook every figure binary calls so one expensive figure can fan out
/// across hosts.
[[nodiscard]] PointShard point_shard_from_env();

// ---------------------------------------------------------------- §3 (Q/U)

struct QuPoint {
  std::size_t t = 0;         // Fault threshold; n = 5t+1, quorum = 4t+1.
  std::size_t universe = 0;  // n
  std::size_t clients = 0;   // Total client count across the 10 sites.
  double network_delay_ms = 0.0;
  double response_ms = 0.0;
  double throughput_rps = 0.0;
};

struct QuSweepConfig {
  std::vector<std::size_t> t_values{1, 2, 3, 4, 5};
  std::vector<std::size_t> client_counts{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  std::size_t client_site_count = 10;
  double duration_ms = 20'000.0;
  double warmup_ms = 3'000.0;
  std::uint64_t seed = 42;
  /// Forwarded to ProtocolSimConfig::per_message_cpu_ms (see its comment).
  double per_message_cpu_ms = 0.0;
};

/// Figures 3.1 / 3.2: simulated Q/U response-time surface over
/// (t, client count) with uniform-random quorum selection.
[[nodiscard]] std::vector<QuPoint> qu_response_surface(const net::LatencyMatrix& matrix,
                                                       const QuSweepConfig& config = {});

// ----------------------------------------------------------------- §6 (6.3)

struct LowDemandPoint {
  std::string system;        // "(t+1,2t+1) Maj", ..., "Grid", "Singleton".
  std::size_t universe = 0;
  double response_ms = 0.0;  // alpha = 0, closest strategy.
};

/// Figure 6.3: response time (= network delay, alpha=0) of the closest
/// access strategy for the three Majority families, Grid, and the singleton,
/// as universe size grows.
[[nodiscard]] std::vector<LowDemandPoint> low_demand_sweep(const net::LatencyMatrix& matrix);

// ------------------------------------------------------------ §7 (6.4, 6.5)

struct GridDemandPoint {
  std::size_t universe = 0;  // k*k
  double client_demand = 0.0;
  std::string strategy;      // "closest" or "balanced".
  double response_ms = 0.0;
  double network_delay_ms = 0.0;
};

/// Figures 6.4 / 6.5: Grid response time & network delay under the closest
/// and balanced strategies for each demand level (alpha = 0.007 * demand).
/// `demand_profile` is an optional per-client relative demand shape: each
/// level's per-client demand is the profile scaled to mean `demand`, so the
/// evaluations weight clients (and the closest-strategy load) by demand
/// share. An empty or constant profile reproduces the uniform sweep
/// exactly. `shard` selects an interleaved subset of the (side, demand)
/// points (see PointShard).
[[nodiscard]] std::vector<GridDemandPoint> grid_demand_sweep(
    const net::LatencyMatrix& matrix, std::span<const double> demands,
    std::size_t max_side = 0 /* 0 = largest grid that fits */,
    std::span<const double> demand_profile = {}, PointShard shard = {});

// -------------------------------------------------- §7 (7.6, 7.7, 7.8) LPs

struct CapacityPoint {
  std::size_t universe = 0;
  double capacity_level = 0.0;  // The c_i of (7.7).
  bool nonuniform = false;      // §7 inverse-distance heuristic?
  double response_ms = 0.0;
  double network_delay_ms = 0.0;
  bool feasible = true;
};

struct CapacitySweepConfig {
  double client_demand = 16'000.0;
  std::size_t levels = 10;
  std::size_t min_side = 2;
  std::size_t max_side = 7;
  bool include_nonuniform = false;
  /// Interleaved selection over the (side, level) points.
  PointShard shard{};
};

/// Figures 7.6/7.7/7.8: for each grid side and capacity level c_i, solve LP
/// (4.3)-(4.6) (optionally also with §7's non-uniform capacities in
/// [L_opt, c_i]) and evaluate the resulting strategies at the given demand.
[[nodiscard]] std::vector<CapacityPoint> capacity_sweep(const net::LatencyMatrix& matrix,
                                                        const CapacitySweepConfig& config = {});

// ----------------------------------------------------------------- §7 (8.9)

struct IterativePoint {
  double capacity_level = 0.0;
  std::string stage;  // "one-to-one", "iter1-phase1", "iter1-phase2", ...
  double network_delay_ms = 0.0;
  double response_ms = 0.0;
};

struct IterativeSweepConfig {
  std::size_t side = 5;
  std::size_t levels = 10;
  /// Anchor candidates for the placement search; 0 = all sites (slow). The
  /// default tries the 12 most central sites, which empirically matches the
  /// exhaustive search on these topologies.
  std::size_t anchor_count = 12;
  double alpha = 0.0;
  /// Interleaved selection over the capacity levels.
  PointShard shard{};
  /// Forwarded to IterativeOptions::warm_start — the fig8_9 binary exposes
  /// it as QP_ITER_WARM so CI can compare warm and cold runs.
  bool warm_start = true;
};

/// Figure 8.9: network delay of the iterative many-to-one algorithm, per
/// iteration/phase, vs. the one-to-one placement, across capacity levels.
[[nodiscard]] std::vector<IterativePoint> iterative_sweep(
    const net::LatencyMatrix& matrix, const IterativeSweepConfig& config = {});

/// The `anchor_count` sites with smallest average RTT to all sites —
/// the candidate v0 set used by iterative_sweep.
[[nodiscard]] std::vector<std::size_t> central_sites(const net::LatencyMatrix& matrix,
                                                     std::size_t count);

// ------------------------------------------- large topologies (beyond §7)

struct LargeTopologyPoint {
  std::string scenario;           // e.g. "daxlist-161", "synthetic-500".
  std::string system;             // e.g. "Grid(7x7)", "Majority(25/49)".
  std::string objective;          // "load-aware" or "closest".
  std::string stage;              // "constructive" or "local-opt".
  double alpha = 0.0;             // Load coefficient of the scenario.
  double response_ms = 0.0;       // Objective value of the placement.
  double network_delay_ms = 0.0;  // alpha = 0 objective of the same placement.
  std::size_t moves = 0;          // Accepted relocations (0 for constructive).
  double stage_ms = 0.0;          // Wall-clock of producing the stage.
};

struct LargeTopologyConfig {
  std::size_t grid_side = 7;           // n = 49, the paper's largest grid.
  std::size_t majority_universe = 49;  // Majority(25/49), same n.
  std::size_t majority_quorum = 25;
  /// Anchor candidates v0 for the constructive search (most central sites);
  /// 0 = all sites (exhaustive, slow on 500-site scenarios).
  std::size_t anchor_count = 32;
  /// Round cap for the load-aware local search.
  std::size_t max_rounds = 60;
  core::LocalSearchStrategy strategy = core::LocalSearchStrategy::BestImprovement;
  /// Also run the §6 closest-strategy objective (two more rows per system).
  bool include_closest = true;
};

/// The large-topology figure: constructive placements (§4.1.1, anchored at
/// the scenario's central sites, scored by the scenario's demand-weighted
/// objectives) vs the local optima the incremental DeltaEvaluator search
/// reaches from them, for Grid and Majority at n = 49 — under the balanced
/// load-aware objective and (optionally) the closest-strategy one. Two rows
/// per (system, objective).
[[nodiscard]] std::vector<LargeTopologyPoint> large_topology_sweep(
    const sim::Scenario& scenario, const LargeTopologyConfig& config = {});

}  // namespace qp::eval
