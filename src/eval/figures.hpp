// Experiment drivers, one per figure of the paper's evaluation. Each driver
// returns typed rows; the bench binaries print them as CSV and expose them
// as google-benchmark counters, and the integration tests assert the
// qualitative shapes the paper reports.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/local_search.hpp"
#include "net/latency_matrix.hpp"
#include "sim/scenario.hpp"

namespace qp::eval {

// ---------------------------------------------------------------- §3 (Q/U)

struct QuPoint {
  std::size_t t = 0;         // Fault threshold; n = 5t+1, quorum = 4t+1.
  std::size_t universe = 0;  // n
  std::size_t clients = 0;   // Total client count across the 10 sites.
  double network_delay_ms = 0.0;
  double response_ms = 0.0;
  double throughput_rps = 0.0;
};

struct QuSweepConfig {
  std::vector<std::size_t> t_values{1, 2, 3, 4, 5};
  std::vector<std::size_t> client_counts{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  std::size_t client_site_count = 10;
  double duration_ms = 20'000.0;
  double warmup_ms = 3'000.0;
  std::uint64_t seed = 42;
  /// Forwarded to ProtocolSimConfig::per_message_cpu_ms (see its comment).
  double per_message_cpu_ms = 0.0;
};

/// Figures 3.1 / 3.2: simulated Q/U response-time surface over
/// (t, client count) with uniform-random quorum selection.
[[nodiscard]] std::vector<QuPoint> qu_response_surface(const net::LatencyMatrix& matrix,
                                                       const QuSweepConfig& config = {});

// ----------------------------------------------------------------- §6 (6.3)

struct LowDemandPoint {
  std::string system;        // "(t+1,2t+1) Maj", ..., "Grid", "Singleton".
  std::size_t universe = 0;
  double response_ms = 0.0;  // alpha = 0, closest strategy.
};

/// Figure 6.3: response time (= network delay, alpha=0) of the closest
/// access strategy for the three Majority families, Grid, and the singleton,
/// as universe size grows.
[[nodiscard]] std::vector<LowDemandPoint> low_demand_sweep(const net::LatencyMatrix& matrix);

// ------------------------------------------------------------ §7 (6.4, 6.5)

struct GridDemandPoint {
  std::size_t universe = 0;  // k*k
  double client_demand = 0.0;
  std::string strategy;      // "closest" or "balanced".
  double response_ms = 0.0;
  double network_delay_ms = 0.0;
};

/// Figures 6.4 / 6.5: Grid response time & network delay under the closest
/// and balanced strategies for each demand level (alpha = 0.007 * demand).
[[nodiscard]] std::vector<GridDemandPoint> grid_demand_sweep(
    const net::LatencyMatrix& matrix, std::span<const double> demands,
    std::size_t max_side = 0 /* 0 = largest grid that fits */);

// -------------------------------------------------- §7 (7.6, 7.7, 7.8) LPs

struct CapacityPoint {
  std::size_t universe = 0;
  double capacity_level = 0.0;  // The c_i of (7.7).
  bool nonuniform = false;      // §7 inverse-distance heuristic?
  double response_ms = 0.0;
  double network_delay_ms = 0.0;
  bool feasible = true;
};

struct CapacitySweepConfig {
  double client_demand = 16'000.0;
  std::size_t levels = 10;
  std::size_t min_side = 2;
  std::size_t max_side = 7;
  bool include_nonuniform = false;
};

/// Figures 7.6/7.7/7.8: for each grid side and capacity level c_i, solve LP
/// (4.3)-(4.6) (optionally also with §7's non-uniform capacities in
/// [L_opt, c_i]) and evaluate the resulting strategies at the given demand.
[[nodiscard]] std::vector<CapacityPoint> capacity_sweep(const net::LatencyMatrix& matrix,
                                                        const CapacitySweepConfig& config = {});

// ----------------------------------------------------------------- §7 (8.9)

struct IterativePoint {
  double capacity_level = 0.0;
  std::string stage;  // "one-to-one", "iter1-phase1", "iter1-phase2", ...
  double network_delay_ms = 0.0;
  double response_ms = 0.0;
};

struct IterativeSweepConfig {
  std::size_t side = 5;
  std::size_t levels = 10;
  /// Anchor candidates for the placement search; 0 = all sites (slow). The
  /// default tries the 12 most central sites, which empirically matches the
  /// exhaustive search on these topologies.
  std::size_t anchor_count = 12;
  double alpha = 0.0;
};

/// Figure 8.9: network delay of the iterative many-to-one algorithm, per
/// iteration/phase, vs. the one-to-one placement, across capacity levels.
[[nodiscard]] std::vector<IterativePoint> iterative_sweep(
    const net::LatencyMatrix& matrix, const IterativeSweepConfig& config = {});

/// The `anchor_count` sites with smallest average RTT to all sites —
/// the candidate v0 set used by iterative_sweep.
[[nodiscard]] std::vector<std::size_t> central_sites(const net::LatencyMatrix& matrix,
                                                     std::size_t count);

// ------------------------------------------- large topologies (beyond §7)

struct LargeTopologyPoint {
  std::string scenario;           // e.g. "daxlist-161", "synthetic-500".
  std::string system;             // e.g. "Grid(7x7)", "Majority(25/49)".
  std::string stage;              // "constructive" or "local-opt".
  double alpha = 0.0;             // Load coefficient of the scenario.
  double response_ms = 0.0;       // Load-aware objective of the placement.
  double network_delay_ms = 0.0;  // alpha = 0 objective of the same placement.
  std::size_t moves = 0;          // Accepted relocations (0 for constructive).
  double stage_ms = 0.0;          // Wall-clock of producing the stage.
};

struct LargeTopologyConfig {
  std::size_t grid_side = 7;           // n = 49, the paper's largest grid.
  std::size_t majority_universe = 49;  // Majority(25/49), same n.
  std::size_t majority_quorum = 25;
  /// Anchor candidates v0 for the constructive search (most central sites);
  /// 0 = all sites (exhaustive, slow on 500-site scenarios).
  std::size_t anchor_count = 32;
  /// Round cap for the load-aware local search.
  std::size_t max_rounds = 60;
  core::LocalSearchStrategy strategy = core::LocalSearchStrategy::BestImprovement;
};

/// The large-topology figure: constructive placements (§4.1.1, anchored at
/// the scenario's central sites, scored by the load-aware objective) vs the
/// load-aware local optima the incremental DeltaEvaluator search reaches
/// from them, for Grid and Majority at n = 49. Two rows per system.
[[nodiscard]] std::vector<LargeTopologyPoint> large_topology_sweep(
    const sim::Scenario& scenario, const LargeTopologyConfig& config = {});

}  // namespace qp::eval
