// Small shared helpers for printing experiment rows as CSV — used by the
// bench binaries so every figure's series can be re-plotted from stdout.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "eval/figures.hpp"
#include "eval/sim_validation.hpp"

namespace qp::eval {

void print_csv(std::ostream& out, std::span<const QuPoint> points);
void print_csv(std::ostream& out, std::span<const LowDemandPoint> points);
void print_csv(std::ostream& out, std::span<const GridDemandPoint> points);
void print_csv(std::ostream& out, std::span<const CapacityPoint> points);
void print_csv(std::ostream& out, std::span<const IterativePoint> points);
void print_csv(std::ostream& out, std::span<const LargeTopologyPoint> points);
void print_csv(std::ostream& out, std::span<const SimValidationPoint> points);

/// Filters rows by a predicate-free convenience: rows matching a stage name.
[[nodiscard]] std::vector<IterativePoint> rows_for_stage(
    std::span<const IterativePoint> points, const std::string& stage);

}  // namespace qp::eval
