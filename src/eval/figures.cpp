#include "eval/figures.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>

#include "common/thread_pool.hpp"
#include "core/capacity.hpp"
#include "core/iterative.hpp"
#include "core/local_search.hpp"
#include "core/objective.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "core/strategy.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/singleton.hpp"
#include "sim/client_sites.hpp"
#include "sim/protocol_sim.hpp"

namespace qp::eval {

PointShard parse_point_shard(const char* spec) {
  if (spec == nullptr || *spec == '\0') return {};
  const std::string text{spec};
  const std::size_t slash = text.find('/');
  std::size_t k = 0;
  std::size_t n = 0;
  try {
    if (slash == std::string::npos) throw std::invalid_argument{"no slash"};
    const std::string k_text = text.substr(0, slash);
    const std::string n_text = text.substr(slash + 1);
    // Digits only: std::stoul alone would wrap "-1" to 2^64-1 and accept
    // signs/whitespace, silently selecting an almost-empty shard.
    const auto all_digits = [](const std::string& s) {
      return !s.empty() && std::all_of(s.begin(), s.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      });
    };
    if (!all_digits(k_text) || !all_digits(n_text)) {
      throw std::invalid_argument{"non-digit characters"};
    }
    k = std::stoul(k_text);
    n = std::stoul(n_text);
  } catch (const std::exception&) {
    throw std::invalid_argument{"parse_point_shard: expected K/N (1-based), got '" +
                                text + "'"};
  }
  if (n < 1 || k < 1 || k > n) {
    throw std::invalid_argument{"parse_point_shard: K/N requires 1 <= K <= N, got '" +
                                text + "'"};
  }
  return PointShard{k - 1, n};
}

PointShard point_shard_from_env() { return parse_point_shard(std::getenv("QP_POINT_SHARD")); }

std::vector<QuPoint> qu_response_surface(const net::LatencyMatrix& matrix,
                                         const QuSweepConfig& config) {
  std::vector<QuPoint> points;
  for (std::size_t t : config.t_values) {
    const quorum::MajorityQuorum system =
        quorum::make_majority(quorum::MajorityFamily::QuThreshold, t);
    if (system.universe_size() > matrix.size()) continue;

    // Server placement per §3: the known one-to-one algorithm minimizing
    // average uniform-strategy network delay.
    const core::PlacementSearchResult search =
        core::best_majority_placement(matrix, system);
    const std::vector<std::size_t> client_sites = sim::representative_client_sites(
        matrix, system, search.placement, config.client_site_count);

    for (std::size_t total_clients : config.client_counts) {
      const std::size_t per_site =
          std::max<std::size_t>(1, total_clients / client_sites.size());
      sim::ProtocolSimConfig sim_config;
      sim_config.clients_per_site = per_site;
      sim_config.duration_ms = config.duration_ms;
      sim_config.warmup_ms = config.warmup_ms;
      sim_config.per_message_cpu_ms = config.per_message_cpu_ms;
      sim_config.seed = config.seed + 1000 * t + total_clients;
      const sim::ProtocolSimResult run = sim::run_protocol_sim(
          matrix, system, search.placement, client_sites, sim_config);

      QuPoint point;
      point.t = t;
      point.universe = system.universe_size();
      point.clients = per_site * client_sites.size();
      point.network_delay_ms = run.avg_network_delay_ms;
      point.response_ms = run.avg_response_ms;
      point.throughput_rps = run.throughput_rps;
      points.push_back(point);
    }
  }
  return points;
}

std::vector<LowDemandPoint> low_demand_sweep(const net::LatencyMatrix& matrix) {
  std::vector<LowDemandPoint> points;

  // Singleton baseline (one row, universe size 1).
  {
    const quorum::SingletonQuorum singleton;
    const core::Placement placement = core::singleton_placement(matrix);
    const core::Evaluation eval =
        core::evaluate_closest(matrix, singleton, placement, /*alpha=*/0.0);
    points.push_back(LowDemandPoint{singleton.name(), 1, eval.avg_response_ms});
  }

  // The three Majority families, t growing until n exceeds the site count.
  for (const quorum::MajorityFamily family :
       {quorum::MajorityFamily::SimpleMajority, quorum::MajorityFamily::ByzantineMajority,
        quorum::MajorityFamily::QuThreshold}) {
    for (std::size_t t = 1; quorum::family_universe(family, t) <= matrix.size(); ++t) {
      const quorum::MajorityQuorum system = quorum::make_majority(family, t);
      const core::PlacementSearchResult search =
          core::best_majority_placement(matrix, system);
      const core::Evaluation eval =
          core::evaluate_closest(matrix, system, search.placement, /*alpha=*/0.0);
      points.push_back(
          LowDemandPoint{quorum::family_name(family), system.universe_size(),
                         eval.avg_response_ms});
    }
  }

  // Grid, k growing until k^2 exceeds the site count.
  for (std::size_t k = 2; k * k <= matrix.size(); ++k) {
    const quorum::GridQuorum system{k};
    const core::PlacementSearchResult search = core::best_grid_placement(matrix, k);
    const core::Evaluation eval =
        core::evaluate_closest(matrix, system, search.placement, /*alpha=*/0.0);
    points.push_back(LowDemandPoint{"Grid", system.universe_size(), eval.avg_response_ms});
  }
  return points;
}

std::vector<GridDemandPoint> grid_demand_sweep(const net::LatencyMatrix& matrix,
                                               std::span<const double> demands,
                                               std::size_t max_side,
                                               std::span<const double> demand_profile,
                                               PointShard shard) {
  if (max_side == 0) {
    max_side = static_cast<std::size_t>(std::sqrt(static_cast<double>(matrix.size())));
  }
  std::vector<GridDemandPoint> points;
  std::size_t point_index = 0;  // Deterministic (side, demand) enumeration.
  for (std::size_t k = 2; k <= max_side && k * k <= matrix.size(); ++k) {
    std::vector<std::size_t> selected;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (shard.contains(point_index++)) selected.push_back(i);
    }
    if (selected.empty()) continue;  // Skip the placement search entirely.
    const quorum::GridQuorum system{k};
    const core::PlacementSearchResult search = core::best_grid_placement(matrix, k);
    // Each demand level is an independent evaluation of the same placement;
    // fan out on the pool, collect into per-demand slots, append in order.
    std::vector<std::array<GridDemandPoint, 2>> per_demand(selected.size());
    common::global_thread_pool().parallel_for(0, selected.size(), [&](std::size_t s) {
      const double demand = demands[selected[s]];
      const double alpha = core::kQuWriteServiceMs * demand;
      // demand_profile weights clients by demand share (empty or constant =
      // the exact uniform evaluation); alpha stays the mean-demand §7
      // coefficient per level.
      const core::Evaluation closest =
          core::evaluate_closest(matrix, system, search.placement, alpha, demand_profile);
      const core::Evaluation balanced =
          core::evaluate_balanced(matrix, system, search.placement, alpha, demand_profile);
      per_demand[s][0] = GridDemandPoint{k * k, demand, "closest", closest.avg_response_ms,
                                         closest.avg_network_delay_ms};
      per_demand[s][1] = GridDemandPoint{k * k, demand, "balanced",
                                         balanced.avg_response_ms,
                                         balanced.avg_network_delay_ms};
    });
    for (const auto& pair : per_demand) {
      points.push_back(pair[0]);
      points.push_back(pair[1]);
    }
  }
  return points;
}

std::vector<CapacityPoint> capacity_sweep(const net::LatencyMatrix& matrix,
                                          const CapacitySweepConfig& config) {
  std::vector<CapacityPoint> points;
  const double alpha = core::kQuWriteServiceMs * config.client_demand;
  std::size_t point_index = 0;  // Deterministic (side, level) enumeration.
  for (std::size_t k = config.min_side; k <= config.max_side && k * k <= matrix.size();
       ++k) {
    const std::vector<double> all_levels =
        core::uniform_capacity_levels(quorum::GridQuorum{k}.optimal_load(), config.levels);
    std::vector<double> levels;
    for (double level : all_levels) {
      if (config.shard.contains(point_index++)) levels.push_back(level);
    }
    if (levels.empty()) continue;  // Skip the placement search entirely.
    const quorum::GridQuorum system{k};
    const core::PlacementSearchResult search = core::best_grid_placement(matrix, k);
    const std::vector<std::size_t> support = search.placement.support_set();
    const double l_opt = system.optimal_load();

    // Each capacity level solves its own LP(s) against shared read-only
    // state; fan the levels out on the pool and append results in order.
    std::vector<std::vector<CapacityPoint>> per_level(levels.size());
    common::global_thread_pool().parallel_for(0, levels.size(), [&](std::size_t i) {
      const double level = levels[i];
      lp::Basis uniform_basis;
      // Uniform capacities cap(v) = c_i.
      {
        const std::vector<double> caps = core::uniform_capacities(matrix.size(), level);
        const core::StrategyLpResult lp =
            core::optimize_access_strategy(matrix, system, search.placement, caps);
        uniform_basis = lp.basis;
        CapacityPoint point;
        point.universe = k * k;
        point.capacity_level = level;
        point.nonuniform = false;
        point.feasible = lp.status == lp::SolveStatus::Optimal;
        if (point.feasible) {
          const core::Evaluation eval = core::evaluate_explicit(
              matrix, system, search.placement, alpha, lp.strategy);
          point.response_ms = eval.avg_response_ms;
          point.network_delay_ms = eval.avg_network_delay_ms;
        }
        per_level[i].push_back(point);
      }
      // Non-uniform capacities in [beta, gamma] = [L_opt, c_i] (§7).
      if (config.include_nonuniform) {
        const std::vector<double> caps =
            core::nonuniform_capacities(matrix, support, l_opt, level);
        // Same placement, same LP shape, different rhs/caps: seed from the
        // uniform solve's optimal basis when the Revised engine produced one.
        core::StrategyLpOptions warm_options;
        warm_options.simplex.initial_basis = uniform_basis;
        const core::StrategyLpResult lp = core::optimize_access_strategy(
            matrix, system, search.placement, caps, {}, warm_options);
        CapacityPoint point;
        point.universe = k * k;
        point.capacity_level = level;
        point.nonuniform = true;
        point.feasible = lp.status == lp::SolveStatus::Optimal;
        if (point.feasible) {
          const core::Evaluation eval = core::evaluate_explicit(
              matrix, system, search.placement, alpha, lp.strategy);
          point.response_ms = eval.avg_response_ms;
          point.network_delay_ms = eval.avg_network_delay_ms;
        }
        per_level[i].push_back(point);
      }
    });
    for (const std::vector<CapacityPoint>& level_points : per_level) {
      points.insert(points.end(), level_points.begin(), level_points.end());
    }
  }
  return points;
}

std::vector<std::size_t> central_sites(const net::LatencyMatrix& matrix, std::size_t count) {
  count = std::min(count, matrix.size());
  std::vector<std::size_t> order(matrix.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> average(matrix.size());
  for (std::size_t v = 0; v < matrix.size(); ++v) average[v] = matrix.average_rtt_from(v);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return average[a] < average[b]; });
  order.resize(count);
  return order;
}

std::vector<IterativePoint> iterative_sweep(const net::LatencyMatrix& matrix,
                                            const IterativeSweepConfig& config) {
  const quorum::GridQuorum system{config.side};
  if (system.universe_size() > matrix.size()) {
    throw std::invalid_argument{"iterative_sweep: grid larger than topology"};
  }
  std::vector<IterativePoint> points;

  const std::vector<double> all_levels =
      core::uniform_capacity_levels(system.optimal_load(), config.levels);
  std::vector<double> levels;
  for (std::size_t i = 0; i < all_levels.size(); ++i) {
    if (config.shard.contains(i)) levels.push_back(all_levels[i]);
  }
  if (levels.empty()) return points;  // Skip the placement search entirely.

  // One-to-one baseline (balanced strategy, matching the uniform access the
  // iterative algorithm starts from).
  const core::PlacementSearchResult one_to_one =
      core::best_grid_placement(matrix, config.side);
  const core::Evaluation baseline =
      core::evaluate_balanced(matrix, system, one_to_one.placement, config.alpha);

  const std::vector<std::size_t> anchors =
      config.anchor_count == 0 ? std::vector<std::size_t>{}
                               : central_sites(matrix, config.anchor_count);

  // Every capacity level runs the full iterative algorithm independently;
  // fan the levels out on the pool, append each level's rows in order.
  std::vector<std::vector<IterativePoint>> per_level(levels.size());
  common::global_thread_pool().parallel_for(0, levels.size(), [&](std::size_t i) {
    const double level = levels[i];
    per_level[i].push_back(IterativePoint{level, "one-to-one",
                                          baseline.avg_network_delay_ms,
                                          baseline.avg_response_ms});
    const std::vector<double> caps = core::uniform_capacities(matrix.size(), level);
    core::IterativeOptions options;
    options.anchor_candidates = anchors;
    options.warm_start = config.warm_start;
    const core::IterativeResult iterative =
        core::iterative_placement(matrix, system, caps, config.alpha, options);
    for (const core::IterationRecord& record : iterative.history) {
      const std::string prefix = "iter" + std::to_string(record.iteration);
      per_level[i].push_back(IterativePoint{level, prefix + "-phase1",
                                            record.network_after_placement,
                                            record.response_after_placement});
      per_level[i].push_back(IterativePoint{level, prefix + "-phase2",
                                            record.network_after_strategy,
                                            record.response_after_strategy});
    }
  });
  for (const std::vector<IterativePoint>& level_points : per_level) {
    points.insert(points.end(), level_points.begin(), level_points.end());
  }
  return points;
}

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   since)
      .count();
}

/// Two rows (constructive, local-opt) for one (system, objective) pair on
/// one scenario.
void large_topology_rows(const sim::Scenario& scenario,
                         const quorum::QuorumSystem& system,
                         const std::function<core::Placement(std::size_t)>& builder,
                         const core::Objective& objective, const std::string& label,
                         const LargeTopologyConfig& config,
                         std::vector<LargeTopologyPoint>& points) {
  const net::LatencyMatrix& matrix = scenario.matrix;
  const std::vector<std::size_t> anchors =
      config.anchor_count == 0 ? std::vector<std::size_t>{}
                               : central_sites(matrix, config.anchor_count);

  LargeTopologyPoint constructive;
  constructive.scenario = scenario.name;
  constructive.system = system.name();
  constructive.objective = label;
  constructive.stage = "constructive";
  constructive.alpha = objective.alpha();
  auto start = std::chrono::steady_clock::now();
  const core::PlacementSearchResult search =
      core::best_placement(matrix, system, objective, builder, anchors);
  constructive.stage_ms = elapsed_ms(start);
  constructive.response_ms = search.avg_network_delay;  // Objective value.
  constructive.network_delay_ms =
      core::average_uniform_network_delay(matrix, system, search.placement);
  points.push_back(constructive);

  LargeTopologyPoint optimum = constructive;
  optimum.stage = "local-opt";
  core::LocalSearchOptions options;
  options.objective = &objective;
  options.strategy = config.strategy;
  options.max_rounds = config.max_rounds;
  start = std::chrono::steady_clock::now();
  const core::LocalSearchResult polished =
      core::local_search_placement(matrix, system, search.placement, options);
  optimum.stage_ms = elapsed_ms(start);
  optimum.response_ms = polished.objective;
  optimum.network_delay_ms =
      core::average_uniform_network_delay(matrix, system, polished.placement);
  optimum.moves = polished.moves;
  points.push_back(optimum);
}

}  // namespace

std::vector<LargeTopologyPoint> large_topology_sweep(const sim::Scenario& scenario,
                                                     const LargeTopologyConfig& config) {
  const net::LatencyMatrix& matrix = scenario.matrix;
  const std::size_t grid_universe = config.grid_side * config.grid_side;
  if (grid_universe > matrix.size() || config.majority_universe > matrix.size()) {
    throw std::invalid_argument{"large_topology_sweep: topology smaller than universe"};
  }
  // Demand-weighted objectives: the scenario's Pareto demand vector weights
  // the per-client terms (and the closest-strategy load attribution) instead
  // of being condensed into one alpha.
  const core::LoadAwareObjective load_aware = scenario.load_objective();
  const core::ClosestStrategyObjective closest = scenario.closest_objective();

  std::vector<LargeTopologyPoint> points;
  const quorum::GridQuorum grid{config.grid_side};
  const auto grid_builder = [&](std::size_t v0) {
    return core::grid_placement_for_client(matrix, config.grid_side, v0);
  };
  const quorum::MajorityQuorum majority{config.majority_universe, config.majority_quorum};
  const auto majority_builder = [&](std::size_t v0) {
    return core::majority_ball_placement(matrix, config.majority_universe, v0);
  };

  large_topology_rows(scenario, grid, grid_builder, load_aware, "load-aware", config,
                      points);
  if (config.include_closest) {
    large_topology_rows(scenario, grid, grid_builder, closest, "closest", config, points);
  }
  large_topology_rows(scenario, majority, majority_builder, load_aware, "load-aware",
                      config, points);
  if (config.include_closest) {
    large_topology_rows(scenario, majority, majority_builder, closest, "closest", config,
                        points);
  }
  return points;
}

}  // namespace qp::eval
