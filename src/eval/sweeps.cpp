#include "eval/sweeps.hpp"

#include <ostream>

namespace qp::eval {

void print_csv(std::ostream& out, std::span<const QuPoint> points) {
  out << "t,universe,clients,network_delay_ms,response_ms,throughput_rps\n";
  for (const QuPoint& p : points) {
    out << p.t << ',' << p.universe << ',' << p.clients << ',' << p.network_delay_ms << ','
        << p.response_ms << ',' << p.throughput_rps << '\n';
  }
}

void print_csv(std::ostream& out, std::span<const LowDemandPoint> points) {
  out << "system,universe,response_ms\n";
  for (const LowDemandPoint& p : points) {
    out << p.system << ',' << p.universe << ',' << p.response_ms << '\n';
  }
}

void print_csv(std::ostream& out, std::span<const GridDemandPoint> points) {
  out << "universe,client_demand,strategy,response_ms,network_delay_ms\n";
  for (const GridDemandPoint& p : points) {
    out << p.universe << ',' << p.client_demand << ',' << p.strategy << ',' << p.response_ms
        << ',' << p.network_delay_ms << '\n';
  }
}

void print_csv(std::ostream& out, std::span<const CapacityPoint> points) {
  out << "universe,capacity_level,nonuniform,feasible,response_ms,network_delay_ms\n";
  for (const CapacityPoint& p : points) {
    out << p.universe << ',' << p.capacity_level << ',' << (p.nonuniform ? 1 : 0) << ','
        << (p.feasible ? 1 : 0) << ',' << p.response_ms << ',' << p.network_delay_ms << '\n';
  }
}

void print_csv(std::ostream& out, std::span<const IterativePoint> points) {
  out << "capacity_level,stage,network_delay_ms,response_ms\n";
  for (const IterativePoint& p : points) {
    out << p.capacity_level << ',' << p.stage << ',' << p.network_delay_ms << ','
        << p.response_ms << '\n';
  }
}

void print_csv(std::ostream& out, std::span<const LargeTopologyPoint> points) {
  out << "scenario,system,objective,stage,alpha,response_ms,network_delay_ms,moves,"
         "stage_ms\n";
  for (const LargeTopologyPoint& p : points) {
    out << p.scenario << ',' << p.system << ',' << p.objective << ',' << p.stage << ','
        << p.alpha << ',' << p.response_ms << ',' << p.network_delay_ms << ','
        << p.moves << ',' << p.stage_ms << '\n';
  }
}

void print_csv(std::ostream& out, std::span<const SimValidationPoint> points) {
  out << "scenario,system,strategy,arrivals,target_rho,analytic_ms,simulated_ms,"
         "divergence_pct,p50_ms,p95_ms,p99_ms,peak_utilization,completed,"
         "dropped_messages,outage,fault,unavailability_analytic,unavailability_sim,"
         "retries,abandoned\n";
  for (const SimValidationPoint& p : points) {
    out << p.scenario << ',' << p.system << ',' << p.strategy << ',' << p.arrivals << ','
        << p.target_rho << ',' << p.analytic_ms << ',' << p.simulated_ms << ','
        << p.divergence_pct << ',' << p.p50_ms << ',' << p.p95_ms << ',' << p.p99_ms
        << ',' << p.peak_utilization << ',' << p.completed << ',' << p.dropped_messages
        << ',' << (p.outage ? 1 : 0) << ',' << (p.fault ? 1 : 0) << ','
        << p.unavailability_analytic << ',' << p.unavailability_sim << ',' << p.retries
        << ',' << p.abandoned << '\n';
  }
}

std::vector<IterativePoint> rows_for_stage(std::span<const IterativePoint> points,
                                           const std::string& stage) {
  std::vector<IterativePoint> result;
  for (const IterativePoint& p : points) {
    if (p.stage == stage) result.push_back(p);
  }
  return result;
}

}  // namespace qp::eval
