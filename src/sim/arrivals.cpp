#include "sim/arrivals.hpp"

#include <limits>
#include <stdexcept>

namespace qp::sim {

ArrivalGenerator::ArrivalGenerator(ArrivalModel model, double rate_per_ms,
                                   const MmppConfig& mmpp, common::Rng& rng)
    : model_(model) {
  if (!(rate_per_ms > 0.0)) {
    throw std::invalid_argument{"ArrivalGenerator: rate must be positive"};
  }
  if (model_ == ArrivalModel::Poisson) {
    on_rate_ = rate_per_ms;
    phase_end_ = std::numeric_limits<double>::infinity();
    return;
  }
  if (!(mmpp.burst >= 1.0) || !(mmpp.mean_on_ms > 0.0) || !(mmpp.mean_off_ms > 0.0)) {
    throw std::invalid_argument{"ArrivalGenerator: bad MMPP configuration"};
  }
  const double on_fraction = mmpp.mean_on_ms / (mmpp.mean_on_ms + mmpp.mean_off_ms);
  const double off_scale = (1.0 - on_fraction * mmpp.burst) / (1.0 - on_fraction);
  if (!(off_scale > 0.0)) {
    throw std::invalid_argument{
        "ArrivalGenerator: MMPP burst too large for the ON fraction "
        "(burst * mean_on must stay below mean_on + mean_off)"};
  }
  on_rate_ = rate_per_ms * mmpp.burst;
  off_rate_ = rate_per_ms * off_scale;
  mean_on_ms_ = mmpp.mean_on_ms;
  mean_off_ms_ = mmpp.mean_off_ms;
  // Stationary start: ON with probability f, phase remainder memoryless.
  on_ = rng.uniform() < on_fraction;
  phase_end_ = rng.exponential(on_ ? mean_on_ms_ : mean_off_ms_);
}

double ArrivalGenerator::next(double now, common::Rng& rng) {
  if (model_ == ArrivalModel::Poisson) {
    return now + rng.exponential(1.0 / on_rate_);
  }
  while (true) {
    const double rate = on_ ? on_rate_ : off_rate_;
    const double candidate = now + rng.exponential(1.0 / rate);
    if (candidate <= phase_end_) return candidate;
    // No arrival before the phase flips: restart the draw from the boundary
    // (memorylessness makes the discarded partial draw exact, not approximate).
    now = phase_end_;
    on_ = !on_;
    phase_end_ = now + rng.exponential(on_ ? mean_on_ms_ : mean_off_ms_);
  }
}

}  // namespace qp::sim
