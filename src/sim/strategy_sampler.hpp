// Per-request quorum selection for the queueing engine — one sampler per
// access-strategy family of the paper:
//   * closest  — each client's argmin-network-delay quorum, precomputed
//                (deterministic, no rng draw);
//   * balanced — uniform over all quorums, drawn analytically per request
//                via QuorumSystem::sample_quorum;
//   * explicit — per-client distributions over a shared quorum list (the
//                LP-optimized strategies of §4.2), sampled by inverse CDF.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::sim {

class QuorumSampler {
 public:
  enum class Kind { Closest, Balanced, Explicit };

  [[nodiscard]] static QuorumSampler closest(const net::LatencyMatrix& matrix,
                                             const quorum::QuorumSystem& system,
                                             const core::Placement& placement);
  [[nodiscard]] static QuorumSampler balanced(const quorum::QuorumSystem& system);
  /// Copies the strategy's quorum list and converts the per-client rows to
  /// CDFs; validates against client_count / the system's universe.
  [[nodiscard]] static QuorumSampler explicit_strategy(
      const core::ExplicitStrategy& strategy, std::size_t client_count,
      const quorum::QuorumSystem& system);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  /// The quorum `client` uses for this request. Balanced draws into
  /// `scratch` and returns it; closest/explicit return references into the
  /// sampler's precomputed tables (valid for the sampler's lifetime). One
  /// sampler may serve concurrent replications: draw() is const and all
  /// mutable state lives in the caller's rng/scratch.
  [[nodiscard]] const quorum::Quorum& draw(std::size_t client, common::Rng& rng,
                                           quorum::Quorum& scratch) const;

 private:
  explicit QuorumSampler(Kind kind) : kind_(kind) {}

  Kind kind_;
  const quorum::QuorumSystem* system_ = nullptr;  // Balanced only.
  std::vector<quorum::Quorum> quorums_;     // Closest: one per client; Explicit: shared list.
  std::vector<std::vector<double>> cdf_;    // Explicit: per-client cumulative rows.
};

}  // namespace qp::sim
