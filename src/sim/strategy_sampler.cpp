#include "sim/strategy_sampler.hpp"

#include <algorithm>
#include <stdexcept>

namespace qp::sim {

QuorumSampler QuorumSampler::closest(const net::LatencyMatrix& matrix,
                                     const quorum::QuorumSystem& system,
                                     const core::Placement& placement) {
  QuorumSampler sampler{Kind::Closest};
  sampler.quorums_ = core::closest_quorums(matrix, system, placement);
  return sampler;
}

QuorumSampler QuorumSampler::balanced(const quorum::QuorumSystem& system) {
  QuorumSampler sampler{Kind::Balanced};
  sampler.system_ = &system;
  return sampler;
}

QuorumSampler QuorumSampler::explicit_strategy(const core::ExplicitStrategy& strategy,
                                               std::size_t client_count,
                                               const quorum::QuorumSystem& system) {
  strategy.validate(client_count, system.universe_size());
  QuorumSampler sampler{Kind::Explicit};
  sampler.quorums_ = strategy.quorums;
  sampler.cdf_.reserve(strategy.probability.size());
  for (const std::vector<double>& row : strategy.probability) {
    std::vector<double> cdf(row.size());
    double sum = 0.0;
    std::size_t last_nonzero = 0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      sum += row[i];
      cdf[i] = sum;
      if (row[i] > 0.0) last_nonzero = i;
    }
    // Close the row exactly so a u ~ [0,1) draw always lands — from the
    // last nonzero entry onward, so fp rounding in the partial sums can
    // never make a zero-probability quorum sampleable.
    for (std::size_t i = last_nonzero; i < cdf.size(); ++i) cdf[i] = 1.0;
    sampler.cdf_.push_back(std::move(cdf));
  }
  return sampler;
}

const quorum::Quorum& QuorumSampler::draw(std::size_t client, common::Rng& rng,
                                          quorum::Quorum& scratch) const {
  switch (kind_) {
    case Kind::Closest:
      return quorums_[client];
    case Kind::Balanced:
      system_->sample_quorum(rng, scratch);
      return scratch;
    case Kind::Explicit: {
      const std::vector<double>& cdf = cdf_[client];
      const double u = rng.uniform();
      const std::size_t index = static_cast<std::size_t>(
          std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      return quorums_[std::min(index, quorums_.size() - 1)];
    }
  }
  throw std::logic_error{"QuorumSampler: unknown kind"};
}

}  // namespace qp::sim
