#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

#include "common/check.hpp"

namespace qp::sim {

void EventQueue::schedule(double time, Callback callback) {
  if (time < now_) throw std::invalid_argument{"EventQueue: cannot schedule in the past"};
  if (!callback) throw std::invalid_argument{"EventQueue: empty callback"};
  events_.push(Event{time, next_sequence_++, std::move(callback)});
}

bool EventQueue::run_next() {
  if (events_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent, so
  // copy the callback handle instead (std::function copy is cheap enough for
  // the event rates this simulator runs at).
  Event event = events_.top();
  events_.pop();
  QP_CHECK(event.time >= now_,
           "EventQueue: clock would run backwards (heap ordering violated)");
  now_ = event.time;
  ++executed_;
  event.callback();
  return true;
}

void EventQueue::run_until(double end_time) {
  while (!events_.empty() && events_.top().time <= end_time) {
    (void)run_next();
  }
  if (now_ < end_time) now_ = end_time;
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

}  // namespace qp::sim
