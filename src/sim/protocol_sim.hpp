// Discrete-event simulation of a single-round-trip quorum protocol — the
// stand-in for the paper's Q/U-on-Modelnet testbed (§3).
//
// Model, matching the paper's experimental setup:
//   * clients run closed-loop: issue a request, wait for replies from a full
//     quorum, immediately issue the next;
//   * each request goes to one quorum; the request reaches server u after
//     one-way delay rtt(client, f(u))/2, is processed FIFO by f(u)'s single
//     server core for `service_time_ms` (1 ms in §3), and the reply takes
//     another rtt/2 back;
//   * response time = time until the LAST quorum member's reply arrives;
//   * "network delay" of a request = max RTT to the chosen quorum (what the
//     response time would be on an unloaded system).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "core/placement.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"
#include "sim/retry.hpp"          // RetryPolicy (shared with sim/engine).
#include "sim/service_queue.hpp"  // ServerOutage (shared with sim/engine).

namespace qp::sim {

// NOTE: this simulator is the bitwise-pinned compatibility layer for the
// paper's §3 closed-loop experiments; its retry/timeout machinery has been
// generalized into sim/retry.hpp + sim/engine (per-attempt timeouts,
// backoff, failover re-choice, full fault accounting). New fault-tolerance
// work belongs there; this adapter keeps the historical event arithmetic
// (immediate retries on a fresh random quorum) exactly as the fig3 benches
// recorded it.
struct ProtocolSimConfig {
  double service_time_ms = 1.0;   // §3: "processing delay per request ... 1 ms".
  /// Additional CPU time a server spends per arriving message (unmarshal,
  /// verify, marshal reply). 0 reproduces the paper's stated model exactly;
  /// the fig3 benches set a small positive value to emulate the real Q/U
  /// implementation's message-handling cost, which the paper's testbed paid
  /// implicitly and which drives its steeper response growth under load.
  double per_message_cpu_ms = 0.0;
  double duration_ms = 20'000.0;  // Measured window, after warmup.
  double warmup_ms = 3'000.0;
  std::uint64_t seed = 1;
  std::size_t clients_per_site = 1;
  /// false: quorums drawn uniformly at random per request (§3's strategy);
  /// true: every client always uses its closest quorum.
  bool use_closest_strategy = false;

  // --- Failure injection (extension; empty/0 reproduces the paper's
  // failure-free §3 setup exactly) -----------------------------------------
  /// Scheduled server outages. Requires request_timeout_ms > 0 so clients
  /// can recover from dropped messages.
  std::vector<ServerOutage> outages;
  /// If > 0, a client whose quorum has not fully replied after this long
  /// abandons the attempt and retries on a freshly drawn random quorum.
  double request_timeout_ms = 0.0;
  /// A request is abandoned (counted in failed_requests) after this many
  /// attempts.
  std::size_t max_attempts = 10;

  /// The timeout/attempt knobs above as the shared policy type (immediate
  /// retries: the closed-loop client re-issues the moment it gives up on an
  /// attempt, the pinned historical behavior).
  [[nodiscard]] RetryPolicy retry_policy() const noexcept {
    RetryPolicy policy;
    policy.timeout_ms = request_timeout_ms;
    policy.max_attempts = max_attempts;
    return policy;
  }
};

struct ProtocolSimResult {
  double avg_response_ms = 0.0;
  double avg_network_delay_ms = 0.0;
  std::size_t completed_requests = 0;
  double throughput_rps = 0.0;  // Completed requests per second of sim time.
  common::RunningStats response_stats;
  common::RunningStats network_stats;
  /// Mean per-site queueing+service delay contribution (diagnostic).
  double avg_server_busy_fraction = 0.0;
  /// Requests abandoned after max_attempts (0 in failure-free runs).
  std::size_t failed_requests = 0;
  /// Total retry attempts beyond each request's first (0 without failures).
  std::size_t total_retries = 0;
  /// Messages dropped by server outages.
  std::size_t dropped_messages = 0;
};

/// Runs the simulation: `clients_per_site` closed-loop clients at each site
/// in `client_sites`. Deterministic in config.seed.
[[nodiscard]] ProtocolSimResult run_protocol_sim(const net::LatencyMatrix& matrix,
                                                 const quorum::QuorumSystem& system,
                                                 const core::Placement& placement,
                                                 std::span<const std::size_t> client_sites,
                                                 const ProtocolSimConfig& config);

}  // namespace qp::sim
