// Open-loop arrival processes for the queueing engine: Poisson, and a
// two-phase Markov-modulated Poisson process (MMPP) for bursty clients.
//
// The MMPP alternates exponentially-distributed ON/OFF phases; the ON phase
// multiplies the client's base rate by `burst` and the OFF rate is scaled so
// the long-run mean rate equals the configured base rate, so bursty and
// Poisson runs are comparable at identical offered load. Arrivals are
// generated one at a time (the next draw happens when the previous arrival
// fires), so the generator walks phase boundaries inline instead of
// scheduling phase-change events.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace qp::sim {

enum class ArrivalModel { Poisson, Mmpp };

struct MmppConfig {
  /// Rate multiplier during the ON phase; >= 1. The OFF rate becomes
  /// rate * (1 - f*burst) / (1 - f) with f = mean_on / (mean_on + mean_off),
  /// which must stay positive: burst < 1/f.
  double burst = 4.0;
  double mean_on_ms = 400.0;
  double mean_off_ms = 1'600.0;
};

/// Per-client arrival stream, deterministic in the rng passed to each call.
class ArrivalGenerator {
 public:
  /// Requires rate_per_ms > 0; validates the MMPP configuration (throws
  /// std::invalid_argument) and draws the initial phase from its stationary
  /// distribution when model == Mmpp.
  ArrivalGenerator(ArrivalModel model, double rate_per_ms, const MmppConfig& mmpp,
                   common::Rng& rng);

  /// The next arrival time strictly after `now`. `now` must not decrease
  /// across calls.
  [[nodiscard]] double next(double now, common::Rng& rng);

 private:
  ArrivalModel model_;
  double on_rate_ = 0.0;   // Arrivals per ms (Poisson uses on_rate_ only).
  double off_rate_ = 0.0;
  double mean_on_ms_ = 0.0;
  double mean_off_ms_ = 0.0;
  bool on_ = true;
  double phase_end_ = 0.0;
};

}  // namespace qp::sim
