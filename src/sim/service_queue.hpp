// Shared discrete-event server components: a single-core FIFO service
// station with optional finite capacity and measurement-window busy-time
// accounting, plus a per-site outage schedule. Both the open-loop queueing
// engine (sim/engine) and the closed-loop protocol simulator
// (sim/protocol_sim) are thin layers over these.
//
// A FIFO single server whose service times are known on admission can
// compute every departure synchronously — depart = max(next_free, now) +
// service — so stations need no events of their own: the caller schedules
// the reply at the returned departure time. Queue length (for finite
// capacity) falls out of the same representation: the messages in the
// system at time t are exactly the admitted messages whose departure lies
// beyond t.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <utility>
#include <vector>

namespace qp::sim {

/// A server outage: messages arriving at `site` in [start_ms, end_ms) are
/// silently dropped (crash during the window, no replies).
struct ServerOutage {
  std::size_t site = 0;
  double start_ms = 0.0;
  double end_ms = 0.0;
};

/// Per-site outage windows, validated once at construction. Queued work
/// survives an outage (the crash model drops arriving messages only), so
/// a site drains its backlog during its window and resumes afterwards.
///
/// Windows are sorted and merged per site at construction (overlapping and
/// abutting windows coalesce — [a, b) followed by [b, c) is one down
/// interval [a, c) under the half-open drop semantics), so down_at is a
/// binary search over disjoint intervals: fault-injected schedules carry
/// hundreds of windows per site and down_at sits on the per-message hot
/// path. The schedule doubles as the live up/down oracle of the engine's
/// oracle-failover mode and the FaultInjector's compiled output.
class OutageSchedule {
 public:
  OutageSchedule() = default;
  /// Throws std::out_of_range on an outage site >= site_count and
  /// std::invalid_argument on an empty window.
  OutageSchedule(std::span<const ServerOutage> outages, std::size_t site_count);

  [[nodiscard]] bool empty() const noexcept { return by_site_.empty(); }
  [[nodiscard]] bool down_at(std::size_t site, double time) const noexcept;

  /// The merged, disjoint, strictly ascending down windows of `site` (empty
  /// when the site never fails). Exposed for tests and schedule statistics.
  [[nodiscard]] std::span<const std::pair<double, double>> windows(
      std::size_t site) const noexcept;
  /// Total down time of `site` overlapping [from_ms, to_ms).
  [[nodiscard]] double down_time(std::size_t site, double from_ms,
                                 double to_ms) const noexcept;

 private:
  std::vector<std::vector<std::pair<double, double>>> by_site_;
};

/// Work-conserving FIFO single server. Service requirements are supplied by
/// the caller on admission (deterministic, exponential, whatever), so the
/// departure time is returned synchronously. Busy time overlapping the
/// measurement window [window_start, window_end) is accumulated for
/// utilization reporting. capacity == 0 means an unbounded queue and keeps
/// the station a single scalar (no per-message bookkeeping).
class ServiceStation {
 public:
  ServiceStation() = default;
  ServiceStation(double window_start, double window_end, std::size_t capacity = 0);

  /// Messages queued or in service at `time` (capacity-tracked stations
  /// only; unbounded stations always report 0). Drops departed entries, so
  /// `time` must not decrease across calls — event-queue order guarantees
  /// that.
  [[nodiscard]] std::size_t in_system(double time) noexcept;

  /// True when a message arriving at `time` would exceed the capacity.
  [[nodiscard]] bool full(double time) noexcept {
    return capacity_ != 0 && in_system(time) >= capacity_;
  }

  /// Admits a message at `now` with the given service requirement and
  /// returns its departure time. The caller checks full() first; accept
  /// never rejects.
  double accept(double now, double service_time);

  [[nodiscard]] double next_free() const noexcept { return next_free_; }
  /// Service time accumulated inside the measurement window, ms.
  [[nodiscard]] double busy_in_window() const noexcept { return busy_; }

  /// True when the server core is working at `time`.
  [[nodiscard]] bool busy_at(double time) const noexcept {
    return next_free_ > time;
  }

  /// Turns on departure bookkeeping for an unbounded station so probes can
  /// read in_system(). Admission decisions never look at the tracked deque
  /// unless capacity_ != 0, so tracking is observation-only: it cannot
  /// change any admission, departure, or busy-time result. Bounded stations
  /// always track.
  void track_occupancy(bool on) noexcept { tracked_ = on; }

 private:
  double window_start_ = 0.0;
  double window_end_ = 0.0;
  double next_free_ = 0.0;
  double busy_ = 0.0;
  std::size_t capacity_ = 0;
  bool tracked_ = false;
  /// Departure times of admitted messages still in the system, ascending
  /// (FIFO). Only maintained when capacity_ > 0 or tracked_.
  std::deque<double> departures_;
};

}  // namespace qp::sim
