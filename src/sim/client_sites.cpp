#include "sim/client_sites.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace qp::sim {

std::vector<std::size_t> representative_client_sites(const net::LatencyMatrix& matrix,
                                                     const quorum::QuorumSystem& system,
                                                     const core::Placement& placement,
                                                     std::size_t count) {
  if (count == 0 || count > matrix.size()) {
    throw std::invalid_argument{"representative_client_sites: bad count"};
  }
  std::vector<double> delay(matrix.size());
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    const std::vector<double> distances = core::element_distances(matrix, placement, v);
    delay[v] = system.expected_max_uniform(distances);
  }
  const double target =
      std::accumulate(delay.begin(), delay.end(), 0.0) / static_cast<double>(delay.size());

  std::vector<std::size_t> order(matrix.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(delay[a] - target) < std::abs(delay[b] - target);
  });
  order.resize(count);
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace qp::sim
