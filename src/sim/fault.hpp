// Seeded, deterministic fault injection for the discrete-event simulators.
//
// A FaultInjector turns a crash/recovery model into concrete per-site
// ServerOutage windows the engine (sim/engine) and protocol simulator
// (sim/protocol_sim) already understand:
//   * independent per-site crashes — an alternating renewal process with
//     exponential time-to-failure (MTTF) and time-to-repair (MTTR),
//     started in its stationary distribution so the long-run down
//     probability MTTR / (MTTF + MTTR) holds from time zero;
//   * correlated regional failures — the same renewal process drawn once
//     per region (sim/scenario's world-template regions, via
//     region_partition) and applied to every site of the region at once,
//     the failure mode that actually separates placements: i.i.d. site
//     failures hit any one-to-one placement equally, whereas a regional
//     blackout takes out exactly the colocated quorum elements.
//
// Determinism: every site and region derives its own rng stream from the
// injector seed through the same SplitMix64 chain the engine uses for
// replication fan-out (fault_stream_seed), so schedules are bit-identical
// regardless of thread count or generation order, and any single stream can
// be reproduced in isolation by tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/synthetic.hpp"
#include "sim/service_queue.hpp"

namespace qp::sim {

/// One crash/recovery renewal process: exponential up times with mean
/// mttf_ms alternating with exponential down times with mean mttr_ms.
/// mttf_ms == 0 disables the process.
struct FaultProcess {
  double mttf_ms = 0.0;
  double mttr_ms = 0.0;

  [[nodiscard]] bool enabled() const noexcept { return mttf_ms > 0.0; }
  /// Stationary down probability mttr / (mttf + mttr); 0 when disabled.
  [[nodiscard]] double steady_state_down() const noexcept {
    return enabled() ? mttr_ms / (mttf_ms + mttr_ms) : 0.0;
  }
  /// The process whose stationary down probability is `down_prob` with the
  /// given repair scale: mttf = mttr * (1 - p) / p.
  [[nodiscard]] static FaultProcess for_down_probability(double down_prob,
                                                        double mttr_ms);
};

struct FaultInjectorConfig {
  std::uint64_t seed = 20070601;
  /// Windows are generated inside [0, horizon_ms); a crash straddling the
  /// horizon is clipped to it (sites recover once injection ends, so a
  /// draining simulation always terminates).
  double horizon_ms = 25'000.0;
  /// Independent per-site crash/recovery process (same law at every site).
  FaultProcess site{};
  /// Correlated whole-region crash/recovery process; requires site_region.
  FaultProcess regional{};
  /// Per-site region id for the regional process (region_partition); empty
  /// means no regional correlation even when `regional` is enabled.
  std::vector<std::size_t> site_region;
};

class FaultInjector {
 public:
  /// Throws std::invalid_argument on a non-positive horizon, a process with
  /// mttf > 0 but mttr <= 0, or an enabled regional process whose
  /// site_region vector is shorter than a site index it is asked about.
  explicit FaultInjector(FaultInjectorConfig config);

  /// The compiled outage windows for sites [0, site_count): per-site
  /// windows first (site-major, ascending), then regional windows expanded
  /// onto member sites. Deterministic in the config seed alone; const and
  /// safe to call concurrently. OutageSchedule merges any overlap.
  [[nodiscard]] std::vector<ServerOutage> schedule(std::size_t site_count) const;

  /// schedule() compiled into the live up/down oracle.
  [[nodiscard]] OutageSchedule oracle(std::size_t site_count) const;

  [[nodiscard]] const FaultInjectorConfig& config() const noexcept { return config_; }

  /// Stationary per-site down probability under both processes (site down =
  /// site process down OR its region down; independent processes).
  [[nodiscard]] double steady_state_down() const noexcept;

 private:
  FaultInjectorConfig config_;
};

/// The stream-`index` rng seed of a fault injector's SplitMix64 chain —
/// streams 2k seed site k's process, streams 2k+1 seed region k's, so site
/// and region streams never collide. Exposed for reproduction in tests.
[[nodiscard]] std::uint64_t fault_stream_seed(std::uint64_t seed,
                                              std::uint64_t stream) noexcept;

/// Per-site region ids for FaultInjectorConfig::site_region: region names
/// are numbered by first appearance over `sites` (deterministic). Empty
/// input (dataset-backed scenarios without coordinates) yields empty ids.
[[nodiscard]] std::vector<std::size_t> region_partition(
    std::span<const net::SiteLocation> sites);

}  // namespace qp::sim
