// Retry/timeout policy and failure suspicion shared by the simulators.
//
// This is the request-recovery machinery generalized out of the closed-loop
// protocol simulator (sim/protocol_sim, which pins the paper's §3 behavior
// bitwise) so the open-loop queueing engine (sim/engine) can measure
// behavior *during* failures: a per-request timeout arms each attempt,
// expired attempts retry on a fresh quorum after exponential backoff with
// deterministic jitter (all randomness through the caller's common::Rng
// stream, so runs stay bit-identical for any thread count), and sites that
// failed to reply before the timeout land on a suspicion list that failover
// quorum re-choice consults until the suspicion expires.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace qp::sim {

/// Per-request timeout + bounded-retry policy. timeout_ms == 0 disables the
/// machinery entirely (the legacy immediate-failure semantics).
struct RetryPolicy {
  /// An attempt whose quorum has not fully replied after this long is
  /// abandoned and retried (or given up after max_attempts). 0 = disabled.
  double timeout_ms = 0.0;
  /// Total attempts per request, first included. >= 1.
  std::size_t max_attempts = 4;
  /// Backoff before retry k (k >= 2): min(base * 2^(k-2), max), plus up to
  /// jitter_frac of itself drawn uniformly. base 0 = immediate retries.
  double backoff_base_ms = 0.0;
  double backoff_max_ms = 1'000.0;
  double jitter_frac = 0.0;  // In [0, 1].

  [[nodiscard]] bool enabled() const noexcept { return timeout_ms > 0.0; }

  /// Throws std::invalid_argument on negative/non-finite fields, a zero
  /// max_attempts, or jitter_frac outside [0, 1].
  void validate() const;

  /// Delay before the next attempt, given `attempts_used` attempts already
  /// spent (>= 1). Draws one uniform from `rng` only when jitter applies.
  [[nodiscard]] double backoff_delay(std::size_t attempts_used, common::Rng& rng) const;
};

/// Sites suspected down, each suspicion expiring ttl_ms after it was (last)
/// raised. The failover re-choice penalizes suspected sites; expiry keeps a
/// recovered site usable without an explicit "up" signal.
class SuspicionList {
 public:
  SuspicionList() = default;
  SuspicionList(std::size_t site_count, double ttl_ms)
      : until_(site_count, -1.0), ttl_ms_(ttl_ms) {}

  void suspect(std::size_t site, double now) { until_[site] = now + ttl_ms_; }
  [[nodiscard]] bool suspected(std::size_t site, double now) const noexcept {
    return until_[site] > now;
  }
  /// Sites suspected at `now` — an O(sites) scan, meant for measurement
  /// probes, not the per-attempt hot path.
  [[nodiscard]] std::size_t suspected_count(double now) const noexcept {
    std::size_t count = 0;
    for (double until : until_) count += until > now ? 1 : 0;
    return count;
  }

 private:
  std::vector<double> until_;  // Suspicion expiry per site; -1 = never raised.
  double ttl_ms_ = 0.0;
};

}  // namespace qp::sim
