// Client-site selection matching §3's methodology: "we computed a set of 10
// client locations for which the average network delay to the server
// placement approximates the average network delay from all the nodes of
// the graph to the server placement well."
#pragma once

#include <cstddef>
#include <vector>

#include "core/placement.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::sim {

/// Chooses `count` sites whose uniform-strategy expected network delays to
/// the placement bracket the all-sites average: sites are ranked by
/// |Delta_v - avg_v Delta_v| and the closest `count` are returned (sorted by
/// site index). Throws if count exceeds the site count.
[[nodiscard]] std::vector<std::size_t> representative_client_sites(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const core::Placement& placement, std::size_t count);

}  // namespace qp::sim
