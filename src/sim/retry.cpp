#include "sim/retry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qp::sim {

void RetryPolicy::validate() const {
  if (timeout_ms < 0.0 || !std::isfinite(timeout_ms)) {
    throw std::invalid_argument{"RetryPolicy: timeout_ms must be finite and >= 0"};
  }
  if (max_attempts == 0) {
    throw std::invalid_argument{"RetryPolicy: max_attempts must be >= 1"};
  }
  if (backoff_base_ms < 0.0 || !std::isfinite(backoff_base_ms) ||
      backoff_max_ms < 0.0 || !std::isfinite(backoff_max_ms)) {
    throw std::invalid_argument{"RetryPolicy: backoff bounds must be finite and >= 0"};
  }
  if (!(jitter_frac >= 0.0) || !(jitter_frac <= 1.0)) {
    throw std::invalid_argument{"RetryPolicy: jitter_frac must be in [0, 1]"};
  }
}

double RetryPolicy::backoff_delay(std::size_t attempts_used, common::Rng& rng) const {
  if (backoff_base_ms <= 0.0 || attempts_used == 0) return 0.0;
  // Exponential growth capped at backoff_max_ms; exponent by completed
  // attempts, so the first retry waits the base delay.
  double delay = backoff_base_ms;
  for (std::size_t k = 1; k < attempts_used && delay < backoff_max_ms; ++k) {
    delay *= 2.0;
  }
  delay = std::min(delay, backoff_max_ms);
  if (jitter_frac > 0.0) delay += delay * jitter_frac * rng.uniform();
  return delay;
}

}  // namespace qp::sim
