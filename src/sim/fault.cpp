#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/rng.hpp"

namespace qp::sim {

namespace {

void validate_process(const FaultProcess& process, const char* which) {
  if (process.mttf_ms < 0.0 || process.mttr_ms < 0.0 ||
      !std::isfinite(process.mttf_ms) || !std::isfinite(process.mttr_ms)) {
    throw std::invalid_argument{std::string{"FaultInjector: "} + which +
                                " MTTF/MTTR must be finite and >= 0"};
  }
  if (process.enabled() && !(process.mttr_ms > 0.0)) {
    throw std::invalid_argument{std::string{"FaultInjector: "} + which +
                                " process needs a positive MTTR"};
  }
}

/// Down windows of one alternating exponential renewal process on
/// [0, horizon), clipped to the horizon. Started stationary: the process
/// begins mid-outage with probability MTTR / (MTTF + MTTR), and by
/// memorylessness the residual down (or up) time keeps the exponential law.
std::vector<std::pair<double, double>> renewal_windows(const FaultProcess& process,
                                                       double horizon_ms,
                                                       common::Rng& rng) {
  std::vector<std::pair<double, double>> windows;
  double t = 0.0;
  if (rng.uniform() < process.steady_state_down()) {
    const double end = rng.exponential(process.mttr_ms);
    if (std::min(end, horizon_ms) > 0.0) {
      windows.emplace_back(0.0, std::min(end, horizon_ms));
    }
    t = end;
  }
  while (t < horizon_ms) {
    t += rng.exponential(process.mttf_ms);
    if (t >= horizon_ms) break;
    const double end = t + rng.exponential(process.mttr_ms);
    windows.emplace_back(t, std::min(end, horizon_ms));
    t = end;
  }
  return windows;
}

}  // namespace

FaultProcess FaultProcess::for_down_probability(double down_prob, double mttr_ms) {
  if (!(down_prob > 0.0) || !(down_prob < 1.0) || !(mttr_ms > 0.0)) {
    throw std::invalid_argument{
        "FaultProcess::for_down_probability: need 0 < p < 1 and mttr > 0"};
  }
  return FaultProcess{mttr_ms * (1.0 - down_prob) / down_prob, mttr_ms};
}

FaultInjector::FaultInjector(FaultInjectorConfig config) : config_(std::move(config)) {
  if (!(config_.horizon_ms > 0.0) || !std::isfinite(config_.horizon_ms)) {
    throw std::invalid_argument{"FaultInjector: horizon_ms must be positive and finite"};
  }
  validate_process(config_.site, "site");
  validate_process(config_.regional, "regional");
}

std::vector<ServerOutage> FaultInjector::schedule(std::size_t site_count) const {
  std::vector<ServerOutage> outages;
  if (config_.site.enabled()) {
    for (std::size_t site = 0; site < site_count; ++site) {
      common::Rng rng{fault_stream_seed(config_.seed, 2 * site)};
      for (const auto& [start, end] :
           renewal_windows(config_.site, config_.horizon_ms, rng)) {
        outages.push_back({site, start, end});
      }
    }
  }
  if (config_.regional.enabled() && !config_.site_region.empty()) {
    if (config_.site_region.size() < site_count) {
      throw std::invalid_argument{
          "FaultInjector: site_region shorter than the site count"};
    }
    const std::size_t regions =
        1 + *std::max_element(config_.site_region.begin(),
                              config_.site_region.begin() +
                                  static_cast<std::ptrdiff_t>(site_count));
    for (std::size_t region = 0; region < regions; ++region) {
      common::Rng rng{fault_stream_seed(config_.seed, 2 * region + 1)};
      const auto windows = renewal_windows(config_.regional, config_.horizon_ms, rng);
      if (windows.empty()) continue;
      for (std::size_t site = 0; site < site_count; ++site) {
        if (config_.site_region[site] != region) continue;
        for (const auto& [start, end] : windows) outages.push_back({site, start, end});
      }
    }
  }
  return outages;
}

OutageSchedule FaultInjector::oracle(std::size_t site_count) const {
  const std::vector<ServerOutage> outages = schedule(site_count);
  return OutageSchedule{outages, site_count};
}

double FaultInjector::steady_state_down() const noexcept {
  const double site = config_.site.steady_state_down();
  const double regional =
      config_.site_region.empty() ? 0.0 : config_.regional.steady_state_down();
  return 1.0 - (1.0 - site) * (1.0 - regional);
}

std::uint64_t fault_stream_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  // The (stream+1)-th SplitMix64 output of the chain seeded by `seed` — the
  // same chain shape as sim::replication_seed, jumped in O(1) (SplitMix64
  // advances its state by the golden-ratio increment once per output).
  std::uint64_t state = seed + stream * 0x9e3779b97f4a7c15ULL;
  return common::splitmix64(state);
}

std::vector<std::size_t> region_partition(std::span<const net::SiteLocation> sites) {
  std::vector<std::size_t> ids;
  ids.reserve(sites.size());
  std::vector<std::string> names;  // Numbered by first appearance.
  for (const net::SiteLocation& site : sites) {
    const auto it = std::find(names.begin(), names.end(), site.region);
    if (it == names.end()) {
      ids.push_back(names.size());
      names.push_back(site.region);
    } else {
      ids.push_back(static_cast<std::size_t>(it - names.begin()));
    }
  }
  return ids;
}

}  // namespace qp::sim
