// Minimal discrete-event simulation engine: a time-ordered queue of typed
// events with a monotone simulation clock.
//
// The queue is a template over the simulator's event type — a small tagged
// struct the caller switches on in the dispatch functor passed to
// run_next/run_until/run_all. The previous std::function<void()> callback
// design cost one heap allocation per event (a capture of {this, id,
// attempt, site, rtt} overflows every implementation's small-buffer
// optimization) at ~50 events per simulated request; a typed value event is
// allocation-free and keeps the heap's storage contiguous. The engine
// validation suite pins bitwise-identical results across the change, and
// bench_sim_engine's header records the rho = 0.9 validation-row speedup.
//
// Ordering contract: events pop in lexicographic (time, sequence) order,
// where sequence is a monotone counter stamped at schedule() time. For equal
// timestamps that is *global scheduling order* — NOT a property of the
// underlying heap (std::priority_queue is unstable) — so an event scheduled
// from inside a dispatch at the current timestamp runs after every
// previously scheduled equal-time event, including ones already in the
// queue before the dispatch fired. This is what keeps replications
// deterministic and bit-identical across toolchains
// (tests/sim_test.cpp pins it under heap churn).
#pragma once

#include <cstdint>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace qp::sim {

template <typename Event>
class EventQueue {
 public:
  /// Schedules `event` at absolute simulation time `time` (>= now()).
  void schedule(double time, Event event) {
    if (time < now_) {
      throw std::invalid_argument{"EventQueue: cannot schedule in the past"};
    }
    events_.push(Entry{time, next_sequence_++, std::move(event)});
  }

  /// Pops the earliest event, advances the clock, and hands the event to
  /// `dispatch`; returns false when no events remain.
  template <typename Dispatch>
  bool run_next(Dispatch&& dispatch) {
    if (events_.empty()) return false;
    // priority_queue::top is const; typed events are small value structs, so
    // a copy beats the UB-adjacent const_cast move.
    Entry entry = events_.top();
    events_.pop();
    QP_CHECK(entry.time >= now_,
             "EventQueue: clock would run backwards (heap ordering violated)");
    now_ = entry.time;
    ++executed_;
    dispatch(std::move(entry.event));
    return true;
  }

  /// Runs events with time <= end_time; the clock then finishes at
  /// end_time exactly (advanced past the last executed event), unless it
  /// was already beyond end_time, in which case nothing runs and the clock
  /// is unchanged.
  template <typename Dispatch>
  void run_until(double end_time, Dispatch&& dispatch) {
    while (!events_.empty() && events_.top().time <= end_time) {
      (void)run_next(dispatch);
    }
    if (now_ < end_time) now_ = end_time;
  }

  /// Drains the queue completely.
  template <typename Dispatch>
  void run_all(Dispatch&& dispatch) {
    while (run_next(dispatch)) {
    }
  }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    double time = 0.0;
    std::uint64_t sequence = 0;  // Scheduling-order tie-break at equal times.
    Event event;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> events_;
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace qp::sim
