// Minimal discrete-event simulation engine: a time-ordered queue of
// callbacks with a monotone simulation clock. Events at equal times run in
// scheduling (FIFO) order, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace qp::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `callback` at absolute simulation time `time` (>= now()).
  void schedule(double time, Callback callback);

  /// Pops and runs the earliest event; returns false when no events remain.
  bool run_next();

  /// Runs events with time <= end_time; the clock finishes at the time of
  /// the last executed event (or end_time if nothing ran beyond it).
  void run_until(double end_time);

  /// Drains the queue completely.
  void run_all();

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    double time = 0.0;
    std::uint64_t sequence = 0;  // FIFO tie-break for simultaneous events.
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace qp::sim
