// Minimal discrete-event simulation engine: a time-ordered queue of
// callbacks with a monotone simulation clock.
//
// Ordering contract: events pop in lexicographic (time, sequence) order,
// where sequence is a monotone counter stamped at schedule() time. For equal
// timestamps that is *global scheduling order* — NOT a property of the
// underlying heap (std::priority_queue is unstable) — so an event scheduled
// from inside a callback at the current timestamp runs after every
// previously scheduled equal-time event, including ones already in the
// queue before the callback fired. This is what keeps replications
// deterministic and bit-identical across toolchains
// (tests/sim_test.cpp pins it under heap churn).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace qp::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `callback` at absolute simulation time `time` (>= now()).
  void schedule(double time, Callback callback);

  /// Pops and runs the earliest event; returns false when no events remain.
  bool run_next();

  /// Runs events with time <= end_time; the clock then finishes at
  /// end_time exactly (advanced past the last executed event), unless it
  /// was already beyond end_time, in which case nothing runs and the clock
  /// is unchanged.
  void run_until(double end_time);

  /// Drains the queue completely.
  void run_all();

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    double time = 0.0;
    std::uint64_t sequence = 0;  // Scheduling-order tie-break at equal times.
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace qp::sim
