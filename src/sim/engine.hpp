// Open-loop discrete-event queueing engine — the simulation counterpart of
// the analytic §4/§6/§7 response-time objectives.
//
// Model: one open-loop client per site issues quorum operations as a
// Poisson (or bursty MMPP) stream at its configured rate; each operation
// picks a quorum by the configured access strategy (closest / balanced /
// explicit LP distributions), sends one message per quorum element, and
// completes when the last reply returns. A message reaches server site
// f(u) after rtt/2, waits in the site's FIFO queue (optionally finite:
// overflow is dropped), is served for a deterministic or exponential
// service time by the single server core, and the reply takes another
// rtt/2. Scheduled ServerOutages (hand-written or compiled by
// sim/fault's FaultInjector) drop messages arriving in their window.
//
// With the retry machinery enabled (EngineConfig::retry, sim/retry.hpp)
// the engine also models request recovery: per-attempt timeouts, bounded
// retries with exponential backoff + deterministic jitter, and failover
// quorum re-choice that penalizes suspected-down sites (FailoverMode), with
// accounting such that issued == completed + failed + abandoned holds under
// arbitrary fault schedules. Disabled (the default), behavior and rng
// consumption are bitwise identical to the pre-retry engine.
//
// Where the analytic layer evaluates max_u(d(v, f(u)) + alpha * load) in
// closed form, the engine realizes the same system as a stochastic process,
// so predictions can be cross-validated under contention, demand skew,
// bursty arrivals, and outages (eval::sim_validation_sweep). At utilization
// rho -> 0 the simulated mean response converges to network delay +
// service; the analytic load term alpha * load_f(w) equals rho_w * S when
// alpha = S^2 * total arrival rate, the linear low-utilization queueing
// surrogate the validation sweep pins to 3%.
//
// Replications fan out deterministically over common/thread_pool: each
// replication derives its own rng stream from the master seed via a
// SplitMix64 chain (stream r = the r-th SplitMix64 output), results land in
// replication-indexed slots, and the reduction replays serial order — so
// results are bit-identical for any QP_THREADS. The fan-out is exercised
// under ThreadSanitizer by tests/race_stress_test.cpp (the `tsan` preset),
// including nested runs from inside a parallel_for worker.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"
#include "sim/arrivals.hpp"
#include "sim/retry.hpp"
#include "sim/service_queue.hpp"

namespace qp::sim {

enum class ServiceModel { Deterministic, Exponential };

enum class EngineStrategy { Closest, Balanced, Explicit };

/// How attempts re-choose their quorum when the retry machinery is on:
///  * None      — every attempt draws from the configured strategy;
///  * Suspicion — retries take the minimum-RTT quorum with suspected-down
///                sites (non-repliers of timed-out attempts, expiring after
///                suspicion_ttl_ms) penalized behind live ones; the first
///                attempt still uses the configured strategy;
///  * Oracle    — every attempt takes the minimum-RTT quorum with sites the
///                outage schedule marks down *right now* penalized — a
///                perfect failure detector, the simulation twin of the
///                analytic closest-live re-choice in
///                core::FailureAwareObjective (eval/sim_validation pins the
///                two against each other).
enum class FailoverMode { None, Suspicion, Oracle };

struct EngineConfig {
  double service_time_ms = 1.0;
  ServiceModel service_model = ServiceModel::Deterministic;
  /// Per-site queue limit (messages queued or in service); 0 = unbounded.
  /// Arrivals beyond the limit are rejected and counted.
  std::size_t queue_capacity = 0;

  ArrivalModel arrival_model = ArrivalModel::Poisson;
  MmppConfig mmpp{};

  EngineStrategy strategy = EngineStrategy::Balanced;
  /// Required for EngineStrategy::Explicit (e.g. an optimize_access_strategy
  /// result, or Objective::export_strategy); must outlive run_engine.
  const core::ExplicitStrategy* explicit_strategy = nullptr;

  /// Requests issued in [warmup_ms, warmup_ms + duration_ms) are measured;
  /// the simulation then drains completely.
  double warmup_ms = 2'000.0;
  double duration_ms = 20'000.0;

  std::uint64_t master_seed = 1;
  std::size_t replications = 3;

  std::vector<ServerOutage> outages;

  /// Request-recovery machinery. Disabled (the default) reproduces the
  /// pre-retry semantics bitwise: a message lost to an outage or overflow
  /// fails its request immediately. Enabled, lost messages vanish silently;
  /// each attempt arms a timeout, expired attempts retry (bounded by
  /// max_attempts, after exponential backoff with deterministic jitter),
  /// and requests that exhaust their attempts count as `abandoned`.
  RetryPolicy retry{};
  /// Failover quorum re-choice; anything but None requires retry.enabled().
  FailoverMode failover = FailoverMode::None;
  /// Suspicion expiry for FailoverMode::Suspicion.
  double suspicion_ttl_ms = 2'000.0;

  /// Measurement-window time-series probes: > 0 samples the live state of
  /// every replication each probe_interval_ms from warmup_ms to the end of
  /// issue (EngineProbe rows in ReplicationResult::probes;
  /// write_engine_timeseries_csv exports them). Probe events are strictly
  /// read-only — they consume no randomness and touch no simulation state —
  /// so every result is bitwise identical with probing on or off. 0 (the
  /// default) disables probing. Independent of the QP_OBS metrics gate.
  double probe_interval_ms = 0.0;

  /// Pool for the replication fan-out; nullptr = the shared global pool.
  common::ThreadPool* pool = nullptr;
};

/// One sampled snapshot of a replication's live state (probe_interval_ms).
/// Instantaneous fields describe the probe instant; the counters are the
/// replication's cumulative windowed totals up to it, so deltas between
/// consecutive probes give per-interval rates (how the PR 7 metastable
/// retry-amplification regime *develops*, not just its end state).
struct EngineProbe {
  double t_ms = 0.0;
  std::size_t busy_sites = 0;         // Server cores working right now.
  double busy_fraction = 0.0;         // busy_sites / site count.
  std::size_t queued_messages = 0;    // Messages queued or in service, all sites.
  std::size_t inflight_requests = 0;  // Issued but not yet resolved.
  std::size_t suspected_sites = 0;    // Live suspicion-list entries.
  std::size_t issued = 0;             // Cumulative windowed counters.
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t abandoned = 0;
  std::size_t retries = 0;
};

/// Per-replication measurements; everything below is warm-up trimmed.
struct ReplicationResult {
  common::RunningStats response;  // Issue-to-last-reply, completed requests.
  common::RunningStats network;   // Max quorum RTT at issue time (unloaded response).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Busy fraction of the measurement window per site.
  std::vector<double> site_utilization;
  std::size_t issued = 0;     // Requests issued inside the window.
  std::size_t completed = 0;  // ... of which all replies arrived.
  std::size_t failed = 0;     // ... of which lost a message to an outage/overflow.
  /// ... of which exhausted retry.max_attempts (retry machinery only; a
  /// windowed request is exactly one of completed / failed / abandoned).
  std::size_t abandoned = 0;
  std::size_t dropped_messages = 0;    // All outage drops, windowed or not.
  std::size_t rejected_arrivals = 0;   // All finite-queue overflows.
  std::size_t retries = 0;             // Retry attempts issued (beyond each first).
  std::size_t stale_replies = 0;       // Replies that outlived their attempt.
  /// Issue-to-completion of requests that needed more than one attempt
  /// (time-to-success through the retry path); subset of `response`.
  common::RunningStats retried_response;
  /// (failed + abandoned) / issued — the measured per-window fraction of
  /// requests that never got a full quorum of replies.
  double unavailability = 0.0;
  /// Give-up wall-clock (issue to last timeout / lost reply) of every
  /// windowed request that was never served — failed + abandoned — the
  /// degraded-mode twin of `response_samples`.
  std::vector<double> unserved_wait_ms;
  /// Response samples (completed, windowed), in completion order — kept for
  /// pooled percentiles and distribution checks.
  std::vector<double> response_samples;
  /// Time-series snapshots (empty unless EngineConfig::probe_interval_ms).
  std::vector<EngineProbe> probes;
};

struct EngineResult {
  double mean_response_ms = 0.0;
  double mean_network_delay_ms = 0.0;
  double p50_ms = 0.0;  // Pooled across replications.
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// p99 over served AND unserved windowed requests, the latter scored at
  /// their give-up wall-clock. `p99_ms` alone has survivorship bias under
  /// faults: a placement that abandons every storm-time request drops them
  /// from the percentile entirely and can look *faster* than one that keeps
  /// serving through retries. Equals `p99_ms` when nothing fails.
  double degraded_p99_ms = 0.0;
  common::RunningStats response;           // Merged across replications.
  std::vector<double> site_utilization;    // Mean across replications.
  double peak_utilization = 0.0;           // Busiest site's mean utilization.
  std::size_t issued = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t abandoned = 0;
  std::size_t dropped_messages = 0;
  std::size_t rejected_arrivals = 0;
  std::size_t retries = 0;
  std::size_t stale_replies = 0;
  common::RunningStats retried_response;  // Merged across replications.
  double unavailability = 0.0;            // (failed + abandoned) / issued.
  std::vector<ReplicationResult> replications;
};

/// Runs the engine: client v issues at arrival_rates_per_ms[v] (one entry
/// per site; 0 = no client there). Deterministic in config.master_seed for
/// any thread count.
[[nodiscard]] EngineResult run_engine(const net::LatencyMatrix& matrix,
                                      const quorum::QuorumSystem& system,
                                      const core::Placement& placement,
                                      std::span<const double> arrival_rates_per_ms,
                                      const EngineConfig& config);

/// Scales per-client arrival rates so the busiest site reaches utilization
/// `peak_rho`. `site_load` is the per-access probability that a demand-
/// share-weighted request executes on each site (Objective::site_loads /
/// site_loads_closest / site_loads_balanced / site_loads_explicit with the
/// same demand shape as `rates`), so site w's arrival rate is
/// sum(rates) * site_load[w] and rho_w = that * service_time.
[[nodiscard]] std::vector<double> scale_rates_to_peak_utilization(
    std::span<const double> rates, std::span<const double> site_load,
    double service_time_ms, double peak_rho);

/// The replication-r rng seed of the engine's SplitMix64 chain seeded by
/// `master_seed` — exposed so tests can reproduce a single replication.
[[nodiscard]] std::uint64_t replication_seed(std::uint64_t master_seed,
                                             std::size_t replication) noexcept;

/// Writes every replication's probe rows as CSV:
/// replication,t_ms,busy_sites,busy_fraction,queued_messages,
/// inflight_requests,suspected_sites,issued,completed,failed,abandoned,
/// retries — one row per probe, replications in order. Header always
/// written; no rows when the engine ran without probe_interval_ms.
void write_engine_timeseries_csv(const EngineResult& result, std::ostream& out);

}  // namespace qp::sim
