#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "core/response.hpp"
#include "sim/engine.hpp"

namespace qp::sim {

namespace {

/// World template the generator scales to any site count: Internet site
/// density circa the paper's datasets (US-heavy, strong EU, East Asia,
/// thinner everywhere else). Weights sum to 1.
struct RegionTemplate {
  const char* name;
  double latitude_deg;
  double longitude_deg;
  double spread_deg;
  double weight;
};

constexpr RegionTemplate kWorldTemplate[] = {
    {"us-east", 40.0, -75.0, 4.5, 0.18},   {"us-central", 41.0, -93.0, 5.0, 0.10},
    {"us-west", 37.0, -122.0, 4.0, 0.14},  {"eu-west", 51.0, 0.0, 4.5, 0.13},
    {"eu-central", 50.0, 10.0, 4.0, 0.08}, {"eu-north", 59.0, 18.0, 3.0, 0.04},
    {"asia-east", 35.5, 135.0, 5.0, 0.09}, {"asia-se", 1.3, 103.8, 2.5, 0.05},
    {"asia-south", 19.0, 77.0, 3.5, 0.05}, {"oceania", -33.8, 151.0, 3.0, 0.04},
    {"sa", -23.5, -46.6, 4.0, 0.05},       {"africa", 6.5, 3.4, 3.0, 0.03},
    {"middle-east", 25.0, 55.0, 3.0, 0.02},
};

/// Largest-remainder apportionment of `total` sites over the template
/// weights; deterministic (remainder ties break on template order).
std::vector<std::size_t> apportion_sites(std::size_t total) {
  constexpr std::size_t kRegions = std::size(kWorldTemplate);
  std::vector<std::size_t> counts(kRegions, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(kRegions);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < kRegions; ++i) {
    const double exact = kWorldTemplate[i].weight * static_cast<double>(total);
    counts[i] = static_cast<std::size_t>(exact);
    assigned += counts[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < total; ++i) {
    ++counts[remainders[i % kRegions].second];
    ++assigned;
  }
  return counts;
}

/// Pareto(shape, 1) draws normalized to the requested mean. Sorted nothing,
/// one draw per site, deterministic in the rng stream.
std::vector<double> power_law_demand(std::size_t count, double shape, double mean,
                                     common::Rng& rng) {
  std::vector<double> demand(count);
  double sum = 0.0;
  for (double& d : demand) {
    // Inverse-CDF: (1 - u)^(-1/shape), u in [0, 1).
    d = std::pow(1.0 - rng.uniform(), -1.0 / shape);
    sum += d;
  }
  if (sum <= 0.0 || mean == 0.0) {
    std::fill(demand.begin(), demand.end(), mean);
    return demand;
  }
  const double scale = mean * static_cast<double>(count) / sum;
  for (double& d : demand) d *= scale;
  return demand;
}

}  // namespace

double Scenario::total_demand() const noexcept {
  return std::accumulate(client_demand.begin(), client_demand.end(), 0.0);
}

double Scenario::mean_demand() const noexcept {
  if (client_demand.empty()) return 0.0;
  return total_demand() / static_cast<double>(client_demand.size());
}

double Scenario::alpha() const noexcept {
  return core::kQuWriteServiceMs * mean_demand();
}

core::LoadAwareObjective Scenario::load_objective() const {
  return core::LoadAwareObjective::for_demand(std::span<const double>{client_demand});
}

core::ClosestStrategyObjective Scenario::closest_objective() const {
  return core::ClosestStrategyObjective::for_demand(std::span<const double>{client_demand});
}

std::vector<double> Scenario::arrival_rates_for(double peak_rho, double service_time_ms,
                                                std::span<const double> site_load) const {
  return scale_rates_to_peak_utilization(client_demand, site_load, service_time_ms,
                                         peak_rho);
}

namespace {

/// Validates the config and expands the world template into the region list
/// the net/ generators consume; shared by the dense and sparse paths.
net::SyntheticConfig topology_config(const ScenarioConfig& config) {
  if (config.site_count == 0) {
    throw std::invalid_argument{"make_scenario: site_count must be positive"};
  }
  if (!(config.demand_shape > 1.0)) {
    throw std::invalid_argument{"make_scenario: demand_shape must exceed 1"};
  }
  if (config.mean_demand < 0.0) {
    throw std::invalid_argument{"make_scenario: mean_demand must be >= 0"};
  }
  net::SyntheticConfig topo;
  topo.seed = config.seed;
  const std::vector<std::size_t> counts = apportion_sites(config.site_count);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const RegionTemplate& region = kWorldTemplate[i];
    topo.regions.push_back(net::Region{region.name, region.latitude_deg,
                                       region.longitude_deg, region.spread_deg,
                                       counts[i]});
  }
  return topo;
}

}  // namespace

Scenario make_scenario(const ScenarioConfig& config) {
  const net::SyntheticConfig topo = topology_config(config);
  net::SyntheticTopology topology = net::generate_topology(topo);

  common::Rng demand_rng = common::Rng{config.seed}.fork(0xdeadbeef);
  return Scenario{config.name + "-" + std::to_string(config.site_count),
                  std::move(topology.matrix), std::move(topology.sites),
                  power_law_demand(config.site_count, config.demand_shape,
                                   config.mean_demand, demand_rng)};
}

Scenario synthetic500_scenario(std::uint64_t seed) {
  ScenarioConfig config;
  config.name = "synthetic";
  config.site_count = 500;
  config.seed = seed;
  return make_scenario(config);
}

core::ClosestStrategyObjective SparseScenario::closest_objective() const {
  return core::ClosestStrategyObjective::for_demand(std::span<const double>{client_demand});
}

SparseScenario make_sparse_scenario(const ScenarioConfig& config) {
  const net::SyntheticConfig topo = topology_config(config);
  net::SyntheticSites placed = net::generate_sites(topo);
  const std::size_t n = placed.sites.size();

  // 3-d Earth-chord coordinates, scaled so Euclidean distance reads directly
  // in round-trip milliseconds over inflated fiber routes. The chord slightly
  // underestimates the great-circle arc (< 1% under 4000 km, ~10% antipodal)
  // — the price of an exact low-dimensional metric.
  const double ms_per_km = 2.0 * topo.route_inflation_mean / net::kFiberKmPerMs;
  const double scale = net::kEarthRadiusKm * ms_per_km;
  std::vector<double> coords(3 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const double lat = placed.sites[i].latitude_deg * std::numbers::pi / 180.0;
    const double lon = placed.sites[i].longitude_deg * std::numbers::pi / 180.0;
    coords[3 * i + 0] = scale * std::cos(lat) * std::cos(lon);
    coords[3 * i + 1] = scale * std::cos(lat) * std::sin(lon);
    coords[3 * i + 2] = scale * std::sin(lat);
  }
  net::LatencyEmbedding space{3, std::move(coords), std::move(placed.access_delay_ms),
                              topo.min_rtt_ms};

  common::Rng demand_rng = common::Rng{config.seed}.fork(0xdeadbeef);
  std::vector<double> demand = power_law_demand(n, config.demand_shape,
                                                config.mean_demand, demand_rng);
  return SparseScenario{config.name + "-" + std::to_string(n), std::move(space),
                        std::move(placed.sites), std::move(demand)};
}

Scenario daxlist161_scenario(std::uint64_t seed) {
  net::LatencyMatrix matrix = net::daxlist161_synth(seed);
  common::Rng demand_rng = common::Rng{seed}.fork(0xdeadbeef);
  const ScenarioConfig defaults;
  std::vector<double> demand = power_law_demand(matrix.size(), defaults.demand_shape,
                                                defaults.mean_demand, demand_rng);
  return Scenario{"daxlist-161", std::move(matrix), {}, std::move(demand)};
}

}  // namespace qp::sim
