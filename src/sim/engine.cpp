#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include <ostream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/strategy_sampler.hpp"

namespace qp::sim {

namespace {

// Engine telemetry: request accounting totals (tallied once per
// replication, never per event), the response distribution, and probe
// activity. The per-event hot path carries no obs calls at all.
const obs::Counter c_eng_runs = obs::counter("sim.engine.runs");
const obs::Counter c_eng_replications = obs::counter("sim.engine.replications");
const obs::Counter c_eng_issued = obs::counter("sim.engine.requests_issued");
const obs::Counter c_eng_completed =
    obs::counter("sim.engine.requests_completed");
const obs::Counter c_eng_failed = obs::counter("sim.engine.requests_failed");
const obs::Counter c_eng_abandoned =
    obs::counter("sim.engine.requests_abandoned");
const obs::Counter c_eng_retries = obs::counter("sim.engine.retries");
const obs::Counter c_eng_dropped = obs::counter("sim.engine.dropped_messages");
const obs::Counter c_eng_rejected =
    obs::counter("sim.engine.rejected_arrivals");
const obs::Counter c_eng_probes = obs::counter("sim.engine.probes");
const obs::Histogram h_eng_response = obs::histogram("sim.engine.response_ms");

/// The engine's typed event union: one small value struct instead of a
/// heap-allocated std::function per event (~50 events per request). `id`
/// doubles as the client slot for Arrival events; the remaining fields are
/// meaningful per kind as noted.
struct EngineEvent {
  enum class Kind : std::uint8_t {
    Arrival,     // id = client slot.
    Message,     // Request message reaches `site` after `half_rtt`.
    Reply,       // Service at `site` done; reply lands at the client.
    Timeout,     // The attempt's retry timer expired.
    BeginRetry,  // Backoff elapsed; start the next attempt.
    Probe,       // Time-series snapshot; read-only, consumes no randomness.
  };
  Kind kind = Kind::Arrival;
  std::uint32_t attempt = 0;
  std::uint64_t id = 0;
  std::size_t site = 0;
  double half_rtt = 0.0;
};

/// One replication: owns the event queue, rng stream, stations, and request
/// table. Replications never share mutable state, so the fan-out is safe
/// and the serial-order reduction makes it bit-identical to a serial run.
class Replication {
 public:
  Replication(const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
              const core::Placement& placement, std::span<const double> rates,
              const EngineConfig& config, const QuorumSampler& sampler,
              std::uint64_t seed)
      : matrix_(matrix),
        system_(system),
        placement_(placement),
        config_(config),
        sampler_(sampler),
        rng_(seed),
        end_of_issue_(config.warmup_ms + config.duration_ms),
        stations_(matrix.size(),
                  ServiceStation{config.warmup_ms, config.warmup_ms + config.duration_ms,
                                 config.queue_capacity}),
        outages_(config.outages, matrix.size()),
        suspicion_(matrix.size(), config.suspicion_ttl_ms) {
    for (std::size_t v = 0; v < rates.size(); ++v) {
      if (rates[v] <= 0.0) continue;
      clients_.push_back(v);
      generators_.emplace_back(config.arrival_model, rates[v], config.mmpp, rng_);
    }
  }

  ReplicationResult run() {
    QP_TRACE_SPAN("sim.engine.replication");
    for (std::size_t slot = 0; slot < clients_.size(); ++slot) {
      const double first = generators_[slot].next(0.0, rng_);
      if (first < end_of_issue_) {
        queue_.schedule(first, EngineEvent{.id = slot});
      }
    }
    if (config_.probe_interval_ms > 0.0) {
      // Probes need queue occupancy on unbounded stations too; tracking is
      // observation-only (see ServiceStation::track_occupancy).
      for (ServiceStation& station : stations_) station.track_occupancy(true);
      queue_.schedule(config_.warmup_ms,
                      EngineEvent{.kind = EngineEvent::Kind::Probe});
    }
    queue_.run_all([this](const EngineEvent& event) { dispatch(event); });

    ReplicationResult result;
    result.response = response_;
    result.network = network_;
    if (!samples_.empty()) {
      std::vector<double> sorted = samples_;
      std::sort(sorted.begin(), sorted.end());
      result.p50_ms = common::percentile_sorted(sorted, 50.0);
      result.p95_ms = common::percentile_sorted(sorted, 95.0);
      result.p99_ms = common::percentile_sorted(sorted, 99.0);
    }
    result.site_utilization.reserve(stations_.size());
    for (const ServiceStation& station : stations_) {
      result.site_utilization.push_back(station.busy_in_window() / config_.duration_ms);
    }
    result.issued = issued_;
    result.completed = completed_;
    result.failed = failed_;
    result.abandoned = abandoned_;
    result.dropped_messages = dropped_;
    result.rejected_arrivals = rejected_;
    result.retries = retries_;
    result.stale_replies = stale_replies_;
    result.retried_response = retried_response_;
    result.unavailability =
        issued_ == 0 ? 0.0
                     : static_cast<double>(failed_ + abandoned_) /
                           static_cast<double>(issued_);
    // Metrics, tallied once per replication at the end of the drain (the
    // per-event path carries no obs calls). The response histogram records
    // before samples_ moves out.
    c_eng_replications.add();
    c_eng_issued.add(issued_);
    c_eng_completed.add(completed_);
    c_eng_failed.add(failed_);
    c_eng_abandoned.add(abandoned_);
    c_eng_retries.add(retries_);
    c_eng_dropped.add(dropped_);
    c_eng_rejected.add(rejected_);
    c_eng_probes.add(probes_.size());
    if (obs::enabled()) {
      for (double sample : samples_) h_eng_response.record(sample);
    }

    result.response_samples = std::move(samples_);
    result.unserved_wait_ms = std::move(unserved_wait_);
    result.probes = std::move(probes_);
    return result;
  }

 private:
  struct Request {
    double start = 0.0;
    std::size_t client = 0;
    std::size_t pending = 0;
    std::uint32_t attempt = 0;       // Tag discarding stale replies/timeouts.
    std::size_t attempts_used = 0;
    bool failed = false;
    bool windowed = false;
    /// Sites of the current attempt that have not replied yet — the
    /// suspects when the attempt times out. Maintained only with retries.
    std::vector<std::size_t> outstanding;
  };

  /// Pushes down/suspected sites behind every live one in the failover
  /// re-choice; large against any WAN RTT yet harmless to the argmin-max.
  static constexpr double kFailoverPenaltyMs = 1.0e7;
  static constexpr std::size_t kNoSite = static_cast<std::size_t>(-1);

  [[nodiscard]] bool retry_enabled() const noexcept { return config_.retry.enabled(); }

  void dispatch(const EngineEvent& event) {
    switch (event.kind) {
      case EngineEvent::Kind::Arrival:
        arrival(static_cast<std::size_t>(event.id));
        break;
      case EngineEvent::Kind::Message:
        message(event.id, event.attempt, event.site, event.half_rtt);
        break;
      case EngineEvent::Kind::Reply:
        resolve(event.id, event.attempt, event.site, /*message_lost=*/false);
        break;
      case EngineEvent::Kind::Timeout:
        timeout(event.id, event.attempt);
        break;
      case EngineEvent::Kind::BeginRetry:
        begin_retry(event.id, event.attempt);
        break;
      case EngineEvent::Kind::Probe:
        probe();
        break;
    }
  }

  /// Samples the replication's live state and schedules the next probe.
  /// Strictly read-only with respect to the simulation: no randomness is
  /// consumed and no request, station, or suspicion state is written
  /// (in_system only discards already-departed bookkeeping entries), so the
  /// event stream and every result are bitwise unchanged by probing.
  void probe() {
    const double now = queue_.now();
    EngineProbe sample;
    sample.t_ms = now;
    for (ServiceStation& station : stations_) {
      sample.busy_sites += station.busy_at(now) ? 1 : 0;
      sample.queued_messages += station.in_system(now);
    }
    sample.busy_fraction = stations_.empty()
                               ? 0.0
                               : static_cast<double>(sample.busy_sites) /
                                     static_cast<double>(stations_.size());
    sample.inflight_requests = requests_.size();
    sample.suspected_sites = suspicion_.suspected_count(now);
    sample.issued = issued_;
    sample.completed = completed_;
    sample.failed = failed_;
    sample.abandoned = abandoned_;
    sample.retries = retries_;
    probes_.push_back(sample);
    const double next = now + config_.probe_interval_ms;
    if (next <= end_of_issue_) {
      queue_.schedule(next, EngineEvent{.kind = EngineEvent::Kind::Probe});
    }
  }

  [[nodiscard]] double draw_service() {
    return config_.service_model == ServiceModel::Deterministic
               ? config_.service_time_ms
               : rng_.exponential(config_.service_time_ms);
  }

  /// An arrival event for client slot: issue one request, then schedule the
  /// client's next arrival.
  void arrival(std::size_t slot) {
    const double now = queue_.now();
    issue(clients_[slot], now);
    const double next = generators_[slot].next(now, rng_);
    if (next < end_of_issue_) {
      queue_.schedule(next, EngineEvent{.id = slot});
    }
  }

  void issue(std::size_t client, double now) {
    const std::uint64_t id = next_request_++;
    const auto it = requests_.emplace(id, Request{}).first;
    Request& request = it->second;
    request.start = now;
    request.client = client;
    request.windowed = now >= config_.warmup_ms && now < end_of_issue_;
    if (request.windowed) ++issued_;
    start_attempt(id, request, now);
  }

  /// The quorum the current attempt of `request` uses. The failover modes
  /// re-choose the minimum-RTT quorum with down (Oracle) or suspected
  /// (Suspicion, retries only) sites penalized behind every live one —
  /// still a valid quorum when no fully-live one exists, so the attempt
  /// simply times out and tries again.
  const quorum::Quorum& choose_quorum(const Request& request, double now) {
    const bool rechoice =
        config_.failover == FailoverMode::Oracle ||
        (config_.failover == FailoverMode::Suspicion && request.attempt > 1);
    if (!rechoice) return sampler_.draw(request.client, rng_, scratch_);
    const std::size_t n = placement_.site_of.size();
    values_.resize(n);
    for (std::size_t u = 0; u < n; ++u) {
      const std::size_t site = placement_.site_of[u];
      const bool avoid = config_.failover == FailoverMode::Oracle
                             ? outages_.down_at(site, now)
                             : suspicion_.suspected(site, now);
      values_[u] = matrix_.rtt(request.client, site) + (avoid ? kFailoverPenaltyMs : 0.0);
    }
    failover_quorum_ = system_.best_quorum(values_);
    return failover_quorum_;
  }

  /// Sends one attempt of the request to a quorum and (with retries) arms
  /// its timeout.
  void start_attempt(std::uint64_t id, Request& request, double now) {
    ++request.attempt;
    ++request.attempts_used;
    if (request.attempts_used > 1) ++retries_;
    const quorum::Quorum& chosen = choose_quorum(request, now);
    request.pending = chosen.size();
    request.outstanding.clear();
    const std::uint32_t attempt = request.attempt;
    double max_rtt = 0.0;
    for (std::size_t u : chosen) {
      const std::size_t site = placement_.site_of[u];
      const double rtt = matrix_.rtt(request.client, site);
      max_rtt = std::max(max_rtt, rtt);
      if (retry_enabled()) request.outstanding.push_back(site);
      const double half = rtt / 2.0;
      queue_.schedule(now + half, EngineEvent{EngineEvent::Kind::Message, attempt, id,
                                              site, half});
    }
    if (request.attempts_used == 1 && request.windowed) network_.add(max_rtt);
    if (retry_enabled()) {
      queue_.schedule(now + config_.retry.timeout_ms,
                      EngineEvent{EngineEvent::Kind::Timeout, attempt, id});
    }
  }

  void message(std::uint64_t id, std::uint32_t attempt, std::size_t site,
               double half_rtt) {
    const double now = queue_.now();
    if (outages_.down_at(site, now)) {
      ++dropped_;
      lost(id, attempt);
      return;
    }
    if (stations_[site].full(now)) {
      ++rejected_;
      lost(id, attempt);
      return;
    }
    const double depart = stations_[site].accept(now, draw_service());
    queue_.schedule(depart + half_rtt,
                    EngineEvent{EngineEvent::Kind::Reply, attempt, id, site});
  }

  /// A message died (outage drop / queue overflow). Without the retry
  /// machinery that fails the request immediately (legacy semantics); with
  /// it the loss is silent and the attempt's timeout recovers the request.
  void lost(std::uint64_t id, std::uint32_t attempt) {
    if (!retry_enabled()) resolve(id, attempt, kNoSite, /*message_lost=*/true);
  }

  /// One of the attempt's messages finished (reply arrived) or died (legacy
  /// loss). The request completes only if every message of the attempt
  /// came back.
  void resolve(std::uint64_t id, std::uint32_t attempt, std::size_t site,
               bool message_lost) {
    const auto it = requests_.find(id);
    if (retry_enabled() && (it == requests_.end() || it->second.attempt != attempt)) {
      // Replies can outlive their attempt (the request retried or was
      // abandoned) or the whole request (a timeout raced the last reply).
      ++stale_replies_;
      return;
    }
    QP_CHECK(it != requests_.end(),
             "Replication::resolve: reply for a request that is not in flight "
             "(double completion or table corruption)");
    Request& request = it->second;
    QP_CHECK(request.pending > 0,
             "Replication::resolve: request has no outstanding messages left");
    if (message_lost) {
      request.failed = true;
    } else if (retry_enabled()) {
      const auto pos =
          std::find(request.outstanding.begin(), request.outstanding.end(), site);
      if (pos != request.outstanding.end()) request.outstanding.erase(pos);
    }
    if (--request.pending > 0) return;
    if (request.windowed) {
      if (request.failed) {
        ++failed_;
        unserved_wait_.push_back(queue_.now() - request.start);
      } else {
        ++completed_;
        const double response = queue_.now() - request.start;
        response_.add(response);
        samples_.push_back(response);
        if (request.attempts_used > 1) retried_response_.add(response);
      }
    }
    requests_.erase(it);
  }

  /// The attempt's timeout expired. Stale when the attempt completed (the
  /// request was erased) or already moved on (tag mismatch) — then it is a
  /// no-op and in particular must not count toward retries (the engine twin
  /// of protocol_sim's attempt-tag discard path).
  void timeout(std::uint64_t id, std::uint32_t attempt) {
    const auto it = requests_.find(id);
    if (it == requests_.end() || it->second.attempt != attempt) return;
    Request& request = it->second;
    QP_CHECK(request.pending > 0,
             "Replication::timeout: armed attempt has no outstanding messages");
    const double now = queue_.now();
    if (config_.failover == FailoverMode::Suspicion) {
      for (std::size_t suspect : request.outstanding) suspicion_.suspect(suspect, now);
    }
    if (request.attempts_used >= config_.retry.max_attempts) {
      if (request.windowed) {
        ++abandoned_;
        unserved_wait_.push_back(now - request.start);
      }
      requests_.erase(it);
      return;
    }
    const double delay = config_.retry.backoff_delay(request.attempts_used, rng_);
    if (delay <= 0.0) {
      start_attempt(id, request, now);
      return;
    }
    // Kill the timed-out attempt before waiting: bump the tag so straggler
    // replies arriving during the backoff count as stale instead of
    // completing an attempt the client already gave up on.
    ++request.attempt;
    request.pending = 0;
    request.outstanding.clear();
    const std::uint32_t backoff_tag = request.attempt;
    queue_.schedule(now + delay,
                    EngineEvent{EngineEvent::Kind::BeginRetry, backoff_tag, id});
  }

  void begin_retry(std::uint64_t id, std::uint32_t backoff_tag) {
    const auto it = requests_.find(id);
    QP_CHECK(it != requests_.end() && it->second.attempt == backoff_tag,
             "Replication::begin_retry: request vanished during backoff");
    // The backoff tag consumed an attempt number but issued no messages;
    // hand the slot back so attempts_used keeps counting real attempts.
    --it->second.attempt;
    start_attempt(id, it->second, queue_.now());
  }

  const net::LatencyMatrix& matrix_;
  const quorum::QuorumSystem& system_;
  const core::Placement& placement_;
  const EngineConfig& config_;
  const QuorumSampler& sampler_;
  common::Rng rng_;
  double end_of_issue_;

  EventQueue<EngineEvent> queue_;
  std::vector<ServiceStation> stations_;
  OutageSchedule outages_;
  SuspicionList suspicion_;
  std::vector<std::size_t> clients_;            // Sites with a positive rate.
  std::vector<ArrivalGenerator> generators_;    // Parallel to clients_.
  // Keyed lookups only (find/emplace/erase) — never iterated, so the
  // implementation-defined order can't reach results (qp-lint QPL001).
  std::unordered_map<std::uint64_t, Request> requests_;
  std::uint64_t next_request_ = 0;
  quorum::Quorum scratch_;
  quorum::Quorum failover_quorum_;  // choose_quorum's re-choice result.
  std::vector<double> values_;      // Per-element RTT + penalty scratch.

  common::RunningStats response_;
  common::RunningStats network_;
  common::RunningStats retried_response_;
  std::vector<double> samples_;
  std::vector<double> unserved_wait_;
  std::vector<EngineProbe> probes_;
  std::size_t issued_ = 0;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::size_t abandoned_ = 0;
  std::size_t dropped_ = 0;
  std::size_t rejected_ = 0;
  std::size_t retries_ = 0;
  std::size_t stale_replies_ = 0;
};

QuorumSampler make_sampler(const net::LatencyMatrix& matrix,
                           const quorum::QuorumSystem& system,
                           const core::Placement& placement, const EngineConfig& config) {
  switch (config.strategy) {
    case EngineStrategy::Closest:
      return QuorumSampler::closest(matrix, system, placement);
    case EngineStrategy::Balanced:
      return QuorumSampler::balanced(system);
    case EngineStrategy::Explicit:
      if (config.explicit_strategy == nullptr) {
        throw std::invalid_argument{
            "run_engine: EngineStrategy::Explicit needs an explicit_strategy"};
      }
      return QuorumSampler::explicit_strategy(*config.explicit_strategy, matrix.size(),
                                              system);
  }
  throw std::logic_error{"run_engine: unknown strategy"};
}

}  // namespace

std::uint64_t replication_seed(std::uint64_t master_seed,
                               std::size_t replication) noexcept {
  std::uint64_t state = master_seed;
  std::uint64_t seed = common::splitmix64(state);
  for (std::size_t i = 0; i < replication; ++i) seed = common::splitmix64(state);
  return seed;
}

EngineResult run_engine(const net::LatencyMatrix& matrix,
                        const quorum::QuorumSystem& system,
                        const core::Placement& placement,
                        std::span<const double> arrival_rates_per_ms,
                        const EngineConfig& config) {
  QP_TRACE_SPAN("sim.engine.run");
  c_eng_runs.add();
  placement.validate(matrix.size());
  if (config.probe_interval_ms < 0.0 || !std::isfinite(config.probe_interval_ms)) {
    throw std::invalid_argument{"run_engine: probe_interval_ms must be finite and >= 0"};
  }
  if (arrival_rates_per_ms.size() != matrix.size()) {
    throw std::invalid_argument{"run_engine: one arrival rate per site required"};
  }
  double total_rate = 0.0;
  for (double rate : arrival_rates_per_ms) {
    if (!(rate >= 0.0) || !std::isfinite(rate)) {
      throw std::invalid_argument{"run_engine: arrival rates must be finite and >= 0"};
    }
    total_rate += rate;
  }
  if (total_rate <= 0.0) {
    throw std::invalid_argument{"run_engine: no client has a positive arrival rate"};
  }
  if (!(config.service_time_ms > 0.0) || !(config.duration_ms > 0.0) ||
      !(config.warmup_ms >= 0.0)) {
    throw std::invalid_argument{"run_engine: bad timing configuration"};
  }
  if (config.replications == 0) {
    throw std::invalid_argument{"run_engine: replications must be >= 1"};
  }
  config.retry.validate();
  if (config.failover != FailoverMode::None && !config.retry.enabled()) {
    throw std::invalid_argument{
        "run_engine: failover re-choice requires an enabled retry policy"};
  }
  if (config.failover == FailoverMode::Suspicion && !(config.suspicion_ttl_ms > 0.0)) {
    throw std::invalid_argument{
        "run_engine: FailoverMode::Suspicion needs a positive suspicion_ttl_ms"};
  }

  const QuorumSampler sampler = make_sampler(matrix, system, placement, config);
  // Validate the outage schedule once up front (each replication rebuilds
  // its own copy; a bad site index should throw before the fan-out).
  (void)OutageSchedule{config.outages, matrix.size()};

  std::vector<ReplicationResult> replications(config.replications);
  common::ThreadPool& pool =
      config.pool != nullptr ? *config.pool : common::global_thread_pool();
  pool.parallel_for(0, config.replications, [&](std::size_t r) {
    Replication replication{matrix,  system,
                            placement, arrival_rates_per_ms,
                            config,  sampler,
                            replication_seed(config.master_seed, r)};
    replications[r] = replication.run();
  });

  EngineResult result;
  result.site_utilization.assign(matrix.size(), 0.0);
  common::RunningStats network;
  std::vector<double> pooled;
  std::vector<double> degraded;  // Served responses + unserved give-up waits.
  for (const ReplicationResult& rep : replications) {
    result.response.merge(rep.response);
    network.merge(rep.network);
    for (std::size_t w = 0; w < matrix.size(); ++w) {
      result.site_utilization[w] += rep.site_utilization[w];
    }
    result.issued += rep.issued;
    result.completed += rep.completed;
    result.failed += rep.failed;
    result.abandoned += rep.abandoned;
    result.dropped_messages += rep.dropped_messages;
    result.rejected_arrivals += rep.rejected_arrivals;
    result.retries += rep.retries;
    result.stale_replies += rep.stale_replies;
    result.retried_response.merge(rep.retried_response);
    pooled.insert(pooled.end(), rep.response_samples.begin(),
                  rep.response_samples.end());
    degraded.insert(degraded.end(), rep.unserved_wait_ms.begin(),
                    rep.unserved_wait_ms.end());
  }
  // run_all drains every event, so every measurement-window request must
  // have resolved exactly once as completed, failed, or abandoned — under
  // arbitrary fault schedules and retry policies.
  QP_CHECK(result.completed + result.failed + result.abandoned == result.issued,
           "run_engine: windowed request accounting does not balance");
  result.unavailability =
      result.issued == 0
          ? 0.0
          : static_cast<double>(result.failed + result.abandoned) /
                static_cast<double>(result.issued);
  const double inv_reps = 1.0 / static_cast<double>(config.replications);
  for (double& utilization : result.site_utilization) utilization *= inv_reps;
  result.peak_utilization =
      *std::max_element(result.site_utilization.begin(), result.site_utilization.end());
  result.mean_response_ms = result.response.mean();
  result.mean_network_delay_ms = network.mean();
  if (!pooled.empty()) {
    std::sort(pooled.begin(), pooled.end());
    result.p50_ms = common::percentile_sorted(pooled, 50.0);
    result.p95_ms = common::percentile_sorted(pooled, 95.0);
    result.p99_ms = common::percentile_sorted(pooled, 99.0);
  }
  degraded.insert(degraded.end(), pooled.begin(), pooled.end());
  if (!degraded.empty()) {
    std::sort(degraded.begin(), degraded.end());
    result.degraded_p99_ms = common::percentile_sorted(degraded, 99.0);
  }
  result.replications = std::move(replications);
  return result;
}

void write_engine_timeseries_csv(const EngineResult& result, std::ostream& out) {
  out << "replication,t_ms,busy_sites,busy_fraction,queued_messages,"
         "inflight_requests,suspected_sites,issued,completed,failed,"
         "abandoned,retries\n";
  for (std::size_t r = 0; r < result.replications.size(); ++r) {
    for (const EngineProbe& p : result.replications[r].probes) {
      out << r << ',' << p.t_ms << ',' << p.busy_sites << ','
          << p.busy_fraction << ',' << p.queued_messages << ','
          << p.inflight_requests << ',' << p.suspected_sites << ','
          << p.issued << ',' << p.completed << ',' << p.failed << ','
          << p.abandoned << ',' << p.retries << '\n';
    }
  }
}

std::vector<double> scale_rates_to_peak_utilization(std::span<const double> rates,
                                                    std::span<const double> site_load,
                                                    double service_time_ms,
                                                    double peak_rho) {
  if (!(service_time_ms > 0.0) || !(peak_rho > 0.0)) {
    throw std::invalid_argument{
        "scale_rates_to_peak_utilization: service time and rho must be positive"};
  }
  double total = 0.0;
  for (double rate : rates) total += rate;
  const double max_load =
      site_load.empty() ? 0.0 : *std::max_element(site_load.begin(), site_load.end());
  if (!(total > 0.0) || !(max_load > 0.0)) {
    throw std::invalid_argument{
        "scale_rates_to_peak_utilization: rates and site loads must carry mass"};
  }
  const double factor = peak_rho / (service_time_ms * total * max_load);
  std::vector<double> scaled(rates.begin(), rates.end());
  for (double& rate : scaled) rate *= factor;
  return scaled;
}

}  // namespace qp::sim
