// Seeded synthetic workload scenarios: a latency topology plus a per-client
// demand vector, the unit the large-topology evaluations consume.
//
// The paper's evaluation stops at 161 sites with uniform client demand; the
// ROADMAP's "millions of users" trajectory needs larger topologies and
// skewed workloads. A Scenario bundles
//   * a metric-closed WAN latency matrix (net/synthetic embedded-coordinate
//     generator, scaled to any site count across a world template of
//     regions), and
//   * a power-law (Pareto) per-client demand vector, normalized to a chosen
//     mean — real client populations are heavy-tailed, not uniform.
// Everything is deterministic in one 64-bit seed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/objective.hpp"
#include "net/embedding.hpp"
#include "net/latency_matrix.hpp"
#include "net/synthetic.hpp"

namespace qp::sim {

struct ScenarioConfig {
  std::string name = "synthetic";
  /// Total sites, distributed across the world template proportionally.
  std::size_t site_count = 500;
  std::uint64_t seed = 20070601;
  /// Pareto shape of the per-client demand distribution; must exceed 1 so
  /// the mean exists. Smaller = heavier tail (1.6 gives a top-1% share of
  /// roughly a quarter of the total demand).
  double demand_shape = 1.6;
  /// Mean per-client demand in requests/sec after normalization; the §7
  /// response model maps this to alpha = kQuWriteServiceMs * demand.
  double mean_demand = 8'000.0;
};

struct Scenario {
  std::string name;
  net::LatencyMatrix matrix;
  /// Generated coordinates (empty for dataset-backed scenarios).
  std::vector<net::SiteLocation> sites;
  /// Per-client demand, requests/sec; one entry per site.
  std::vector<double> client_demand;

  [[nodiscard]] std::size_t site_count() const noexcept { return matrix.size(); }
  [[nodiscard]] double total_demand() const noexcept;
  [[nodiscard]] double mean_demand() const noexcept;
  /// The §7 response-model coefficient for this workload:
  /// kQuWriteServiceMs * mean_demand().
  [[nodiscard]] double alpha() const noexcept;

  /// Demand-weighted search objectives of this workload: per-client weights
  /// from client_demand, alpha from the mean demand. load_objective is the
  /// §7 balanced-strategy response time, closest_objective the §6
  /// closest-strategy one.
  [[nodiscard]] core::LoadAwareObjective load_objective() const;
  [[nodiscard]] core::ClosestStrategyObjective closest_objective() const;

  /// Open-loop per-client arrival rates (requests/ms) for the queueing
  /// engine (sim/engine): the demand vector's shape, scaled so the busiest
  /// site reaches utilization `peak_rho`. `site_load` is the per-access
  /// demand-share-weighted site load of the strategy being simulated
  /// (e.g. the scenario objective's site_loads for a placement), which
  /// turns raw demand — far beyond what one server core serves — into a
  /// simulable workload at a controlled operating point.
  [[nodiscard]] std::vector<double> arrival_rates_for(
      double peak_rho, double service_time_ms, std::span<const double> site_load) const;
};

/// Generates the scenario for `config`. Throws on zero sites, a shape <= 1,
/// or a negative mean demand.
[[nodiscard]] Scenario make_scenario(const ScenarioConfig& config = {});

/// The canned 500-site scenario of the large-topology benchmark.
[[nodiscard]] Scenario synthetic500_scenario(std::uint64_t seed = 20070601);

/// daxlist-161 stand-in (161 sites) with power-law demand on top.
[[nodiscard]] Scenario daxlist161_scenario(std::uint64_t seed = 20060702);

/// A scenario generated directly in embedding space — the 10k-50k-site
/// regime where a dense matrix (n^2 doubles) is off the table. Sites are
/// placed exactly like make_scenario's (same world template, same seeded
/// streams, so the locations match the dense generator bitwise for equal
/// site counts); RTTs are modeled as
///
///   rtt(i, j) = max(min_rtt, chord_ms(i, j) + access_i + access_j)
///
/// with chord_ms the 3-d Earth-chord distance scaled to round-trip fiber
/// milliseconds at the mean route inflation, and the per-site access delays
/// as Vivaldi heights. Unlike the dense generator there is no per-pair
/// jitter or inflation spread — the embedding IS the ground truth, which is
/// what makes O(n) generation possible at all. Memory is O(n * 3).
struct SparseScenario {
  std::string name;
  net::LatencyEmbedding space;
  /// Generated coordinates, one per site.
  std::vector<net::SiteLocation> sites;
  /// Per-client demand, requests/sec; one entry per site.
  std::vector<double> client_demand;

  [[nodiscard]] std::size_t site_count() const noexcept { return space.size(); }
  /// Demand-weighted §6 closest-strategy search objective of this workload.
  [[nodiscard]] core::ClosestStrategyObjective closest_objective() const;
};

/// Generates the sparse scenario: `site_count` sites over the world
/// template, power-law demand. Same validation as make_scenario.
[[nodiscard]] SparseScenario make_sparse_scenario(const ScenarioConfig& config);

}  // namespace qp::sim
