#include "sim/service_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace qp::sim {

OutageSchedule::OutageSchedule(std::span<const ServerOutage> outages,
                               std::size_t site_count) {
  if (outages.empty()) return;
  by_site_.resize(site_count);
  for (const ServerOutage& outage : outages) {
    if (outage.site >= site_count) {
      throw std::out_of_range{"OutageSchedule: outage site out of range"};
    }
    if (!(outage.start_ms < outage.end_ms)) {
      throw std::invalid_argument{"OutageSchedule: outage window must be non-empty"};
    }
    by_site_[outage.site].emplace_back(outage.start_ms, outage.end_ms);
  }
  // Normalize each site to sorted, disjoint windows: overlapping and
  // abutting ([a,b) + [b,c)) windows merge, so down_at can binary-search.
  for (auto& windows : by_site_) {
    std::sort(windows.begin(), windows.end());
    std::size_t merged = 0;
    for (const auto& window : windows) {
      if (merged > 0 && window.first <= windows[merged - 1].second) {
        windows[merged - 1].second = std::max(windows[merged - 1].second, window.second);
      } else {
        windows[merged++] = window;
      }
    }
    windows.resize(merged);
  }
}

bool OutageSchedule::down_at(std::size_t site, double time) const noexcept {
  if (by_site_.empty()) return false;
  const auto& windows = by_site_[site];
  // The only window that can cover `time` is the last one starting at or
  // before it (windows are disjoint and ascending).
  const auto after = std::upper_bound(
      windows.begin(), windows.end(), time,
      [](double t, const std::pair<double, double>& w) { return t < w.first; });
  return after != windows.begin() && std::prev(after)->second > time;
}

std::span<const std::pair<double, double>> OutageSchedule::windows(
    std::size_t site) const noexcept {
  if (site >= by_site_.size()) return {};
  return by_site_[site];
}

double OutageSchedule::down_time(std::size_t site, double from_ms,
                                 double to_ms) const noexcept {
  double total = 0.0;
  for (const auto& [start, end] : windows(site)) {
    total += std::max(0.0, std::min(end, to_ms) - std::max(start, from_ms));
  }
  return total;
}

ServiceStation::ServiceStation(double window_start, double window_end,
                               std::size_t capacity)
    : window_start_(window_start), window_end_(window_end), capacity_(capacity) {}

std::size_t ServiceStation::in_system(double time) noexcept {
  while (!departures_.empty() && departures_.front() <= time) departures_.pop_front();
  return departures_.size();
}

double ServiceStation::accept(double now, double service_time) {
  const double start_service = std::max(next_free_, now);
  const double depart = start_service + service_time;
  next_free_ = depart;
  const double overlap = std::max(
      0.0, std::min(depart, window_end_) - std::max(start_service, window_start_));
  busy_ += overlap;
  if (capacity_ != 0 || tracked_) departures_.push_back(depart);
  return depart;
}

}  // namespace qp::sim
