#include "sim/service_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace qp::sim {

OutageSchedule::OutageSchedule(std::span<const ServerOutage> outages,
                               std::size_t site_count) {
  if (outages.empty()) return;
  by_site_.resize(site_count);
  for (const ServerOutage& outage : outages) {
    if (outage.site >= site_count) {
      throw std::out_of_range{"OutageSchedule: outage site out of range"};
    }
    if (!(outage.start_ms < outage.end_ms)) {
      throw std::invalid_argument{"OutageSchedule: outage window must be non-empty"};
    }
    by_site_[outage.site].emplace_back(outage.start_ms, outage.end_ms);
  }
}

bool OutageSchedule::down_at(std::size_t site, double time) const noexcept {
  if (by_site_.empty()) return false;
  for (const auto& [start, end] : by_site_[site]) {
    if (time >= start && time < end) return true;
  }
  return false;
}

ServiceStation::ServiceStation(double window_start, double window_end,
                               std::size_t capacity)
    : window_start_(window_start), window_end_(window_end), capacity_(capacity) {}

std::size_t ServiceStation::in_system(double time) noexcept {
  while (!departures_.empty() && departures_.front() <= time) departures_.pop_front();
  return departures_.size();
}

double ServiceStation::accept(double now, double service_time) {
  const double start_service = std::max(next_free_, now);
  const double depart = start_service + service_time;
  next_free_ = depart;
  const double overlap = std::max(
      0.0, std::min(depart, window_end_) - std::max(start_service, window_start_));
  busy_ += overlap;
  if (capacity_ != 0) departures_.push_back(depart);
  return depart;
}

}  // namespace qp::sim
