#include "sim/protocol_sim.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/rng.hpp"
#include "core/strategy.hpp"
#include "sim/event_queue.hpp"
#include "sim/service_queue.hpp"

namespace qp::sim {

namespace {

/// The closed-loop simulator's typed event union (see EngineEvent in
/// engine.cpp for the rationale). Fields are meaningful per kind as noted.
struct SimEvent {
  enum class Kind : std::uint8_t {
    Issue,    // Client starts a brand-new request.
    Arrive,   // Request message reaches `site` after rtt/2.
    Reply,    // Service done; reply lands back at the client.
    Timeout,  // The attempt's retry timer expired.
  };
  Kind kind = Kind::Issue;
  std::uint64_t attempt = 0;
  std::size_t client = 0;
  std::size_t site = 0;
  double rtt = 0.0;
};

struct Client {
  std::size_t site = 0;
  quorum::Quorum fixed_quorum;  // Used when the closest strategy is on.
  // One outstanding request at a time (closed loop).
  double request_start = 0.0;
  double request_network_delay = 0.0;
  std::size_t replies_pending = 0;
  std::uint64_t attempt = 0;       // Tag to discard stale replies/timeouts.
  std::size_t attempts_used = 0;   // Attempts spent on the current request.
};

class Simulator {
 public:
  Simulator(const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
            const core::Placement& placement, std::span<const std::size_t> client_sites,
            const ProtocolSimConfig& config)
      : matrix_(matrix),
        system_(system),
        placement_(placement),
        config_(config),
        rng_(config.seed) {
    placement_.validate(matrix_.size());
    if (client_sites.empty()) throw std::invalid_argument{"protocol_sim: no client sites"};
    if (config_.clients_per_site == 0) {
      throw std::invalid_argument{"protocol_sim: clients_per_site must be >= 1"};
    }
    if (config_.service_time_ms < 0.0 || config_.duration_ms <= 0.0 ||
        config_.warmup_ms < 0.0 || config_.per_message_cpu_ms < 0.0) {
      throw std::invalid_argument{"protocol_sim: bad timing configuration"};
    }
    if (!config_.outages.empty() && config_.request_timeout_ms <= 0.0) {
      throw std::invalid_argument{
          "protocol_sim: outages require a positive request_timeout_ms"};
    }
    retry_ = config_.retry_policy();
    retry_.validate();  // Shared policy checks (max_attempts >= 1, ...).
    outages_ = OutageSchedule{config_.outages, matrix_.size()};
    end_of_issue_ = config_.warmup_ms + config_.duration_ms;
    // Unbounded FIFO stations (capacity 0): identical arithmetic to the
    // historical scalar next-free bookkeeping, now shared with sim/engine.
    stations_.assign(matrix_.size(),
                     ServiceStation{config_.warmup_ms, end_of_issue_, 0});
    for (std::size_t site : client_sites) {
      if (site >= matrix_.size()) throw std::out_of_range{"protocol_sim: client site"};
      for (std::size_t c = 0; c < config_.clients_per_site; ++c) {
        Client client;
        client.site = site;
        if (config_.use_closest_strategy) {
          const std::vector<double> distances =
              core::element_distances(matrix_, placement_, site);
          client.fixed_quorum = system_.best_quorum(distances);
        }
        clients_.push_back(std::move(client));
      }
    }
  }

  ProtocolSimResult run() {
    // Stagger client starts within the first millisecond so that perfectly
    // synchronized arrivals do not create artificial convoys.
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      const double start = rng_.uniform() * 1.0;
      queue_.schedule(start, SimEvent{.client = c});
    }
    queue_.run_all([this](const SimEvent& event) { dispatch(event); });

    ProtocolSimResult result;
    result.response_stats = response_stats_;
    result.network_stats = network_stats_;
    result.completed_requests = response_stats_.count();
    result.avg_response_ms = response_stats_.mean();
    result.avg_network_delay_ms = network_stats_.mean();
    result.throughput_rps =
        static_cast<double>(result.completed_requests) / (config_.duration_ms / 1000.0);
    result.failed_requests = failed_requests_;
    result.total_retries = total_retries_;
    result.dropped_messages = dropped_messages_;
    const std::vector<std::size_t> support = placement_.support_set();
    double busy_total = 0.0;
    for (std::size_t site : support) busy_total += stations_[site].busy_in_window();
    result.avg_server_busy_fraction =
        busy_total / (config_.duration_ms * static_cast<double>(support.size()));
    return result;
  }

 private:
  void dispatch(const SimEvent& event) {
    switch (event.kind) {
      case SimEvent::Kind::Issue:
        issue(event.client);
        break;
      case SimEvent::Kind::Arrive:
        arrive(event.client, event.attempt, event.site, event.rtt);
        break;
      case SimEvent::Kind::Reply:
        reply(event.client, event.attempt);
        break;
      case SimEvent::Kind::Timeout:
        timeout(event.client, event.attempt);
        break;
    }
  }

  /// Begins a brand-new request for client c (closed loop).
  void issue(std::size_t c) {
    Client& client = clients_[c];
    const double now = queue_.now();
    if (now >= end_of_issue_) return;  // Measurement window over; stop this client.
    client.request_start = now;
    client.attempts_used = 0;
    start_attempt(c, /*is_retry=*/false);
  }

  /// Sends one attempt of the current request to a quorum.
  void start_attempt(std::size_t c, bool is_retry) {
    Client& client = clients_[c];
    const double now = queue_.now();
    ++client.attempt;
    ++client.attempts_used;

    // Retries always draw a fresh random quorum: the fixed closest quorum
    // may contain the very server whose outage caused the timeout.
    const quorum::Quorum quorum =
        (config_.use_closest_strategy && !is_retry) ? client.fixed_quorum
                                                    : system_.sample_quorums(1, rng_)[0];
    client.replies_pending = quorum.size();
    const std::uint64_t attempt = client.attempt;
    double max_rtt = 0.0;
    for (std::size_t u : quorum) {
      const std::size_t server_site = placement_.site_of[u];
      const double rtt = matrix_.rtt(client.site, server_site);
      max_rtt = std::max(max_rtt, rtt);
      queue_.schedule(now + rtt / 2.0,
                      SimEvent{SimEvent::Kind::Arrive, attempt, c, server_site, rtt});
    }
    if (!is_retry) client.request_network_delay = max_rtt;
    if (retry_.enabled()) {
      queue_.schedule(now + retry_.timeout_ms,
                      SimEvent{SimEvent::Kind::Timeout, attempt, c});
    }
  }

  void arrive(std::size_t c, std::uint64_t attempt, std::size_t server_site, double rtt) {
    const double now = queue_.now();
    if (outages_.down_at(server_site, now)) {
      ++dropped_messages_;
      return;  // Crashed server: the message is lost; the client will time out.
    }
    const double depart = stations_[server_site].accept(
        now, config_.service_time_ms + config_.per_message_cpu_ms);
    queue_.schedule(depart + rtt / 2.0, SimEvent{SimEvent::Kind::Reply, attempt, c});
  }

  void reply(std::size_t c, std::uint64_t attempt) {
    Client& client = clients_[c];
    if (attempt != client.attempt) return;  // Reply for an abandoned attempt.
    if (client.replies_pending == 0) {
      throw std::logic_error{"protocol_sim: reply without outstanding request"};
    }
    if (--client.replies_pending > 0) return;
    const double now = queue_.now();
    // Count requests issued inside the measurement window.
    if (client.request_start >= config_.warmup_ms && client.request_start < end_of_issue_) {
      response_stats_.add(now - client.request_start);
      network_stats_.add(client.request_network_delay);
    }
    issue(c);
  }

  void timeout(std::size_t c, std::uint64_t attempt) {
    Client& client = clients_[c];
    // Stale-timeout discard: a completed attempt either bumped the tag (the
    // next start_attempt) or — for the last request before end-of-window —
    // left the tag with no replies pending. Neither may count as a retry.
    if (attempt != client.attempt || client.replies_pending == 0) return;
    if (client.attempts_used >= retry_.max_attempts) {
      ++failed_requests_;
      // Kill the abandoned attempt's tag: stragglers still in flight must
      // be discarded by reply(), not complete (and double-count) a request
      // already recorded as failed — reachable when issue() below hits
      // end-of-window and therefore never bumps the tag itself.
      ++client.attempt;
      client.replies_pending = 0;
      issue(c);  // Give up on this request; move on.
      return;
    }
    ++total_retries_;
    start_attempt(c, /*is_retry=*/true);
  }

  const net::LatencyMatrix& matrix_;
  const quorum::QuorumSystem& system_;
  const core::Placement& placement_;
  ProtocolSimConfig config_;
  RetryPolicy retry_;  // config_'s timeout knobs as the shared policy.
  common::Rng rng_;

  EventQueue<SimEvent> queue_;
  std::vector<Client> clients_;
  std::vector<ServiceStation> stations_;
  OutageSchedule outages_;
  common::RunningStats response_stats_;
  common::RunningStats network_stats_;
  double end_of_issue_ = 0.0;
  std::size_t failed_requests_ = 0;
  std::size_t total_retries_ = 0;
  std::size_t dropped_messages_ = 0;
};

}  // namespace

ProtocolSimResult run_protocol_sim(const net::LatencyMatrix& matrix,
                                   const quorum::QuorumSystem& system,
                                   const core::Placement& placement,
                                   std::span<const std::size_t> client_sites,
                                   const ProtocolSimConfig& config) {
  Simulator simulator{matrix, system, placement, client_sites, config};
  return simulator.run();
}

}  // namespace qp::sim
