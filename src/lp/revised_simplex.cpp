#include "lp/revised_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qp::lp {

namespace {

// Solver telemetry: totals across solves plus the largest eta file any
// single factorization carried (the fill the ftran/btran sweeps pay for).
const obs::Counter c_rs_solves = obs::counter("lp.revised.solves");
const obs::Counter c_rs_iterations = obs::counter("lp.revised.iterations");
const obs::Counter c_rs_refactorizations =
    obs::counter("lp.revised.refactorizations");
const obs::Gauge g_rs_eta_len_max = obs::gauge("lp.revised.eta_len_max");

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// One nonzero of an L or U column. For L the index is an original row; for
/// U it is an earlier elimination step.
struct LuEntry {
  std::size_t index = 0;
  double value = 0.0;
};

/// Sparse LU factorization of the basis via Gilbert–Peierls left-looking
/// elimination with partial pivoting. Pivot ties break toward the lowest
/// original row index, so the factorization (and everything downstream) is
/// deterministic for a given basis.
class SparseLu {
 public:
  /// Factors B whose k-th column is columns[basis[k]]. Returns false when
  /// the best available pivot falls below `singular_tol` (singular basis).
  [[nodiscard]] bool factor(const std::vector<std::vector<ColumnEntry>>& columns,
                            const std::vector<std::size_t>& basis, std::size_t m,
                            double singular_tol) {
    m_ = m;
    pivot_row_.assign(m, kNone);
    row_step_.assign(m, kNone);
    l_cols_.assign(m, {});
    u_cols_.assign(m, {});
    u_diag_.assign(m, 0.0);
    work_.assign(m, 0.0);
    mark_.assign(m, 0);
    touched_.clear();
    touched_.reserve(m);

    for (std::size_t k = 0; k < m; ++k) {
      touched_.clear();
      for (const ColumnEntry& entry : columns[basis[k]]) {
        work_[entry.row] += entry.value;
        if (mark_[entry.row] == 0) {
          mark_[entry.row] = 1;
          touched_.push_back(entry.row);
        }
      }
      // Eliminate with the finished steps in order; a step whose pivot-row
      // value is exactly zero contributes nothing and is skipped.
      for (std::size_t s = 0; s < k; ++s) {
        const double xs = work_[pivot_row_[s]];
        if (xs == 0.0) continue;
        u_cols_[k].push_back({s, xs});
        for (const LuEntry& l : l_cols_[s]) {
          work_[l.index] -= l.value * xs;
          if (mark_[l.index] == 0) {
            mark_[l.index] = 1;
            touched_.push_back(l.index);
          }
        }
      }
      // Partial pivot among the not-yet-pivotal rows of this column. The
      // (magnitude, lowest-row) criterion is a total order, so the choice
      // does not depend on the order rows were touched.
      std::size_t pivot = kNone;
      double best = 0.0;
      for (std::size_t row : touched_) {
        if (row_step_[row] != kNone) continue;
        const double magnitude = std::abs(work_[row]);
        if (magnitude > best || (pivot != kNone && magnitude == best && row < pivot)) {
          best = magnitude;
          pivot = row;
        }
      }
      if (pivot == kNone || best < singular_tol) {
        clear_touched();
        return false;
      }
      const double diag = work_[pivot];
      u_diag_[k] = diag;
      for (std::size_t row : touched_) {
        if (row_step_[row] != kNone || row == pivot) continue;
        const double value = work_[row];
        if (value != 0.0) l_cols_[k].push_back({row, value / diag});
      }
      pivot_row_[k] = pivot;
      row_step_[pivot] = k;
      clear_touched();
    }
    return true;
  }

  /// Solves B w = rhs. `rhs` is a dense vector in original row space; it is
  /// consumed (zeroed) by the call. `out` receives the solution in position
  /// space: out[k] multiplies basis column k.
  void solve(std::vector<double>& rhs, std::vector<double>& out) const {
    for (std::size_t k = 0; k < m_; ++k) {
      const double xs = rhs[pivot_row_[k]];
      if (xs == 0.0) continue;
      for (const LuEntry& l : l_cols_[k]) rhs[l.index] -= l.value * xs;
    }
    out.resize(m_);
    for (std::size_t k = 0; k < m_; ++k) out[k] = rhs[pivot_row_[k]];
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (std::size_t k = m_; k-- > 0;) {
      const double value = out[k] / u_diag_[k];
      out[k] = value;
      if (value != 0.0) {
        for (const LuEntry& u : u_cols_[k]) out[u.index] -= u.value * value;
      }
    }
  }

  /// Solves B^T y = c. `c` is in position space (c[k] = cost of basis column
  /// k); `y` comes back in original row space. `scratch` is resized to m.
  void solve_transpose(const std::vector<double>& c, std::vector<double>& y,
                       std::vector<double>& scratch) const {
    scratch.resize(m_);
    for (std::size_t k = 0; k < m_; ++k) {
      double acc = c[k];
      for (const LuEntry& u : u_cols_[k]) acc -= u.value * scratch[u.index];
      scratch[k] = acc / u_diag_[k];
    }
    y.assign(m_, 0.0);
    for (std::size_t k = 0; k < m_; ++k) y[pivot_row_[k]] = scratch[k];
    for (std::size_t k = m_; k-- > 0;) {
      double acc = y[pivot_row_[k]];
      for (const LuEntry& l : l_cols_[k]) acc -= l.value * y[l.index];
      y[pivot_row_[k]] = acc;
    }
  }

 private:
  void clear_touched() {
    for (std::size_t row : touched_) {
      work_[row] = 0.0;
      mark_[row] = 0;
    }
    touched_.clear();
  }

  std::size_t m_ = 0;
  std::vector<std::size_t> pivot_row_;  // Step -> original row.
  std::vector<std::size_t> row_step_;   // Original row -> step (kNone until pivotal).
  std::vector<std::vector<LuEntry>> l_cols_;
  std::vector<std::vector<LuEntry>> u_cols_;
  std::vector<double> u_diag_;
  // Factorization scratch.
  std::vector<double> work_;
  std::vector<char> mark_;
  std::vector<std::size_t> touched_;
};

/// A product-form eta transformation: after a pivot at basis position `row`
/// with spike w = B^-1 a_entering, the new inverse is E B^-1 with E defined
/// by (pivot = w[row], entries = the other nonzeros of w).
struct Eta {
  std::size_t row = 0;
  double pivot = 0.0;
  std::vector<LuEntry> entries;  // (position, w[position]) for position != row.
};

/// Internal solver state over the normalized problem
///   min c^T x,  A x = b,  x >= 0,  b >= 0,
/// with columns ordered structural, then slack/surplus, then one artificial
/// per row (so any basis seed can be patched row-locally).
class RevisedState {
 public:
  RevisedState(LpProblem& problem, const SimplexOptions& options)
      : options_(options),
        rows_(problem.row_count()),
        structural_(problem.variable_count()) {
    problem.consolidate();

    row_sign_.assign(rows_, 1.0);
    b_.assign(rows_, 0.0);
    sense_.assign(rows_, RowSense::Equal);
    for (std::size_t i = 0; i < rows_; ++i) {
      double rhs = problem.rhs(i);
      RowSense s = problem.row_sense(i);
      if (rhs < 0.0) {
        rhs = -rhs;
        row_sign_[i] = -1.0;
        if (s == RowSense::LessEqual) {
          s = RowSense::GreaterEqual;
        } else if (s == RowSense::GreaterEqual) {
          s = RowSense::LessEqual;
        }
      }
      b_[i] = rhs;
      sense_[i] = s;
    }

    columns_.reserve(structural_ + 2 * rows_);
    cost_.reserve(structural_ + 2 * rows_);
    for (std::size_t j = 0; j < structural_; ++j) {
      std::vector<ColumnEntry> column = problem.column(j);
      for (ColumnEntry& entry : column) entry.value *= row_sign_[entry.row];
      columns_.push_back(std::move(column));
      cost_.push_back(problem.objective_coefficient(j));
    }

    // Slack (<=) and surplus (>=) columns.
    slack_col_.assign(rows_, kNone);
    for (std::size_t i = 0; i < rows_; ++i) {
      if (sense_[i] == RowSense::LessEqual) {
        slack_col_[i] = add_unit_column(i, 1.0);
      } else if (sense_[i] == RowSense::GreaterEqual) {
        slack_col_[i] = add_unit_column(i, -1.0);
      }
    }

    // One artificial per row (not only the rows whose cold basis needs one):
    // warm-start imports patch unusable seed entries with the artificial of
    // the affected row, whatever its sense. Artificials are never priced.
    first_artificial_ = columns_.size();
    artificial_col_.assign(rows_, kNone);
    for (std::size_t i = 0; i < rows_; ++i) {
      artificial_col_[i] = add_unit_column(i, 1.0);
    }

    basis_.assign(rows_, kNone);
    in_basis_.assign(columns_.size(), false);
    xb_.assign(rows_, 0.0);
    fwork_.assign(rows_, 0.0);
  }

  [[nodiscard]] SolveResult run() {
    SolveResult result;
    const std::size_t limit = options_.max_iterations != 0
                                  ? options_.max_iterations
                                  : 50 * (rows_ + columns_.size()) + 1000;

    // Seed the basis: warm when a usable initial basis was supplied (a
    // singular seed falls back to cold), cold otherwise.
    bool seeded = false;
    if (options_.initial_basis.basic.size() == rows_) {
      import_basis(options_.initial_basis);
      seeded = refactorize();
    }
    if (!seeded) {
      cold_basis();
      if (!refactorize()) {
        result.status = SolveStatus::IterationLimit;
        return result;
      }
    }

    // Phase 1 (composite): minimize residual artificial values plus the
    // total negativity of the basic solution. For the cold all-slack /
    // all-artificial basis this is exactly the textbook artificial phase 1;
    // for a warm seed it repairs primal infeasibility in place.
    if (infeasibility() > options_.tolerance) {
      const SolveStatus status = optimize(/*phase1=*/true, limit, result.iterations);
      if (status == SolveStatus::IterationLimit || status == SolveStatus::Unbounded) {
        // Phase-1 objective is bounded below by zero, so "unbounded" here
        // means the ratio test broke down numerically.
        result.status = SolveStatus::IterationLimit;
        return result;
      }
      const double residual = infeasibility();
      if (residual > 1e-7) {
        result.status = SolveStatus::Infeasible;
        result.objective = residual;
        return result;
      }
    }

    const SolveStatus status = optimize(/*phase1=*/false, limit, result.iterations);
    result.status = status;
    if (status != SolveStatus::Optimal) return result;

    result.values.assign(structural_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < structural_) {
        result.values[basis_[i]] = std::max(0.0, xb_[i]);
      }
    }
    result.objective = 0.0;
    for (std::size_t j = 0; j < structural_; ++j) {
      result.objective += cost_[j] * result.values[j];
    }

    std::vector<double> cb(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < structural_) cb[i] = cost_[basis_[i]];
    }
    std::vector<double> y;
    btran(cb, y);
    result.duals.assign(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) result.duals[i] = y[i] * row_sign_[i];

    result.basis.basic.resize(rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      const std::size_t var = basis_[i];
      result.basis.basic[i] =
          var < structural_ ? var : Basis::slack_of(unit_row_of_[var - structural_]);
    }
    return result;
  }

  [[nodiscard]] std::size_t refactor_count() const noexcept {
    return refactor_count_;
  }
  /// Largest eta file any factorization carried, counting the one live at
  /// exit (short solves may never hit the refactor schedule).
  [[nodiscard]] std::size_t eta_len_max() const noexcept {
    return std::max(eta_len_max_, etas_.size());
  }

 private:
  std::size_t add_unit_column(std::size_t row, double value) {
    columns_.push_back({ColumnEntry{row, value}});
    cost_.push_back(0.0);
    unit_row_of_.push_back(row);
    return columns_.size() - 1;
  }

  /// Cold start: slack basic on <= rows, artificial on = and >= rows (the
  /// same all-(+1)-unit basis the dense solver starts from).
  void cold_basis() {
    std::fill(in_basis_.begin(), in_basis_.end(), false);
    for (std::size_t i = 0; i < rows_; ++i) {
      basis_[i] =
          sense_[i] == RowSense::LessEqual ? slack_col_[i] : artificial_col_[i];
      in_basis_[basis_[i]] = true;
    }
  }

  /// Maps a basis seed onto this problem's columns. Entries that are out of
  /// range, duplicated, or name the slack of an equality row are patched
  /// with the artificial of their row.
  void import_basis(const Basis& seed) {
    std::fill(in_basis_.begin(), in_basis_.end(), false);
    for (std::size_t i = 0; i < rows_; ++i) basis_[i] = kNone;
    for (std::size_t i = 0; i < rows_; ++i) {
      const std::size_t code = seed.basic[i];
      std::size_t col = kNone;
      if (!Basis::is_slack(code)) {
        if (code < structural_) col = code;
      } else {
        const std::size_t row = Basis::slack_row(code);
        if (row < rows_ && slack_col_[row] != kNone) col = slack_col_[row];
      }
      if (col != kNone && !in_basis_[col]) {
        basis_[i] = col;
        in_basis_[col] = true;
      }
    }
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] == kNone) {
        basis_[i] = artificial_col_[i];
        in_basis_[basis_[i]] = true;
      }
    }
  }

  /// Refactorizes the basis and recomputes xB; drops the eta file. Returns
  /// false on a singular basis.
  [[nodiscard]] bool refactorize() {
    ++refactor_count_;
    eta_len_max_ = std::max(eta_len_max_, etas_.size());
    if (!lu_.factor(columns_, basis_, rows_, 1e-12)) return false;
    etas_.clear();
    eta_nnz_ = 0;
    std::copy(b_.begin(), b_.end(), fwork_.begin());
    lu_.solve(fwork_, xb_);
    return true;
  }

  /// w = B^-1 a_column in position space.
  void ftran(std::size_t column, std::vector<double>& w) {
    for (const ColumnEntry& entry : columns_[column]) {
      fwork_[entry.row] += entry.value;
    }
    lu_.solve(fwork_, w);
    for (const Eta& eta : etas_) {
      const double t = w[eta.row] / eta.pivot;
      if (t != 0.0) {
        for (const LuEntry& entry : eta.entries) w[entry.index] -= entry.value * t;
      }
      w[eta.row] = t;
    }
  }

  /// y in original row space with y^T B = c^T (c in position space).
  void btran(const std::vector<double>& c, std::vector<double>& y) {
    bwork_ = c;
    for (std::size_t e = etas_.size(); e-- > 0;) {
      const Eta& eta = etas_[e];
      double acc = bwork_[eta.row];
      for (const LuEntry& entry : eta.entries) acc -= entry.value * bwork_[entry.index];
      bwork_[eta.row] = acc / eta.pivot;
    }
    lu_.solve_transpose(bwork_, y, bscratch_);
  }

  /// Residual primal infeasibility: basic artificial mass plus the total
  /// negativity of the basic solution (warm seeds can start below zero).
  [[nodiscard]] double infeasibility() const {
    double total = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
      if (xb_[i] < 0.0) {
        total -= xb_[i];
      } else if (basis_[i] >= first_artificial_) {
        total += xb_[i];
      }
    }
    return total;
  }

  /// Reduced cost of a nonbasic column for the current duals.
  [[nodiscard]] double reduced_cost(std::size_t column, bool phase1,
                                    const std::vector<double>& y) const {
    double reduced = phase1 ? 0.0 : cost_[column];
    for (const ColumnEntry& entry : columns_[column]) {
      reduced -= y[entry.row] * entry.value;
    }
    return reduced;
  }

  /// Dantzig pricing over a rotating partial window; Bland mode scans from
  /// the front and takes the first improving column. Artificials are never
  /// candidates. Returns kNone when no reduced cost beats -tolerance after
  /// a full sweep (optimality for the current phase).
  [[nodiscard]] std::size_t price(const std::vector<double>& y, bool phase1, bool bland) {
    const std::size_t n = first_artificial_;
    if (n == 0) return kNone;
    if (bland) {
      for (std::size_t j = 0; j < n; ++j) {
        if (in_basis_[j]) continue;
        if (reduced_cost(j, phase1, y) < -options_.tolerance) return j;
      }
      return kNone;
    }
    const std::size_t window =
        options_.pricing_window != 0 ? options_.pricing_window
                                     : std::max<std::size_t>(256, n / 8);
    double best = -options_.tolerance;
    std::size_t best_column = kNone;
    std::size_t j = cursor_ < n ? cursor_ : 0;
    for (std::size_t scanned = 0; scanned < n; ++scanned) {
      if (!in_basis_[j]) {
        const double reduced = reduced_cost(j, phase1, y);
        if (reduced < best) {
          best = reduced;
          best_column = j;
        }
      }
      ++j;
      if (j == n) j = 0;
      if (best_column != kNone && scanned + 1 >= window) break;
    }
    cursor_ = j;
    return best_column;
  }

  SolveStatus optimize(bool phase1, std::size_t limit, std::size_t& iterations) {
    std::vector<double> w(rows_, 0.0);
    std::vector<double> y;
    std::vector<double> cb(rows_, 0.0);
    std::size_t degenerate_run = 0;
    bool bland = false;

    for (;;) {
      if (phase1 && infeasibility() <= options_.tolerance) return SolveStatus::Optimal;
      if (iterations >= limit) return SolveStatus::IterationLimit;
      ++iterations;

      // Basic costs. Phase 1 prices the composite objective: +1 for basic
      // artificials, -1 for any basic variable below zero (its increase
      // reduces infeasibility), 0 otherwise.
      for (std::size_t i = 0; i < rows_; ++i) {
        if (phase1) {
          if (xb_[i] < -options_.tolerance) {
            cb[i] = -1.0;
          } else {
            cb[i] = basis_[i] >= first_artificial_ ? 1.0 : 0.0;
          }
        } else {
          cb[i] = basis_[i] < structural_ ? cost_[basis_[i]] : 0.0;
        }
      }
      btran(cb, y);

      const std::size_t entering = price(y, phase1, bland);
      if (entering == kNone) return SolveStatus::Optimal;

      ftran(entering, w);

      // Ratio test. Feasible rows block when their variable hits zero from
      // above; phase-1 infeasible rows block when theirs reaches zero from
      // below (the composite objective's slope changes there); zero-level
      // basic artificials may leave on a degenerate pivot regardless of the
      // sign of w_i, exactly as in the dense solver.
      std::size_t leaving = kNone;
      double best_ratio = kInf;
      bool leaving_is_artificial = false;
      for (std::size_t i = 0; i < rows_; ++i) {
        const bool artificial = basis_[i] >= first_artificial_;
        const bool infeasible = phase1 && xb_[i] < -options_.tolerance;
        double ratio = kInf;
        if (!infeasible && w[i] > options_.pivot_tolerance) {
          ratio = std::max(0.0, xb_[i]) / w[i];
        } else if (infeasible && w[i] < -options_.pivot_tolerance) {
          ratio = xb_[i] / w[i];
        } else if (artificial && !infeasible && xb_[i] <= options_.tolerance &&
                   std::abs(w[i]) > options_.pivot_tolerance) {
          ratio = 0.0;
        } else {
          continue;
        }
        const bool better =
            ratio < best_ratio - 1e-12 ||
            (ratio <= best_ratio + 1e-12 &&
             ((artificial && !leaving_is_artificial) ||
              (artificial == leaving_is_artificial &&
               (leaving == kNone || basis_[i] < basis_[leaving]))));
        if (better) {
          best_ratio = ratio;
          leaving = i;
          leaving_is_artificial = artificial;
        }
      }
      if (leaving == kNone) return SolveStatus::Unbounded;

      // Pivot: update xB, append the eta, swap the basis columns.
      const double theta = best_ratio;
      for (std::size_t i = 0; i < rows_; ++i) {
        if (i != leaving) xb_[i] -= theta * w[i];
      }
      xb_[leaving] = theta;

      Eta eta;
      eta.row = leaving;
      eta.pivot = w[leaving];
      for (std::size_t i = 0; i < rows_; ++i) {
        if (i != leaving && w[i] != 0.0) eta.entries.push_back({i, w[i]});
      }
      eta_nnz_ += eta.entries.size();
      etas_.push_back(std::move(eta));

      in_basis_[basis_[leaving]] = false;
      basis_[leaving] = entering;
      in_basis_[entering] = true;

      if (theta <= options_.tolerance) {
        if (++degenerate_run > options_.degenerate_switch) bland = true;
      } else {
        degenerate_run = 0;
        bland = false;
      }

      // Refactorize on the pivot-count schedule or when the eta file's fill
      // outgrows a few dense columns' worth of work per solve.
      if (etas_.size() >= options_.refactor_interval ||
          eta_nnz_ > 8 * rows_ + 64) {
        if (!refactorize()) return SolveStatus::IterationLimit;
      }
    }
  }

  SimplexOptions options_;
  std::size_t rows_;
  std::size_t structural_;
  std::size_t first_artificial_ = 0;

  std::vector<std::vector<ColumnEntry>> columns_;
  std::vector<double> cost_;
  std::vector<double> b_;
  std::vector<double> row_sign_;
  std::vector<RowSense> sense_;
  std::vector<std::size_t> slack_col_;       // Row -> slack/surplus column (kNone for =).
  std::vector<std::size_t> artificial_col_;  // Row -> artificial column.
  std::vector<std::size_t> unit_row_of_;     // (column - structural_) -> its row.

  std::vector<std::size_t> basis_;
  std::vector<bool> in_basis_;
  std::vector<double> xb_;

  SparseLu lu_;
  std::vector<Eta> etas_;
  std::size_t eta_nnz_ = 0;
  // Telemetry only (exported through obs by solve()); never read by the
  // pivoting logic.
  std::size_t refactor_count_ = 0;
  std::size_t eta_len_max_ = 0;
  std::size_t cursor_ = 0;  // Partial-pricing rotation state.

  std::vector<double> fwork_;    // Dense original-row scratch, kept zeroed.
  std::vector<double> bwork_;    // btran position-space scratch.
  std::vector<double> bscratch_;
};

}  // namespace

SolveResult RevisedSimplexSolver::solve(LpProblem& problem) const {
  if (problem.row_count() == 0) {
    // Degenerate case: minimize over x >= 0 with no constraints.
    SolveResult result;
    result.values.assign(problem.variable_count(), 0.0);
    bool unbounded = false;
    for (std::size_t j = 0; j < problem.variable_count(); ++j) {
      if (problem.objective_coefficient(j) < 0.0) unbounded = true;
    }
    result.status = unbounded ? SolveStatus::Unbounded : SolveStatus::Optimal;
    if (unbounded) result.values.clear();
    return result;
  }
  QP_TRACE_SPAN("lp.revised.solve");
  RevisedState state{problem, options_};
  SolveResult result = state.run();
  c_rs_solves.add();
  c_rs_iterations.add(result.iterations);
  c_rs_refactorizations.add(state.refactor_count());
  g_rs_eta_len_max.set(static_cast<double>(state.eta_len_max()));
  return result;
}

}  // namespace qp::lp
