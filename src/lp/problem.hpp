// Linear-program container: minimize c^T x subject to sparse linear rows and
// x >= 0. This is the modeling layer that replaces the paper's GNU MathProg
// models; the access-strategy LP (4.3)-(4.6) and the many-to-one placement
// LP are both built through this interface and solved by lp::SimplexSolver.
//
// Variables are non-negative. Upper bounds must be expressed as rows by the
// caller when needed; the LPs in this codebase never need explicit upper
// bounds because per-client probabilities are already capped by their
// sum-to-one equality rows.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qp::lp {

enum class RowSense { LessEqual, Equal, GreaterEqual };

/// One nonzero of a sparse column.
struct ColumnEntry {
  std::size_t row = 0;
  double value = 0.0;
};

class LpProblem {
 public:
  /// Adds a variable (x_j >= 0) with the given objective coefficient;
  /// returns its index.
  std::size_t add_variable(double objective_coefficient, std::string name = {});

  /// Adds a constraint row with the given sense and right-hand side;
  /// returns its index.
  std::size_t add_row(RowSense sense, double rhs, std::string name = {});

  /// Sets A[row][var] = value (accumulates if called twice for one cell).
  void add_coefficient(std::size_t row, std::size_t variable, double value);

  [[nodiscard]] std::size_t variable_count() const noexcept { return columns_.size(); }
  [[nodiscard]] std::size_t row_count() const noexcept { return senses_.size(); }

  [[nodiscard]] double objective_coefficient(std::size_t variable) const;
  [[nodiscard]] const std::vector<ColumnEntry>& column(std::size_t variable) const;
  [[nodiscard]] RowSense row_sense(std::size_t row) const;
  [[nodiscard]] double rhs(std::size_t row) const;
  [[nodiscard]] const std::string& variable_name(std::size_t variable) const;
  [[nodiscard]] const std::string& row_name(std::size_t row) const;

  /// Merges duplicate (row, var) entries; called by the solver before use.
  void consolidate();

  /// Evaluates c^T x for a candidate point (no feasibility check).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// Max violation of any row/sign constraint at x; 0 means feasible.
  [[nodiscard]] double max_violation(const std::vector<double>& x) const;

 private:
  void check_variable(std::size_t variable) const;
  void check_row(std::size_t row) const;

  std::vector<std::vector<ColumnEntry>> columns_;
  std::vector<double> objective_;
  std::vector<std::string> variable_names_;
  std::vector<RowSense> senses_;
  std::vector<double> rhs_;
  std::vector<std::string> row_names_;
};

}  // namespace qp::lp
