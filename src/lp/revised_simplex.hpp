// Sparse revised simplex with an LU-factorized basis and warm starts.
//
// This is the production LP engine (the dense tableau SimplexSolver stays as
// the parity reference). Design:
//   * column-wise sparse constraint storage — reduced costs and ftran touch
//     only nonzeros, so cost per pivot scales with fill, not rows x cols;
//   * the basis is LU-factorized (Gilbert–Peierls left-looking elimination
//     with partial pivoting) and updated between refactorizations by
//     product-form eta vectors; it is refactorized from scratch every
//     `refactor_interval` pivots or when the eta file grows past a fill
//     budget, whichever comes first;
//   * Dantzig pricing over a rotating partial window (`pricing_window`),
//     with the same Bland's-rule fallback as the dense solver after a run of
//     degenerate pivots;
//   * warm starts: `SimplexOptions::initial_basis` seeds the basis from a
//     previous solve of a related LP. Invalid entries are patched with
//     artificials, a singular seed falls back to the cold basis, and a
//     primal-infeasible seed is repaired by a composite phase 1 that prices
//     negative basic variables alongside residual artificials — so a basis
//     from an LP with slightly different costs / right-hand sides lands a
//     handful of pivots from optimal instead of restarting from scratch.
//
// Everything is single-threaded and allocation-order deterministic: the same
// problem and options produce bit-identical results for any thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace qp::lp {

/// Solution of RevisedSimplexSolver: the dense Solution fields plus the
/// optimal basis, which callers thread into the next related solve via
/// SimplexOptions::initial_basis.
struct SolveResult {
  SolveStatus status = SolveStatus::IterationLimit;
  double objective = 0.0;
  /// Primal values for the structural variables (empty unless Optimal).
  std::vector<double> values;
  /// Row duals y (empty unless Optimal), same sign convention as
  /// SimplexSolver: y_i <= 0 for LessEqual rows at optimality.
  std::vector<double> duals;
  std::size_t iterations = 0;
  /// Optimal basis, one entry per row (empty unless Optimal).
  Basis basis;
};

class RevisedSimplexSolver {
 public:
  explicit RevisedSimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves min c^T x, Ax {<=,=,>=} b, x >= 0. The problem is consolidated
  /// (duplicate coefficients merged) as a side effect.
  [[nodiscard]] SolveResult solve(LpProblem& problem) const;

 private:
  SimplexOptions options_;
};

}  // namespace qp::lp
