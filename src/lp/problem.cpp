#include "lp/problem.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qp::lp {

std::size_t LpProblem::add_variable(double objective_coefficient, std::string name) {
  if (!std::isfinite(objective_coefficient)) {
    throw std::invalid_argument{"LpProblem: objective coefficient must be finite"};
  }
  columns_.emplace_back();
  objective_.push_back(objective_coefficient);
  if (name.empty()) name = "x" + std::to_string(columns_.size() - 1);
  variable_names_.push_back(std::move(name));
  return columns_.size() - 1;
}

std::size_t LpProblem::add_row(RowSense sense, double rhs, std::string name) {
  if (!std::isfinite(rhs)) throw std::invalid_argument{"LpProblem: rhs must be finite"};
  senses_.push_back(sense);
  rhs_.push_back(rhs);
  if (name.empty()) name = "r" + std::to_string(senses_.size() - 1);
  row_names_.push_back(std::move(name));
  return senses_.size() - 1;
}

void LpProblem::add_coefficient(std::size_t row, std::size_t variable, double value) {
  check_row(row);
  check_variable(variable);
  if (!std::isfinite(value)) throw std::invalid_argument{"LpProblem: coefficient must be finite"};
  if (value == 0.0) return;
  columns_[variable].push_back(ColumnEntry{row, value});
}

void LpProblem::check_variable(std::size_t variable) const {
  if (variable >= columns_.size()) throw std::out_of_range{"LpProblem: variable out of range"};
}

void LpProblem::check_row(std::size_t row) const {
  if (row >= senses_.size()) throw std::out_of_range{"LpProblem: row out of range"};
}

double LpProblem::objective_coefficient(std::size_t variable) const {
  check_variable(variable);
  return objective_[variable];
}

const std::vector<ColumnEntry>& LpProblem::column(std::size_t variable) const {
  check_variable(variable);
  return columns_[variable];
}

RowSense LpProblem::row_sense(std::size_t row) const {
  check_row(row);
  return senses_[row];
}

double LpProblem::rhs(std::size_t row) const {
  check_row(row);
  return rhs_[row];
}

const std::string& LpProblem::variable_name(std::size_t variable) const {
  check_variable(variable);
  return variable_names_[variable];
}

const std::string& LpProblem::row_name(std::size_t row) const {
  check_row(row);
  return row_names_[row];
}

void LpProblem::consolidate() {
  for (auto& column : columns_) {
    if (column.size() < 2) continue;
    std::sort(column.begin(), column.end(),
              [](const ColumnEntry& a, const ColumnEntry& b) { return a.row < b.row; });
    std::vector<ColumnEntry> merged;
    merged.reserve(column.size());
    for (const ColumnEntry& entry : column) {
      if (!merged.empty() && merged.back().row == entry.row) {
        merged.back().value += entry.value;
      } else {
        merged.push_back(entry);
      }
    }
    std::erase_if(merged, [](const ColumnEntry& e) { return e.value == 0.0; });
    column = std::move(merged);
  }
}

double LpProblem::objective_value(const std::vector<double>& x) const {
  if (x.size() != columns_.size()) throw std::invalid_argument{"objective_value: size mismatch"};
  double total = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) total += objective_[j] * x[j];
  return total;
}

double LpProblem::max_violation(const std::vector<double>& x) const {
  if (x.size() != columns_.size()) throw std::invalid_argument{"max_violation: size mismatch"};
  std::vector<double> activity(row_count(), 0.0);
  double worst = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    worst = std::max(worst, -x[j]);  // Sign constraint x >= 0.
    for (const ColumnEntry& entry : columns_[j]) activity[entry.row] += entry.value * x[j];
  }
  for (std::size_t i = 0; i < row_count(); ++i) {
    const double gap = activity[i] - rhs_[i];
    switch (senses_[i]) {
      case RowSense::LessEqual:
        worst = std::max(worst, gap);
        break;
      case RowSense::Equal:
        worst = std::max(worst, std::abs(gap));
        break;
      case RowSense::GreaterEqual:
        worst = std::max(worst, -gap);
        break;
    }
  }
  return worst;
}

}  // namespace qp::lp
