#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace qp::lp {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::IterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Internal tableau-free simplex state over the normalized problem
///   min c^T x,  A x = b,  x >= 0,  b >= 0,
/// where columns 0..n-1 are structural, then slacks/surpluses, then
/// artificials.
class SimplexState {
 public:
  SimplexState(LpProblem& problem, const SimplexOptions& options)
      : options_(options), rows_(problem.row_count()), structural_(problem.variable_count()) {
    problem.consolidate();

    // Normalize rows so every right-hand side is non-negative; remember the
    // sign so duals can be reported for the original orientation.
    row_sign_.assign(rows_, 1.0);
    b_.assign(rows_, 0.0);
    std::vector<RowSense> sense(rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      double rhs = problem.rhs(i);
      RowSense s = problem.row_sense(i);
      if (rhs < 0.0) {
        rhs = -rhs;
        row_sign_[i] = -1.0;
        if (s == RowSense::LessEqual) {
          s = RowSense::GreaterEqual;
        } else if (s == RowSense::GreaterEqual) {
          s = RowSense::LessEqual;
        }
      }
      b_[i] = rhs;
      sense[i] = s;
    }

    // Structural columns (with row signs applied).
    columns_.reserve(structural_ + 2 * rows_);
    cost_.reserve(structural_ + 2 * rows_);
    for (std::size_t j = 0; j < structural_; ++j) {
      std::vector<ColumnEntry> column = problem.column(j);
      for (ColumnEntry& entry : column) entry.value *= row_sign_[entry.row];
      columns_.push_back(std::move(column));
      cost_.push_back(problem.objective_coefficient(j));
    }

    // Slack (<=) and surplus (>=) columns; slacks of <= rows start basic.
    basis_.assign(rows_, std::numeric_limits<std::size_t>::max());
    for (std::size_t i = 0; i < rows_; ++i) {
      if (sense[i] == RowSense::LessEqual) {
        basis_[i] = add_unit_column(i, 1.0);
      } else if (sense[i] == RowSense::GreaterEqual) {
        (void)add_unit_column(i, -1.0);
      }
    }

    // Artificial columns for rows without a basic slack.
    first_artificial_ = columns_.size();
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] == std::numeric_limits<std::size_t>::max()) {
        basis_[i] = add_unit_column(i, 1.0);
      }
    }

    in_basis_.assign(columns_.size(), false);
    for (std::size_t i = 0; i < rows_; ++i) in_basis_[basis_[i]] = true;

    // Initial basis consists of +1 unit columns, so B^-1 = I and xB = b.
    basis_inverse_.assign(rows_ * rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) basis_inverse_[i * rows_ + i] = 1.0;
    xb_ = b_;
  }

  [[nodiscard]] Solution run() {
    Solution solution;
    const std::size_t limit = options_.max_iterations != 0
                                  ? options_.max_iterations
                                  : 50 * (rows_ + columns_.size()) + 1000;

    // Phase 1: minimize the sum of artificials (skipped when none exist).
    if (first_artificial_ < columns_.size()) {
      std::vector<double> phase1(columns_.size(), 0.0);
      for (std::size_t j = first_artificial_; j < columns_.size(); ++j) phase1[j] = 1.0;
      const SolveStatus status = optimize(phase1, limit, solution.iterations);
      if (status == SolveStatus::IterationLimit) {
        solution.status = status;
        return solution;
      }
      double infeasibility = 0.0;
      for (std::size_t i = 0; i < rows_; ++i) {
        if (basis_[i] >= first_artificial_) infeasibility += xb_[i];
      }
      if (infeasibility > 1e-7) {
        solution.status = SolveStatus::Infeasible;
        solution.objective = infeasibility;
        return solution;
      }
    }

    // Phase 2 with the true objective.
    std::vector<double> phase2(columns_.size(), 0.0);
    for (std::size_t j = 0; j < structural_; ++j) phase2[j] = cost_[j];
    const SolveStatus status = optimize(phase2, limit, solution.iterations);
    solution.status = status;
    if (status != SolveStatus::Optimal) return solution;

    solution.values.assign(structural_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < structural_) {
        solution.values[basis_[i]] = std::max(0.0, xb_[i]);
      }
    }
    solution.objective = 0.0;
    for (std::size_t j = 0; j < structural_; ++j) {
      solution.objective += cost_[j] * solution.values[j];
    }
    const std::vector<double> y = duals(phase2);
    solution.duals.assign(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) solution.duals[i] = y[i] * row_sign_[i];
    return solution;
  }

 private:
  std::size_t add_unit_column(std::size_t row, double value) {
    columns_.push_back({ColumnEntry{row, value}});
    cost_.push_back(0.0);
    return columns_.size() - 1;
  }

  /// y^T = c_B^T B^-1.
  [[nodiscard]] std::vector<double> duals(const std::vector<double>& cost) const {
    std::vector<double> y(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      const double cb = cost[basis_[i]];
      if (cb == 0.0) continue;
      const double* row = &basis_inverse_[i * rows_];
      for (std::size_t j = 0; j < rows_; ++j) y[j] += cb * row[j];
    }
    return y;
  }

  /// w = B^-1 A_j for a sparse column.
  void ftran(std::size_t column, std::vector<double>& w) const {
    std::fill(w.begin(), w.end(), 0.0);
    for (const ColumnEntry& entry : columns_[column]) {
      const double value = entry.value;
      for (std::size_t i = 0; i < rows_; ++i) {
        w[i] += basis_inverse_[i * rows_ + entry.row] * value;
      }
    }
  }

  /// Rebuilds B^-1 from the basis columns by Gauss–Jordan elimination with
  /// partial pivoting, then recomputes xB. Throws on a singular basis.
  void refactorize() {
    const std::size_t m = rows_;
    std::vector<double> work(m * 2 * m, 0.0);  // [B | I]
    for (std::size_t i = 0; i < m; ++i) work[i * 2 * m + m + i] = 1.0;
    for (std::size_t col = 0; col < m; ++col) {
      for (const ColumnEntry& entry : columns_[basis_[col]]) {
        work[entry.row * 2 * m + col] = entry.value;
      }
    }
    for (std::size_t col = 0; col < m; ++col) {
      std::size_t pivot = col;
      double best = std::abs(work[col * 2 * m + col]);
      for (std::size_t i = col + 1; i < m; ++i) {
        const double candidate = std::abs(work[i * 2 * m + col]);
        if (candidate > best) {
          best = candidate;
          pivot = i;
        }
      }
      if (best < 1e-12) throw std::runtime_error{"simplex: singular basis during refactorization"};
      if (pivot != col) {
        for (std::size_t j = 0; j < 2 * m; ++j) {
          std::swap(work[pivot * 2 * m + j], work[col * 2 * m + j]);
        }
      }
      const double inv = 1.0 / work[col * 2 * m + col];
      for (std::size_t j = 0; j < 2 * m; ++j) work[col * 2 * m + j] *= inv;
      for (std::size_t i = 0; i < m; ++i) {
        if (i == col) continue;
        const double factor = work[i * 2 * m + col];
        if (factor == 0.0) continue;
        for (std::size_t j = 0; j < 2 * m; ++j) {
          work[i * 2 * m + j] -= factor * work[col * 2 * m + j];
        }
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        basis_inverse_[i * m + j] = work[i * 2 * m + m + j];
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < m; ++j) sum += basis_inverse_[i * m + j] * b_[j];
      xb_[i] = sum;
    }
  }

  SolveStatus optimize(const std::vector<double>& cost, std::size_t limit,
                       std::size_t& iterations) {
    std::vector<double> w(rows_, 0.0);
    std::size_t degenerate_run = 0;
    std::size_t pivots_since_refactor = 0;
    bool bland = false;

    for (;;) {
      if (iterations >= limit) return SolveStatus::IterationLimit;
      ++iterations;

      const std::vector<double> y = duals(cost);

      // Pricing. Artificials never re-enter the basis.
      std::size_t entering = std::numeric_limits<std::size_t>::max();
      double best_reduced = -options_.tolerance;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (in_basis_[j]) continue;
        double reduced = cost[j];
        for (const ColumnEntry& entry : columns_[j]) reduced -= y[entry.row] * entry.value;
        if (bland) {
          if (reduced < -options_.tolerance) {
            entering = j;
            break;
          }
        } else if (reduced < best_reduced) {
          best_reduced = reduced;
          entering = j;
        }
      }
      if (entering == std::numeric_limits<std::size_t>::max()) return SolveStatus::Optimal;

      ftran(entering, w);

      // Ratio test. Zero-level basic artificials may leave on a degenerate
      // pivot regardless of the sign of w_i; this both drives residual
      // artificials out in phase 2 and prevents them from going positive.
      std::size_t leaving = std::numeric_limits<std::size_t>::max();
      double best_ratio = kInf;
      bool leaving_is_artificial = false;
      for (std::size_t i = 0; i < rows_; ++i) {
        const bool artificial = basis_[i] >= first_artificial_;
        double ratio = kInf;
        if (w[i] > options_.pivot_tolerance) {
          ratio = std::max(0.0, xb_[i]) / w[i];
        } else if (artificial && xb_[i] <= options_.tolerance &&
                   std::abs(w[i]) > options_.pivot_tolerance) {
          ratio = 0.0;
        } else {
          continue;
        }
        const bool better =
            ratio < best_ratio - 1e-12 ||
            (ratio <= best_ratio + 1e-12 &&
             ((artificial && !leaving_is_artificial) ||
              (artificial == leaving_is_artificial &&
               (leaving == std::numeric_limits<std::size_t>::max() ||
                basis_[i] < basis_[leaving]))));
        if (better) {
          best_ratio = ratio;
          leaving = i;
          leaving_is_artificial = artificial;
        }
      }
      if (leaving == std::numeric_limits<std::size_t>::max()) return SolveStatus::Unbounded;

      // Pivot: update xB, B^-1, and the basis bookkeeping.
      const double theta = best_ratio;
      const double pivot_value = w[leaving];
      for (std::size_t i = 0; i < rows_; ++i) {
        if (i != leaving) xb_[i] -= theta * w[i];
      }
      xb_[leaving] = theta;

      double* pivot_row = &basis_inverse_[leaving * rows_];
      const double inv_pivot = 1.0 / pivot_value;
      for (std::size_t j = 0; j < rows_; ++j) pivot_row[j] *= inv_pivot;
      for (std::size_t i = 0; i < rows_; ++i) {
        if (i == leaving || w[i] == 0.0) continue;
        double* row = &basis_inverse_[i * rows_];
        const double factor = w[i];
        for (std::size_t j = 0; j < rows_; ++j) row[j] -= factor * pivot_row[j];
      }

      in_basis_[basis_[leaving]] = false;
      basis_[leaving] = entering;
      in_basis_[entering] = true;

      // Anti-cycling bookkeeping.
      if (theta <= options_.tolerance) {
        if (++degenerate_run > options_.degenerate_switch) bland = true;
      } else {
        degenerate_run = 0;
        bland = false;
      }

      if (++pivots_since_refactor >= options_.refactor_interval) {
        refactorize();
        pivots_since_refactor = 0;
      }
    }
  }

  SimplexOptions options_;
  std::size_t rows_;
  std::size_t structural_;
  std::size_t first_artificial_ = 0;

  std::vector<std::vector<ColumnEntry>> columns_;
  std::vector<double> cost_;
  std::vector<double> b_;
  std::vector<double> row_sign_;

  std::vector<std::size_t> basis_;
  std::vector<bool> in_basis_;
  std::vector<double> basis_inverse_;  // Row-major m x m.
  std::vector<double> xb_;
};

}  // namespace

Solution SimplexSolver::solve(LpProblem& problem) const {
  if (problem.row_count() == 0) {
    // Degenerate case: minimize over x >= 0 with no constraints.
    Solution solution;
    solution.values.assign(problem.variable_count(), 0.0);
    bool unbounded = false;
    for (std::size_t j = 0; j < problem.variable_count(); ++j) {
      if (problem.objective_coefficient(j) < 0.0) unbounded = true;
    }
    solution.status = unbounded ? SolveStatus::Unbounded : SolveStatus::Optimal;
    return solution;
  }
  SimplexState state{problem, options_};
  return state.run();
}

}  // namespace qp::lp
