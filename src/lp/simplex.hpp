// Two-phase revised simplex with a dense explicit basis inverse.
//
// This solver replaces glpsol in the paper's toolchain. It is sized for the
// LPs this project produces: a few hundred rows, up to a few tens of
// thousands of sparse columns. Design choices:
//   * dense m x m basis inverse updated by eta (pivot) transformations,
//     refactorized from scratch every `refactor_interval` pivots to bound
//     numerical drift;
//   * Dantzig pricing with a Bland's-rule fallback after a run of degenerate
//     pivots, which guarantees termination;
//   * phase 1 minimizes the sum of artificial variables (added only for rows
//     that need them), phase 2 re-prices with the true objective and drives
//     any residual zero-level artificials out of the basis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace qp::lp {

enum class SolveStatus { Optimal, Infeasible, Unbounded, IterationLimit };

[[nodiscard]] std::string to_string(SolveStatus status);

/// A simplex basis: the basic variable of each constraint row, exported by
/// lp::RevisedSimplexSolver at optimality and accepted back through
/// SimplexOptions::initial_basis to warm-start a related LP. Each entry names
/// either a structural variable (its index) or the slack/surplus column of a
/// row (encoded via slack_of). Entries that do not apply to the new problem
/// (out of range, duplicated, or the slack of an equality row) are patched
/// with artificials by the importer, so a stale basis degrades gracefully
/// instead of failing. An empty basis means "cold start".
struct Basis {
  /// Encoding base for slack entries; slack_of(r) = kSlackBase + r. High
  /// enough that no structural variable index can collide.
  static constexpr std::size_t kSlackBase = std::size_t{1}
                                            << (8 * sizeof(std::size_t) - 2);

  /// basic[i] = variable basic in row i (structural index or slack_of(row)).
  std::vector<std::size_t> basic;

  [[nodiscard]] static constexpr std::size_t slack_of(std::size_t row) noexcept {
    return kSlackBase + row;
  }
  [[nodiscard]] static constexpr bool is_slack(std::size_t code) noexcept {
    return code >= kSlackBase;
  }
  [[nodiscard]] static constexpr std::size_t slack_row(std::size_t code) noexcept {
    return code - kSlackBase;
  }
  [[nodiscard]] bool empty() const noexcept { return basic.empty(); }
};

struct Solution {
  SolveStatus status = SolveStatus::IterationLimit;
  double objective = 0.0;
  /// Primal values for the structural variables (empty unless Optimal).
  std::vector<double> values;
  /// Row duals y (empty unless Optimal). Sign convention: for the
  /// minimization problem, y_i <= 0 for LessEqual rows at optimality.
  std::vector<double> duals;
  std::size_t iterations = 0;
};

struct SimplexOptions {
  /// Feasibility / optimality tolerance on reduced costs and row activity.
  double tolerance = 1e-9;
  /// Minimum pivot magnitude accepted in the ratio test.
  double pivot_tolerance = 1e-8;
  /// 0 = automatic (50 * (rows + cols) + 1000).
  std::size_t max_iterations = 0;
  /// Rebuild the basis inverse from scratch this often.
  std::size_t refactor_interval = 100;
  /// Switch to Bland's rule after this many consecutive degenerate pivots.
  std::size_t degenerate_switch = 40;
  /// Partial-pricing window for RevisedSimplexSolver: how many candidate
  /// columns one pricing pass examines before settling for the best reduced
  /// cost seen (0 = automatic). The dense SimplexSolver always prices fully.
  std::size_t pricing_window = 0;
  /// Warm-start basis for RevisedSimplexSolver (one entry per row of the
  /// problem being solved; see lp::Basis). Ignored by the dense
  /// SimplexSolver, and ignored when empty or shape-mismatched.
  Basis initial_basis{};
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves min c^T x, Ax {<=,=,>=} b, x >= 0. The problem is consolidated
  /// (duplicate coefficients merged) as a side effect.
  [[nodiscard]] Solution solve(LpProblem& problem) const;

 private:
  SimplexOptions options_;
};

}  // namespace qp::lp
