// Two-phase revised simplex with a dense explicit basis inverse.
//
// This solver replaces glpsol in the paper's toolchain. It is sized for the
// LPs this project produces: a few hundred rows, up to a few tens of
// thousands of sparse columns. Design choices:
//   * dense m x m basis inverse updated by eta (pivot) transformations,
//     refactorized from scratch every `refactor_interval` pivots to bound
//     numerical drift;
//   * Dantzig pricing with a Bland's-rule fallback after a run of degenerate
//     pivots, which guarantees termination;
//   * phase 1 minimizes the sum of artificial variables (added only for rows
//     that need them), phase 2 re-prices with the true objective and drives
//     any residual zero-level artificials out of the basis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace qp::lp {

enum class SolveStatus { Optimal, Infeasible, Unbounded, IterationLimit };

[[nodiscard]] std::string to_string(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::IterationLimit;
  double objective = 0.0;
  /// Primal values for the structural variables (empty unless Optimal).
  std::vector<double> values;
  /// Row duals y (empty unless Optimal). Sign convention: for the
  /// minimization problem, y_i <= 0 for LessEqual rows at optimality.
  std::vector<double> duals;
  std::size_t iterations = 0;
};

struct SimplexOptions {
  /// Feasibility / optimality tolerance on reduced costs and row activity.
  double tolerance = 1e-9;
  /// Minimum pivot magnitude accepted in the ratio test.
  double pivot_tolerance = 1e-8;
  /// 0 = automatic (50 * (rows + cols) + 1000).
  std::size_t max_iterations = 0;
  /// Rebuild the basis inverse from scratch this often.
  std::size_t refactor_interval = 100;
  /// Switch to Bland's rule after this many consecutive degenerate pivots.
  std::size_t degenerate_switch = 40;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves min c^T x, Ax {<=,=,>=} b, x >= 0. The problem is consolidated
  /// (duplicate coefficients merged) as a side effect.
  [[nodiscard]] Solution solve(LpProblem& problem) const;

 private:
  SimplexOptions options_;
};

}  // namespace qp::lp
