// Minimum-cost maximum-flow on directed graphs, via successive shortest
// paths with Johnson potentials (Bellman–Ford bootstrap so negative edge
// costs are accepted; Dijkstra thereafter).
//
// Used by the Shmoys–Tardos rounding step of the many-to-one placement
// algorithm (core/manytoone) and directly usable for transportation-style
// subproblems.
#pragma once

#include <cstddef>
#include <vector>

namespace qp::flow {

class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t node_count);

  /// Adds a directed edge; returns an id usable with flow_on(). Capacity
  /// must be >= 0; cost may be negative (no negative cycles allowed).
  std::size_t add_edge(std::size_t from, std::size_t to, double capacity, double cost);

  struct Result {
    double flow = 0.0;
    double cost = 0.0;
  };

  /// Sends up to `max_flow` units (default: as much as possible) from source
  /// to sink at minimum cost. May be called once per instance.
  [[nodiscard]] Result solve(std::size_t source, std::size_t sink,
                             double max_flow = kUnlimited);

  /// Flow carried by the edge returned from add_edge (valid after solve()).
  [[nodiscard]] double flow_on(std::size_t edge_id) const;

  static constexpr double kUnlimited = 1e300;

 private:
  struct Arc {
    std::size_t to = 0;
    std::size_t reverse = 0;  // Index of the reverse arc in adjacency_[to].
    double capacity = 0.0;
    double cost = 0.0;
  };

  void check_node(std::size_t v) const;
  bool bellman_ford(std::size_t source, std::vector<double>& potential) const;

  std::vector<std::vector<Arc>> adjacency_;
  // Maps public edge ids to (node, arc index).
  std::vector<std::pair<std::size_t, std::size_t>> edge_refs_;
  std::vector<double> original_capacity_;
  bool solved_ = false;
};

}  // namespace qp::flow
