#include "flow/mincost_flow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace qp::flow {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;
}  // namespace

MinCostFlow::MinCostFlow(std::size_t node_count) : adjacency_(node_count) {}

void MinCostFlow::check_node(std::size_t v) const {
  if (v >= adjacency_.size()) throw std::out_of_range{"MinCostFlow: node out of range"};
}

std::size_t MinCostFlow::add_edge(std::size_t from, std::size_t to, double capacity,
                                  double cost) {
  check_node(from);
  check_node(to);
  if (capacity < 0.0) throw std::invalid_argument{"MinCostFlow: negative capacity"};
  if (solved_) throw std::logic_error{"MinCostFlow: add_edge after solve"};
  adjacency_[from].push_back(Arc{to, adjacency_[to].size(), capacity, cost});
  adjacency_[to].push_back(Arc{from, adjacency_[from].size() - 1, 0.0, -cost});
  edge_refs_.emplace_back(from, adjacency_[from].size() - 1);
  original_capacity_.push_back(capacity);
  return edge_refs_.size() - 1;
}

bool MinCostFlow::bellman_ford(std::size_t source, std::vector<double>& potential) const {
  const std::size_t n = adjacency_.size();
  potential.assign(n, kInf);
  potential[source] = 0.0;
  for (std::size_t pass = 0; pass < n; ++pass) {
    bool changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (potential[v] == kInf) continue;
      for (const Arc& arc : adjacency_[v]) {
        if (arc.capacity <= kEps) continue;
        const double candidate = potential[v] + arc.cost;
        if (candidate < potential[arc.to] - kEps) {
          potential[arc.to] = candidate;
          changed = true;
        }
      }
    }
    if (!changed) return true;
  }
  return false;  // A negative cycle is reachable.
}

MinCostFlow::Result MinCostFlow::solve(std::size_t source, std::size_t sink,
                                       double max_flow) {
  check_node(source);
  check_node(sink);
  if (source == sink) throw std::invalid_argument{"MinCostFlow: source == sink"};
  if (solved_) throw std::logic_error{"MinCostFlow: solve called twice"};
  solved_ = true;

  const std::size_t n = adjacency_.size();
  std::vector<double> potential;
  if (!bellman_ford(source, potential)) {
    throw std::invalid_argument{"MinCostFlow: negative cycle detected"};
  }
  // Unreachable nodes keep potential 0 (they will never be relaxed).
  for (double& p : potential) {
    if (p == kInf) p = 0.0;
  }

  Result result;
  std::vector<double> distance(n);
  std::vector<std::pair<std::size_t, std::size_t>> parent(n);  // (node, arc idx)

  while (result.flow < max_flow - kEps) {
    // Dijkstra on reduced costs.
    distance.assign(n, kInf);
    distance[source] = 0.0;
    using Entry = std::pair<double, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    heap.emplace(0.0, source);
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > distance[v] + kEps) continue;
      for (std::size_t a = 0; a < adjacency_[v].size(); ++a) {
        const Arc& arc = adjacency_[v][a];
        if (arc.capacity <= kEps) continue;
        const double reduced = arc.cost + potential[v] - potential[arc.to];
        const double candidate = d + reduced;
        if (candidate < distance[arc.to] - kEps) {
          distance[arc.to] = candidate;
          parent[arc.to] = {v, a};
          heap.emplace(candidate, arc.to);
        }
      }
    }
    if (distance[sink] == kInf) break;  // No augmenting path remains.

    for (std::size_t v = 0; v < n; ++v) {
      if (distance[v] < kInf) potential[v] += distance[v];
    }

    // Bottleneck along the path.
    double push = max_flow - result.flow;
    for (std::size_t v = sink; v != source;) {
      const auto [pv, pa] = parent[v];
      push = std::min(push, adjacency_[pv][pa].capacity);
      v = pv;
    }
    for (std::size_t v = sink; v != source;) {
      const auto [pv, pa] = parent[v];
      Arc& arc = adjacency_[pv][pa];
      arc.capacity -= push;
      adjacency_[arc.to][arc.reverse].capacity += push;
      result.cost += push * arc.cost;
      v = pv;
    }
    result.flow += push;
  }
  return result;
}

double MinCostFlow::flow_on(std::size_t edge_id) const {
  if (edge_id >= edge_refs_.size()) throw std::out_of_range{"MinCostFlow: bad edge id"};
  const auto [node, index] = edge_refs_[edge_id];
  return original_capacity_[edge_id] - adjacency_[node][index].capacity;
}

}  // namespace qp::flow
