#include "flow/assignment.hpp"

#include <cmath>
#include <stdexcept>

#include "flow/mincost_flow.hpp"

namespace qp::flow {

std::optional<AssignmentResult> min_cost_assignment(
    std::size_t item_count, const std::vector<std::size_t>& slot_capacity,
    const std::vector<AssignmentEdge>& edges) {
  const std::size_t slot_count = slot_capacity.size();
  // Node layout: source, items, slots, sink.
  const std::size_t source = 0;
  const std::size_t item_base = 1;
  const std::size_t slot_base = item_base + item_count;
  const std::size_t sink = slot_base + slot_count;
  MinCostFlow network{sink + 1};

  for (std::size_t i = 0; i < item_count; ++i) {
    (void)network.add_edge(source, item_base + i, 1.0, 0.0);
  }
  for (std::size_t s = 0; s < slot_count; ++s) {
    (void)network.add_edge(slot_base + s, sink, static_cast<double>(slot_capacity[s]), 0.0);
  }
  std::vector<std::size_t> edge_ids;
  edge_ids.reserve(edges.size());
  for (const AssignmentEdge& edge : edges) {
    if (edge.item >= item_count || edge.slot >= slot_count) {
      throw std::out_of_range{"min_cost_assignment: edge endpoint out of range"};
    }
    edge_ids.push_back(network.add_edge(item_base + edge.item, slot_base + edge.slot, 1.0,
                                        edge.cost));
  }

  const auto result = network.solve(source, sink);
  if (result.flow + 1e-9 < static_cast<double>(item_count)) return std::nullopt;

  AssignmentResult assignment;
  assignment.slot_of.assign(item_count, slot_count);
  assignment.total_cost = result.cost;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (network.flow_on(edge_ids[e]) > 0.5) {
      assignment.slot_of[edges[e].item] = edges[e].slot;
    }
  }
  for (std::size_t i = 0; i < item_count; ++i) {
    if (assignment.slot_of[i] == slot_count) {
      throw std::logic_error{"min_cost_assignment: unmatched item despite full flow"};
    }
  }
  return assignment;
}

}  // namespace qp::flow
