// Bipartite minimum-cost assignment, built on MinCostFlow. Each left item is
// matched to exactly one right slot; slots may accept a bounded number of
// items. Infeasible (not enough slot capacity or an item with no allowed
// slot) is reported, not thrown, so callers can relax and retry.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace qp::flow {

struct AssignmentEdge {
  std::size_t item = 0;
  std::size_t slot = 0;
  double cost = 0.0;
};

struct AssignmentResult {
  /// slot_of[item] = matched slot index.
  std::vector<std::size_t> slot_of;
  double total_cost = 0.0;
};

/// Minimum-cost assignment of `item_count` items to slots with integer
/// capacities `slot_capacity`, restricted to the given allowed edges.
/// Returns nullopt when no perfect assignment exists.
[[nodiscard]] std::optional<AssignmentResult> min_cost_assignment(
    std::size_t item_count, const std::vector<std::size_t>& slot_capacity,
    const std::vector<AssignmentEdge>& edges);

}  // namespace qp::flow
