// Client access strategies (§4 "Load", §4.2, §7).
//
// Three strategy families appear in the paper:
//   * closest  — p_v puts probability 1 on the quorum with minimum network
//                delay for v (§6);
//   * balanced — p_v is uniform over all quorums for every client (§7);
//   * LP-optimized — per-client distributions solving LP (4.3)-(4.6): they
//                minimize average network delay subject to per-site capacity
//                constraints on the induced load.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/placement.hpp"
#include "lp/simplex.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

/// Per-client distributions over an explicit (shared) quorum list.
struct ExplicitStrategy {
  std::vector<quorum::Quorum> quorums;
  /// probability[v][i] = p_v(quorums[i]); rows sum to 1.
  std::vector<std::vector<double>> probability;

  /// Throws unless shapes are consistent, probabilities are in [0,1], and
  /// every row sums to 1 within `tolerance`.
  void validate(std::size_t client_count, std::size_t universe_size,
                double tolerance = 1e-6) const;

  /// The average strategy avg({p_v}) of §4.2 — one distribution over quorums.
  [[nodiscard]] std::vector<double> average_distribution() const;
};

/// The closest quorum (minimum network delay) for every client.
[[nodiscard]] std::vector<quorum::Quorum> closest_quorums(const net::LatencyMatrix& matrix,
                                                          const quorum::QuorumSystem& system,
                                                          const Placement& placement);

/// load_p(u) for a distribution p over an explicit quorum list:
/// load(u) = sum over quorums containing u of p(Q).
[[nodiscard]] std::vector<double> element_loads(std::span<const quorum::Quorum> quorums,
                                                std::span<const double> distribution,
                                                std::size_t universe_size);

/// How a site hosting several universe elements charges a quorum access
/// that touches more than one of them (§8):
///   PerElement — the paper's model: one execution per hosted element in
///                the quorum (load adds up per element);
///   Collapsed  — the paper's future-work variant: one execution per
///                touching request, however many colocated elements it hits.
/// The two coincide on one-to-one placements.
enum class ExecutionModel { PerElement, Collapsed };

/// load_f(w) = avg_v load_{v,f}(w) for the three strategy kinds. Vectors are
/// indexed by site; sites outside the support set carry load 0.
[[nodiscard]] std::vector<double> site_loads_closest(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement, ExecutionModel model = ExecutionModel::PerElement);
[[nodiscard]] std::vector<double> site_loads_balanced(
    const quorum::QuorumSystem& system, const Placement& placement, std::size_t site_count,
    ExecutionModel model = ExecutionModel::PerElement);
[[nodiscard]] std::vector<double> site_loads_explicit(
    const ExplicitStrategy& strategy, const Placement& placement, std::size_t site_count,
    ExecutionModel model = ExecutionModel::PerElement);

/// Demand-weighted load attribution: client v's quorum access is charged
/// with weight client_weights[v] instead of 1/|V|. Callers pass normalized
/// demand shares (see core::demand_shares in response.hpp); an empty span
/// falls back to the uniform overloads above. There is no weighted balanced
/// overload: under the balanced strategy every client induces the identical
/// per-element load, so any convex demand weighting leaves it unchanged.
[[nodiscard]] std::vector<double> site_loads_closest(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement, std::span<const double> client_weights,
    ExecutionModel model = ExecutionModel::PerElement);
[[nodiscard]] std::vector<double> site_loads_explicit(
    const ExplicitStrategy& strategy, const Placement& placement, std::size_t site_count,
    std::span<const double> client_weights,
    ExecutionModel model = ExecutionModel::PerElement);

/// Which engine solves LP (4.3)-(4.6).
///   Auto           — Transportation when no capacity row can bind (the LP
///                    decouples per client), Revised otherwise;
///   Dense          — the historical tableau simplex, kept as the parity
///                    reference (objective agreement <= 1e-9, test-pinned);
///   Revised        — the sparse revised simplex (lp/revised_simplex), the
///                    only path that honors warm starts;
///   Transportation — the uncapacitated specialization on flow/mincost_flow;
///                    falls back to Revised when capacity rows can bind.
enum class StrategyLpSolver { Auto, Dense, Revised, Transportation };

struct StrategyLpResult {
  lp::SolveStatus status = lp::SolveStatus::Infeasible;
  ExplicitStrategy strategy;          // Populated when status == Optimal.
  double avg_network_delay = 0.0;     // LP objective (4.3).
  std::size_t lp_iterations = 0;
  /// The engine that actually solved the LP (Auto/Transportation resolved).
  StrategyLpSolver solver_used = StrategyLpSolver::Dense;
  /// Optimal basis of the Revised path (empty for the other engines). Feed
  /// it back through options.simplex.initial_basis to warm-start the next
  /// solve of an identically-shaped LP (same placement support set).
  lp::Basis basis;
};

struct StrategyLpOptions {
  std::size_t quorum_limit = 100'000;
  /// Solver knobs; simplex.initial_basis warm-starts the Revised path.
  lp::SimplexOptions simplex{};
  StrategyLpSolver solver = StrategyLpSolver::Auto;
};

/// Solves LP (4.3)-(4.6): minimize the average expected network delay over
/// per-client access strategies subject to avg load <= cap on every support
/// site. `capacities` is indexed by site. Returns Infeasible status when
/// the capacities cannot carry the workload.
[[nodiscard]] StrategyLpResult optimize_access_strategy(const net::LatencyMatrix& matrix,
                                                        const quorum::QuorumSystem& system,
                                                        const Placement& placement,
                                                        std::span<const double> capacities,
                                                        const StrategyLpOptions& options = {});

/// Demand-weighted LP: client v contributes weight w_v (its demand share,
/// see core::demand_shares) instead of the flat 1/|V| — to the delay
/// objective AND to the capacity-row load coefficients, so capacity
/// feasibility reflects skewed workloads: a hot client's quorum choices
/// consume proportionally more of every touched site's capacity. An empty
/// span runs the exact uniform arithmetic above (bitwise identical).
[[nodiscard]] StrategyLpResult optimize_access_strategy(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement, std::span<const double> capacities,
    std::span<const double> client_weights, const StrategyLpOptions& options = {});

}  // namespace qp::core
