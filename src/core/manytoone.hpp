// Many-to-one quorum placement (§4.1.2): the "almost capacity-respecting"
// algorithm of Gupta et al., reconstructed as
//   1. an LP relaxation of the single-client placement problem
//      (fractional assignment x_uw, per-quorum delay bounds t_Q),
//   2. Lin–Vitter filtering: drop fractional assignments to nodes farther
//      than (1+eps) times the element's fractional average distance and
//      renormalize, and
//   3. Shmoys–Tardos generalized-assignment rounding: split each node into
//      ceil(total fractional mass) unit slots, order items by decreasing
//      load, and find a min-cost perfect matching of elements to slots.
// The result places every element integrally while exceeding capacities by
// at most a constant factor (reported, not hidden).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/placement.hpp"
#include "lp/simplex.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

struct ManyToOneOptions {
  /// Lin–Vitter filtering parameter (the paper's procedure with eps = 1
  /// keeps assignments within twice the fractional average distance).
  double epsilon = 1.0;
  std::size_t quorum_limit = 100'000;
  lp::SimplexOptions simplex{};
};

struct ManyToOneResult {
  lp::SolveStatus status = lp::SolveStatus::Infeasible;
  Placement placement;                 // Populated when status == Optimal.
  /// Optimum of the fractional delay LP (a lower bound on the single-client
  /// expected delay of any capacity-respecting placement).
  double lp_delay_bound = 0.0;
  /// max over support sites of load_f(w)/cap(w); values > 1 quantify the
  /// algorithm's bounded capacity violation.
  double max_capacity_violation = 0.0;
};

/// Runs the three-step pipeline above for anchor client `v0`.
/// `quorum_distribution` is the common access strategy p, aligned with
/// system.enumerate_quorums(options.quorum_limit); it must sum to 1.
/// `capacities` is indexed by site and must be positive wherever load could
/// land.
[[nodiscard]] ManyToOneResult many_to_one_placement(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    std::span<const double> quorum_distribution, std::span<const double> capacities,
    std::size_t v0, const ManyToOneOptions& options = {});

struct ManyToOneSearchResult {
  ManyToOneResult best;
  std::size_t anchor_client = 0;
  /// avg_v sum_i p_i max_{u in Q_i} d(v, f(u)) of the winning placement.
  double avg_network_delay = 0.0;
};

/// §4.1.2 outer loop: runs many_to_one_placement for every candidate anchor
/// (all sites when empty) and keeps the placement with the lowest average
/// network delay under the given quorum distribution.
[[nodiscard]] ManyToOneSearchResult best_many_to_one_placement(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    std::span<const double> quorum_distribution, std::span<const double> capacities,
    std::span<const std::size_t> candidates = {}, const ManyToOneOptions& options = {});

/// avg_v sum_i p_i max_{u in Q_i} d(v, f(u)) — network delay of a placement
/// under a common explicit distribution (helper shared with the iterative
/// algorithm and benches).
[[nodiscard]] double average_network_delay_under_distribution(
    const net::LatencyMatrix& matrix, std::span<const quorum::Quorum> quorums,
    std::span<const double> distribution, const Placement& placement);

}  // namespace qp::core
