// Local-search placement improvement — a baseline the paper does not
// evaluate, used here as an ablation: how close are the constructive
// placements of §4.1.1 to a local optimum of the average uniform network
// delay? The search relocates one universe element at a time to an unused
// site, taking the best improving move, until a local optimum.
#pragma once

#include <cstddef>

#include "core/placement.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

struct LocalSearchOptions {
  /// Hard cap on improvement rounds (each round scans all moves).
  std::size_t max_rounds = 100;
  /// A move must improve the objective by more than this to be taken.
  double min_improvement = 1e-9;
};

struct LocalSearchResult {
  Placement placement;
  /// avg_v E_uniform[max d] of the final placement.
  double objective = 0.0;
  /// Number of accepted relocation moves.
  std::size_t moves = 0;
};

/// Hill-climbs from `initial` (must be one-to-one) and returns a placement
/// that no single-element relocation improves. Deterministic.
[[nodiscard]] LocalSearchResult local_search_placement(const net::LatencyMatrix& matrix,
                                                       const quorum::QuorumSystem& system,
                                                       const Placement& initial,
                                                       const LocalSearchOptions& options = {});

}  // namespace qp::core
