// Local-search placement improvement — a baseline the paper does not
// evaluate, used here as an ablation: how close are the constructive
// placements of §4.1.1 to a local optimum of the search objective? The
// search relocates one universe element at a time to an unused site until a
// local optimum, under any core::Objective (pure network delay by default,
// the load-aware §7 response time via LoadAwareObjective, the §6 closest
// strategy via ClosestStrategyObjective — each optionally demand-weighted).
//
// Two evaluation engines share the same semantics and tie-breaking:
//   * Delta — incremental evaluation via core::DeltaEvaluator: O(log n) per
//     client per candidate instead of a full re-sort, optionally scanning
//     the neighborhood on the shared thread pool. The parallel scan only
//     distributes candidate evaluation; the accept decision replays the
//     serial scan order, so results are bit-identical for any thread count.
//   * Naive — full objective re-evaluation per candidate; the reference
//     path, kept for benchmarking and parity tests.
//
// Two accept strategies:
//   * BestImprovement  — each round scans every (element, unused site)
//     relocation and takes the best strictly-improving move (first such move
//     in scan order wins ties).
//   * FirstImprovement — each round takes the FIRST strictly-improving move
//     in the deterministic (element, site) scan order, skipping the rest of
//     the neighborhood; rounds are cheaper while improving moves are dense.
//     The Delta engine evaluates fixed-size candidate blocks in parallel and
//     accepts the lowest-index improvement, which is independent of the
//     block size and thread count — deterministic.
#pragma once

#include <cstddef>

#include "core/objective.hpp"
#include "core/placement.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

enum class LocalSearchEngine {
  Delta,  // Incremental (default): identical moves, orders of magnitude faster.
  Naive,  // Full re-evaluation per candidate move.
};

enum class LocalSearchStrategy {
  BestImprovement,   // Full neighborhood scan, steepest descent (default).
  FirstImprovement,  // First improving move in deterministic scan order.
};

struct LocalSearchOptions {
  /// Hard cap on improvement rounds (each round accepts at most one move).
  std::size_t max_rounds = 100;
  /// A move must improve the objective by more than this to be taken.
  double min_improvement = 1e-9;
  /// Evaluation engine; Delta and Naive agree to ~1e-12 per candidate.
  LocalSearchEngine engine = LocalSearchEngine::Delta;
  /// Accept strategy; both reach (possibly different) local optima.
  LocalSearchStrategy strategy = LocalSearchStrategy::BestImprovement;
  /// Search objective; nullptr = pure network delay. The pointee must
  /// outlive the call.
  const Objective* objective = nullptr;
  /// Worker threads for the Delta candidate scan: 0 = the shared global
  /// pool, 1 = fully serial, n > 1 = a dedicated pool of n threads.
  /// Bit-identical results for every setting. Ignored by the Naive engine.
  std::size_t threads = 0;
};

struct LocalSearchResult {
  Placement placement;
  /// Objective value of the final placement (avg_v E_uniform[max d] for the
  /// default network-delay objective).
  double objective = 0.0;
  /// Number of accepted relocation moves.
  std::size_t moves = 0;
};

/// Hill-climbs from `initial` (must be one-to-one) and returns a placement
/// that no single-element relocation improves. Deterministic.
[[nodiscard]] LocalSearchResult local_search_placement(const net::LatencyMatrix& matrix,
                                                       const quorum::QuorumSystem& system,
                                                       const Placement& initial,
                                                       const LocalSearchOptions& options = {});

}  // namespace qp::core
