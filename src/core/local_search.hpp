// Local-search placement improvement — a baseline the paper does not
// evaluate, used here as an ablation: how close are the constructive
// placements of §4.1.1 to a local optimum of the search objective? The
// search relocates one universe element at a time to an unused site until a
// local optimum, under any core::Objective (pure network delay by default,
// the load-aware §7 response time via LoadAwareObjective, the §6 closest
// strategy via ClosestStrategyObjective — each optionally demand-weighted).
//
// Two evaluation engines share the same semantics and tie-breaking:
//   * Delta — incremental evaluation via core::DeltaEvaluator: O(log n) per
//     client per candidate instead of a full re-sort, optionally scanning
//     the neighborhood on the shared thread pool. The parallel scan only
//     distributes candidate evaluation; the accept decision replays the
//     serial scan order, so results are bit-identical for any thread count.
//   * Naive — full objective re-evaluation per candidate; the reference
//     path, kept for benchmarking and parity tests.
//
// Two accept strategies:
//   * BestImprovement  — each round scans every (element, unused site)
//     relocation and takes the best strictly-improving move (first such move
//     in scan order wins ties).
//   * FirstImprovement — each round takes the FIRST strictly-improving move
//     in the deterministic (element, site) scan order, skipping the rest of
//     the neighborhood; rounds are cheaper while improving moves are dense.
//     The Delta engine evaluates fixed-size candidate blocks in parallel and
//     accepts the lowest-index improvement, which is independent of the
//     block size and thread count — deterministic.
// Sparse candidate search (the 10k-50k-site regime): `candidate_knn`
// restricts each element's relocation targets to the k sites nearest its
// current site (via a net::KnnIndex), and closest-strategy objectives route
// candidate evaluation through a ClientCandidateIndex so one candidate
// touches only the clients it can affect. With candidate_knn == 0 and an
// uncapped client index the search replays the dense exhaustive scan's
// decisions exactly (same candidate order, evaluation equal up to FP
// summation order) — the parity suites pin that on every n <= 500 config.
#pragma once

#include <cstddef>

#include "core/objective.hpp"
#include "core/placement.hpp"
#include "net/knn_index.hpp"
#include "net/latency_space.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

enum class LocalSearchEngine {
  Delta,  // Incremental (default): identical moves, orders of magnitude faster.
  Naive,  // Full re-evaluation per candidate move.
};

enum class LocalSearchStrategy {
  BestImprovement,   // Full neighborhood scan, steepest descent (default).
  FirstImprovement,  // First improving move in deterministic scan order.
};

struct LocalSearchOptions {
  /// Hard cap on improvement rounds (each round accepts at most one move).
  std::size_t max_rounds = 100;
  /// A move must improve the objective by more than this to be taken.
  double min_improvement = 1e-9;
  /// Evaluation engine; Delta and Naive agree to ~1e-12 per candidate.
  LocalSearchEngine engine = LocalSearchEngine::Delta;
  /// Accept strategy; both reach (possibly different) local optima.
  LocalSearchStrategy strategy = LocalSearchStrategy::BestImprovement;
  /// Search objective; nullptr = pure network delay. The pointee must
  /// outlive the call.
  const Objective* objective = nullptr;
  /// Worker threads for the Delta candidate scan: 0 = the shared global
  /// pool, 1 = fully serial, n > 1 = a dedicated pool of n threads.
  /// Bit-identical results for every setting. Ignored by the Naive engine.
  std::size_t threads = 0;
  /// 0 scans every unused site per element (the historical dense scan);
  /// k > 0 restricts each element's candidate targets to the k unused sites
  /// nearest its current site (targets enumerated in ascending site order,
  /// so k >= n reproduces the dense candidate list exactly). Delta engine
  /// only.
  std::size_t candidate_knn = 0;
  /// k-NN index over the search space, used for candidate targets and for
  /// building the client candidate lists. Optional when the space has a
  /// dense matrix (a brute-force index is built on the fly); required with
  /// candidate_knn > 0 or a closest objective on an implicit space. Must be
  /// built over `space` and outlive the call.
  const net::KnnIndex* knn = nullptr;
  /// Closest-strategy objectives, Delta engine: evaluate candidates through
  /// a ClientCandidateIndex (site -> clients) instead of scanning all n
  /// clients per candidate. Exact (uncapped lists + overflow fallback) when
  /// the space has a dense matrix; capped at max(64, candidate_knn) sites
  /// per client on implicit spaces (approximate ranking, exact applies).
  bool client_index = true;
  /// Overrides the client-list cap: 0 = the default above, k > 0 caps every
  /// list at k sites (also on dense matrices — bench/regression use).
  std::size_t client_index_cap = 0;
  /// Rebuild schedule for UNCAPPED client indexes: rebuild the per-client
  /// lists from the current m1 radii after this many accepted moves
  /// (0 = never). The initial lists cover the initial placement's radii
  /// forever, even as the search moves m1 both ways — clients whose radius
  /// shrank carry needlessly dense lists, clients whose radius outgrew its
  /// coverage fall into the always-rechecked overflow set. Periodic
  /// rebuilds keep the lists tight and the overflow set empty.
  /// Trajectory-invariant: uncapped indexed evaluation is exact for ANY list
  /// contents (coverage overflow repairs staleness), so the schedule changes
  /// speed, never decisions. Capped indexes ignore it (their lists are
  /// fixed-size and do not depend on the radii the same way).
  std::size_t client_index_rebuild = 16;
};

struct LocalSearchResult {
  Placement placement;
  /// Objective value of the final placement (avg_v E_uniform[max d] for the
  /// default network-delay objective).
  double objective = 0.0;
  /// Number of accepted relocation moves.
  std::size_t moves = 0;
};

/// Hill-climbs from `initial` (must be one-to-one) and returns a placement
/// that no single-element relocation improves. Deterministic. The space may
/// be a dense LatencyMatrix (every historical caller) or an implicit
/// LatencySpace such as a LatencyEmbedding; the Naive engine and
/// non-delta-capable objectives require a dense matrix (full re-evaluation
/// is O(n^2)) and throw std::invalid_argument on an implicit space.
[[nodiscard]] LocalSearchResult local_search_placement(const net::LatencySpace& space,
                                                       const quorum::QuorumSystem& system,
                                                       const Placement& initial,
                                                       const LocalSearchOptions& options = {});

}  // namespace qp::core
