#include "core/objective.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

#include "common/check.hpp"
#include "core/response.hpp"
#include "core/strategy.hpp"

namespace qp::core {

// demand_shares collapses constant demand to the empty (uniform)
// representation, so uniform evaluations run the historical unweighted
// arithmetic and reproduce pre-demand results bitwise.
Objective::Objective(std::span<const double> client_demand)
    : weights_(demand_shares(client_demand, client_demand.size())) {}

namespace {

void check_weights(std::span<const double> weights, std::size_t client_count,
                   const char* where) {
  if (!weights.empty() && weights.size() != client_count) {
    throw std::invalid_argument{std::string{where} + ": client weight count != clients"};
  }
}

}  // namespace

std::optional<ExplicitStrategy> Objective::export_strategy(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement) const {
  (void)matrix;
  (void)system;
  (void)placement;
  return std::nullopt;  // Balanced: the engine samples uniform quorums directly.
}

std::vector<double> Objective::site_loads(const net::LatencyMatrix& matrix,
                                          const quorum::QuorumSystem& system,
                                          const Placement& placement) const {
  std::vector<double> loads(matrix.size(), 0.0);
  if (alpha() == 0.0) return loads;
  const std::span<const double> lambda = element_loads(system);
  if (lambda.empty()) return loads;
  if (lambda.size() != placement.universe_size()) {
    throw std::invalid_argument{"Objective::site_loads: element_loads size mismatch"};
  }
  for (std::size_t u = 0; u < lambda.size(); ++u) {
    QP_CHECK(placement.site_of[u] < loads.size(),
             "Objective::site_loads: placement maps an element past the matrix");
    loads[placement.site_of[u]] += lambda[u];
  }
  return loads;
}

void Objective::fill_values(const net::LatencyMatrix& matrix, const Placement& placement,
                            std::span<const double> site_load, std::size_t client,
                            std::vector<double>& out) const {
  const double a = alpha();
  if (a == 0.0 || site_load.empty()) {
    fill_element_distances(matrix, placement, client, out);
    return;
  }
  fill_element_values(matrix, placement, site_load, a, client, out);
}

double Objective::evaluate_ws(const net::LatencyMatrix& matrix,
                              const quorum::QuorumSystem& system,
                              const Placement& placement, EvalWorkspace& workspace) const {
  const std::span<const double> weights = client_weights();
  check_weights(weights, matrix.size(), "Objective::evaluate_ws");
  if (weights.empty()) {
    if (alpha() == 0.0) {
      return average_uniform_network_delay_ws(matrix, system, placement, workspace);
    }
    // One load table per evaluation; the per-client loop is allocation-free.
    const std::vector<double> load = site_loads(matrix, system, placement);
    double total = 0.0;
    for (std::size_t v = 0; v < matrix.size(); ++v) {
      fill_values(matrix, placement, load, v, workspace.values);
      total += system.expected_max_uniform_scratch(workspace.values, workspace.scratch);
    }
    return total / static_cast<double>(matrix.size());
  }
  const std::vector<double> load = site_loads(matrix, system, placement);
  double total = 0.0;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    fill_values(matrix, placement, load, v, workspace.values);
    total +=
        weights[v] * system.expected_max_uniform_scratch(workspace.values, workspace.scratch);
  }
  return total;
}

double Objective::evaluate(const net::LatencyMatrix& matrix,
                           const quorum::QuorumSystem& system,
                           const Placement& placement) const {
  EvalWorkspace workspace;
  return evaluate_ws(matrix, system, placement, workspace);
}

std::string NetworkDelayObjective::name() const {
  return client_weights().empty() ? "network-delay" : "network-delay+demand";
}

LoadAwareObjective::LoadAwareObjective(double alpha) : alpha_(alpha) {
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    throw std::invalid_argument{"LoadAwareObjective: alpha must be finite and >= 0"};
  }
}

LoadAwareObjective::LoadAwareObjective(double alpha, std::span<const double> client_demand)
    : Objective(client_demand), alpha_(alpha) {
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    throw std::invalid_argument{"LoadAwareObjective: alpha must be finite and >= 0"};
  }
}

LoadAwareObjective LoadAwareObjective::for_demand(double client_demand) {
  return LoadAwareObjective{kQuWriteServiceMs * client_demand};
}

LoadAwareObjective LoadAwareObjective::for_demand(std::span<const double> client_demand) {
  double mean = 0.0;
  if (!client_demand.empty()) {
    for (double d : client_demand) mean += d;
    mean /= static_cast<double>(client_demand.size());
  }
  return LoadAwareObjective{kQuWriteServiceMs * mean, client_demand};
}

std::string LoadAwareObjective::name() const {
  const std::string base = "load-aware(alpha=" + std::to_string(alpha_) + ")";
  return client_weights().empty() ? base : base + "+demand";
}

std::span<const double> LoadAwareObjective::element_loads(
    const quorum::QuorumSystem& system) const {
  return system.uniform_load_cached();
}

ClosestStrategyObjective::ClosestStrategyObjective(double alpha) : alpha_(alpha) {
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    throw std::invalid_argument{"ClosestStrategyObjective: alpha must be finite and >= 0"};
  }
}

ClosestStrategyObjective::ClosestStrategyObjective(double alpha,
                                                   std::span<const double> client_demand)
    : Objective(client_demand), alpha_(alpha) {
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    throw std::invalid_argument{"ClosestStrategyObjective: alpha must be finite and >= 0"};
  }
}

ClosestStrategyObjective ClosestStrategyObjective::for_demand(double client_demand) {
  return ClosestStrategyObjective{kQuWriteServiceMs * client_demand};
}

ClosestStrategyObjective ClosestStrategyObjective::for_demand(
    std::span<const double> client_demand) {
  double mean = 0.0;
  if (!client_demand.empty()) {
    for (double d : client_demand) mean += d;
    mean /= static_cast<double>(client_demand.size());
  }
  return ClosestStrategyObjective{kQuWriteServiceMs * mean, client_demand};
}

std::string ClosestStrategyObjective::name() const {
  const std::string base = "closest(alpha=" + std::to_string(alpha_) + ")";
  return client_weights().empty() ? base : base + "+demand";
}

std::vector<double> ClosestStrategyObjective::site_loads(const net::LatencyMatrix& matrix,
                                                         const quorum::QuorumSystem& system,
                                                         const Placement& placement) const {
  check_weights(client_weights(), matrix.size(), "ClosestStrategyObjective::site_loads");
  return site_loads_closest(matrix, system, placement, client_weights(),
                            ExecutionModel::PerElement);
}

double ClosestStrategyObjective::evaluate_ws(const net::LatencyMatrix& matrix,
                                             const quorum::QuorumSystem& system,
                                             const Placement& placement,
                                             EvalWorkspace& workspace) const {
  // Mirrors evaluate_closest(...) arithmetic exactly (same load vector, same
  // quorum choices and tie-breaking via best_quorum, same rho and summation
  // order), minus the Evaluation bookkeeping.
  const std::span<const double> weights = client_weights();
  check_weights(weights, matrix.size(), "ClosestStrategyObjective::evaluate_ws");
  const std::vector<double> load = site_loads(matrix, system, placement);
  double total = 0.0;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    fill_element_distances(matrix, placement, v, workspace.distances);
    const quorum::Quorum quorum = system.best_quorum(workspace.distances);
    const double response = rho(matrix, placement, load, alpha_, v, quorum);
    total += weights.empty() ? response : weights[v] * response;
  }
  return weights.empty() ? total / static_cast<double>(matrix.size()) : total;
}

std::optional<ExplicitStrategy> ClosestStrategyObjective::export_strategy(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement) const {
  const std::vector<quorum::Quorum> chosen = closest_quorums(matrix, system, placement);
  ExplicitStrategy strategy;
  std::map<quorum::Quorum, std::size_t> index;
  std::vector<std::size_t> client_quorum(chosen.size());
  for (std::size_t v = 0; v < chosen.size(); ++v) {
    const auto [it, inserted] = index.try_emplace(chosen[v], strategy.quorums.size());
    if (inserted) strategy.quorums.push_back(chosen[v]);
    client_quorum[v] = it->second;
  }
  strategy.probability.assign(chosen.size(),
                              std::vector<double>(strategy.quorums.size(), 0.0));
  for (std::size_t v = 0; v < chosen.size(); ++v) {
    strategy.probability[v][client_quorum[v]] = 1.0;
  }
#if QP_PARITY_AUDIT_ENABLED
  // The exported deterministic strategy must be a proper distribution per
  // client (exactly one unit of mass) — the engine's sampler trusts this.
  for (std::size_t v = 0; v < chosen.size(); ++v) {
    double mass = 0.0;
    for (double p : strategy.probability[v]) mass += p;
    QP_PARITY_ASSERT(mass, 1.0, 1e-12,
                     "ClosestStrategyObjective::export_strategy: client row is not a "
                     "probability distribution");
  }
#endif
  return strategy;
}

const Objective& network_delay_objective() noexcept {
  static const NetworkDelayObjective objective;
  return objective;
}

}  // namespace qp::core
