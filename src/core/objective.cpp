#include "core/objective.hpp"

#include <cmath>
#include <stdexcept>

#include "core/response.hpp"

namespace qp::core {

std::vector<double> Objective::site_loads(const quorum::QuorumSystem& system,
                                          const Placement& placement,
                                          std::size_t site_count) const {
  std::vector<double> loads(site_count, 0.0);
  if (alpha() == 0.0) return loads;
  const std::span<const double> lambda = element_loads(system);
  if (lambda.empty()) return loads;
  if (lambda.size() != placement.universe_size()) {
    throw std::invalid_argument{"Objective::site_loads: element_loads size mismatch"};
  }
  for (std::size_t u = 0; u < lambda.size(); ++u) {
    loads[placement.site_of[u]] += lambda[u];
  }
  return loads;
}

void Objective::fill_values(const net::LatencyMatrix& matrix, const Placement& placement,
                            std::span<const double> site_load, std::size_t client,
                            std::vector<double>& out) const {
  const double a = alpha();
  if (a == 0.0 || site_load.empty()) {
    fill_element_distances(matrix, placement, client, out);
    return;
  }
  fill_element_values(matrix, placement, site_load, a, client, out);
}

double Objective::evaluate_ws(const net::LatencyMatrix& matrix,
                              const quorum::QuorumSystem& system,
                              const Placement& placement, EvalWorkspace& workspace) const {
  if (alpha() == 0.0) {
    return average_uniform_network_delay_ws(matrix, system, placement, workspace);
  }
  // One load table per evaluation; the per-client loop is allocation-free.
  const std::vector<double> load = site_loads(system, placement, matrix.size());
  double total = 0.0;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    fill_values(matrix, placement, load, v, workspace.values);
    total += system.expected_max_uniform_scratch(workspace.values, workspace.scratch);
  }
  return total / static_cast<double>(matrix.size());
}

double Objective::evaluate(const net::LatencyMatrix& matrix,
                           const quorum::QuorumSystem& system,
                           const Placement& placement) const {
  EvalWorkspace workspace;
  return evaluate_ws(matrix, system, placement, workspace);
}

LoadAwareObjective::LoadAwareObjective(double alpha) : alpha_(alpha) {
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    throw std::invalid_argument{"LoadAwareObjective: alpha must be finite and >= 0"};
  }
}

LoadAwareObjective LoadAwareObjective::for_demand(double client_demand) {
  return LoadAwareObjective{kQuWriteServiceMs * client_demand};
}

std::string LoadAwareObjective::name() const {
  return "load-aware(alpha=" + std::to_string(alpha_) + ")";
}

std::span<const double> LoadAwareObjective::element_loads(
    const quorum::QuorumSystem& system) const {
  return system.uniform_load_cached();
}

const Objective& network_delay_objective() noexcept {
  static const NetworkDelayObjective objective;
  return objective;
}

}  // namespace qp::core
