#include "core/failure_objective.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "core/strategy.hpp"
#include "quorum/majority.hpp"

namespace qp::core {

namespace {

/// Per-failure-state best-live-quorum evaluator with per-client tables
/// built once per evaluation:
///   * Majority-shaped systems (any q of n form a quorum): the best live
///     quorum is the q cheapest live elements — an O(n) scan of the
///     client's ascending-x order;
///   * enumerable systems: quorums sorted by fully-live max-x per client;
///     the first fully-live quorum in that order is the best live one
///     (its response is its precomputed max, since all members are live).
class StateEvaluator {
 public:
  StateEvaluator(const net::LatencyMatrix& matrix, const Placement& placement,
                 const quorum::QuorumSystem& system, double alpha,
                 std::span<const double> load, std::size_t quorum_limit)
      : n_(system.universe_size()) {
    if (const auto* majority = dynamic_cast<const quorum::MajorityQuorum*>(&system)) {
      majority_q_ = majority->quorum_size();
    } else if (system.enumerable(quorum_limit)) {
      quorums_ = system.enumerate_quorums(quorum_limit);
    } else {
      throw std::invalid_argument{
          "FailureAwareObjective: quorum system must be Majority-shaped or "
          "enumerable within options.quorum_limit"};
    }
    const std::size_t clients = matrix.size();
    x_.resize(clients);
    if (majority_q_ > 0) {
      order_.resize(clients);
    } else {
      quorum_max_.resize(clients);
      quorum_order_.resize(clients);
    }
    for (std::size_t v = 0; v < clients; ++v) {
      std::vector<double>& x = x_[v];
      x.resize(n_);
      for (std::size_t u = 0; u < n_; ++u) {
        const std::size_t site = placement.site_of[u];
        x[u] = matrix.rtt(v, site) + alpha * load[site];
      }
      if (majority_q_ > 0) {
        std::vector<std::size_t>& order = order_[v];
        order.resize(n_);
        for (std::size_t u = 0; u < n_; ++u) order[u] = u;
        std::sort(order.begin(), order.end(), [&x](std::size_t a, std::size_t b) {
          return x[a] != x[b] ? x[a] < x[b] : a < b;
        });
      } else {
        std::vector<double>& maxima = quorum_max_[v];
        maxima.resize(quorums_.size());
        for (std::size_t l = 0; l < quorums_.size(); ++l) {
          double max_x = 0.0;
          for (std::size_t u : quorums_[l]) max_x = std::max(max_x, x[u]);
          maxima[l] = max_x;
        }
        std::vector<std::size_t>& order = quorum_order_[v];
        order.resize(quorums_.size());
        for (std::size_t l = 0; l < quorums_.size(); ++l) order[l] = l;
        std::sort(order.begin(), order.end(), [&maxima](std::size_t a, std::size_t b) {
          return maxima[a] != maxima[b] ? maxima[a] < maxima[b] : a < b;
        });
      }
    }
  }

  [[nodiscard]] std::size_t universe_size() const noexcept { return n_; }
  [[nodiscard]] std::size_t majority_quorum_size() const noexcept { return majority_q_; }
  /// Client v's x values, ascending element order (Majority tables only).
  [[nodiscard]] const std::vector<std::size_t>& element_order(std::size_t v) const {
    return order_[v];
  }
  [[nodiscard]] const std::vector<double>& x(std::size_t v) const { return x_[v]; }

  /// Best-live-quorum response of client v under the element up/down state
  /// `live`; sets `available` false (and returns 0) when no quorum is live.
  [[nodiscard]] double response(std::size_t v, std::span<const char> live,
                                bool& available) const {
    if (majority_q_ > 0) {
      std::size_t found = 0;
      for (std::size_t u : order_[v]) {
        if (live[u] == 0) continue;
        if (++found == majority_q_) {
          available = true;
          return x_[v][u];
        }
      }
      available = false;
      return 0.0;
    }
    for (std::size_t l : quorum_order_[v]) {
      bool all_live = true;
      for (std::size_t u : quorums_[l]) {
        if (live[u] == 0) {
          all_live = false;
          break;
        }
      }
      if (all_live) {
        available = true;
        return quorum_max_[v][l];
      }
    }
    available = false;
    return 0.0;
  }

 private:
  std::size_t n_;
  std::size_t majority_q_ = 0;              // > 0 selects the Majority path.
  std::vector<quorum::Quorum> quorums_;     // Enumerated path.
  std::vector<std::vector<double>> x_;      // Per client, per element.
  std::vector<std::vector<std::size_t>> order_;        // Elements by ascending x.
  std::vector<std::vector<double>> quorum_max_;        // Per client, per quorum.
  std::vector<std::vector<std::size_t>> quorum_order_; // Quorums by ascending max.
};

/// Monte-Carlo over failure sets. A fresh rng per call and a fixed draw
/// schedule (regions first, then every site of the matrix) give common
/// random numbers: two placements evaluated with the same model and seed
/// see the same sequence of failure sets.
void run_monte_carlo(const FailureModel& model, const FailureAwareOptions& options,
                     std::size_t site_count, const Placement& placement,
                     const StateEvaluator& eval, std::vector<double>& response_mass,
                     std::vector<double>& avail) {
  common::Rng rng{options.seed};
  const std::size_t n = eval.universe_size();
  const std::size_t clients = response_mass.size();
  std::size_t region_count = 0;
  if (model.regional()) {
    for (std::size_t w = 0; w < site_count; ++w) {
      region_count = std::max(region_count, model.site_region[w] + 1);
    }
  }
  std::vector<char> region_down(region_count, 0);
  std::vector<char> site_down(site_count, 0);
  std::vector<char> live(n, 0);
  const double inv = 1.0 / static_cast<double>(options.mc_samples);
  for (std::size_t sample = 0; sample < options.mc_samples; ++sample) {
    for (std::size_t r = 0; r < region_count; ++r) {
      region_down[r] = static_cast<char>(rng.uniform() < model.region_failure_prob);
    }
    for (std::size_t w = 0; w < site_count; ++w) {
      bool down = rng.uniform() < model.site_failure_prob;
      if (!down && region_count > 0) down = region_down[model.site_region[w]] != 0;
      site_down[w] = static_cast<char>(down);
    }
    for (std::size_t u = 0; u < n; ++u) {
      live[u] = static_cast<char>(site_down[placement.site_of[u]] == 0);
    }
    for (std::size_t v = 0; v < clients; ++v) {
      bool available = false;
      const double response = eval.response(v, live, available);
      if (available) {
        response_mass[v] += inv * response;
        avail[v] += inv;
      }
    }
  }
}

}  // namespace

void FailureModel::validate() const {
  if (!(site_failure_prob >= 0.0) || !(site_failure_prob < 1.0) ||
      !(region_failure_prob >= 0.0) || !(region_failure_prob < 1.0)) {
    throw std::invalid_argument{
        "FailureModel: failure probabilities must lie in [0, 1)"};
  }
}

FailureAwareObjective::FailureAwareObjective(double alpha, FailureModel model,
                                             FailureAwareOptions options)
    : alpha_(alpha), model_(std::move(model)), options_(options) {
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    throw std::invalid_argument{"FailureAwareObjective: alpha must be finite and >= 0"};
  }
  model_.validate();
  if (options_.mc_samples == 0) {
    throw std::invalid_argument{"FailureAwareObjective: mc_samples must be >= 1"};
  }
  if (!(options_.unavailable_penalty_ms >= 0.0) ||
      !std::isfinite(options_.unavailable_penalty_ms)) {
    throw std::invalid_argument{
        "FailureAwareObjective: unavailable_penalty_ms must be finite and >= 0"};
  }
}

FailureAwareObjective::FailureAwareObjective(double alpha, FailureModel model,
                                             std::span<const double> client_demand,
                                             FailureAwareOptions options)
    : Objective(client_demand), alpha_(alpha), model_(std::move(model)),
      options_(options) {
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    throw std::invalid_argument{"FailureAwareObjective: alpha must be finite and >= 0"};
  }
  model_.validate();
  if (options_.mc_samples == 0) {
    throw std::invalid_argument{"FailureAwareObjective: mc_samples must be >= 1"};
  }
}

std::string FailureAwareObjective::name() const {
  char buffer[96];
  if (model_.regional()) {
    std::snprintf(buffer, sizeof buffer, "failure-aware(p=%g,regional=%g,closest)",
                  model_.site_failure_prob, model_.region_failure_prob);
  } else {
    std::snprintf(buffer, sizeof buffer, "failure-aware(p=%g,closest)",
                  model_.site_failure_prob);
  }
  return buffer;
}

std::vector<double> FailureAwareObjective::site_loads(const net::LatencyMatrix& matrix,
                                                      const quorum::QuorumSystem& system,
                                                      const Placement& placement) const {
  if (!client_weights().empty() && client_weights().size() != matrix.size()) {
    throw std::invalid_argument{"FailureAwareObjective: client weight count != clients"};
  }
  return site_loads_closest(matrix, system, placement, client_weights(),
                            ExecutionModel::PerElement);
}

double FailureAwareObjective::evaluate_ws(const net::LatencyMatrix& matrix,
                                          const quorum::QuorumSystem& system,
                                          const Placement& placement,
                                          EvalWorkspace& workspace) const {
  (void)workspace;  // The expectation over failure sets keeps its own tables.
  return evaluate_detailed(matrix, system, placement).objective_ms;
}

std::optional<ExplicitStrategy> FailureAwareObjective::export_strategy(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement) const {
  // The static exportable part is the fully-live closest strategy (what
  // first attempts use); failover re-choice is per-failure-state dynamic
  // and not expressible as a fixed distribution.
  return ClosestStrategyObjective{alpha_, client_weights()}.export_strategy(
      matrix, system, placement);
}

FailureAwareEvaluation FailureAwareObjective::evaluate_detailed(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement) const {
  placement.validate(matrix.size());
  const std::size_t site_count = matrix.size();
  const std::size_t n = system.universe_size();
  if (placement.universe_size() != n) {
    throw std::invalid_argument{"FailureAwareObjective: placement size != universe"};
  }
  if (model_.regional() && model_.site_region.size() < site_count) {
    throw std::invalid_argument{
        "FailureAwareObjective: site_region shorter than the site count"};
  }
  const std::span<const double> weights = client_weights();
  if (!weights.empty() && weights.size() != site_count) {
    throw std::invalid_argument{"FailureAwareObjective: client weight count != clients"};
  }

  const std::vector<double> load = site_loads(matrix, system, placement);
  const StateEvaluator eval{matrix, placement, system, alpha_, load,
                            options_.quorum_limit};

  const std::size_t clients = site_count;
  std::vector<double> response_mass(clients, 0.0);  // E[R ; available] per client.
  std::vector<double> avail(clients, 0.0);          // P(available) per client.
  const double p = model_.site_failure_prob;

  if (!model_.regional() && p == 0.0) {
    // Degenerate: nothing ever fails; the best live quorum is the closest.
    const std::vector<char> all_live(n, 1);
    for (std::size_t v = 0; v < clients; ++v) {
      bool available = false;
      response_mass[v] = eval.response(v, all_live, available);
      avail[v] = 1.0;
    }
  } else if (!model_.regional() && eval.majority_quorum_size() > 0 &&
             placement.one_to_one()) {
    // Exact order statistics: elements sit on distinct sites, so they fail
    // i.i.d.; the response is the q-th cheapest live x, landing on sorted
    // position j with probability C(j-1, q-1) (1-p)^q p^(j-q).
    const std::size_t q = eval.majority_quorum_size();
    double unavailable = 0.0;  // P(fewer than q of n live); client-independent.
    {
      double term = std::pow(p, static_cast<double>(n));  // j = 0 live sites.
      for (std::size_t j = 0; j < q; ++j) {
        unavailable += term;
        term *= (1.0 - p) / p * static_cast<double>(n - j) /
                static_cast<double>(j + 1);
      }
    }
    for (std::size_t v = 0; v < clients; ++v) {
      const std::vector<std::size_t>& order = eval.element_order(v);
      const std::vector<double>& x = eval.x(v);
      double mass = std::pow(1.0 - p, static_cast<double>(q));  // j = q.
      double expected = 0.0;
      for (std::size_t j = q; j <= n; ++j) {
        expected += mass * x[order[j - 1]];
        mass *= p * static_cast<double>(j) / static_cast<double>(j + 1 - q);
      }
      response_mass[v] = expected;
      avail[v] = 1.0 - unavailable;
    }
  } else if (!model_.regional() && eval.majority_quorum_size() == 0) {
    const std::vector<std::size_t> support = placement.support_set();
    if (support.size() <= options_.exact_site_limit && support.size() < 64) {
      // Exact enumeration of all 2^s support-site failure sets (colocated
      // elements correctly fail together).
      const std::size_t s = support.size();
      std::vector<std::size_t> support_index(site_count, 0);
      for (std::size_t i = 0; i < s; ++i) support_index[support[i]] = i;
      std::vector<double> up_pow(s + 1, 1.0);
      std::vector<double> down_pow(s + 1, 1.0);
      for (std::size_t i = 1; i <= s; ++i) {
        up_pow[i] = up_pow[i - 1] * (1.0 - p);
        down_pow[i] = down_pow[i - 1] * p;
      }
      std::vector<char> live(n, 0);
      for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << s); ++mask) {
        const auto down = static_cast<std::size_t>(std::popcount(mask));
        const double prob = up_pow[s - down] * down_pow[down];
        for (std::size_t u = 0; u < n; ++u) {
          const std::size_t bit = support_index[placement.site_of[u]];
          live[u] = static_cast<char>(((mask >> bit) & 1U) == 0);
        }
        for (std::size_t v = 0; v < clients; ++v) {
          bool available = false;
          const double response = eval.response(v, live, available);
          if (available) {
            response_mass[v] += prob * response;
            avail[v] += prob;
          }
        }
      }
    } else {
      run_monte_carlo(model_, options_, site_count, placement, eval, response_mass,
                      avail);
    }
  } else {
    run_monte_carlo(model_, options_, site_count, placement, eval, response_mass,
                    avail);
  }

  FailureAwareEvaluation out;
  double weighted_response = 0.0;
  double weighted_avail = 0.0;
  const double uniform = 1.0 / static_cast<double>(clients);
  for (std::size_t v = 0; v < clients; ++v) {
    const double w = weights.empty() ? uniform : weights[v];
    weighted_response += w * response_mass[v];
    weighted_avail += w * avail[v];
  }
  out.unavailability = 1.0 - weighted_avail;
  out.objective_ms =
      weighted_response + out.unavailability * options_.unavailable_penalty_ms;
  out.expected_response_ms =
      weighted_avail > 0.0 ? weighted_response / weighted_avail : 0.0;
  return out;
}

}  // namespace qp::core
