#include "core/eval_workspace.hpp"

namespace qp::core {

void fill_element_distances(const net::LatencyMatrix& matrix, const Placement& placement,
                            std::size_t client, std::vector<double>& out) {
  const std::vector<double>& row = matrix.row(client);
  out.resize(placement.universe_size());
  for (std::size_t u = 0; u < out.size(); ++u) out[u] = row[placement.site_of[u]];
}

void fill_element_values(const net::LatencyMatrix& matrix, const Placement& placement,
                         std::span<const double> site_load, double alpha,
                         std::size_t client, std::vector<double>& out) {
  const std::vector<double>& row = matrix.row(client);
  out.resize(placement.universe_size());
  for (std::size_t u = 0; u < out.size(); ++u) {
    const std::size_t site = placement.site_of[u];
    out[u] = row[site] + alpha * site_load[site];
  }
}

double average_uniform_network_delay_ws(const net::LatencyMatrix& matrix,
                                        const quorum::QuorumSystem& system,
                                        const Placement& placement,
                                        EvalWorkspace& workspace) {
  double total = 0.0;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    fill_element_distances(matrix, placement, v, workspace.distances);
    total += system.expected_max_uniform_scratch(workspace.distances, workspace.scratch);
  }
  return total / static_cast<double>(matrix.size());
}

}  // namespace qp::core
