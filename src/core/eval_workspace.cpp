#include "core/eval_workspace.hpp"

#include "common/simd_kernels.hpp"

namespace qp::core {

// The fill kernels below are gathers (indexed by site_of): baseline x86-64
// has no gather instruction, so common::gather_indexed runs its scalar
// loop there and the AVX2 vpgatherqpd form under ENABLE_AVX2 (identical
// doubles either way; bench_eval_kernels records both variants). The
// reductions those values feed — the Majority order-stat dot, the Grid
// row/column maxima and quorum-maxima sums — run through the vectorized
// common/simd_kernels.hpp kernels inside each QuorumSystem's
// expected_max_uniform_scratch.

void fill_element_distances(const net::LatencyMatrix& matrix, const Placement& placement,
                            std::size_t client, std::vector<double>& out) {
  const double* row = matrix.row(client).data();
  const std::size_t n = placement.universe_size();
  out.resize(n);
  common::gather_indexed(row, placement.site_of.data(), n, out.data());
}

void fill_element_values(const net::LatencyMatrix& matrix, const Placement& placement,
                         std::span<const double> site_load, double alpha,
                         std::size_t client, std::vector<double>& out) {
  const double* row = matrix.row(client).data();
  const double* load = site_load.data();
  const std::size_t n = placement.universe_size();
  out.resize(n);
  const std::size_t* site = placement.site_of.data();
  double* y = out.data();
  for (std::size_t u = 0; u < n; ++u) {
    const std::size_t w = site[u];
    y[u] = row[w] + alpha * load[w];
  }
}

double average_uniform_network_delay_ws(const net::LatencyMatrix& matrix,
                                        const quorum::QuorumSystem& system,
                                        const Placement& placement,
                                        EvalWorkspace& workspace) {
  double total = 0.0;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    fill_element_distances(matrix, placement, v, workspace.distances);
    total += system.expected_max_uniform_scratch(workspace.distances, workspace.scratch);
  }
  return total / static_cast<double>(matrix.size());
}

}  // namespace qp::core
