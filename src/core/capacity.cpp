#include "core/capacity.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace qp::core {

std::vector<double> uniform_capacity_levels(double l_opt, std::size_t count) {
  if (!(l_opt > 0.0) || l_opt > 1.0) {
    throw std::invalid_argument{"uniform_capacity_levels: l_opt must be in (0,1]"};
  }
  if (count == 0) throw std::invalid_argument{"uniform_capacity_levels: count must be > 0"};
  const double lambda = (1.0 - l_opt) / static_cast<double>(count);
  std::vector<double> levels(count);
  for (std::size_t i = 1; i <= count; ++i) {
    levels[i - 1] = l_opt + static_cast<double>(i) * lambda;
  }
  return levels;
}

std::vector<double> nonuniform_capacities(const net::LatencyMatrix& matrix,
                                          std::span<const std::size_t> support, double beta,
                                          double gamma) {
  if (support.empty()) throw std::invalid_argument{"nonuniform_capacities: empty support"};
  if (!(beta >= 0.0) || beta > gamma || gamma > 1.0) {
    throw std::invalid_argument{"nonuniform_capacities: need 0 <= beta <= gamma <= 1"};
  }
  std::vector<double> inverse_distance(support.size());
  double le = std::numeric_limits<double>::infinity();
  double re = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < support.size(); ++i) {
    const double s = matrix.average_rtt_from(support[i]);
    if (s <= 0.0) {
      throw std::invalid_argument{"nonuniform_capacities: zero average distance"};
    }
    inverse_distance[i] = 1.0 / s;
    le = std::min(le, inverse_distance[i]);
    re = std::max(re, inverse_distance[i]);
  }
  std::vector<double> capacities(matrix.size(), gamma);
  const double range = re - le;
  for (std::size_t i = 0; i < support.size(); ++i) {
    const double cap =
        range > 1e-15 ? (inverse_distance[i] - le) / range * (gamma - beta) + beta : gamma;
    capacities[support[i]] = cap;
  }
  return capacities;
}

std::vector<double> uniform_capacities(std::size_t site_count, double level) {
  if (level < 0.0) throw std::invalid_argument{"uniform_capacities: negative level"};
  return std::vector<double>(site_count, level);
}

}  // namespace qp::core
