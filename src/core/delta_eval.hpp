// Incremental ("delta") evaluation of the placement-search objective
//
//   J(f) = avg_v E_uniform-Q [ max_{u in Q} d(v, f(u)) ]
//
// under single-element relocations f(u) <- w. Relocating one element changes
// exactly one coordinate of every client's per-element distance vector, so
// the objective of a candidate move can be computed from cached per-client
// state instead of re-sorting every vector:
//
//   * SortedWeights (Majority, Singleton — any exchangeable system exposing
//     QuorumSystem::order_stat_weights): per-client ASCENDING-sorted value
//     arrays plus prefix sums of the weight differences. A relocation is an
//     O(log n) remove/insert position search plus O(1) arithmetic per client,
//     against the naive O(n log n) copy+sort+dot.
//   * Grid: per-client row/column maxima and the total quorum-maxima sum;
//     a relocation touches one row and one column, O(k) per client against
//     the naive O(k^2) rebuild.
//   * Enumerated (FPP, Tree, and any system enumerable within 50k quorums):
//     per-client per-quorum maxima; a relocation only revisits the quorums
//     containing the moved element.
//   * Recompute: allocation-free full re-evaluation per client — correctness
//     fallback for systems fitting none of the above.
//
// All modes return values within ~1e-12 of average_uniform_network_delay
// (summation order differs, so bit-identity is not guaranteed), and
// apply_move asserts that parity in debug builds. objective_if_moved is
// const and thread-safe, so a parallel neighborhood scan may share one
// evaluator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/placement.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

class DeltaEvaluator {
 public:
  /// Caches per-client state for `placement`. The matrix and system must
  /// outlive the evaluator; the placement is copied.
  DeltaEvaluator(const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
                 const Placement& placement);

  [[nodiscard]] const Placement& placement() const noexcept { return placement_; }

  /// Current objective J(f).
  [[nodiscard]] double objective() const noexcept;

  /// J(f') where f' relocates `element` to `site`; the placement itself is
  /// unchanged. Thread-safe.
  [[nodiscard]] double objective_if_moved(std::size_t element, std::size_t site) const;

  /// Commits the relocation and refreshes the cached state (also bounding
  /// floating-point drift: deltas are always taken against a fresh base).
  void apply_move(std::size_t element, std::size_t site);

 private:
  enum class Mode { SortedWeights, Grid, Enumerated, Recompute };

  void rebuild();
  [[nodiscard]] double client_delta_sorted(std::size_t client, double old_value,
                                           double new_value) const;

  const net::LatencyMatrix* matrix_;
  const quorum::QuorumSystem* system_;
  Placement placement_;
  Mode mode_;
  std::size_t clients_ = 0;
  std::size_t n_ = 0;

  /// Sum over clients of E_v, and E_v itself (or the per-client quorum-sum
  /// S_v for the Grid/Enumerated modes, see .cpp).
  double base_total_ = 0.0;
  std::vector<double> client_sum_;

  // SortedWeights mode.
  std::span<const double> weights_;
  std::vector<double> sorted_;      // clients x n, each row ascending.
  std::vector<double> shift_up_;    // clients x n prefix sums (see .cpp).
  std::vector<double> shift_down_;  // clients x (n+1) prefix sums.

  // Grid / Enumerated / Recompute modes.
  std::vector<double> values_;   // clients x n raw per-element distances.
  std::size_t side_ = 0;         // Grid: k.
  std::vector<double> row_max_;  // Grid: clients x k.
  std::vector<double> col_max_;  // Grid: clients x k.
  // Grid acceleration tables (clients x n / clients x k, see .cpp): the row
  // (column) maximum excluding the element's own column (row), and the
  // per-row / per-column quorum-maxima sums, so a candidate move is two
  // branch-free O(k) reductions instead of four branchy ones.
  std::vector<double> row_excl_;        // clients x n.
  std::vector<double> col_excl_;        // clients x n.
  std::vector<double> row_quorum_sum_;  // clients x k: sum_c max(rm[r], cm[c]).
  std::vector<double> col_quorum_sum_;  // clients x k: sum_r max(rm[r], cm[c]).
  std::vector<quorum::Quorum> quorums_;             // Enumerated.
  std::vector<std::vector<std::size_t>> incident_;  // Enumerated: element -> quorum ids.
  std::vector<double> quorum_max_;                  // Enumerated: clients x |quorums|.
};

}  // namespace qp::core
