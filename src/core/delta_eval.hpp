// Incremental ("delta") evaluation of a pluggable search objective
//
//   J(f) = avg_v E_uniform-Q [ max_{u in Q} x_f(v, u) ],
//   x_f(v, u) = d(v, f(u)) + alpha * load_f(f(u))         (core::Objective)
//
// under single-element relocations f(u) <- w. For the network-delay
// objective (alpha = 0) relocating one element changes exactly one
// coordinate of every client's per-element value vector; the load-aware
// objective (alpha > 0) preserves that property whenever the relocation
// moves a solely-hosted element to an unused site (the invariant of the
// one-to-one local search): load_f at the old site is exactly the element's
// own lambda_u, which follows it to the new site, so only coordinate u
// moves — by d(v,w) - d(v,a) plus the alpha-scaled load shift. The cached
// per-client state then answers candidate moves without re-sorting:
//
//   * SortedWeights (Majority, Singleton — any exchangeable system exposing
//     QuorumSystem::order_stat_weights): per-client ASCENDING-sorted value
//     arrays plus prefix sums of the weight differences. A relocation is an
//     O(log n) remove/insert position search plus O(1) arithmetic per client,
//     against the naive O(n log n) copy+sort+dot.
//   * Grid: per-client row/column maxima and the total quorum-maxima sum;
//     a relocation touches one row and one column, O(k) per client against
//     the naive O(k^2) rebuild.
//   * Enumerated (FPP, Tree, and any system enumerable within 50k quorums):
//     per-client per-quorum maxima; a relocation only revisits the quorums
//     containing the moved element.
//   * Recompute: allocation-free full re-evaluation per client — correctness
//     fallback for systems fitting none of the above.
//
// Moves that colocate elements (either endpoint hosts anything else) shift
// load_f at both sites and hence every colocated element's value; those fall
// back to a per-client patched re-evaluation against the maintained per-site
// load tables (site_load_ / hosted_count_), which apply_move updates in O(1)
// before refreshing the cached state.
//
// All modes return values within ~1e-12 of Objective::evaluate (summation
// order differs, so bit-identity is not guaranteed), and apply_move asserts
// that parity in debug builds. objective_if_moved is const and thread-safe,
// so a parallel neighborhood scan may share one evaluator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/objective.hpp"
#include "core/placement.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

class DeltaEvaluator {
 public:
  /// Caches per-client state for `placement` under `objective`. The matrix,
  /// system, and objective must outlive the evaluator; the placement is
  /// copied. The two-argument form evaluates pure network delay.
  DeltaEvaluator(const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
                 const Placement& placement, const Objective& objective);
  DeltaEvaluator(const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
                 const Placement& placement);

  [[nodiscard]] const Placement& placement() const noexcept { return placement_; }

  [[nodiscard]] const Objective& objective_function() const noexcept { return *objective_; }

  /// Current objective J(f).
  [[nodiscard]] double objective() const noexcept;

  /// J(f') where f' relocates `element` to `site`; the placement itself is
  /// unchanged. Thread-safe.
  [[nodiscard]] double objective_if_moved(std::size_t element, std::size_t site) const;

  /// Commits the relocation and refreshes the cached state (also bounding
  /// floating-point drift: deltas are always taken against a fresh base).
  void apply_move(std::size_t element, std::size_t site);

 private:
  enum class Mode { SortedWeights, Grid, Enumerated, Recompute };

  void rebuild();
  /// x_f(v, u) for every element into `out` (size n_).
  void gather_values(std::size_t v, double* out) const;
  /// Fallback for load-shifting (colocated) moves: per-client patched
  /// re-evaluation against the post-move load tables.
  [[nodiscard]] double objective_if_moved_general(std::size_t element,
                                                  std::size_t site) const;
  [[nodiscard]] double client_delta_sorted(std::size_t client, double old_value,
                                           double new_value) const;

  const net::LatencyMatrix* matrix_;
  const quorum::QuorumSystem* system_;
  const Objective* objective_;
  Placement placement_;
  Mode mode_;
  std::size_t clients_ = 0;
  std::size_t n_ = 0;

  /// Load model state: alpha, per-element lambda_u, and the per-site tables
  /// maintained across moves. load_aware_ is false when alpha == 0 (or the
  /// objective has no load contributions), in which case the tables stay
  /// empty and every code path matches the historical network-delay engine.
  double alpha_ = 0.0;
  bool load_aware_ = false;
  std::span<const double> lambda_;
  std::vector<double> site_load_;          // sites: sum of hosted lambda_u.
  std::vector<double> site_term_;          // sites: alpha * site_load_.
  std::vector<std::size_t> hosted_count_;  // sites: # hosted elements.

  /// Sum over clients of E_v, and E_v itself (or the per-client quorum-sum
  /// S_v for the Grid/Enumerated modes, see .cpp).
  double base_total_ = 0.0;
  std::vector<double> client_sum_;

  // SortedWeights mode.
  std::span<const double> weights_;
  std::vector<double> sorted_;      // clients x n, each row ascending.
  std::vector<double> shift_up_;    // clients x n prefix sums (see .cpp).
  std::vector<double> shift_down_;  // clients x (n+1) prefix sums.

  // Grid / Enumerated / Recompute modes.
  std::vector<double> values_;   // clients x n raw per-element values.
  std::size_t side_ = 0;         // Grid: k.
  std::vector<double> row_max_;  // Grid: clients x k.
  std::vector<double> col_max_;  // Grid: clients x k.
  // Grid acceleration tables (clients x n / clients x k, see .cpp): the row
  // (column) maximum excluding the element's own column (row), and the
  // per-row / per-column quorum-maxima sums, so a candidate move is two
  // branch-free O(k) reductions instead of four branchy ones.
  std::vector<double> row_excl_;        // clients x n.
  std::vector<double> col_excl_;        // clients x n.
  std::vector<double> row_quorum_sum_;  // clients x k: sum_c max(rm[r], cm[c]).
  std::vector<double> col_quorum_sum_;  // clients x k: sum_r max(rm[r], cm[c]).
  std::vector<quorum::Quorum> quorums_;             // Enumerated.
  std::vector<std::vector<std::size_t>> incident_;  // Enumerated: element -> quorum ids.
  std::vector<double> quorum_max_;                  // Enumerated: clients x |quorums|.
};

}  // namespace qp::core
