// Incremental ("delta") evaluation of a pluggable search objective
//
//   J(f) = sum_v w_v R_f(v),
//   x_f(v, u) = d(v, f(u)) + alpha * load_f(f(u))         (core::Objective)
//
// under single-element relocations f(u) <- w, for both access strategies
// (w_v are the objective's demand shares; empty = uniform 1/|V|, evaluated
// by the historical unweighted arithmetic).
//
// Balanced strategy (R = E_uniform[max x]): relocating one element changes
// exactly one coordinate of every client's per-element value vector when
// alpha = 0, and also when an alpha > 0 move relocates a solely-hosted
// element to an unused site (the invariant of the one-to-one local search):
// load_f at the old site is exactly the element's own lambda_u, which
// follows it to the new site. The cached per-client state then answers
// candidate moves without re-sorting:
//
//   * SortedWeights (Majority, Singleton — any exchangeable system exposing
//     QuorumSystem::order_stat_weights): per-client ASCENDING-sorted value
//     arrays plus prefix sums of the weight differences. A relocation is an
//     O(log n) remove/insert position search plus O(1) arithmetic per client,
//     against the naive O(n log n) copy+sort+dot.
//   * Grid: per-client row/column maxima and the total quorum-maxima sum;
//     a relocation touches one row and one column, O(k) per client against
//     the naive O(k^2) rebuild.
//   * Enumerated (FPP, Tree, and any system enumerable within 50k quorums):
//     per-client per-quorum maxima; a relocation only revisits the quorums
//     containing the moved element.
//   * Recompute: allocation-free full re-evaluation per client — correctness
//     fallback for systems fitting none of the above.
//
// Moves that colocate elements (either endpoint hosts anything else) shift
// load_f at both sites and hence every colocated element's value; those fall
// back to a per-client patched re-evaluation against the maintained per-site
// load tables (site_load_ / hosted_count_).
//
// Closest strategy (§6, R = rho of the argmin-network-delay quorum): the
// per-client cost couples globally through the load the quorum choices
// induce, so the evaluator maintains an incremental quorum-choice structure:
// the per-client chosen quorum (identity + its best network value m1, plus
// the second-best value for Majority) with lazy repair on site moves. A
// candidate move classifies every client in O(1):
//   * u not in the chosen quorum and d(v, w) strictly above m1 — the choice
//     provably cannot flip (any quorum containing u is now strictly worse
//     than the unchanged best), regardless of tie-breaking;
//   * Majority only: u chosen and d(v, w) strictly below the second-best
//     value y[q] — u keeps its slot and the chosen set is unchanged;
//   * otherwise the choice is recomputed exactly — replicating each
//     system's best_quorum tie-breaking (Majority (value, index) selection,
//     Grid flattened argmin) from the cached tables, or calling best_quorum
//     itself for enumerated systems (Tree's DP tie-breaking is not scan
//     order) — so colocated placements (which tie constantly) stay in exact
//     parity with the naive closest evaluation.
// The candidate load table is the maintained one patched by the (few)
// flipped choices; the response pass then reprices every client's chosen
// quorum in O(|Q|). apply_move repairs the distance rows (one coordinate
// per client), the per-client sorted/maxima tables, and the quorum-choice
// tables in place — no full rebuild — then reaccumulates loads and
// responses from the repaired tables so floating-point drift cannot
// compound across moves.
//
// All modes return values within ~1e-12 of Objective::evaluate (summation
// order differs, so bit-identity is not guaranteed), and apply_move audits
// that parity via QP_PARITY_ASSERT when QP_CHECK_LEVEL >= 2 (see
// common/check.hpp; the asan preset arms it). objective_if_moved is const
// and thread-safe, so a parallel neighborhood scan may share one evaluator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/objective.hpp"
#include "core/placement.hpp"
#include "net/latency_matrix.hpp"
#include "net/latency_space.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

class ClientCandidateIndex;

class DeltaEvaluator {
 public:
  /// Caches per-client state for `placement` under `objective`. The space,
  /// system, and objective must outlive the evaluator; the placement is
  /// copied. The space may be a dense LatencyMatrix or any implicit
  /// LatencySpace (e.g. a LatencyEmbedding) — results are identical doubles
  /// whenever the two agree pairwise. The two-argument form evaluates pure
  /// network delay. Throws std::invalid_argument for a closest-strategy
  /// objective on a system that is neither Grid, Majority, nor enumerable.
  DeltaEvaluator(const net::LatencySpace& space, const quorum::QuorumSystem& system,
                 const Placement& placement, const Objective& objective);
  DeltaEvaluator(const net::LatencySpace& space, const quorum::QuorumSystem& system,
                 const Placement& placement);

  [[nodiscard]] const Placement& placement() const noexcept { return placement_; }

  [[nodiscard]] const Objective& objective_function() const noexcept { return *objective_; }

  /// Current objective J(f).
  [[nodiscard]] double objective() const noexcept;

  /// J(f') where f' relocates `element` to `site`; the placement itself is
  /// unchanged. Thread-safe.
  [[nodiscard]] double objective_if_moved(std::size_t element, std::size_t site) const;

  /// Commits the relocation with per-move incremental repair of the cached
  /// distance/load/quorum-choice tables (per-client sums are reaccumulated
  /// from the repaired tables, so drift cannot compound); colocating moves
  /// under a load-aware balanced objective fall back to a full rebuild.
  void apply_move(std::size_t element, std::size_t site);

  /// True when the objective uses the closest access strategy (the modes
  /// that can route candidate evaluation through a ClientCandidateIndex).
  [[nodiscard]] bool closest_strategy() const noexcept { return closest_; }

  /// Closest modes: the current per-client chosen-quorum network value m1 —
  /// the coverage radii a ClientCandidateIndex should be built from. Empty
  /// for balanced modes.
  [[nodiscard]] std::span<const double> best_values() const noexcept {
    return closest_ ? std::span<const double>{best_value_} : std::span<const double>{};
  }

  /// Routes closest-strategy candidate evaluation through `index` (null
  /// detaches): objective_if_moved then touches only the clients that can
  /// flip (charge index of the old site + inverted lists of the new site +
  /// coverage overflow) and reprices only clients whose inputs changed,
  /// instead of scanning all n clients. Exact for uncapped indexes (up to
  /// FP summation order, audited at QP_CHECK_LEVEL >= 2 against the full
  /// scan); approximate candidate ranking for capped ones (see
  /// client_index.hpp). The index must be built over this evaluator's space
  /// and outlive the evaluator (or the next attach). Throws
  /// std::invalid_argument for balanced objectives or a size mismatch.
  void attach_candidate_index(const ClientCandidateIndex* index);

 private:
  enum class Mode {
    SortedWeights,
    Grid,
    Enumerated,
    Recompute,
    ClosestGrid,
    ClosestMajority,
    ClosestEnumerated,
  };

  void rebuild();
  /// Per-client sorted-row prefix sums + expectation from sorted_ (see
  /// rebuild); shared by rebuild and the single-coordinate repair.
  void rebuild_sorted_client(std::size_t v);
  /// Per-client Grid quorum-sum tables from row/col maxima; shared likewise.
  void rebuild_grid_client_sums(std::size_t v);
  /// Repairs client v's Grid row/col maxima and exclusion tables after the
  /// single cell (r0, c0) of values_ changed — shared by the balanced
  /// single-coordinate repair and the closest-mode apply path.
  void repair_grid_client_tables(std::size_t v, std::size_t r0, std::size_t c0);
  /// x_f(v, u) for every element into `out` (size n_).
  void gather_values(std::size_t v, double* out) const;
  /// Single-coordinate repair of the balanced-mode tables after
  /// placement_.site_of[element] changed old_site -> site. old_add/new_add
  /// are the alpha-scaled load terms of the old and new coordinate value.
  void repair_single(std::size_t element, std::size_t site, std::size_t old_site,
                     double old_add, double new_add);
  /// Fallback for load-shifting (colocated) moves: per-client patched
  /// re-evaluation against the post-move load tables.
  [[nodiscard]] double objective_if_moved_general(std::size_t element,
                                                  std::size_t site) const;
  [[nodiscard]] double client_delta_sorted(std::size_t client, double old_value,
                                           double new_value) const;

  // ---- Closest-strategy machinery (see file comment). ----
  void rebuild_closest();
  /// Reaccumulates closest_load_ (weighted charges of every chosen quorum)
  /// and the per-client responses from the current choice tables.
  void rebuild_closest_loads_and_rho();
  /// Exact chosen set of client v for patched distances (element -> value
  /// `patched`), replicating MajorityQuorum::best_quorum's (value, index)
  /// selection; appends the q chosen ids (ascending) to `out`.
  void majority_chosen_patched(std::size_t v, std::size_t element, double patched,
                               std::vector<std::size_t>& out) const;
  [[nodiscard]] double closest_if_moved(std::size_t element, std::size_t site) const;
  /// Sparse variant of closest_if_moved driven by candidate_index_ — see
  /// attach_candidate_index.
  [[nodiscard]] double closest_if_moved_indexed(std::size_t element,
                                                std::size_t site) const;
  void apply_move_closest(std::size_t element, std::size_t site);
  /// Rebuilds the site -> charging-clients lists (and the coverage-overflow
  /// set) from the current chosen quorums — the full O(clients x |Q|) pass,
  /// used at (re)build time and whenever no charge lists are maintained.
  void rebuild_charge_index();
  /// Bounded replacement for rebuild_closest_loads_and_rho after an accepted
  /// move, driven by the maintained charge lists: only the sites whose
  /// charging multiset changed are re-summed (ascending client order, so the
  /// per-site sums are bitwise those of the full reaccumulation) and only
  /// clients whose chosen quorum or a charged site's load changed are
  /// repriced. `touched_clients` are the ascending clients whose charge set
  /// moved, `new_charges` their (site, client) post-move charges in client
  /// order, `affected_sites` the union of their old and new charge sites.
  void reaccumulate_closest_dirty(std::span<const std::size_t> touched_clients,
                                  std::vector<std::pair<std::size_t, std::size_t>>& new_charges,
                                  std::vector<std::size_t>& affected_sites);
  /// Per-client weight: demand share, or 1/|V| for the uniform objective.
  [[nodiscard]] double charge_weight(std::size_t v) const noexcept;

  /// d(v, s) — dense row lookup when the space has a matrix, virtual
  /// coordinate arithmetic otherwise.
  [[nodiscard]] double site_rtt(std::size_t v, std::size_t s) const {
    return matrix_ != nullptr ? matrix_->row(v)[s] : space_->rtt(v, s);
  }

  const net::LatencySpace* space_;
  const net::LatencyMatrix* matrix_;  // space_->as_matrix(); null when implicit.
  const quorum::QuorumSystem* system_;
  const Objective* objective_;
  Placement placement_;
  Mode mode_;
  std::size_t clients_ = 0;
  std::size_t n_ = 0;

  /// Demand shares from the objective (empty = uniform). Uniform keeps the
  /// historical accumulate-then-divide arithmetic bitwise.
  std::span<const double> client_weight_;

  /// Load model state: alpha, per-element lambda_u, and the per-site tables
  /// maintained across moves. load_aware_ is false when alpha == 0 (or the
  /// objective has no load contributions), in which case the tables stay
  /// empty and every code path matches the historical network-delay engine.
  double alpha_ = 0.0;
  bool load_aware_ = false;
  bool closest_ = false;
  std::span<const double> lambda_;
  std::vector<double> site_load_;          // sites: sum of hosted lambda_u.
  std::vector<double> site_term_;          // sites: alpha * site_load_.
  std::vector<std::size_t> hosted_count_;  // sites: # hosted elements.

  /// Weighted sum over clients of R_v, and R_v itself (or the per-client
  /// quorum-sum S_v for the Grid/Enumerated balanced modes, see .cpp).
  double base_total_ = 0.0;
  std::vector<double> client_sum_;

  // SortedWeights mode (sorted_ also backs the ClosestMajority tables).
  std::span<const double> weights_;
  std::vector<double> sorted_;      // clients x n, each row ascending.
  std::vector<double> shift_up_;    // clients x n prefix sums (see .cpp).
  std::vector<double> shift_down_;  // clients x (n+1) prefix sums.

  // Grid / Enumerated / Recompute modes; values_ holds x_f rows (balanced)
  // or pure distance rows (closest).
  std::vector<double> values_;   // clients x n raw per-element values.
  std::size_t side_ = 0;         // Grid: k.
  std::vector<double> row_max_;  // Grid: clients x k.
  std::vector<double> col_max_;  // Grid: clients x k.
  // Grid acceleration tables (clients x n / clients x k, see .cpp): the row
  // (column) maximum excluding the element's own column (row), and the
  // per-row / per-column quorum-maxima sums, so a candidate move is two
  // branch-free O(k) reductions instead of four branchy ones.
  std::vector<double> row_excl_;        // clients x n.
  std::vector<double> col_excl_;        // clients x n.
  std::vector<double> row_quorum_sum_;  // clients x k: sum_c max(rm[r], cm[c]).
  std::vector<double> col_quorum_sum_;  // clients x k: sum_r max(rm[r], cm[c]).
  std::vector<quorum::Quorum> quorums_;             // Enumerated.
  std::vector<std::vector<std::size_t>> incident_;  // Enumerated: element -> quorum ids.
  std::vector<double> quorum_max_;                  // Enumerated: clients x |quorums|.

  // Closest-strategy quorum-choice tables.
  std::size_t majority_q_ = 0;                  // ClosestMajority: quorum size q.
  std::vector<quorum::Quorum> chosen_quorum_;   // Per-client chosen identity.
  std::vector<std::uint8_t> in_best_;           // Majority/Enumerated: clients x n.
  std::vector<std::size_t> chosen_row_;         // ClosestGrid: chosen r*.
  std::vector<std::size_t> chosen_col_;         // ClosestGrid: chosen c*.
  std::vector<double> best_value_;              // m1: chosen quorum's network max.
  std::vector<double> second_value_;            // Majority: y[q] (+inf if q == n).
  std::vector<double> closest_load_;            // Weighted load_f per site.

  // Sparse candidate evaluation (closest modes, optional): the attached
  // per-client candidate lists, the site -> charging-clients lists (one
  // ascending client list per site, with per-element multiplicity; repaired
  // in place per accepted move), and the clients whose m1 outgrew their
  // list's covered radius (always checked, so uncapped evaluation stays
  // exact).
  const ClientCandidateIndex* candidate_index_ = nullptr;
  std::vector<std::vector<std::size_t>> charge_lists_;  // sites -> clients.
  std::vector<std::size_t> overflow_clients_;
  // apply_move scratch (clients-sized flags, cleared per accepted move).
  std::vector<std::uint8_t> dirty_client_;
  std::vector<std::uint8_t> reprice_client_;
};

}  // namespace qp::core
