// Capacity-tuning techniques of §7. The paper treats cap(v) not as a
// physical limit but as a *tuning knob* passed to the access-strategy LP:
// lower capacities force the LP to spread load (good under high demand),
// higher capacities let clients concentrate on nearby quorums (good under
// low demand).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/latency_matrix.hpp"

namespace qp::core {

/// The sweep levels of (7.7): c_i = L_opt + i * (1 - L_opt) / count for
/// i = 1..count. Requires 0 < l_opt <= 1.
[[nodiscard]] std::vector<double> uniform_capacity_levels(double l_opt,
                                                          std::size_t count = 10);

/// §7 "Non-uniform node capacities": capacities inversely proportional to
/// the support node's average distance s_i to all clients, mapped affinely
/// into [beta, gamma]:
///   cap(v_i) = (1/s_i - le) / (re - le) * (gamma - beta) + beta
/// where le/re are the min/max of 1/s_i over the support set. Sites outside
/// the support set receive gamma (they carry no load, so the value is
/// irrelevant to the LP). If all s_i are equal every support site gets gamma.
[[nodiscard]] std::vector<double> nonuniform_capacities(const net::LatencyMatrix& matrix,
                                                        std::span<const std::size_t> support,
                                                        double beta, double gamma);

/// Uniform capacity vector (every site gets `level`).
[[nodiscard]] std::vector<double> uniform_capacities(std::size_t site_count, double level);

}  // namespace qp::core
