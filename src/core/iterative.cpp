#include "core/iterative.hpp"

#include <stdexcept>

#include "core/response.hpp"

namespace qp::core {

namespace {

/// Explicit strategy in which every client uses the same distribution.
ExplicitStrategy common_strategy(std::vector<quorum::Quorum> quorums,
                                 const std::vector<double>& distribution,
                                 std::size_t client_count) {
  ExplicitStrategy strategy;
  strategy.quorums = std::move(quorums);
  strategy.probability.assign(client_count, distribution);
  return strategy;
}

}  // namespace

IterativeResult iterative_placement(const net::LatencyMatrix& matrix,
                                    const quorum::QuorumSystem& system,
                                    std::span<const double> capacities,
                                    const Objective& objective,
                                    const IterativeOptions& options) {
  const double alpha = objective.alpha();
  // Demand shares weight every evaluation, its load attribution, AND the
  // phase-2 LPs: both the delay objective and the capacity-row load
  // coefficients charge client v its demand share, so the alternation's
  // load-preservation argument holds for skewed workloads too (the phase-1
  // loads it pins the caps to are demand-weighted the same way).
  const std::span<const double> demand = objective.client_weights();
  const std::vector<quorum::Quorum> quorums =
      system.enumerate_quorums(options.strategy.quorum_limit);
  const std::size_t m = quorums.size();
  const std::size_t clients = matrix.size();

  // p^0 = uniform distribution for every client (§4.2).
  std::vector<double> average_distribution(m, 1.0 / static_cast<double>(m));

  IterativeResult accepted;
  bool have_accepted = false;
  IterativeResult result;

  // Basis of the last optimal phase-2 LP and the placement support set it
  // was solved under; reused only while the support set (and so the LP's
  // row/column shape) is unchanged across rounds.
  lp::Basis warm_basis;
  std::vector<std::size_t> warm_support;

  for (std::size_t j = 1; j <= options.max_iterations; ++j) {
    IterationRecord record;
    record.iteration = j;

    // Phase 1: many-to-one placement under the average strategy.
    const ManyToOneSearchResult search = best_many_to_one_placement(
        matrix, system, average_distribution, capacities, options.anchor_candidates,
        options.placement);
    if (search.best.status != lp::SolveStatus::Optimal) {
      if (!have_accepted) {
        throw std::runtime_error{
            "iterative_placement: placement LP infeasible in the first iteration "
            "(capacities too low for the quorum system)"};
      }
      break;
    }
    const Placement& placement = search.best.placement;
    record.max_capacity_violation = search.best.max_capacity_violation;

    const ExplicitStrategy carried =
        common_strategy(quorums, average_distribution, clients);
    const Evaluation phase1 =
        evaluate_explicit(matrix, system, placement, alpha, carried, demand);
    record.response_after_placement = phase1.avg_response_ms;
    record.network_after_placement = phase1.avg_network_delay_ms;

    // Phase 2: re-optimize access strategies with cap(v) = load_{f_j}(v), so
    // the LP may only re-route delay, never concentrate load further.
    std::vector<double> load_caps = phase1.site_load;
    for (double& cap : load_caps) cap = cap * (1.0 + 1e-9) + 1e-12;
    StrategyLpOptions strategy_options = options.strategy;
    const std::vector<std::size_t> support = placement.support_set();
    if (options.warm_start && !warm_basis.empty() && support == warm_support) {
      strategy_options.simplex.initial_basis = warm_basis;
      record.lp_warm_started = true;
    }
    const StrategyLpResult lp_result = optimize_access_strategy(
        matrix, system, placement, load_caps, demand, strategy_options);
    record.lp_iterations = lp_result.lp_iterations;
    if (lp_result.status != lp::SolveStatus::Optimal) {
      // The carried strategy is feasible for these capacities by
      // construction, so this indicates numerical trouble; stop cleanly.
      result.history.push_back(record);
      break;
    }
    if (options.warm_start && !lp_result.basis.empty()) {
      warm_basis = lp_result.basis;
      warm_support = support;
    }
    const Evaluation phase2 =
        evaluate_explicit(matrix, system, placement, alpha, lp_result.strategy, demand);
    record.response_after_strategy = phase2.avg_response_ms;
    record.network_after_strategy = phase2.avg_network_delay_ms;

    const bool improved = !have_accepted ||
                          phase2.avg_response_ms <
                              accepted.avg_response - options.improvement_tolerance;
    record.accepted = improved;
    result.history.push_back(record);
    if (!improved) break;

    accepted.placement = placement;
    accepted.strategy = lp_result.strategy;
    accepted.avg_response = phase2.avg_response_ms;
    accepted.avg_network_delay = phase2.avg_network_delay_ms;
    have_accepted = true;
    average_distribution = lp_result.strategy.average_distribution();
  }

  if (!have_accepted) {
    throw std::runtime_error{"iterative_placement: no iteration produced a placement"};
  }
  accepted.history = std::move(result.history);
  return accepted;
}

IterativeResult iterative_placement(const net::LatencyMatrix& matrix,
                                    const quorum::QuorumSystem& system,
                                    std::span<const double> capacities, double alpha,
                                    const IterativeOptions& options) {
  if (alpha == 0.0) {
    return iterative_placement(matrix, system, capacities, network_delay_objective(),
                               options);
  }
  const LoadAwareObjective objective{alpha};
  return iterative_placement(matrix, system, capacities, objective, options);
}

}  // namespace qp::core
