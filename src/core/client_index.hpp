// ClientCandidateIndex: per-client k-nearest site lists plus the inverted
// site -> clients index that makes candidate evaluation sparse.
//
// For the closest access strategy, a candidate move f(u) <- b can only
// change client v's quorum *choice* if
//   * v currently charges u's site (u might leave v's chosen quorum), or
//   * d(v, b) <= m1(v), the chosen quorum's network value (b might enter).
// The first set comes from the evaluator's charge index (rebuilt per
// accepted move); the second is exactly "the clients whose candidate list
// contains b" — provided each client's list covers every site within its
// m1. This index stores those lists (CSR, ascending site id) and their
// inversion (CSR, ascending client id), so DeltaEvaluator can enumerate the
// affected clients of a candidate in output-sensitive time instead of
// scanning all n clients.
//
// Two modes:
//  * Uncapped (cap == 0): each list covers radius[v] * margin (at least
//    min_sites). Combined with the evaluator's overflow tracking (clients
//    whose m1 outgrows their covered radius are always checked), candidate
//    evaluation is EXACT — the sparse path returns the same answer as the
//    full scan up to FP summation order. This is the parity mode used on
//    every n <= 500 config.
//  * Capped (cap > 0): each list is the cap nearest sites. Coverage of m1
//    is no longer guaranteed, so candidate *ranking* becomes approximate
//    (a flip triggered by a site outside every list can be missed);
//    apply_move stays exact, so the search trajectory remains a genuine
//    improving sequence. This bounds memory at O(n * cap) for the 10k-50k
//    regime.
//
// Lists are static after build; the evaluator re-checks coverage against
// the current m1 after every accepted move (see overflow_clients_).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/knn_index.hpp"
#include "net/latency_space.hpp"

namespace qp::core {

class ClientCandidateIndex {
 public:
  struct Config {
    /// 0 = uncapped (exact coverage of radius * margin); > 0 caps each list
    /// at that many nearest sites (approximate, bounded memory).
    std::size_t cap = 0;
    /// Uncapped coverage slack: lists cover radius[v] * margin, so m1 can
    /// grow this much across moves before the client falls into the
    /// always-checked overflow set. Must be >= 1.
    double margin = 1.25;
    /// Uncapped lists never hold fewer than this many sites (when n allows).
    std::size_t min_sites = 8;
  };

  /// Builds lists for every site-as-client of `space`. `radius` is the
  /// per-client coverage target (typically the evaluator's current m1
  /// values); empty means 0 (min_sites-only lists). `knn` accelerates the
  /// list queries and is required when `space.as_matrix()` is null;
  /// otherwise a brute-force dense scan is used. Throws
  /// std::invalid_argument on a bad config or missing backend.
  [[nodiscard]] static ClientCandidateIndex build(const net::LatencySpace& space,
                                                  const net::KnnIndex* knn,
                                                  std::span<const double> radius,
                                                  const Config& config);

  [[nodiscard]] std::size_t size() const noexcept { return radius_.size(); }
  [[nodiscard]] bool capped() const noexcept { return capped_; }

  /// Client v's candidate sites, ascending site id.
  [[nodiscard]] std::span<const std::size_t> sites_of(std::size_t client) const;
  /// Coverage radius actually guaranteed for v: every site with
  /// rtt(v, s) <= covered_radius(v) is in sites_of(v). Meaningful for the
  /// uncapped mode (capped lists guarantee only the cap nearest).
  [[nodiscard]] double covered_radius(std::size_t client) const;
  /// Clients whose list contains `site`, ascending client id.
  [[nodiscard]] std::span<const std::size_t> clients_of(std::size_t site) const;

  /// Total list entries (forward == inverted); memory/coverage telemetry.
  [[nodiscard]] std::size_t total_entries() const noexcept { return sites_.size(); }

 private:
  bool capped_ = false;
  std::vector<std::size_t> offsets_;      // clients + 1.
  std::vector<std::size_t> sites_;        // concatenated lists.
  std::vector<double> radius_;            // per-client covered radius.
  std::vector<std::size_t> inv_offsets_;  // sites + 1.
  std::vector<std::size_t> inv_clients_;  // concatenated inverted lists.
};

}  // namespace qp::core
