// The response-time model of §4, equations (4.1) and (4.2):
//
//   rho_f(v, Q) = max_{w in f(Q)} ( d(v, w) + alpha * load_f(w) )
//   Delta_f(v)  = sum_Q p_v(Q) rho_f(v, Q)
//   objective   = avg_{v in V} Delta_f(v)
//
// with alpha = op_srv_time * client_demand (§7). Setting alpha = 0 recovers
// the pure network-delay measure used in §6.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

/// Per-request service time of a Q/U write on the paper's testbed hardware
/// (§7): 0.007 ms. alpha = kQuWriteServiceMs * client_demand.
inline constexpr double kQuWriteServiceMs = 0.007;

struct Evaluation {
  /// avg_v Delta_f(v): the paper's objective, in milliseconds.
  double avg_response_ms = 0.0;
  /// Same average with alpha forced to 0 (pure network delay).
  double avg_network_delay_ms = 0.0;
  /// load_f(w) per site (zero off the support set).
  std::vector<double> site_load;
  /// Delta_f(v) per client.
  std::vector<double> per_client_response;
};

/// Normalizes a per-client demand vector to shares summing to 1 — the
/// weight vector every demand-aware evaluation consumes. Empty or constant
/// demand (uniform clients) returns an empty vector, which selects the
/// historical unweighted arithmetic, so uniform-demand results reproduce
/// pre-demand outputs bitwise. Throws on a size mismatch with
/// `client_count` or on negative/non-finite entries.
[[nodiscard]] std::vector<double> demand_shares(std::span<const double> client_demand,
                                                std::size_t client_count);

/// Closest access strategy (§6): each client deterministically uses its
/// minimum-network-delay quorum; the load those choices induce still enters
/// the response time through alpha. `model` selects the §8 execution model
/// (PerElement reproduces the paper; Collapsed is its future-work variant).
[[nodiscard]] Evaluation evaluate_closest(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement, double alpha,
    ExecutionModel model = ExecutionModel::PerElement);

/// Balanced access strategy (§7): uniform over all quorums, evaluated
/// analytically (order statistics for Majorities, enumeration for Grid).
[[nodiscard]] Evaluation evaluate_balanced(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement, double alpha,
    ExecutionModel model = ExecutionModel::PerElement);

/// Arbitrary explicit per-client strategies (e.g. LP-optimized ones).
[[nodiscard]] Evaluation evaluate_explicit(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement, double alpha, const ExplicitStrategy& strategy,
    ExecutionModel model = ExecutionModel::PerElement);

/// Demand-weighted variants: `client_demand` is the raw per-client demand
/// vector (any positive scaling; normalized internally via demand_shares).
/// Both the response averages and the load attribution weight client v by
/// its demand share instead of 1/|V| — except the balanced load model,
/// which is demand-invariant (identical per-client quorum distributions).
/// Empty/constant demand reduces exactly to the uniform overloads above.
[[nodiscard]] Evaluation evaluate_closest(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement, double alpha, std::span<const double> client_demand,
    ExecutionModel model = ExecutionModel::PerElement);
[[nodiscard]] Evaluation evaluate_balanced(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement, double alpha, std::span<const double> client_demand,
    ExecutionModel model = ExecutionModel::PerElement);
[[nodiscard]] Evaluation evaluate_explicit(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Placement& placement, double alpha, const ExplicitStrategy& strategy,
    std::span<const double> client_demand,
    ExecutionModel model = ExecutionModel::PerElement);

/// rho_f(v, Q) per (4.1) for one concrete quorum — shared helper.
[[nodiscard]] double rho(const net::LatencyMatrix& matrix, const Placement& placement,
                         std::span<const double> site_load, double alpha, std::size_t client,
                         const quorum::Quorum& quorum);

}  // namespace qp::core
