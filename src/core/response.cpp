#include "core/response.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/eval_workspace.hpp"

namespace qp::core {

double rho(const net::LatencyMatrix& matrix, const Placement& placement,
           std::span<const double> site_load, double alpha, std::size_t client,
           const quorum::Quorum& quorum) {
  const std::vector<double>& row = matrix.row(client);
  double worst = 0.0;
  for (std::size_t u : quorum) {
    const std::size_t site = placement.site_of[u];
    worst = std::max(worst, row[site] + alpha * site_load[site]);
  }
  return worst;
}

std::vector<double> demand_shares(std::span<const double> client_demand,
                                  std::size_t client_count) {
  if (client_demand.empty()) return {};
  if (client_demand.size() != client_count) {
    throw std::invalid_argument{"demand_shares: demand vector size != client count"};
  }
  double sum = 0.0;
  for (double d : client_demand) {
    if (!(d >= 0.0) || !std::isfinite(d)) {
      throw std::invalid_argument{"demand_shares: demand must be finite and >= 0"};
    }
    sum += d;
  }
  const bool constant = std::all_of(client_demand.begin(), client_demand.end(),
                                    [&](double d) { return d == client_demand[0]; });
  if (constant || sum <= 0.0) return {};
  std::vector<double> shares(client_demand.size());
  for (std::size_t v = 0; v < client_demand.size(); ++v) {
    shares[v] = client_demand[v] / sum;
  }
  return shares;
}

namespace {

/// Weighted (or, for empty weights, exactly the historical uniform)
/// accumulation of the per-client response/network series into the averages.
struct WeightedAverager {
  std::span<const double> weights;  // Shares; empty = uniform 1/|V|.
  double response_sum = 0.0;
  double network_sum = 0.0;

  void add(std::size_t client, double response, double network) {
    if (weights.empty()) {
      response_sum += response;
      network_sum += network;
    } else {
      response_sum += weights[client] * response;
      network_sum += weights[client] * network;
    }
  }

  void finish(std::size_t client_count, Evaluation& eval) const {
    const double divisor =
        weights.empty() ? static_cast<double>(client_count) : 1.0;
    eval.avg_response_ms = response_sum / divisor;
    eval.avg_network_delay_ms = network_sum / divisor;
  }
};

Evaluation evaluate_closest_weighted(const net::LatencyMatrix& matrix,
                                     const quorum::QuorumSystem& system,
                                     const Placement& placement, double alpha,
                                     std::span<const double> weights,
                                     ExecutionModel model) {
  placement.validate(matrix.size());
  Evaluation eval;
  eval.site_load = site_loads_closest(matrix, system, placement, weights, model);
  eval.per_client_response.reserve(matrix.size());
  EvalWorkspace ws;
  WeightedAverager avg{weights};
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    fill_element_distances(matrix, placement, v, ws.distances);
    // The quorum is chosen by network delay alone (that is what "closest"
    // means); the load term then applies to the chosen quorum.
    const quorum::Quorum quorum = system.best_quorum(ws.distances);
    double network = 0.0;
    for (std::size_t u : quorum) network = std::max(network, ws.distances[u]);
    const double response = rho(matrix, placement, eval.site_load, alpha, v, quorum);
    eval.per_client_response.push_back(response);
    avg.add(v, response, network);
  }
  avg.finish(matrix.size(), eval);
  return eval;
}

Evaluation evaluate_balanced_weighted(const net::LatencyMatrix& matrix,
                                      const quorum::QuorumSystem& system,
                                      const Placement& placement, double alpha,
                                      std::span<const double> weights,
                                      ExecutionModel model) {
  placement.validate(matrix.size());
  Evaluation eval;
  // The balanced load model is demand-invariant: every client induces the
  // same per-element load, so any convex weighting reproduces the uniform
  // table.
  eval.site_load = site_loads_balanced(system, placement, matrix.size(), model);
  eval.per_client_response.reserve(matrix.size());
  EvalWorkspace ws;
  WeightedAverager avg{weights};
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    fill_element_values(matrix, placement, eval.site_load, alpha, v, ws.values);
    fill_element_distances(matrix, placement, v, ws.distances);
    const double response = system.expected_max_uniform_scratch(ws.values, ws.scratch);
    const double network = system.expected_max_uniform_scratch(ws.distances, ws.scratch);
    eval.per_client_response.push_back(response);
    avg.add(v, response, network);
  }
  avg.finish(matrix.size(), eval);
  return eval;
}

Evaluation evaluate_explicit_weighted(const net::LatencyMatrix& matrix,
                                      const quorum::QuorumSystem& system,
                                      const Placement& placement, double alpha,
                                      const ExplicitStrategy& strategy,
                                      std::span<const double> weights,
                                      ExecutionModel model) {
  placement.validate(matrix.size());
  strategy.validate(matrix.size(), system.universe_size());
  Evaluation eval;
  eval.site_load =
      site_loads_explicit(strategy, placement, matrix.size(), weights, model);
  eval.per_client_response.reserve(matrix.size());
  EvalWorkspace ws;
  WeightedAverager avg{weights};
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    fill_element_values(matrix, placement, eval.site_load, alpha, v, ws.values);
    fill_element_distances(matrix, placement, v, ws.distances);
    double response = 0.0;
    double network = 0.0;
    const std::vector<double>& probs = strategy.probability[v];
    for (std::size_t i = 0; i < strategy.quorums.size(); ++i) {
      if (probs[i] == 0.0) continue;
      double value_max = 0.0;
      double distance_max = 0.0;
      for (std::size_t u : strategy.quorums[i]) {
        value_max = std::max(value_max, ws.values[u]);
        distance_max = std::max(distance_max, ws.distances[u]);
      }
      response += probs[i] * value_max;
      network += probs[i] * distance_max;
    }
    eval.per_client_response.push_back(response);
    avg.add(v, response, network);
  }
  avg.finish(matrix.size(), eval);
  return eval;
}

}  // namespace

Evaluation evaluate_closest(const net::LatencyMatrix& matrix,
                            const quorum::QuorumSystem& system, const Placement& placement,
                            double alpha, ExecutionModel model) {
  return evaluate_closest_weighted(matrix, system, placement, alpha, {}, model);
}

Evaluation evaluate_closest(const net::LatencyMatrix& matrix,
                            const quorum::QuorumSystem& system, const Placement& placement,
                            double alpha, std::span<const double> client_demand,
                            ExecutionModel model) {
  const std::vector<double> shares = demand_shares(client_demand, matrix.size());
  return evaluate_closest_weighted(matrix, system, placement, alpha, shares, model);
}

Evaluation evaluate_balanced(const net::LatencyMatrix& matrix,
                             const quorum::QuorumSystem& system, const Placement& placement,
                             double alpha, ExecutionModel model) {
  return evaluate_balanced_weighted(matrix, system, placement, alpha, {}, model);
}

Evaluation evaluate_balanced(const net::LatencyMatrix& matrix,
                             const quorum::QuorumSystem& system, const Placement& placement,
                             double alpha, std::span<const double> client_demand,
                             ExecutionModel model) {
  const std::vector<double> shares = demand_shares(client_demand, matrix.size());
  return evaluate_balanced_weighted(matrix, system, placement, alpha, shares, model);
}

Evaluation evaluate_explicit(const net::LatencyMatrix& matrix,
                             const quorum::QuorumSystem& system, const Placement& placement,
                             double alpha, const ExplicitStrategy& strategy,
                             ExecutionModel model) {
  return evaluate_explicit_weighted(matrix, system, placement, alpha, strategy, {}, model);
}

Evaluation evaluate_explicit(const net::LatencyMatrix& matrix,
                             const quorum::QuorumSystem& system, const Placement& placement,
                             double alpha, const ExplicitStrategy& strategy,
                             std::span<const double> client_demand, ExecutionModel model) {
  const std::vector<double> shares = demand_shares(client_demand, matrix.size());
  return evaluate_explicit_weighted(matrix, system, placement, alpha, strategy, shares,
                                    model);
}

}  // namespace qp::core
