#include "core/response.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/eval_workspace.hpp"

namespace qp::core {

double rho(const net::LatencyMatrix& matrix, const Placement& placement,
           std::span<const double> site_load, double alpha, std::size_t client,
           const quorum::Quorum& quorum) {
  const std::vector<double>& row = matrix.row(client);
  double worst = 0.0;
  for (std::size_t u : quorum) {
    const std::size_t site = placement.site_of[u];
    worst = std::max(worst, row[site] + alpha * site_load[site]);
  }
  return worst;
}

Evaluation evaluate_closest(const net::LatencyMatrix& matrix,
                            const quorum::QuorumSystem& system, const Placement& placement,
                            double alpha, ExecutionModel model) {
  placement.validate(matrix.size());
  Evaluation eval;
  eval.site_load = site_loads_closest(matrix, system, placement, model);
  eval.per_client_response.reserve(matrix.size());
  EvalWorkspace ws;
  double response_sum = 0.0;
  double network_sum = 0.0;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    fill_element_distances(matrix, placement, v, ws.distances);
    // The quorum is chosen by network delay alone (that is what "closest"
    // means); the load term then applies to the chosen quorum.
    const quorum::Quorum quorum = system.best_quorum(ws.distances);
    double network = 0.0;
    for (std::size_t u : quorum) network = std::max(network, ws.distances[u]);
    const double response = rho(matrix, placement, eval.site_load, alpha, v, quorum);
    eval.per_client_response.push_back(response);
    response_sum += response;
    network_sum += network;
  }
  eval.avg_response_ms = response_sum / static_cast<double>(matrix.size());
  eval.avg_network_delay_ms = network_sum / static_cast<double>(matrix.size());
  return eval;
}

Evaluation evaluate_balanced(const net::LatencyMatrix& matrix,
                             const quorum::QuorumSystem& system, const Placement& placement,
                             double alpha, ExecutionModel model) {
  placement.validate(matrix.size());
  Evaluation eval;
  eval.site_load = site_loads_balanced(system, placement, matrix.size(), model);
  eval.per_client_response.reserve(matrix.size());
  EvalWorkspace ws;
  double response_sum = 0.0;
  double network_sum = 0.0;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    fill_element_values(matrix, placement, eval.site_load, alpha, v, ws.values);
    fill_element_distances(matrix, placement, v, ws.distances);
    const double response = system.expected_max_uniform_scratch(ws.values, ws.scratch);
    const double network = system.expected_max_uniform_scratch(ws.distances, ws.scratch);
    eval.per_client_response.push_back(response);
    response_sum += response;
    network_sum += network;
  }
  eval.avg_response_ms = response_sum / static_cast<double>(matrix.size());
  eval.avg_network_delay_ms = network_sum / static_cast<double>(matrix.size());
  return eval;
}

Evaluation evaluate_explicit(const net::LatencyMatrix& matrix,
                             const quorum::QuorumSystem& system, const Placement& placement,
                             double alpha, const ExplicitStrategy& strategy,
                             ExecutionModel model) {
  placement.validate(matrix.size());
  strategy.validate(matrix.size(), system.universe_size());
  Evaluation eval;
  eval.site_load = site_loads_explicit(strategy, placement, matrix.size(), model);
  eval.per_client_response.reserve(matrix.size());
  EvalWorkspace ws;
  double response_sum = 0.0;
  double network_sum = 0.0;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    fill_element_values(matrix, placement, eval.site_load, alpha, v, ws.values);
    fill_element_distances(matrix, placement, v, ws.distances);
    double response = 0.0;
    double network = 0.0;
    const std::vector<double>& probs = strategy.probability[v];
    for (std::size_t i = 0; i < strategy.quorums.size(); ++i) {
      if (probs[i] == 0.0) continue;
      double value_max = 0.0;
      double distance_max = 0.0;
      for (std::size_t u : strategy.quorums[i]) {
        value_max = std::max(value_max, ws.values[u]);
        distance_max = std::max(distance_max, ws.distances[u]);
      }
      response += probs[i] * value_max;
      network += probs[i] * distance_max;
    }
    eval.per_client_response.push_back(response);
    response_sum += response;
    network_sum += network;
  }
  eval.avg_response_ms = response_sum / static_cast<double>(matrix.size());
  eval.avg_network_delay_ms = network_sum / static_cast<double>(matrix.size());
  return eval;
}

}  // namespace qp::core
