#include "core/client_index.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace qp::core {

ClientCandidateIndex ClientCandidateIndex::build(const net::LatencySpace& space,
                                                 const net::KnnIndex* knn,
                                                 std::span<const double> radius,
                                                 const Config& config) {
  const std::size_t n = space.size();
  if (!radius.empty() && radius.size() != n) {
    throw std::invalid_argument{"ClientCandidateIndex: radius count != site count"};
  }
  if (!(config.margin >= 1.0)) {
    throw std::invalid_argument{"ClientCandidateIndex: margin must be >= 1"};
  }
  std::optional<net::KnnIndex> local;
  if (knn == nullptr) {
    const net::LatencyMatrix* matrix = space.as_matrix();
    if (matrix == nullptr) {
      throw std::invalid_argument{
          "ClientCandidateIndex: an implicit LatencySpace needs a KnnIndex"};
    }
    local.emplace(*matrix);
    knn = &*local;
  }
  if (knn->size() != n) {
    throw std::invalid_argument{"ClientCandidateIndex: KnnIndex size != space size"};
  }

  ClientCandidateIndex out;
  out.capped_ = config.cap > 0;
  out.radius_.resize(n);
  out.offsets_.assign(n + 1, 0);
  std::vector<net::KnnIndex::Neighbor> buf;
  for (std::size_t v = 0; v < n; ++v) {
    if (out.capped_) {
      knn->nearest(v, config.cap, buf);
      out.radius_[v] = buf.empty() ? 0.0 : buf.back().rtt_ms;
    } else {
      const double cover = (radius.empty() ? 0.0 : radius[v]) * config.margin;
      knn->within(v, cover, buf);
      if (buf.size() < std::min(config.min_sites, n)) {
        // The min-size floor subsumes the radius query: fewer than
        // min_sites sites lie within `cover`, so the min_sites nearest
        // contain all of them.
        knn->nearest(v, config.min_sites, buf);
      }
      out.radius_[v] = cover;
    }
    // Lists store site ids ascending — candidate enumeration and the
    // inverted index never depend on distance order.
    std::sort(buf.begin(), buf.end(),
              [](const net::KnnIndex::Neighbor& a, const net::KnnIndex::Neighbor& b) {
                return a.site < b.site;
              });
    for (const auto& nb : buf) out.sites_.push_back(nb.site);
    out.offsets_[v + 1] = out.sites_.size();
  }

  // Invert: counting pass, prefix offsets, fill. Filling in ascending
  // client order makes each clients_of(site) ascending.
  out.inv_offsets_.assign(n + 1, 0);
  for (std::size_t s : out.sites_) ++out.inv_offsets_[s + 1];
  for (std::size_t s = 0; s < n; ++s) out.inv_offsets_[s + 1] += out.inv_offsets_[s];
  out.inv_clients_.resize(out.sites_.size());
  std::vector<std::size_t> cursor(out.inv_offsets_.begin(), out.inv_offsets_.end() - 1);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = out.offsets_[v]; i < out.offsets_[v + 1]; ++i) {
      out.inv_clients_[cursor[out.sites_[i]]++] = v;
    }
  }
  return out;
}

std::span<const std::size_t> ClientCandidateIndex::sites_of(std::size_t client) const {
  if (client >= size()) {
    throw std::out_of_range{"ClientCandidateIndex::sites_of: client out of range"};
  }
  return {sites_.data() + offsets_[client], offsets_[client + 1] - offsets_[client]};
}

double ClientCandidateIndex::covered_radius(std::size_t client) const {
  if (client >= size()) {
    throw std::out_of_range{"ClientCandidateIndex::covered_radius: client out of range"};
  }
  return radius_[client];
}

std::span<const std::size_t> ClientCandidateIndex::clients_of(std::size_t site) const {
  if (site >= size()) {
    throw std::out_of_range{"ClientCandidateIndex::clients_of: site out of range"};
  }
  return {inv_clients_.data() + inv_offsets_[site],
          inv_offsets_[site + 1] - inv_offsets_[site]};
}

}  // namespace qp::core
