#include "core/manytoone.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/strategy.hpp"
#include "flow/assignment.hpp"

namespace qp::core {

namespace {

/// Fractional assignment x[u][w] plus bookkeeping from the LP step.
struct FractionalPlacement {
  std::vector<std::vector<double>> x;  // [element][site]
  double objective = 0.0;
};

FractionalPlacement solve_placement_lp(const net::LatencyMatrix& matrix,
                                       std::span<const quorum::Quorum> quorums,
                                       std::span<const double> distribution,
                                       std::span<const double> element_load,
                                       std::span<const double> capacities, std::size_t v0,
                                       const ManyToOneOptions& options,
                                       lp::SolveStatus& status) {
  const std::size_t sites = matrix.size();
  const std::size_t n = element_load.size();
  const std::size_t m = quorums.size();
  const std::vector<double>& d = matrix.row(v0);

  lp::LpProblem problem;
  // Variables: x_uw (u * sites + w), then t_i.
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t w = 0; w < sites; ++w) (void)problem.add_variable(0.0);
  }
  std::vector<std::size_t> t_var(m);
  for (std::size_t i = 0; i < m; ++i) t_var[i] = problem.add_variable(distribution[i]);

  // Assignment rows: sum_w x_uw = 1.
  for (std::size_t u = 0; u < n; ++u) {
    const std::size_t row = problem.add_row(lp::RowSense::Equal, 1.0);
    for (std::size_t w = 0; w < sites; ++w) problem.add_coefficient(row, u * sites + w, 1.0);
  }
  // Delay rows: sum_w d(v0,w) x_uw - t_i <= 0 for every i and u in Q_i.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t u : quorums[i]) {
      const std::size_t row = problem.add_row(lp::RowSense::LessEqual, 0.0);
      for (std::size_t w = 0; w < sites; ++w) {
        if (d[w] > 0.0) problem.add_coefficient(row, u * sites + w, d[w]);
      }
      problem.add_coefficient(row, t_var[i], -1.0);
    }
  }
  // Capacity rows: sum_u load(u) x_uw <= cap(w).
  for (std::size_t w = 0; w < sites; ++w) {
    const std::size_t row = problem.add_row(lp::RowSense::LessEqual, capacities[w]);
    for (std::size_t u = 0; u < n; ++u) {
      if (element_load[u] > 0.0) {
        problem.add_coefficient(row, u * sites + w, element_load[u]);
      }
    }
  }

  const lp::SimplexSolver solver{options.simplex};
  const lp::Solution solution = solver.solve(problem);
  status = solution.status;

  FractionalPlacement fractional;
  if (status != lp::SolveStatus::Optimal) return fractional;
  fractional.objective = solution.objective;
  fractional.x.assign(n, std::vector<double>(sites, 0.0));
  for (std::size_t u = 0; u < n; ++u) {
    double sum = 0.0;
    for (std::size_t w = 0; w < sites; ++w) {
      const double value = std::max(0.0, solution.values[u * sites + w]);
      fractional.x[u][w] = value;
      sum += value;
    }
    for (std::size_t w = 0; w < sites; ++w) fractional.x[u][w] /= sum;
  }
  return fractional;
}

/// Lin–Vitter filtering: zero out assignments farther than (1+eps) times the
/// element's fractional average distance, then renormalize each row.
void filter_fractional(FractionalPlacement& fractional, const std::vector<double>& d,
                       double epsilon) {
  for (std::vector<double>& row : fractional.x) {
    double average = 0.0;
    for (std::size_t w = 0; w < row.size(); ++w) average += row[w] * d[w];
    const double threshold = (1.0 + epsilon) * average + 1e-12;
    double kept = 0.0;
    for (std::size_t w = 0; w < row.size(); ++w) {
      if (d[w] > threshold) {
        row[w] = 0.0;
      } else {
        kept += row[w];
      }
    }
    // Markov: mass within (1+eps)*average is at least eps/(1+eps) > 0.
    if (kept <= 0.0) throw std::logic_error{"filter_fractional: all mass filtered"};
    for (double& value : row) value /= kept;
  }
}

/// Shmoys–Tardos rounding: split every site into ceil(fractional mass) unit
/// slots, spread each site's items over its slots in decreasing-size order,
/// and solve the resulting min-cost bipartite assignment exactly.
Placement round_to_slots(const FractionalPlacement& fractional,
                         std::span<const double> element_load, const std::vector<double>& d) {
  const std::size_t n = fractional.x.size();
  const std::size_t sites = n == 0 ? 0 : fractional.x[0].size();

  std::vector<std::size_t> slot_site;  // Slot index -> hosting site.
  std::vector<flow::AssignmentEdge> edges;

  for (std::size_t w = 0; w < sites; ++w) {
    // Items with positive fraction on w, by decreasing load.
    std::vector<std::size_t> items;
    double mass = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      if (fractional.x[u][w] > 1e-12) {
        items.push_back(u);
        mass += fractional.x[u][w];
      }
    }
    if (items.empty()) continue;
    std::stable_sort(items.begin(), items.end(), [&](std::size_t a, std::size_t b) {
      return element_load[a] > element_load[b];
    });
    const auto slot_count = static_cast<std::size_t>(std::ceil(mass - 1e-9));
    const std::size_t first_slot = slot_site.size();
    for (std::size_t s = 0; s < std::max<std::size_t>(slot_count, 1); ++s) {
      slot_site.push_back(w);
    }
    // Walk cumulative mass; item u (fraction y) overlaps slots
    // [floor(before), floor(before + y)] in the cumulative ordering.
    double before = 0.0;
    for (std::size_t u : items) {
      const double y = fractional.x[u][w];
      const auto lo = static_cast<std::size_t>(before + 1e-12);
      double after = before + y;
      auto hi = static_cast<std::size_t>(after - 1e-12);
      hi = std::min(hi, slot_site.size() - first_slot - 1);
      for (std::size_t s = lo; s <= hi; ++s) {
        edges.push_back(flow::AssignmentEdge{u, first_slot + s, element_load[u] * d[w]});
      }
      before = after;
    }
  }

  const std::vector<std::size_t> slot_capacity(slot_site.size(), 1);
  const auto assignment = flow::min_cost_assignment(n, slot_capacity, edges);
  if (!assignment) {
    // The fractional solution is itself a feasible fractional matching of
    // this bipartite instance, so an integral one must exist.
    throw std::logic_error{"round_to_slots: no perfect matching (internal error)"};
  }
  Placement placement;
  placement.site_of.resize(n);
  for (std::size_t u = 0; u < n; ++u) {
    placement.site_of[u] = slot_site[assignment->slot_of[u]];
  }
  return placement;
}

}  // namespace

ManyToOneResult many_to_one_placement(const net::LatencyMatrix& matrix,
                                      const quorum::QuorumSystem& system,
                                      std::span<const double> quorum_distribution,
                                      std::span<const double> capacities, std::size_t v0,
                                      const ManyToOneOptions& options) {
  if (capacities.size() != matrix.size()) {
    throw std::invalid_argument{"many_to_one_placement: capacities size mismatch"};
  }
  if (v0 >= matrix.size()) {
    throw std::invalid_argument{"many_to_one_placement: v0 out of range"};
  }
  const std::vector<quorum::Quorum> quorums = system.enumerate_quorums(options.quorum_limit);
  if (quorum_distribution.size() != quorums.size()) {
    throw std::invalid_argument{"many_to_one_placement: distribution size mismatch"};
  }
  const double total =
      std::accumulate(quorum_distribution.begin(), quorum_distribution.end(), 0.0);
  if (std::abs(total - 1.0) > 1e-6) {
    throw std::invalid_argument{"many_to_one_placement: distribution must sum to 1"};
  }
  const std::vector<double> load =
      element_loads(quorums, quorum_distribution, system.universe_size());

  ManyToOneResult result;
  FractionalPlacement fractional =
      solve_placement_lp(matrix, quorums, quorum_distribution, load, capacities, v0, options,
                         result.status);
  if (result.status != lp::SolveStatus::Optimal) return result;
  result.lp_delay_bound = fractional.objective;

  const std::vector<double>& d = matrix.row(v0);
  filter_fractional(fractional, d, options.epsilon);
  result.placement = round_to_slots(fractional, load, d);

  // Quantify the bounded capacity violation.
  std::vector<double> site_load(matrix.size(), 0.0);
  for (std::size_t u = 0; u < load.size(); ++u) {
    site_load[result.placement.site_of[u]] += load[u];
  }
  for (std::size_t w = 0; w < matrix.size(); ++w) {
    if (site_load[w] <= 0.0) continue;
    const double cap = std::max(capacities[w], 1e-12);
    result.max_capacity_violation = std::max(result.max_capacity_violation, site_load[w] / cap);
  }
  return result;
}

double average_network_delay_under_distribution(const net::LatencyMatrix& matrix,
                                                std::span<const quorum::Quorum> quorums,
                                                std::span<const double> distribution,
                                                const Placement& placement) {
  placement.validate(matrix.size());
  double total = 0.0;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    const std::vector<double>& row = matrix.row(v);
    double expected = 0.0;
    for (std::size_t i = 0; i < quorums.size(); ++i) {
      if (distribution[i] == 0.0) continue;
      double worst = 0.0;
      for (std::size_t u : quorums[i]) {
        worst = std::max(worst, row[placement.site_of[u]]);
      }
      expected += distribution[i] * worst;
    }
    total += expected;
  }
  return total / static_cast<double>(matrix.size());
}

ManyToOneSearchResult best_many_to_one_placement(const net::LatencyMatrix& matrix,
                                                 const quorum::QuorumSystem& system,
                                                 std::span<const double> quorum_distribution,
                                                 std::span<const double> capacities,
                                                 std::span<const std::size_t> candidates,
                                                 const ManyToOneOptions& options) {
  std::vector<std::size_t> all;
  if (candidates.empty()) {
    all.resize(matrix.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    candidates = all;
  }
  const std::vector<quorum::Quorum> quorums = system.enumerate_quorums(options.quorum_limit);

  ManyToOneSearchResult best;
  best.avg_network_delay = std::numeric_limits<double>::infinity();
  for (std::size_t v0 : candidates) {
    ManyToOneResult candidate =
        many_to_one_placement(matrix, system, quorum_distribution, capacities, v0, options);
    if (candidate.status != lp::SolveStatus::Optimal) continue;
    const double delay = average_network_delay_under_distribution(
        matrix, quorums, quorum_distribution, candidate.placement);
    if (delay < best.avg_network_delay) {
      best.avg_network_delay = delay;
      best.anchor_client = v0;
      best.best = std::move(candidate);
    }
  }
  if (!std::isfinite(best.avg_network_delay)) {
    best.best.status = lp::SolveStatus::Infeasible;
  }
  return best;
}

}  // namespace qp::core
