#include "core/delta_eval.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/simd_kernels.hpp"
#include "quorum/grid.hpp"

namespace qp::core {

namespace {

constexpr std::size_t kEnumerationLimit = 50'000;

}  // namespace

DeltaEvaluator::DeltaEvaluator(const net::LatencyMatrix& matrix,
                               const quorum::QuorumSystem& system,
                               const Placement& placement, const Objective& objective)
    : matrix_(&matrix),
      system_(&system),
      objective_(&objective),
      placement_(placement),
      mode_(Mode::Recompute) {
  placement_.validate(matrix.size());
  clients_ = matrix.size();
  n_ = placement_.universe_size();
  if (n_ != system.universe_size()) {
    throw std::invalid_argument{"DeltaEvaluator: placement size != universe size"};
  }
  alpha_ = objective.alpha();
  lambda_ = objective.element_loads(system);
  load_aware_ = alpha_ != 0.0 && !lambda_.empty();
  if (load_aware_ && lambda_.size() != n_) {
    throw std::logic_error{"DeltaEvaluator: element_loads size mismatch"};
  }
  weights_ = system.order_stat_weights();
  if (!weights_.empty()) {
    if (weights_.size() != n_) {
      throw std::logic_error{"DeltaEvaluator: order_stat_weights size mismatch"};
    }
    mode_ = Mode::SortedWeights;
  } else if (const auto* grid = dynamic_cast<const quorum::GridQuorum*>(&system)) {
    mode_ = Mode::Grid;
    side_ = grid->side();
  } else if (system.enumerable(kEnumerationLimit)) {
    mode_ = Mode::Enumerated;
    quorums_ = system.enumerate_quorums(kEnumerationLimit);
    incident_.assign(n_, {});
    for (std::size_t l = 0; l < quorums_.size(); ++l) {
      for (std::size_t u : quorums_[l]) incident_[u].push_back(l);
    }
  }
  rebuild();
}

DeltaEvaluator::DeltaEvaluator(const net::LatencyMatrix& matrix,
                               const quorum::QuorumSystem& system,
                               const Placement& placement)
    : DeltaEvaluator(matrix, system, placement, network_delay_objective()) {}

double DeltaEvaluator::objective() const noexcept {
  return base_total_ / static_cast<double>(clients_);
}

void DeltaEvaluator::gather_values(std::size_t v, double* out) const {
  const std::vector<double>& rtt = matrix_->row(v);
  if (!load_aware_) {
    for (std::size_t u = 0; u < n_; ++u) out[u] = rtt[placement_.site_of[u]];
    return;
  }
  for (std::size_t u = 0; u < n_; ++u) {
    const std::size_t site = placement_.site_of[u];
    out[u] = rtt[site] + site_term_[site];
  }
}

void DeltaEvaluator::rebuild() {
  if (load_aware_) {
    // Per-site load tables, recomputed from scratch so drift cannot
    // accumulate across moves.
    site_load_.assign(matrix_->size(), 0.0);
    hosted_count_.assign(matrix_->size(), 0);
    for (std::size_t u = 0; u < n_; ++u) {
      site_load_[placement_.site_of[u]] += lambda_[u];
      ++hosted_count_[placement_.site_of[u]];
    }
    site_term_.resize(matrix_->size());
    for (std::size_t w = 0; w < site_term_.size(); ++w) {
      site_term_[w] = alpha_ * site_load_[w];
    }
  }
  client_sum_.resize(clients_);
  base_total_ = 0.0;
  switch (mode_) {
    case Mode::SortedWeights: {
      sorted_.resize(clients_ * n_);
      shift_up_.resize(clients_ * n_);
      shift_down_.resize(clients_ * (n_ + 1));
      const double* w = weights_.data();
      for (std::size_t v = 0; v < clients_; ++v) {
        double* y = sorted_.data() + v * n_;
        gather_values(v, y);
        std::sort(y, y + n_);
        double expectation = 0.0;
        for (std::size_t i = 0; i < n_; ++i) expectation += y[i] * w[i];
        client_sum_[v] = expectation;
        base_total_ += expectation;
        // A[j] = sum_{i<j} y[i] (w[i+1] - w[i]) — the expectation change when
        // the j smallest values all shift one rank up (an insertion below
        // them); B[j] = sum_{1<=i<j} y[i] (w[i-1] - w[i]) — one rank down.
        double* a = shift_up_.data() + v * n_;
        double* b = shift_down_.data() + v * (n_ + 1);
        a[0] = 0.0;
        for (std::size_t j = 1; j < n_; ++j) a[j] = a[j - 1] + y[j - 1] * (w[j] - w[j - 1]);
        b[0] = 0.0;
        if (n_ >= 1) b[1] = 0.0;
        for (std::size_t j = 2; j <= n_; ++j) {
          b[j] = b[j - 1] + y[j - 1] * (w[j - 2] - w[j - 1]);
        }
      }
      break;
    }
    case Mode::Grid: {
      const std::size_t k = side_;
      const double neg_inf = -std::numeric_limits<double>::infinity();
      values_.resize(clients_ * n_);
      row_max_.resize(clients_ * k);
      col_max_.resize(clients_ * k);
      row_excl_.resize(clients_ * n_);
      col_excl_.resize(clients_ * n_);
      row_quorum_sum_.resize(clients_ * k);
      col_quorum_sum_.resize(clients_ * k);
      for (std::size_t v = 0; v < clients_; ++v) {
        double* vals = values_.data() + v * n_;
        gather_values(v, vals);
        double* rm = row_max_.data() + v * k;
        double* cm = col_max_.data() + v * k;
        std::fill(rm, rm + k, neg_inf);
        std::fill(cm, cm + k, neg_inf);
        for (std::size_t r = 0; r < k; ++r) {
          for (std::size_t c = 0; c < k; ++c) {
            const double x = vals[r * k + c];
            rm[r] = std::max(rm[r], x);
            cm[c] = std::max(cm[c], x);
          }
        }
        // row_excl[(r, c)] = max of row r without column c (so the new row
        // maximum after placing `val` at (r, c) is max(row_excl, val) with
        // no branch); col_excl is the transpose analogue.
        double* rex = row_excl_.data() + v * n_;
        double* cex = col_excl_.data() + v * n_;
        for (std::size_t r = 0; r < k; ++r) {
          for (std::size_t c = 0; c < k; ++c) {
            double without = neg_inf;
            for (std::size_t o = 0; o < k; ++o) {
              if (o != c) without = std::max(without, vals[r * k + o]);
            }
            rex[r * k + c] = without;
            without = neg_inf;
            for (std::size_t o = 0; o < k; ++o) {
              if (o != r) without = std::max(without, vals[o * k + c]);
            }
            cex[r * k + c] = without;
          }
        }
        // Per-row / per-column sums of the quorum maxima.
        double* rqs = row_quorum_sum_.data() + v * k;
        double* cqs = col_quorum_sum_.data() + v * k;
        std::fill(rqs, rqs + k, 0.0);
        std::fill(cqs, cqs + k, 0.0);
        double sum = 0.0;
        for (std::size_t r = 0; r < k; ++r) {
          for (std::size_t c = 0; c < k; ++c) {
            const double quorum_max = std::max(rm[r], cm[c]);
            rqs[r] += quorum_max;
            cqs[c] += quorum_max;
            sum += quorum_max;
          }
        }
        client_sum_[v] = sum;
        base_total_ += sum / static_cast<double>(n_);
      }
      break;
    }
    case Mode::Enumerated: {
      const std::size_t count = quorums_.size();
      values_.resize(clients_ * n_);
      quorum_max_.resize(clients_ * count);
      for (std::size_t v = 0; v < clients_; ++v) {
        double* vals = values_.data() + v * n_;
        gather_values(v, vals);
        double* qmax = quorum_max_.data() + v * count;
        double sum = 0.0;
        for (std::size_t l = 0; l < count; ++l) {
          double worst = -std::numeric_limits<double>::infinity();
          for (std::size_t u : quorums_[l]) worst = std::max(worst, vals[u]);
          qmax[l] = worst;
          sum += worst;
        }
        client_sum_[v] = sum;
        base_total_ += sum / static_cast<double>(count);
      }
      break;
    }
    case Mode::Recompute: {
      values_.resize(clients_ * n_);
      std::vector<double> scratch;
      for (std::size_t v = 0; v < clients_; ++v) {
        double* vals = values_.data() + v * n_;
        gather_values(v, vals);
        const double expectation = system_->expected_max_uniform_scratch(
            std::span<const double>{vals, n_}, scratch);
        client_sum_[v] = expectation;
        base_total_ += expectation;
      }
      break;
    }
  }
}

double DeltaEvaluator::client_delta_sorted(std::size_t client, double old_value,
                                           double new_value) const {
  const double* y = sorted_.data() + client * n_;
  const double* a = shift_up_.data() + client * n_;
  const double* b = shift_down_.data() + client * (n_ + 1);
  const double* w = weights_.data();
  if (new_value < old_value) {
    // Remove the first occurrence of old_value at p, insert at ins <= p: the
    // values in [ins, p) shift one rank up.
    const std::size_t p =
        static_cast<std::size_t>(std::lower_bound(y, y + n_, old_value) - y);
    const std::size_t ins =
        static_cast<std::size_t>(std::lower_bound(y, y + p, new_value) - y);
    return new_value * w[ins] - old_value * w[p] + (a[p] - a[ins]);
  }
  if (new_value > old_value) {
    // Remove the last occurrence of old_value at p, insert at q >= p: the
    // values in (p, q] shift one rank down.
    const std::size_t p =
        static_cast<std::size_t>(std::upper_bound(y, y + n_, old_value) - y) - 1;
    const std::size_t q =
        static_cast<std::size_t>(std::upper_bound(y + p, y + n_, new_value) - y) - 1;
    return new_value * w[q] - old_value * w[p] + (b[q + 1] - b[p + 1]);
  }
  return 0.0;
}

double DeltaEvaluator::objective_if_moved_general(std::size_t element,
                                                  std::size_t site) const {
  // The move colocates or separates elements, shifting load_f at both
  // endpoint sites and hence the value of every element they host: patch a
  // full per-client value vector against the post-move load terms. Thread-
  // local buffers keep the const method allocation-free in steady state AND
  // safe under a parallel neighborhood scan.
  const std::size_t old_site = placement_.site_of[element];
  static thread_local std::vector<double> tl_term;
  static thread_local std::vector<double> tl_values;
  static thread_local std::vector<double> tl_scratch;
  tl_term.assign(site_term_.begin(), site_term_.end());
  tl_term[old_site] = alpha_ * (site_load_[old_site] - lambda_[element]);
  tl_term[site] = alpha_ * (site_load_[site] + lambda_[element]);
  tl_values.resize(n_);
  double total = 0.0;
  for (std::size_t v = 0; v < clients_; ++v) {
    const std::vector<double>& rtt = matrix_->row(v);
    for (std::size_t u = 0; u < n_; ++u) {
      const std::size_t s = u == element ? site : placement_.site_of[u];
      tl_values[u] = rtt[s] + tl_term[s];
    }
    total += system_->expected_max_uniform_scratch(tl_values, tl_scratch);
  }
  return total / static_cast<double>(clients_);
}

double DeltaEvaluator::objective_if_moved(std::size_t element, std::size_t site) const {
  assert(element < n_);
  assert(site < matrix_->size());
  const std::size_t old_site = placement_.site_of[element];
  if (site == old_site) return objective();
  // Per-coordinate additive load terms of the candidate values. The cached
  // tables answer single-coordinate moves only; a load-aware move touching a
  // co-hosted site perturbs other coordinates too and takes the general path.
  double old_add = 0.0;
  double new_add = 0.0;
  if (load_aware_) {
    if (hosted_count_[old_site] != 1 || hosted_count_[site] != 0) {
      return objective_if_moved_general(element, site);
    }
    old_add = site_term_[old_site];
    new_add = alpha_ * (site_load_[site] + lambda_[element]);
  }
  double total = 0.0;
  switch (mode_) {
    case Mode::SortedWeights: {
      for (std::size_t v = 0; v < clients_; ++v) {
        const std::vector<double>& rtt = matrix_->row(v);
        total += client_sum_[v] +
                 client_delta_sorted(v, rtt[old_site] + old_add, rtt[site] + new_add);
      }
      break;
    }
    case Mode::Grid: {
      const std::size_t k = side_;
      const std::size_t r0 = element / k;
      const std::size_t c0 = element % k;
      for (std::size_t v = 0; v < clients_; ++v) {
        const double val = matrix_->row(v)[site] + new_add;
        const double* rm = row_max_.data() + v * k;
        const double* cm = col_max_.data() + v * k;
        const double new_row = std::max(row_excl_[v * n_ + element], val);
        const double new_col = std::max(col_excl_[v * n_ + element], val);
        // Only quorum maxima in row r0 or column c0 change. New row-r0 part:
        // sum_c max(new_row, cm'[c]) with cm'[c0] = new_col, via a branch-free
        // (vectorized) full-row reduction corrected at c0; old part is the
        // cached sum.
        const double row_part = std::max(new_row, new_col) - std::max(new_row, cm[c0]) +
                                common::max_with_bound_sum(new_row, {cm, k});
        // New column-c0 part excluding the shared (r0, c0) cell; old part is
        // the cached column sum minus that cell.
        const double col_part = common::max_with_bound_sum(new_col, {rm, k}) -
                                std::max(rm[r0], new_col);
        const double old_col_part =
            col_quorum_sum_[v * k + c0] - std::max(rm[r0], cm[c0]);
        const double delta =
            (row_part - row_quorum_sum_[v * k + r0]) + (col_part - old_col_part);
        total += (client_sum_[v] + delta) / static_cast<double>(n_);
      }
      break;
    }
    case Mode::Enumerated: {
      const std::size_t count = quorums_.size();
      for (std::size_t v = 0; v < clients_; ++v) {
        const double val = matrix_->row(v)[site] + new_add;
        const double* vals = values_.data() + v * n_;
        const double* qmax = quorum_max_.data() + v * count;
        double delta = 0.0;
        for (std::size_t l : incident_[element]) {
          double worst = -std::numeric_limits<double>::infinity();
          for (std::size_t u : quorums_[l]) {
            worst = std::max(worst, u == element ? val : vals[u]);
          }
          delta += worst - qmax[l];
        }
        total += (client_sum_[v] + delta) / static_cast<double>(count);
      }
      break;
    }
    case Mode::Recompute: {
      // Thread-local buffers keep the const method allocation-free in steady
      // state AND safe under a parallel neighborhood scan.
      static thread_local std::vector<double> tl_values;
      static thread_local std::vector<double> tl_scratch;
      for (std::size_t v = 0; v < clients_; ++v) {
        const double* vals = values_.data() + v * n_;
        tl_values.assign(vals, vals + n_);
        tl_values[element] = matrix_->row(v)[site] + new_add;
        total += system_->expected_max_uniform_scratch(tl_values, tl_scratch);
      }
      break;
    }
  }
  return total / static_cast<double>(clients_);
}

void DeltaEvaluator::apply_move(std::size_t element, std::size_t site) {
  if (element >= n_ || site >= matrix_->size()) {
    throw std::out_of_range{"DeltaEvaluator::apply_move: element or site out of range"};
  }
  placement_.site_of[element] = site;
  rebuild();
#ifndef NDEBUG
  // Parity against the naive objective: the rebuilt base must match a full
  // re-evaluation (summation order differs, hence the tolerance).
  const double naive = objective_->evaluate(*matrix_, *system_, placement_);
  assert(std::abs(objective() - naive) <= 1e-9 * std::max(1.0, std::abs(naive)));
#endif
}

}  // namespace qp::core
