#include "core/delta_eval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/check.hpp"
#include "common/simd_kernels.hpp"
#include "core/client_index.hpp"
#include "obs/metrics.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"

namespace qp::core {

namespace {

// Candidate-evaluation telemetry: which dispatch path served each
// objective_if_moved call, plus per-client classification tallies for the
// closest engines (pruned = provably unchanged, kept = slot retained,
// recomputed = full quorum re-choice). Tallies are accumulated into stack
// locals and recorded with one or two shard adds per *call* — never per
// client — so the per-candidate overhead stays flat.
const obs::Counter c_de_candidates = obs::counter("core.delta_eval.candidates");
const obs::Counter c_de_fast = obs::counter("core.delta_eval.fast_path");
const obs::Counter c_de_general =
    obs::counter("core.delta_eval.general_fallbacks");
const obs::Counter c_de_closest_full =
    obs::counter("core.delta_eval.closest_full_scans");
const obs::Counter c_de_closest_indexed =
    obs::counter("core.delta_eval.closest_indexed_scans");
const obs::Counter c_de_pruned =
    obs::counter("core.delta_eval.closest_clients_pruned");
const obs::Counter c_de_kept =
    obs::counter("core.delta_eval.closest_clients_kept");
const obs::Counter c_de_recomputed =
    obs::counter("core.delta_eval.closest_clients_recomputed");
const obs::Counter c_de_apply = obs::counter("core.delta_eval.apply_moves");
const obs::Counter c_de_rebuilds =
    obs::counter("core.delta_eval.apply_rebuilds");

constexpr std::size_t kEnumerationLimit = 50'000;

/// Value at (0-based) rank `r` of the ascending row `y` (length n) after
/// removing one copy of `removed` (which must be present) and inserting
/// `inserted` — the patched order statistic, in O(log n) without touching
/// the row.
double patched_sorted_rank(const double* y, std::size_t n, double removed, double inserted,
                           std::size_t r) {
  const double* end = y + n;
  const std::size_t p = static_cast<std::size_t>(std::lower_bound(y, end, removed) - y);
  std::size_t i = static_cast<std::size_t>(std::lower_bound(y, end, inserted) - y);
  if (p < i) --i;  // The removed copy sits below the insertion point.
  const auto without = [&](std::size_t j) { return y[j >= p ? j + 1 : j]; };
  if (r < i) return without(r);
  if (r == i) return inserted;
  return without(r - 1);
}

/// Visits the elements of Grid quorum (row r, column c) in ascending element
/// order — the order charge_quorum sees from a sorted Quorum, so load
/// accumulation matches site_loads_closest bitwise.
template <typename Fn>
void for_each_grid_element(std::size_t k, std::size_t r, std::size_t c, Fn&& fn) {
  for (std::size_t rr = 0; rr < k; ++rr) {
    if (rr == r) {
      for (std::size_t cc = 0; cc < k; ++cc) fn(r * k + cc);
    } else {
      fn(rr * k + c);
    }
  }
}

}  // namespace

DeltaEvaluator::DeltaEvaluator(const net::LatencySpace& space,
                               const quorum::QuorumSystem& system,
                               const Placement& placement, const Objective& objective)
    : space_(&space),
      matrix_(space.as_matrix()),
      system_(&system),
      objective_(&objective),
      placement_(placement),
      mode_(Mode::Recompute) {
  placement_.validate(space.size());
  if (!objective.supports_delta()) {
    throw std::invalid_argument{
        "DeltaEvaluator: objective does not support incremental evaluation "
        "(use LocalSearchEngine::Naive / full re-evaluation)"};
  }
  clients_ = space.size();
  n_ = placement_.universe_size();
  if (n_ != system.universe_size()) {
    throw std::invalid_argument{"DeltaEvaluator: placement size != universe size"};
  }
  alpha_ = objective.alpha();
  client_weight_ = objective.client_weights();
  if (!client_weight_.empty() && client_weight_.size() != clients_) {
    throw std::invalid_argument{"DeltaEvaluator: client weight count != clients"};
  }
  if (objective.access_strategy() == AccessStrategy::Closest) {
    closest_ = true;
    if (const auto* grid = dynamic_cast<const quorum::GridQuorum*>(&system)) {
      mode_ = Mode::ClosestGrid;
      side_ = grid->side();
    } else if (const auto* majority =
                   dynamic_cast<const quorum::MajorityQuorum*>(&system)) {
      mode_ = Mode::ClosestMajority;
      majority_q_ = majority->quorum_size();
    } else if (system.enumerable(kEnumerationLimit)) {
      mode_ = Mode::ClosestEnumerated;
    } else {
      throw std::invalid_argument{
          "DeltaEvaluator: closest-strategy objective requires a Grid, Majority, "
          "or enumerable quorum system"};
    }
    rebuild();
    return;
  }
  lambda_ = objective.element_loads(system);
  load_aware_ = alpha_ != 0.0 && !lambda_.empty();
  if (load_aware_ && lambda_.size() != n_) {
    throw std::logic_error{"DeltaEvaluator: element_loads size mismatch"};
  }
  weights_ = system.order_stat_weights();
  if (!weights_.empty()) {
    if (weights_.size() != n_) {
      throw std::logic_error{"DeltaEvaluator: order_stat_weights size mismatch"};
    }
    mode_ = Mode::SortedWeights;
  } else if (const auto* grid = dynamic_cast<const quorum::GridQuorum*>(&system)) {
    mode_ = Mode::Grid;
    side_ = grid->side();
  } else if (system.enumerable(kEnumerationLimit)) {
    mode_ = Mode::Enumerated;
    quorums_ = system.enumerate_quorums(kEnumerationLimit);
    incident_.assign(n_, {});
    for (std::size_t l = 0; l < quorums_.size(); ++l) {
      for (std::size_t u : quorums_[l]) incident_[u].push_back(l);
    }
  }
  rebuild();
}

DeltaEvaluator::DeltaEvaluator(const net::LatencySpace& space,
                               const quorum::QuorumSystem& system,
                               const Placement& placement)
    : DeltaEvaluator(space, system, placement, network_delay_objective()) {}

double DeltaEvaluator::objective() const noexcept {
  return client_weight_.empty() ? base_total_ / static_cast<double>(clients_)
                                : base_total_;
}

double DeltaEvaluator::charge_weight(std::size_t v) const noexcept {
  return client_weight_.empty() ? 1.0 / static_cast<double>(clients_) : client_weight_[v];
}

void DeltaEvaluator::gather_values(std::size_t v, double* out) const {
  space_->fill_rtts(v, placement_.site_of.data(), n_, out);
  if (!load_aware_) return;
  for (std::size_t u = 0; u < n_; ++u) {
    out[u] += site_term_[placement_.site_of[u]];
  }
}

void DeltaEvaluator::rebuild_sorted_client(std::size_t v) {
  const double* w = weights_.data();
  const double* y = sorted_.data() + v * n_;
  double expectation = 0.0;
  for (std::size_t i = 0; i < n_; ++i) expectation += y[i] * w[i];
  client_sum_[v] = expectation;
  // A[j] = sum_{i<j} y[i] (w[i+1] - w[i]) — the expectation change when
  // the j smallest values all shift one rank up (an insertion below
  // them); B[j] = sum_{1<=i<j} y[i] (w[i-1] - w[i]) — one rank down.
  double* a = shift_up_.data() + v * n_;
  double* b = shift_down_.data() + v * (n_ + 1);
  a[0] = 0.0;
  for (std::size_t j = 1; j < n_; ++j) a[j] = a[j - 1] + y[j - 1] * (w[j] - w[j - 1]);
  b[0] = 0.0;
  if (n_ >= 1) b[1] = 0.0;
  for (std::size_t j = 2; j <= n_; ++j) {
    b[j] = b[j - 1] + y[j - 1] * (w[j - 2] - w[j - 1]);
  }
}

void DeltaEvaluator::repair_grid_client_tables(std::size_t v, std::size_t r0,
                                               std::size_t c0) {
  const std::size_t k = side_;
  const double neg_inf = -std::numeric_limits<double>::infinity();
  const double* vals = values_.data() + v * n_;
  double* rm = row_max_.data() + v * k;
  double* cm = col_max_.data() + v * k;
  double m = neg_inf;
  for (std::size_t c = 0; c < k; ++c) m = std::max(m, vals[r0 * k + c]);
  rm[r0] = m;
  m = neg_inf;
  for (std::size_t r = 0; r < k; ++r) m = std::max(m, vals[r * k + c0]);
  cm[c0] = m;
  // Only row r0's row-exclusions and column c0's column-exclusions depend
  // on the changed cell.
  double* rex = row_excl_.data() + v * n_;
  double* cex = col_excl_.data() + v * n_;
  for (std::size_t c = 0; c < k; ++c) {
    double without = neg_inf;
    for (std::size_t o = 0; o < k; ++o) {
      if (o != c) without = std::max(without, vals[r0 * k + o]);
    }
    rex[r0 * k + c] = without;
  }
  for (std::size_t r = 0; r < k; ++r) {
    double without = neg_inf;
    for (std::size_t o = 0; o < k; ++o) {
      if (o != r) without = std::max(without, vals[o * k + c0]);
    }
    cex[r * k + c0] = without;
  }
}

void DeltaEvaluator::rebuild_grid_client_sums(std::size_t v) {
  const std::size_t k = side_;
  const double* rm = row_max_.data() + v * k;
  const double* cm = col_max_.data() + v * k;
  double* rqs = row_quorum_sum_.data() + v * k;
  double* cqs = col_quorum_sum_.data() + v * k;
  std::fill(rqs, rqs + k, 0.0);
  std::fill(cqs, cqs + k, 0.0);
  double sum = 0.0;
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      const double quorum_max = std::max(rm[r], cm[c]);
      rqs[r] += quorum_max;
      cqs[c] += quorum_max;
      sum += quorum_max;
    }
  }
  client_sum_[v] = sum;
}

void DeltaEvaluator::rebuild() {
  if (closest_) {
    rebuild_closest();
    return;
  }
  if (load_aware_) {
    // Per-site load tables, recomputed from scratch so drift cannot
    // accumulate across moves.
    site_load_.assign(clients_, 0.0);
    hosted_count_.assign(clients_, 0);
    for (std::size_t u = 0; u < n_; ++u) {
      site_load_[placement_.site_of[u]] += lambda_[u];
      ++hosted_count_[placement_.site_of[u]];
    }
    site_term_.resize(clients_);
    for (std::size_t w = 0; w < site_term_.size(); ++w) {
      site_term_[w] = alpha_ * site_load_[w];
    }
  }
  client_sum_.resize(clients_);
  base_total_ = 0.0;
  switch (mode_) {
    case Mode::SortedWeights: {
      sorted_.resize(clients_ * n_);
      shift_up_.resize(clients_ * n_);
      shift_down_.resize(clients_ * (n_ + 1));
      for (std::size_t v = 0; v < clients_; ++v) {
        double* y = sorted_.data() + v * n_;
        gather_values(v, y);
        std::sort(y, y + n_);
        rebuild_sorted_client(v);
        base_total_ += (client_weight_.empty() ? 1.0 : client_weight_[v]) * client_sum_[v];
      }
      break;
    }
    case Mode::Grid: {
      const std::size_t k = side_;
      const double neg_inf = -std::numeric_limits<double>::infinity();
      values_.resize(clients_ * n_);
      row_max_.resize(clients_ * k);
      col_max_.resize(clients_ * k);
      row_excl_.resize(clients_ * n_);
      col_excl_.resize(clients_ * n_);
      row_quorum_sum_.resize(clients_ * k);
      col_quorum_sum_.resize(clients_ * k);
      for (std::size_t v = 0; v < clients_; ++v) {
        double* vals = values_.data() + v * n_;
        gather_values(v, vals);
        double* rm = row_max_.data() + v * k;
        double* cm = col_max_.data() + v * k;
        std::fill(rm, rm + k, neg_inf);
        std::fill(cm, cm + k, neg_inf);
        for (std::size_t r = 0; r < k; ++r) {
          for (std::size_t c = 0; c < k; ++c) {
            const double x = vals[r * k + c];
            rm[r] = std::max(rm[r], x);
            cm[c] = std::max(cm[c], x);
          }
        }
        // row_excl[(r, c)] = max of row r without column c (so the new row
        // maximum after placing `val` at (r, c) is max(row_excl, val) with
        // no branch); col_excl is the transpose analogue.
        double* rex = row_excl_.data() + v * n_;
        double* cex = col_excl_.data() + v * n_;
        for (std::size_t r = 0; r < k; ++r) {
          for (std::size_t c = 0; c < k; ++c) {
            double without = neg_inf;
            for (std::size_t o = 0; o < k; ++o) {
              if (o != c) without = std::max(without, vals[r * k + o]);
            }
            rex[r * k + c] = without;
            without = neg_inf;
            for (std::size_t o = 0; o < k; ++o) {
              if (o != r) without = std::max(without, vals[o * k + c]);
            }
            cex[r * k + c] = without;
          }
        }
        rebuild_grid_client_sums(v);
        base_total_ += (client_weight_.empty() ? 1.0 : client_weight_[v]) *
                       (client_sum_[v] / static_cast<double>(n_));
      }
      break;
    }
    case Mode::Enumerated: {
      const std::size_t count = quorums_.size();
      values_.resize(clients_ * n_);
      quorum_max_.resize(clients_ * count);
      for (std::size_t v = 0; v < clients_; ++v) {
        double* vals = values_.data() + v * n_;
        gather_values(v, vals);
        double* qmax = quorum_max_.data() + v * count;
        double sum = 0.0;
        for (std::size_t l = 0; l < count; ++l) {
          double worst = -std::numeric_limits<double>::infinity();
          for (std::size_t u : quorums_[l]) worst = std::max(worst, vals[u]);
          qmax[l] = worst;
          sum += worst;
        }
        client_sum_[v] = sum;
        base_total_ += (client_weight_.empty() ? 1.0 : client_weight_[v]) *
                       (sum / static_cast<double>(count));
      }
      break;
    }
    case Mode::Recompute: {
      values_.resize(clients_ * n_);
      std::vector<double> scratch;
      for (std::size_t v = 0; v < clients_; ++v) {
        double* vals = values_.data() + v * n_;
        gather_values(v, vals);
        const double expectation = system_->expected_max_uniform_scratch(
            std::span<const double>{vals, n_}, scratch);
        client_sum_[v] = expectation;
        base_total_ += (client_weight_.empty() ? 1.0 : client_weight_[v]) * expectation;
      }
      break;
    }
    default:
      break;  // Closest modes handled above.
  }
}

void DeltaEvaluator::repair_single(std::size_t element, std::size_t site,
                                   std::size_t old_site, double old_add, double new_add) {
  base_total_ = 0.0;
  switch (mode_) {
    case Mode::SortedWeights: {
      for (std::size_t v = 0; v < clients_; ++v) {
        const double old_value = site_rtt(v, old_site) + old_add;
        const double new_value = site_rtt(v, site) + new_add;
        double* y = sorted_.data() + v * n_;
        double* end = y + n_;
        // Remove the (bit-exact) old value, insert the new one: the row's
        // contents match a from-scratch sort of the updated multiset.
        double* p = std::lower_bound(y, end, old_value);
        QP_CHECK(p != end && *p == old_value,
                 "SortedWeights repair: the bit-exact old value vanished from the "
                 "sorted row (placement and tables out of sync)");
        std::copy(p + 1, end, p);
        double* ins = std::lower_bound(y, end - 1, new_value);
        std::copy_backward(ins, end - 1, end);
        *ins = new_value;
        rebuild_sorted_client(v);
        base_total_ += (client_weight_.empty() ? 1.0 : client_weight_[v]) * client_sum_[v];
      }
      break;
    }
    case Mode::Grid: {
      const std::size_t k = side_;
      const std::size_t r0 = element / k;
      const std::size_t c0 = element % k;
      for (std::size_t v = 0; v < clients_; ++v) {
        values_[v * n_ + element] = site_rtt(v, site) + new_add;
        repair_grid_client_tables(v, r0, c0);
        rebuild_grid_client_sums(v);
        base_total_ += (client_weight_.empty() ? 1.0 : client_weight_[v]) *
                       (client_sum_[v] / static_cast<double>(n_));
      }
      break;
    }
    case Mode::Enumerated: {
      const std::size_t count = quorums_.size();
      for (std::size_t v = 0; v < clients_; ++v) {
        double* vals = values_.data() + v * n_;
        vals[element] = site_rtt(v, site) + new_add;
        double* qmax = quorum_max_.data() + v * count;
        for (std::size_t l : incident_[element]) {
          double worst = -std::numeric_limits<double>::infinity();
          for (std::size_t u : quorums_[l]) worst = std::max(worst, vals[u]);
          qmax[l] = worst;
        }
        double sum = 0.0;
        for (std::size_t l = 0; l < count; ++l) sum += qmax[l];
        client_sum_[v] = sum;
        base_total_ += (client_weight_.empty() ? 1.0 : client_weight_[v]) *
                       (sum / static_cast<double>(count));
      }
      break;
    }
    case Mode::Recompute: {
      std::vector<double> scratch;
      for (std::size_t v = 0; v < clients_; ++v) {
        double* vals = values_.data() + v * n_;
        vals[element] = site_rtt(v, site) + new_add;
        const double expectation = system_->expected_max_uniform_scratch(
            std::span<const double>{vals, n_}, scratch);
        client_sum_[v] = expectation;
        base_total_ += (client_weight_.empty() ? 1.0 : client_weight_[v]) * expectation;
      }
      break;
    }
    default:
      break;  // Closest modes never reach the balanced repair.
  }
}

double DeltaEvaluator::client_delta_sorted(std::size_t client, double old_value,
                                           double new_value) const {
  const double* y = sorted_.data() + client * n_;
  const double* a = shift_up_.data() + client * n_;
  const double* b = shift_down_.data() + client * (n_ + 1);
  const double* w = weights_.data();
  if (new_value < old_value) {
    // Remove the first occurrence of old_value at p, insert at ins <= p: the
    // values in [ins, p) shift one rank up.
    const std::size_t p =
        static_cast<std::size_t>(std::lower_bound(y, y + n_, old_value) - y);
    const std::size_t ins =
        static_cast<std::size_t>(std::lower_bound(y, y + p, new_value) - y);
    return new_value * w[ins] - old_value * w[p] + (a[p] - a[ins]);
  }
  if (new_value > old_value) {
    // Remove the last occurrence of old_value at p, insert at q >= p: the
    // values in (p, q] shift one rank down.
    const std::size_t p =
        static_cast<std::size_t>(std::upper_bound(y, y + n_, old_value) - y) - 1;
    const std::size_t q =
        static_cast<std::size_t>(std::upper_bound(y + p, y + n_, new_value) - y) - 1;
    return new_value * w[q] - old_value * w[p] + (b[q + 1] - b[p + 1]);
  }
  return 0.0;
}

double DeltaEvaluator::objective_if_moved_general(std::size_t element,
                                                  std::size_t site) const {
  // The move colocates or separates elements, shifting load_f at both
  // endpoint sites and hence the value of every element they host: patch a
  // full per-client value vector against the post-move load terms. Thread-
  // local buffers keep the const method allocation-free in steady state AND
  // safe under a parallel neighborhood scan.
  const std::size_t old_site = placement_.site_of[element];
  static thread_local std::vector<double> tl_term;
  static thread_local std::vector<std::size_t> tl_sites;
  static thread_local std::vector<double> tl_values;
  static thread_local std::vector<double> tl_scratch;
  tl_term.assign(site_term_.begin(), site_term_.end());
  tl_term[old_site] = alpha_ * (site_load_[old_site] - lambda_[element]);
  tl_term[site] = alpha_ * (site_load_[site] + lambda_[element]);
  tl_sites.assign(placement_.site_of.begin(), placement_.site_of.end());
  tl_sites[element] = site;
  tl_values.resize(n_);
  double total = 0.0;
  for (std::size_t v = 0; v < clients_; ++v) {
    space_->fill_rtts(v, tl_sites.data(), n_, tl_values.data());
    for (std::size_t u = 0; u < n_; ++u) tl_values[u] += tl_term[tl_sites[u]];
    const double expectation = system_->expected_max_uniform_scratch(tl_values, tl_scratch);
    total += (client_weight_.empty() ? 1.0 : client_weight_[v]) * expectation;
  }
  return client_weight_.empty() ? total / static_cast<double>(clients_) : total;
}

double DeltaEvaluator::objective_if_moved(std::size_t element, std::size_t site) const {
  QP_CHECK(element < n_, "objective_if_moved: element out of range");
  QP_CHECK(site < clients_, "objective_if_moved: site out of range");
  const std::size_t old_site = placement_.site_of[element];
  if (site == old_site) return objective();
  c_de_candidates.add();
  if (closest_) {
    return candidate_index_ != nullptr ? closest_if_moved_indexed(element, site)
                                       : closest_if_moved(element, site);
  }
  // Per-coordinate additive load terms of the candidate values. The cached
  // tables answer single-coordinate moves only; a load-aware move touching a
  // co-hosted site perturbs other coordinates too and takes the general path.
  double old_add = 0.0;
  double new_add = 0.0;
  if (load_aware_) {
    if (hosted_count_[old_site] != 1 || hosted_count_[site] != 0) {
      c_de_general.add();
      return objective_if_moved_general(element, site);
    }
    old_add = site_term_[old_site];
    new_add = alpha_ * (site_load_[site] + lambda_[element]);
  }
  c_de_fast.add();
  double total = 0.0;
  switch (mode_) {
    case Mode::SortedWeights: {
      for (std::size_t v = 0; v < clients_; ++v) {
        const double term =
            client_sum_[v] + client_delta_sorted(v, site_rtt(v, old_site) + old_add,
                                                 site_rtt(v, site) + new_add);
        total += (client_weight_.empty() ? 1.0 : client_weight_[v]) * term;
      }
      break;
    }
    case Mode::Grid: {
      const std::size_t k = side_;
      const std::size_t r0 = element / k;
      const std::size_t c0 = element % k;
      for (std::size_t v = 0; v < clients_; ++v) {
        const double val = site_rtt(v, site) + new_add;
        const double* rm = row_max_.data() + v * k;
        const double* cm = col_max_.data() + v * k;
        const double new_row = std::max(row_excl_[v * n_ + element], val);
        const double new_col = std::max(col_excl_[v * n_ + element], val);
        // Only quorum maxima in row r0 or column c0 change. New row-r0 part:
        // sum_c max(new_row, cm'[c]) with cm'[c0] = new_col, via a branch-free
        // (vectorized) full-row reduction corrected at c0; old part is the
        // cached sum.
        const double row_part = std::max(new_row, new_col) - std::max(new_row, cm[c0]) +
                                common::max_with_bound_sum(new_row, {cm, k});
        // New column-c0 part excluding the shared (r0, c0) cell; old part is
        // the cached column sum minus that cell.
        const double col_part = common::max_with_bound_sum(new_col, {rm, k}) -
                                std::max(rm[r0], new_col);
        const double old_col_part =
            col_quorum_sum_[v * k + c0] - std::max(rm[r0], cm[c0]);
        const double delta =
            (row_part - row_quorum_sum_[v * k + r0]) + (col_part - old_col_part);
        total += (client_weight_.empty() ? 1.0 : client_weight_[v]) *
                 ((client_sum_[v] + delta) / static_cast<double>(n_));
      }
      break;
    }
    case Mode::Enumerated: {
      const std::size_t count = quorums_.size();
      for (std::size_t v = 0; v < clients_; ++v) {
        const double val = site_rtt(v, site) + new_add;
        const double* vals = values_.data() + v * n_;
        const double* qmax = quorum_max_.data() + v * count;
        double delta = 0.0;
        for (std::size_t l : incident_[element]) {
          double worst = -std::numeric_limits<double>::infinity();
          for (std::size_t u : quorums_[l]) {
            worst = std::max(worst, u == element ? val : vals[u]);
          }
          delta += worst - qmax[l];
        }
        total += (client_weight_.empty() ? 1.0 : client_weight_[v]) *
                 ((client_sum_[v] + delta) / static_cast<double>(count));
      }
      break;
    }
    case Mode::Recompute: {
      // Thread-local buffers keep the const method allocation-free in steady
      // state AND safe under a parallel neighborhood scan.
      static thread_local std::vector<double> tl_values;
      static thread_local std::vector<double> tl_scratch;
      for (std::size_t v = 0; v < clients_; ++v) {
        const double* vals = values_.data() + v * n_;
        tl_values.assign(vals, vals + n_);
        tl_values[element] = site_rtt(v, site) + new_add;
        const double expectation =
            system_->expected_max_uniform_scratch(tl_values, tl_scratch);
        total += (client_weight_.empty() ? 1.0 : client_weight_[v]) * expectation;
      }
      break;
    }
    default:
      break;  // Closest modes dispatched above.
  }
  return client_weight_.empty() ? total / static_cast<double>(clients_) : total;
}

// ---------------------------------------------------------------- Closest.

void DeltaEvaluator::majority_chosen_patched(std::size_t v, std::size_t element,
                                             double patched,
                                             std::vector<std::size_t>& out) const {
  // Replicates MajorityQuorum::best_quorum exactly: the q smallest elements
  // by (value, index). The threshold t is the q-th smallest patched value;
  // everything strictly below t is chosen, ties at t fill the remaining
  // quota in ascending element order.
  const double* vals = values_.data() + v * n_;
  const double* y = sorted_.data() + v * n_;
  const double d_old = vals[element];
  const double t = patched_sorted_rank(y, n_, d_old, patched, majority_q_ - 1);
  std::size_t less = 0;
  for (std::size_t u = 0; u < n_; ++u) {
    const double x = u == element ? patched : vals[u];
    if (x < t) ++less;
  }
  std::size_t quota = majority_q_ - less;
  for (std::size_t u = 0; u < n_; ++u) {
    const double x = u == element ? patched : vals[u];
    if (x < t) {
      out.push_back(u);
    } else if (x == t && quota > 0) {
      out.push_back(u);
      --quota;
    }
  }
}

void DeltaEvaluator::rebuild_closest() {
  const double inf = std::numeric_limits<double>::infinity();
  const std::size_t k = side_;
  values_.resize(clients_ * n_);
  best_value_.resize(clients_);
  client_sum_.resize(clients_);
  chosen_quorum_.assign(clients_, {});
  if (mode_ == Mode::ClosestMajority) {
    sorted_.resize(clients_ * n_);
    second_value_.resize(clients_);
    in_best_.assign(clients_ * n_, 0);
  } else if (mode_ == Mode::ClosestGrid) {
    row_max_.resize(clients_ * k);
    col_max_.resize(clients_ * k);
    row_excl_.resize(clients_ * n_);
    col_excl_.resize(clients_ * n_);
    chosen_row_.resize(clients_);
    chosen_col_.resize(clients_);
  } else {
    in_best_.assign(clients_ * n_, 0);
  }
  for (std::size_t v = 0; v < clients_; ++v) {
    double* vals = values_.data() + v * n_;
    space_->fill_rtts(v, placement_.site_of.data(), n_, vals);
    switch (mode_) {
      case Mode::ClosestMajority: {
        double* y = sorted_.data() + v * n_;
        std::copy(vals, vals + n_, y);
        std::sort(y, y + n_);
        best_value_[v] = y[majority_q_ - 1];
        second_value_[v] = majority_q_ < n_ ? y[majority_q_] : inf;
        // Chosen set = q smallest by (value, index): everything strictly
        // below the threshold, ties in ascending element order.
        quorum::Quorum& chosen = chosen_quorum_[v];
        chosen.clear();
        const double t = best_value_[v];
        std::size_t less = 0;
        for (std::size_t u = 0; u < n_; ++u) less += vals[u] < t ? 1 : 0;
        std::size_t quota = majority_q_ - less;
        for (std::size_t u = 0; u < n_; ++u) {
          if (vals[u] < t) {
            chosen.push_back(u);
          } else if (vals[u] == t && quota > 0) {
            chosen.push_back(u);
            --quota;
          }
        }
        for (std::size_t e : chosen) in_best_[v * n_ + e] = 1;
        break;
      }
      case Mode::ClosestGrid: {
        const double neg_inf = -inf;
        double* rm = row_max_.data() + v * k;
        double* cm = col_max_.data() + v * k;
        std::fill(rm, rm + k, neg_inf);
        std::fill(cm, cm + k, neg_inf);
        for (std::size_t r = 0; r < k; ++r) {
          for (std::size_t c = 0; c < k; ++c) {
            const double x = vals[r * k + c];
            rm[r] = std::max(rm[r], x);
            cm[c] = std::max(cm[c], x);
          }
        }
        double* rex = row_excl_.data() + v * n_;
        double* cex = col_excl_.data() + v * n_;
        for (std::size_t r = 0; r < k; ++r) {
          for (std::size_t c = 0; c < k; ++c) {
            double without = neg_inf;
            for (std::size_t o = 0; o < k; ++o) {
              if (o != c) without = std::max(without, vals[r * k + o]);
            }
            rex[r * k + c] = without;
            without = neg_inf;
            for (std::size_t o = 0; o < k; ++o) {
              if (o != r) without = std::max(without, vals[o * k + c]);
            }
            cex[r * k + c] = without;
          }
        }
        // Flattened first-wins argmin over max(rm[r], cm[c]) — exactly
        // GridQuorum::best_quorum's scan.
        std::size_t best = 0;
        double best_max = inf;
        for (std::size_t r = 0; r < k; ++r) {
          for (std::size_t c = 0; c < k; ++c) {
            const double val = std::max(rm[r], cm[c]);
            if (val < best_max) {
              best_max = val;
              best = r * k + c;
            }
          }
        }
        chosen_row_[v] = best / k;
        chosen_col_[v] = best % k;
        best_value_[v] = best_max;
        quorum::Quorum& chosen = chosen_quorum_[v];
        chosen.clear();
        for_each_grid_element(k, chosen_row_[v], chosen_col_[v],
                              [&](std::size_t e) { chosen.push_back(e); });
        break;
      }
      default: {  // ClosestEnumerated
        chosen_quorum_[v] = system_->best_quorum(std::span<const double>{vals, n_});
        double worst = 0.0;
        for (std::size_t e : chosen_quorum_[v]) worst = std::max(worst, vals[e]);
        best_value_[v] = worst;
        for (std::size_t e : chosen_quorum_[v]) in_best_[v * n_ + e] = 1;
        break;
      }
    }
  }
  rebuild_closest_loads_and_rho();
}

void DeltaEvaluator::rebuild_closest_loads_and_rho() {
  closest_load_.assign(clients_, 0.0);
  for (std::size_t v = 0; v < clients_; ++v) {
    const double w = charge_weight(v);
    for (std::size_t e : chosen_quorum_[v]) {
      closest_load_[placement_.site_of[e]] += w;
    }
  }
  base_total_ = 0.0;
  for (std::size_t v = 0; v < clients_; ++v) {
    const double* vals = values_.data() + v * n_;
    double worst = 0.0;
    for (std::size_t e : chosen_quorum_[v]) {
      worst = std::max(worst, vals[e] + alpha_ * closest_load_[placement_.site_of[e]]);
    }
    client_sum_[v] = worst;
    base_total_ += (client_weight_.empty() ? 1.0 : client_weight_[v]) * worst;
  }
  if (candidate_index_ != nullptr) rebuild_charge_index();
}

double DeltaEvaluator::closest_if_moved(std::size_t element, std::size_t site) const {
  static thread_local std::vector<double> tl_load;
  static thread_local std::vector<std::uint8_t> tl_state;
  static thread_local std::vector<std::size_t> tl_off;
  static thread_local std::vector<std::size_t> tl_len;
  static thread_local std::vector<std::size_t> tl_chosen;
  static thread_local std::vector<double> tl_row;

  const std::size_t old_site = placement_.site_of[element];
  const bool load = alpha_ != 0.0;
  if (load) tl_load.assign(closest_load_.begin(), closest_load_.end());
  tl_state.assign(clients_, 0);
  tl_off.resize(clients_);
  tl_len.resize(clients_);
  tl_chosen.clear();

  const std::size_t k = side_;
  const std::size_t r0 = mode_ == Mode::ClosestGrid ? element / k : 0;
  const std::size_t c0 = mode_ == Mode::ClosestGrid ? element % k : 0;

  c_de_closest_full.add();
  std::size_t n_kept = 0;
  std::size_t n_recomputed = 0;
  // Pass 1: classify every client's quorum choice (keep / keep-with-moved-u
  // / recompute) and accumulate the load deltas of the flips.
  for (std::size_t v = 0; v < clients_; ++v) {
    const double d_new = site_rtt(v, site);
    const bool contains_u = mode_ == Mode::ClosestGrid
                                ? (chosen_row_[v] == r0 || chosen_col_[v] == c0)
                                : in_best_[v * n_ + element] != 0;
    if (!contains_u && d_new > best_value_[v]) continue;  // Provably unchanged.
    if (mode_ == Mode::ClosestMajority && contains_u &&
        (majority_q_ == n_ || d_new < second_value_[v])) {
      // u keeps its slot: the chosen set is unchanged, only u's charge moves.
      tl_state[v] = 1;
      ++n_kept;
      if (load) {
        const double w = charge_weight(v);
        tl_load[old_site] -= w;
        tl_load[site] += w;
      }
      continue;
    }
    tl_state[v] = 2;
    ++n_recomputed;
    tl_off[v] = tl_chosen.size();
    switch (mode_) {
      case Mode::ClosestMajority:
        majority_chosen_patched(v, element, d_new, tl_chosen);
        break;
      case Mode::ClosestGrid: {
        const double* rm = row_max_.data() + v * k;
        const double* cm = col_max_.data() + v * k;
        const double nr = std::max(row_excl_[v * n_ + element], d_new);
        const double nc = std::max(col_excl_[v * n_ + element], d_new);
        std::size_t best = 0;
        double best_max = std::numeric_limits<double>::infinity();
        for (std::size_t r = 0; r < k; ++r) {
          const double rr = r == r0 ? nr : rm[r];
          for (std::size_t c = 0; c < k; ++c) {
            const double val = std::max(rr, c == c0 ? nc : cm[c]);
            if (val < best_max) {
              best_max = val;
              best = r * k + c;
            }
          }
        }
        for_each_grid_element(k, best / k, best % k,
                              [&](std::size_t e) { tl_chosen.push_back(e); });
        break;
      }
      default: {  // ClosestEnumerated: Tree's DP tie-breaking is its own.
        const double* vals = values_.data() + v * n_;
        tl_row.assign(vals, vals + n_);
        tl_row[element] = d_new;
        const quorum::Quorum quorum = system_->best_quorum(tl_row);
        tl_chosen.insert(tl_chosen.end(), quorum.begin(), quorum.end());
        break;
      }
    }
    tl_len[v] = tl_chosen.size() - tl_off[v];
    if (load) {
      const double w = charge_weight(v);
      for (std::size_t e : chosen_quorum_[v]) tl_load[placement_.site_of[e]] -= w;
      for (std::size_t i = tl_off[v]; i < tl_chosen.size(); ++i) {
        const std::size_t e = tl_chosen[i];
        tl_load[e == element ? site : placement_.site_of[e]] += w;
      }
    }
  }
  c_de_pruned.add(clients_ - n_kept - n_recomputed);
  c_de_kept.add(n_kept);
  c_de_recomputed.add(n_recomputed);

  // Pass 2: reprice every client's chosen quorum under the candidate loads.
  double total = 0.0;
  for (std::size_t v = 0; v < clients_; ++v) {
    double response;
    if (tl_state[v] == 0 && !load) {
      response = client_sum_[v];  // Neither distances nor loads changed.
    } else {
      const double d_new = site_rtt(v, site);
      const double* vals = values_.data() + v * n_;
      const std::size_t* ids;
      std::size_t len;
      if (tl_state[v] == 2) {
        ids = tl_chosen.data() + tl_off[v];
        len = tl_len[v];
      } else {
        ids = chosen_quorum_[v].data();
        len = chosen_quorum_[v].size();
      }
      double worst = 0.0;
      for (std::size_t i = 0; i < len; ++i) {
        const std::size_t e = ids[i];
        const bool moved = e == element;
        const double d = moved ? d_new : vals[e];
        if (load) {
          const std::size_t s = moved ? site : placement_.site_of[e];
          worst = std::max(worst, d + alpha_ * tl_load[s]);
        } else {
          worst = std::max(worst, d);
        }
      }
      response = worst;
    }
    total += (client_weight_.empty() ? 1.0 : client_weight_[v]) * response;
  }
  return client_weight_.empty() ? total / static_cast<double>(clients_) : total;
}

void DeltaEvaluator::apply_move_closest(std::size_t element, std::size_t site) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::size_t k = side_;
  const std::size_t r0 = mode_ == Mode::ClosestGrid ? element / k : 0;
  const std::size_t c0 = mode_ == Mode::ClosestGrid ? element % k : 0;
  std::vector<std::size_t> scratch_ids;
  // With charge lists maintained, record the clients whose charge set moves
  // (flipped choice, or chosen quorum contains the moved element) so the
  // reaccumulation below can stay bounded instead of O(clients x |Q|).
  const bool incremental = candidate_index_ != nullptr;
  std::vector<std::size_t> touched_clients;
  std::vector<std::pair<std::size_t, std::size_t>> new_charges;  // (site, v).
  std::vector<std::size_t> affected_sites;
  for (std::size_t v = 0; v < clients_; ++v) {
    double* vals = values_.data() + v * n_;
    const double d_old = vals[element];
    const double d_new = site_rtt(v, site);
    const bool contains_u = mode_ == Mode::ClosestGrid
                                ? (chosen_row_[v] == r0 || chosen_col_[v] == c0)
                                : in_best_[v * n_ + element] != 0;
    const bool keep = !contains_u && d_new > best_value_[v];
    const bool keep_moved =
        mode_ == Mode::ClosestMajority && contains_u &&
        (majority_q_ == n_ || d_new < second_value_[v]);
    const bool flip = !keep && !keep_moved;
    const bool touched = incremental && (flip || contains_u);
    if (touched) {
      // Old charges, under the pre-move placement and pre-repair choice.
      touched_clients.push_back(v);
      for (std::size_t e : chosen_quorum_[v]) {
        affected_sites.push_back(placement_.site_of[e]);
      }
    }
    // Identity recompute needs the pre-repair tables for Majority (the
    // patched-rank shortcut reads the old sorted row); Grid and Enumerated
    // rescan the repaired tables below.
    if (flip && mode_ == Mode::ClosestMajority) {
      scratch_ids.clear();
      majority_chosen_patched(v, element, d_new, scratch_ids);
    }
    vals[element] = d_new;
    switch (mode_) {
      case Mode::ClosestMajority: {
        double* y = sorted_.data() + v * n_;
        double* end = y + n_;
        double* p = std::lower_bound(y, end, d_old);
        QP_CHECK(p != end && *p == d_old,
                 "ClosestMajority repair: the bit-exact old value vanished from the "
                 "sorted row (placement and tables out of sync)");
        std::copy(p + 1, end, p);
        double* ins = std::lower_bound(y, end - 1, d_new);
        std::copy_backward(ins, end - 1, end);
        *ins = d_new;
        best_value_[v] = y[majority_q_ - 1];
        second_value_[v] = majority_q_ < n_ ? y[majority_q_] : inf;
        if (flip) {
          for (std::size_t e : chosen_quorum_[v]) in_best_[v * n_ + e] = 0;
          chosen_quorum_[v].assign(scratch_ids.begin(), scratch_ids.end());
          for (std::size_t e : chosen_quorum_[v]) in_best_[v * n_ + e] = 1;
        }
        break;
      }
      case Mode::ClosestGrid: {
        repair_grid_client_tables(v, r0, c0);
        const double* rm = row_max_.data() + v * k;
        const double* cm = col_max_.data() + v * k;
        if (flip) {
          std::size_t best = 0;
          double best_max = inf;
          for (std::size_t r = 0; r < k; ++r) {
            for (std::size_t c = 0; c < k; ++c) {
              const double val = std::max(rm[r], cm[c]);
              if (val < best_max) {
                best_max = val;
                best = r * k + c;
              }
            }
          }
          chosen_row_[v] = best / k;
          chosen_col_[v] = best % k;
          best_value_[v] = best_max;
          quorum::Quorum& chosen = chosen_quorum_[v];
          chosen.clear();
          for_each_grid_element(k, chosen_row_[v], chosen_col_[v],
                                [&](std::size_t e) { chosen.push_back(e); });
        }
        break;
      }
      default: {  // ClosestEnumerated
        if (flip) {
          for (std::size_t e : chosen_quorum_[v]) in_best_[v * n_ + e] = 0;
          chosen_quorum_[v] = system_->best_quorum(std::span<const double>{vals, n_});
          double worst = 0.0;
          for (std::size_t e : chosen_quorum_[v]) worst = std::max(worst, vals[e]);
          best_value_[v] = worst;
          for (std::size_t e : chosen_quorum_[v]) in_best_[v * n_ + e] = 1;
        }
        break;
      }
    }
    if (touched) {
      // New charges, under the post-move placement and repaired choice.
      for (std::size_t e : chosen_quorum_[v]) {
        const std::size_t s = e == element ? site : placement_.site_of[e];
        new_charges.emplace_back(s, v);
        affected_sites.push_back(s);
      }
    }
  }
  placement_.site_of[element] = site;
  if (incremental) {
    reaccumulate_closest_dirty(touched_clients, new_charges, affected_sites);
  } else {
    rebuild_closest_loads_and_rho();
  }
}

void DeltaEvaluator::attach_candidate_index(const ClientCandidateIndex* index) {
  if (index == nullptr) {
    candidate_index_ = nullptr;
    charge_lists_.clear();
    overflow_clients_.clear();
    return;
  }
  if (!closest_) {
    throw std::invalid_argument{
        "DeltaEvaluator: candidate indexes apply to closest-strategy objectives only"};
  }
  if (index->size() != clients_) {
    throw std::invalid_argument{"DeltaEvaluator: candidate index size != site count"};
  }
  candidate_index_ = index;
  rebuild_charge_index();
}

void DeltaEvaluator::rebuild_charge_index() {
  // Site -> charging clients from the current chosen quorums, filled in
  // ascending client order (so each site's charger list is sorted, with one
  // entry per charging element, and the enumeration order is deterministic).
  charge_lists_.assign(clients_, {});
  for (std::size_t v = 0; v < clients_; ++v) {
    for (std::size_t e : chosen_quorum_[v]) {
      charge_lists_[placement_.site_of[e]].push_back(v);
    }
  }
  // Clients whose m1 outgrew their list's covered radius fall back to being
  // classified on every candidate — that keeps uncapped evaluation exact as
  // the placement drifts away from the radii the lists were built with.
  // Capped indexes are openly approximate and skip the fallback (every
  // far client would overflow, degenerating to the full scan).
  overflow_clients_.clear();
  if (!candidate_index_->capped()) {
    for (std::size_t v = 0; v < clients_; ++v) {
      if (best_value_[v] > candidate_index_->covered_radius(v)) {
        overflow_clients_.push_back(v);
      }
    }
  }
}

void DeltaEvaluator::reaccumulate_closest_dirty(
    std::span<const std::size_t> touched_clients,
    std::vector<std::pair<std::size_t, std::size_t>>& new_charges,
    std::vector<std::size_t>& affected_sites) {
  std::sort(affected_sites.begin(), affected_sites.end());
  affected_sites.erase(std::unique(affected_sites.begin(), affected_sites.end()),
                       affected_sites.end());
  // Group the new charges by site; stable keeps the ascending client order
  // the apply loop appended them in, so merged lists stay client-sorted.
  std::stable_sort(new_charges.begin(), new_charges.end(),
                   [](const std::pair<std::size_t, std::size_t>& a,
                      const std::pair<std::size_t, std::size_t>& b) {
                     return a.first < b.first;
                   });

  if (dirty_client_.size() != clients_) {
    dirty_client_.assign(clients_, 0);
    reprice_client_.assign(clients_, 0);
  }
  for (std::size_t v : touched_clients) dirty_client_[v] = 1;

  // Per affected site: drop the touched clients' old entries from the charge
  // list, merge their new entries in, and re-sum the weighted load over the
  // merged list. The list is ascending with per-element multiplicity, which
  // is exactly the order the full reaccumulation adds the same weights in —
  // the per-site sums are bitwise identical to rebuild_closest_loads_and_rho.
  std::vector<std::size_t> merged;
  std::size_t cursor = 0;
  for (std::size_t s : affected_sites) {
    const std::size_t begin = cursor;
    while (cursor < new_charges.size() && new_charges[cursor].first == s) ++cursor;
    const std::vector<std::size_t>& old_list = charge_lists_[s];
    merged.clear();
    std::size_t i = 0;
    std::size_t j = begin;
    while (i < old_list.size() || j < cursor) {
      if (i < old_list.size() && dirty_client_[old_list[i]] != 0) {
        ++i;  // Its fresh entries (if any) arrive from new_charges.
      } else if (j == cursor ||
                 (i < old_list.size() && old_list[i] < new_charges[j].second)) {
        merged.push_back(old_list[i++]);
      } else {
        merged.push_back(new_charges[j++].second);
      }
    }
    charge_lists_[s] = merged;
    double load = 0.0;
    for (std::size_t v : charge_lists_[s]) load += charge_weight(v);
    closest_load_[s] = load;
  }

  // Reprice exactly the clients whose response inputs changed: a repaired
  // chosen quorum / moved element, or a charged site whose load moved. The
  // recomputed values are bitwise the full pass's (same expression, same
  // inputs); untouched clients keep values with bitwise-unchanged inputs.
  for (std::size_t v : touched_clients) reprice_client_[v] = 1;
  for (std::size_t s : affected_sites) {
    for (std::size_t v : charge_lists_[s]) reprice_client_[v] = 1;
  }
  for (std::size_t v = 0; v < clients_; ++v) {
    if (reprice_client_[v] == 0) continue;
    const double* vals = values_.data() + v * n_;
    double worst = 0.0;
    for (std::size_t e : chosen_quorum_[v]) {
      worst = std::max(worst, vals[e] + alpha_ * closest_load_[placement_.site_of[e]]);
    }
    client_sum_[v] = worst;
  }
  base_total_ = 0.0;
  for (std::size_t v = 0; v < clients_; ++v) {
    base_total_ += (client_weight_.empty() ? 1.0 : client_weight_[v]) * client_sum_[v];
  }

  for (std::size_t v : touched_clients) dirty_client_[v] = 0;
  std::fill(reprice_client_.begin(), reprice_client_.end(), 0);

  overflow_clients_.clear();
  if (!candidate_index_->capped()) {
    for (std::size_t v = 0; v < clients_; ++v) {
      if (best_value_[v] > candidate_index_->covered_radius(v)) {
        overflow_clients_.push_back(v);
      }
    }
  }
}

double DeltaEvaluator::closest_if_moved_indexed(std::size_t element,
                                                std::size_t site) const {
  // Epoch-marked sparse scratch: per-candidate state is only written for the
  // clients/sites actually touched, so a candidate costs output-sensitive
  // time — never an O(n) clear. Thread-local for the parallel scan.
  struct Scratch {
    std::uint64_t epoch = 0;
    std::vector<std::uint64_t> client_mark;   // classified this epoch?
    std::vector<std::uint8_t> client_state;   // valid when mark == epoch.
    std::vector<std::size_t> flip_off;        // state 2: slice of `chosen`.
    std::vector<std::size_t> flip_len;
    std::vector<std::size_t> chosen;          // concatenated flip quorums.
    std::vector<std::uint64_t> site_mark;     // load delta valid this epoch?
    std::vector<double> load_delta;
    std::vector<std::size_t> touched;         // sites with a load delta.
    std::vector<std::uint64_t> reprice_mark;
    std::vector<std::size_t> reprice;         // clients to reprice.
    std::vector<double> row;                  // Enumerated: patched values.
  };
  static thread_local Scratch sc;
  if (sc.client_mark.size() != clients_) {
    sc.client_mark.assign(clients_, 0);
    sc.client_state.assign(clients_, 0);
    sc.flip_off.assign(clients_, 0);
    sc.flip_len.assign(clients_, 0);
    sc.site_mark.assign(clients_, 0);
    sc.load_delta.assign(clients_, 0.0);
    sc.reprice_mark.assign(clients_, 0);
  }
  ++sc.epoch;
  sc.chosen.clear();
  sc.touched.clear();
  sc.reprice.clear();

  c_de_closest_indexed.add();
  std::size_t n_scanned = 0;
  std::size_t n_kept = 0;
  std::size_t n_recomputed = 0;

  const std::size_t old_site = placement_.site_of[element];
  const bool load = alpha_ != 0.0;
  const std::size_t k = side_;
  const std::size_t r0 = mode_ == Mode::ClosestGrid ? element / k : 0;
  const std::size_t c0 = mode_ == Mode::ClosestGrid ? element % k : 0;

  const auto touch = [&](std::size_t s, double delta) {
    if (sc.site_mark[s] != sc.epoch) {
      sc.site_mark[s] = sc.epoch;
      sc.load_delta[s] = 0.0;
      sc.touched.push_back(s);
    }
    sc.load_delta[s] += delta;
  };
  const auto mark_reprice = [&](std::size_t v) {
    if (sc.reprice_mark[v] != sc.epoch) {
      sc.reprice_mark[v] = sc.epoch;
      sc.reprice.push_back(v);
    }
  };

  // Classification is the same keep / keep-with-moved-u / recompute logic as
  // the full scan (closest_if_moved), applied only to clients that can flip.
  const auto classify = [&](std::size_t v) {
    if (sc.client_mark[v] == sc.epoch) return;
    sc.client_mark[v] = sc.epoch;
    sc.client_state[v] = 0;
    ++n_scanned;
    const double d_new = site_rtt(v, site);
    const bool contains_u = mode_ == Mode::ClosestGrid
                                ? (chosen_row_[v] == r0 || chosen_col_[v] == c0)
                                : in_best_[v * n_ + element] != 0;
    if (!contains_u && d_new > best_value_[v]) return;  // Provably unchanged.
    if (mode_ == Mode::ClosestMajority && contains_u &&
        (majority_q_ == n_ || d_new < second_value_[v])) {
      sc.client_state[v] = 1;
      ++n_kept;
      if (load) {
        const double w = charge_weight(v);
        touch(old_site, -w);
        touch(site, w);
      }
      mark_reprice(v);
      return;
    }
    if (mode_ == Mode::ClosestGrid) {
      // O(k) exact reconstruction of the full scan's k*k-cell argmin:
      // cell(r, c) = max(row'[r], col'[c]), so each row's minimum is
      // max(row'[r], min_c col'[c]), and the strict-< scan's winner is the
      // first cell (row-major) attaining the global minimum — the first row
      // whose minimum attains it, then the first column attaining it within
      // that row. Pure selection (no arithmetic), so the winner and its
      // value are bitwise those of the k*k scan in closest_if_moved.
      const double* rm = row_max_.data() + v * k;
      const double* cm = col_max_.data() + v * k;
      const double nr = std::max(row_excl_[v * n_ + element], d_new);
      const double nc = std::max(col_excl_[v * n_ + element], d_new);
      double col_min = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        col_min = std::min(col_min, c == c0 ? nc : cm[c]);
      }
      double best_max = std::numeric_limits<double>::infinity();
      std::size_t best_r = 0;
      for (std::size_t r = 0; r < k; ++r) {
        const double val = std::max(r == r0 ? nr : rm[r], col_min);
        if (val < best_max) {
          best_max = val;
          best_r = r;
        }
      }
      const double rr = best_r == r0 ? nr : rm[best_r];
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        if (std::max(rr, c == c0 ? nc : cm[c]) == best_max) {
          best_c = c;
          break;
        }
      }
      if (best_r == chosen_row_[v] && best_c == chosen_col_[v]) {
        if (!contains_u) return;  // Same unmodified cell: provably unchanged.
        // u keeps its slot in the still-winning cell: the chosen set is
        // unchanged, only u's charge moves (the grid analogue of the
        // majority shortcut above).
        sc.client_state[v] = 1;
        ++n_kept;
        if (load) {
          const double w = charge_weight(v);
          touch(old_site, -w);
          touch(site, w);
        }
        mark_reprice(v);
        return;
      }
      sc.client_state[v] = 2;
      ++n_recomputed;
      sc.flip_off[v] = sc.chosen.size();
      for_each_grid_element(k, best_r, best_c,
                            [&](std::size_t e) { sc.chosen.push_back(e); });
      sc.flip_len[v] = sc.chosen.size() - sc.flip_off[v];
      if (load) {
        const double w = charge_weight(v);
        for (std::size_t e : chosen_quorum_[v]) touch(placement_.site_of[e], -w);
        for (std::size_t i = sc.flip_off[v]; i < sc.chosen.size(); ++i) {
          const std::size_t e = sc.chosen[i];
          touch(e == element ? site : placement_.site_of[e], w);
        }
      }
      mark_reprice(v);
      return;
    }
    sc.client_state[v] = 2;
    ++n_recomputed;
    sc.flip_off[v] = sc.chosen.size();
    switch (mode_) {
      case Mode::ClosestMajority:
        majority_chosen_patched(v, element, d_new, sc.chosen);
        break;
      default: {  // ClosestEnumerated: Tree's DP tie-breaking is its own.
        const double* vals = values_.data() + v * n_;
        sc.row.assign(vals, vals + n_);
        sc.row[element] = d_new;
        const quorum::Quorum quorum = system_->best_quorum(sc.row);
        sc.chosen.insert(sc.chosen.end(), quorum.begin(), quorum.end());
        break;
      }
    }
    sc.flip_len[v] = sc.chosen.size() - sc.flip_off[v];
    if (load) {
      const double w = charge_weight(v);
      for (std::size_t e : chosen_quorum_[v]) touch(placement_.site_of[e], -w);
      for (std::size_t i = sc.flip_off[v]; i < sc.chosen.size(); ++i) {
        const std::size_t e = sc.chosen[i];
        touch(e == element ? site : placement_.site_of[e], w);
      }
    }
    mark_reprice(v);
  };

  // A flip needs u to leave (the client charges u's current site) or the
  // new site to undercut m1 (the client's candidate list contains it, or
  // the client overflowed its list) — see client_index.hpp for why this is
  // exhaustive in the uncapped mode.
  for (std::size_t v : charge_lists_[old_site]) classify(v);
  for (std::size_t v : candidate_index_->clients_of(site)) classify(v);
  for (std::size_t v : overflow_clients_) classify(v);
  c_de_pruned.add(n_scanned - n_kept - n_recomputed);
  c_de_kept.add(n_kept);
  c_de_recomputed.add(n_recomputed);

  // Clients charging a load-touched site reprice even when their choice is
  // provably unchanged — the load term under their chosen quorum moved.
  // Sites whose deltas cancelled to exactly 0.0 change nothing: their
  // chargers would reprice to bitwise the same response, so skip them.
  if (load) {
    for (std::size_t s : sc.touched) {
      if (sc.load_delta[s] == 0.0) continue;
      for (std::size_t v : charge_lists_[s]) mark_reprice(v);
    }
  }

  // Reprice only the affected clients against the patched loads; everyone
  // else contributes their cached response through base_total_.
  double total = base_total_;
  for (std::size_t v : sc.reprice) {
    const double d_new = site_rtt(v, site);
    const double* vals = values_.data() + v * n_;
    const std::uint8_t state =
        sc.client_mark[v] == sc.epoch ? sc.client_state[v] : std::uint8_t{0};
    const std::size_t* ids;
    std::size_t len;
    if (state == 2) {
      ids = sc.chosen.data() + sc.flip_off[v];
      len = sc.flip_len[v];
    } else {
      ids = chosen_quorum_[v].data();
      len = chosen_quorum_[v].size();
    }
    double worst = 0.0;
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t e = ids[i];
      const bool moved = e == element;
      const double d = moved ? d_new : vals[e];
      if (load) {
        const std::size_t s = moved ? site : placement_.site_of[e];
        const double site_load =
            closest_load_[s] + (sc.site_mark[s] == sc.epoch ? sc.load_delta[s] : 0.0);
        worst = std::max(worst, d + alpha_ * site_load);
      } else {
        worst = std::max(worst, d);
      }
    }
    total += (client_weight_.empty() ? 1.0 : client_weight_[v]) *
             (worst - client_sum_[v]);
  }
  const double result =
      client_weight_.empty() ? total / static_cast<double>(clients_) : total;
#if QP_PARITY_AUDIT_ENABLED
  // Uncapped indexes promise exactness: audit every candidate against the
  // retained full scan (capped indexes are openly approximate).
  if (!candidate_index_->capped()) {
    QP_PARITY_ASSERT(result, closest_if_moved(element, site), 1e-9,
                     "closest_if_moved_indexed: sparse candidate evaluation diverged "
                     "from the full client scan");
  }
#endif
  return result;
}

void DeltaEvaluator::apply_move(std::size_t element, std::size_t site) {
  if (element >= n_ || site >= clients_) {
    throw std::out_of_range{"DeltaEvaluator::apply_move: element or site out of range"};
  }
  const std::size_t old_site = placement_.site_of[element];
  c_de_apply.add();
  if (closest_) {
    if (site != old_site) apply_move_closest(element, site);
  } else if (site == old_site) {
    // No-op move: nothing to repair.
  } else if (load_aware_ &&
             (hosted_count_[old_site] != 1 || hosted_count_[site] != 0)) {
    // Colocating (or de-colocating) load-aware move: many coordinates shift,
    // so rebuild from scratch. The one-to-one local search never takes this
    // path; it exists for arbitrary apply_move callers.
    c_de_rebuilds.add();
    placement_.site_of[element] = site;
    rebuild();
  } else {
    const double old_add = load_aware_ ? site_term_[old_site] : 0.0;
    const double new_add =
        load_aware_ ? alpha_ * (site_load_[site] + lambda_[element]) : 0.0;
    if (load_aware_) {
      // old_site hosted exactly `element`, site hosted nothing: the exact
      // post-move tables need no re-accumulation.
      site_load_[old_site] = 0.0;
      hosted_count_[old_site] = 0;
      site_load_[site] = lambda_[element];
      hosted_count_[site] = 1;
      site_term_[old_site] = 0.0;
      site_term_[site] = alpha_ * site_load_[site];
    }
    placement_.site_of[element] = site;
    repair_single(element, site, old_site, old_add, new_add);
  }
#if QP_PARITY_AUDIT_ENABLED
  // Parity against the naive objective: the repaired base must match a full
  // re-evaluation (summation order differs, hence the tolerance). Armed at
  // QP_CHECK_LEVEL=2 (the asan preset), not by build type. The canonical
  // evaluator needs the dense table, so implicit spaces skip this audit
  // (their candidate evaluation is audited against the full scan instead,
  // see closest_if_moved_indexed).
  if (matrix_ != nullptr) {
    const double naive = objective_->evaluate(*matrix_, *system_, placement_);
    QP_PARITY_ASSERT(objective(), naive, 1e-9,
                     "apply_move: incrementally repaired objective diverged from a "
                     "fresh evaluation of the moved placement");
  }
#endif
}

}  // namespace qp::core
