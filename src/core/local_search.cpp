#include "core/local_search.hpp"

#include <optional>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/delta_eval.hpp"

namespace qp::core {

namespace {

/// One relocation candidate: move `element` to (currently unused) `site`.
struct Candidate {
  std::size_t element;
  std::size_t site;
};

LocalSearchResult local_search_naive(const net::LatencyMatrix& matrix,
                                     const quorum::QuorumSystem& system,
                                     const Placement& initial,
                                     const LocalSearchOptions& options) {
  LocalSearchResult result;
  result.placement = initial;
  result.objective = average_uniform_network_delay(matrix, system, result.placement);

  std::vector<bool> used(matrix.size(), false);
  for (std::size_t site : result.placement.site_of) used[site] = true;

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    double best_objective = result.objective;
    std::size_t best_element = 0;
    std::size_t best_site = 0;
    bool found = false;
    // Best-improvement scan over all (element, unused site) relocations.
    for (std::size_t u = 0; u < result.placement.universe_size(); ++u) {
      const std::size_t original = result.placement.site_of[u];
      for (std::size_t w = 0; w < matrix.size(); ++w) {
        if (used[w]) continue;
        result.placement.site_of[u] = w;
        const double objective =
            average_uniform_network_delay(matrix, system, result.placement);
        if (objective < best_objective - options.min_improvement) {
          best_objective = objective;
          best_element = u;
          best_site = w;
          found = true;
        }
      }
      result.placement.site_of[u] = original;
    }
    if (!found) break;
    used[result.placement.site_of[best_element]] = false;
    used[best_site] = true;
    result.placement.site_of[best_element] = best_site;
    result.objective = best_objective;
    ++result.moves;
  }
  return result;
}

LocalSearchResult local_search_delta(const net::LatencyMatrix& matrix,
                                     const quorum::QuorumSystem& system,
                                     const Placement& initial,
                                     const LocalSearchOptions& options) {
  DeltaEvaluator eval{matrix, system, initial};

  std::vector<bool> used(matrix.size(), false);
  for (std::size_t site : initial.site_of) used[site] = true;

  // threads == 1 runs serial; 0 shares the global pool; n > 1 gets its own.
  std::optional<common::ThreadPool> dedicated;
  common::ThreadPool* pool = nullptr;
  if (options.threads == 0) {
    pool = &common::global_thread_pool();
  } else if (options.threads > 1) {
    dedicated.emplace(options.threads);
    pool = &*dedicated;
  }

  LocalSearchResult result;
  std::vector<Candidate> candidates;
  std::vector<double> objectives;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    const double current = eval.objective();
    candidates.clear();
    for (std::size_t u = 0; u < eval.placement().universe_size(); ++u) {
      for (std::size_t w = 0; w < matrix.size(); ++w) {
        if (!used[w]) candidates.push_back(Candidate{u, w});
      }
    }
    objectives.resize(candidates.size());
    const auto evaluate_candidate = [&](std::size_t i) {
      objectives[i] = eval.objective_if_moved(candidates[i].element, candidates[i].site);
    };
    if (pool != nullptr) {
      pool->parallel_for(0, candidates.size(), evaluate_candidate);
    } else {
      for (std::size_t i = 0; i < candidates.size(); ++i) evaluate_candidate(i);
    }

    // Fixed-order argmin reduction: replays the serial best-improvement scan
    // over the candidate-ordered objectives, so the selected move (and its
    // tie-breaking) is identical for any thread count.
    double best_objective = current;
    std::size_t best_index = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (objectives[i] < best_objective - options.min_improvement) {
        best_objective = objectives[i];
        best_index = i;
      }
    }
    if (best_index == candidates.size()) break;
    used[eval.placement().site_of[candidates[best_index].element]] = false;
    used[candidates[best_index].site] = true;
    eval.apply_move(candidates[best_index].element, candidates[best_index].site);
    ++result.moves;
  }

  result.placement = eval.placement();
  // Final objective via the canonical evaluator, so callers comparing against
  // average_uniform_network_delay see the exact same value.
  result.objective = average_uniform_network_delay(matrix, system, result.placement);
  return result;
}

}  // namespace

LocalSearchResult local_search_placement(const net::LatencyMatrix& matrix,
                                         const quorum::QuorumSystem& system,
                                         const Placement& initial,
                                         const LocalSearchOptions& options) {
  initial.validate(matrix.size());
  if (!initial.one_to_one()) {
    throw std::invalid_argument{"local_search_placement: initial must be one-to-one"};
  }
  if (options.engine == LocalSearchEngine::Naive) {
    return local_search_naive(matrix, system, initial, options);
  }
  return local_search_delta(matrix, system, initial, options);
}

}  // namespace qp::core
