#include "core/local_search.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/delta_eval.hpp"

namespace qp::core {

namespace {

/// One relocation candidate: move `element` to (currently unused) `site`.
struct Candidate {
  std::size_t element;
  std::size_t site;
};

/// Candidates a Delta first-improvement round evaluates per parallel batch.
/// Any fixed value yields the same accepted move (the lowest improving index
/// is batch-independent); 256 keeps a shared pool busy without evaluating
/// far past the accepted candidate.
constexpr std::size_t kFirstImprovementBlock = 256;

LocalSearchResult local_search_naive(const net::LatencyMatrix& matrix,
                                     const quorum::QuorumSystem& system,
                                     const Placement& initial, const Objective& objective,
                                     const LocalSearchOptions& options) {
  LocalSearchResult result;
  result.placement = initial;
  result.objective = objective.evaluate(matrix, system, result.placement);

  std::vector<bool> used(matrix.size(), false);
  for (std::size_t site : result.placement.site_of) used[site] = true;

  const bool first_improvement =
      options.strategy == LocalSearchStrategy::FirstImprovement;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    double best_objective = result.objective;
    std::size_t best_element = 0;
    std::size_t best_site = 0;
    bool found = false;
    // Deterministic scan over all (element, unused site) relocations; the
    // first-improvement strategy stops at the first improving candidate.
    for (std::size_t u = 0; u < result.placement.universe_size(); ++u) {
      const std::size_t original = result.placement.site_of[u];
      for (std::size_t w = 0; w < matrix.size(); ++w) {
        if (used[w]) continue;
        result.placement.site_of[u] = w;
        const double candidate = objective.evaluate(matrix, system, result.placement);
        if (candidate < best_objective - options.min_improvement) {
          best_objective = candidate;
          best_element = u;
          best_site = w;
          found = true;
          if (first_improvement) break;
        }
      }
      result.placement.site_of[u] = original;
      if (found && first_improvement) break;
    }
    if (!found) break;
    used[result.placement.site_of[best_element]] = false;
    used[best_site] = true;
    result.placement.site_of[best_element] = best_site;
    result.objective = best_objective;
    ++result.moves;
  }
  return result;
}

LocalSearchResult local_search_delta(const net::LatencyMatrix& matrix,
                                     const quorum::QuorumSystem& system,
                                     const Placement& initial, const Objective& objective,
                                     const LocalSearchOptions& options) {
  DeltaEvaluator eval{matrix, system, initial, objective};

  std::vector<bool> used(matrix.size(), false);
  for (std::size_t site : initial.site_of) used[site] = true;

  // threads == 1 runs serial; 0 shares the global pool; n > 1 gets its own.
  std::optional<common::ThreadPool> dedicated;
  common::ThreadPool* pool = nullptr;
  if (options.threads == 0) {
    pool = &common::global_thread_pool();
  } else if (options.threads > 1) {
    dedicated.emplace(options.threads);
    pool = &*dedicated;
  }

  const bool first_improvement =
      options.strategy == LocalSearchStrategy::FirstImprovement;
  LocalSearchResult result;
  std::vector<Candidate> candidates;
  std::vector<double> objectives;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    const double current = eval.objective();
    candidates.clear();
    for (std::size_t u = 0; u < eval.placement().universe_size(); ++u) {
      for (std::size_t w = 0; w < matrix.size(); ++w) {
        if (!used[w]) candidates.push_back(Candidate{u, w});
      }
    }
    objectives.resize(candidates.size());
    const auto evaluate_range = [&](std::size_t begin, std::size_t end) {
      const auto evaluate_candidate = [&](std::size_t i) {
        objectives[i] = eval.objective_if_moved(candidates[i].element, candidates[i].site);
      };
      if (pool != nullptr) {
        pool->parallel_for(begin, end, evaluate_candidate);
      } else {
        for (std::size_t i = begin; i < end; ++i) evaluate_candidate(i);
      }
    };

    // Fixed-order accept: the decision always replays the serial scan over
    // the candidate-ordered objectives, so the selected move (and its
    // tie-breaking) is identical for any thread count.
    std::size_t best_index = candidates.size();
    if (first_improvement) {
      // Evaluate fixed-size blocks and accept the lowest improving index;
      // which index wins does not depend on the block size.
      for (std::size_t begin = 0;
           begin < candidates.size() && best_index == candidates.size();
           begin += kFirstImprovementBlock) {
        const std::size_t end =
            std::min(candidates.size(), begin + kFirstImprovementBlock);
        evaluate_range(begin, end);
        for (std::size_t i = begin; i < end; ++i) {
          if (objectives[i] < current - options.min_improvement) {
            best_index = i;
            break;
          }
        }
      }
    } else {
      evaluate_range(0, candidates.size());
      double best_objective = current;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (objectives[i] < best_objective - options.min_improvement) {
          best_objective = objectives[i];
          best_index = i;
        }
      }
    }
    if (best_index == candidates.size()) break;
    used[eval.placement().site_of[candidates[best_index].element]] = false;
    used[candidates[best_index].site] = true;
    eval.apply_move(candidates[best_index].element, candidates[best_index].site);
    ++result.moves;
  }

  result.placement = eval.placement();
  // Final objective via the canonical evaluator, so callers comparing against
  // Objective::evaluate (or average_uniform_network_delay) see the exact
  // same value.
  result.objective = objective.evaluate(matrix, system, result.placement);
  return result;
}

}  // namespace

LocalSearchResult local_search_placement(const net::LatencyMatrix& matrix,
                                         const quorum::QuorumSystem& system,
                                         const Placement& initial,
                                         const LocalSearchOptions& options) {
  initial.validate(matrix.size());
  if (!initial.one_to_one()) {
    throw std::invalid_argument{"local_search_placement: initial must be one-to-one"};
  }
  const Objective& objective =
      options.objective != nullptr ? *options.objective : network_delay_objective();
  // Objectives the incremental engine cannot model (expectations over
  // failure sets, see Objective::supports_delta) silently take the naive
  // full-re-evaluation path; results are engine-independent either way.
  if (options.engine == LocalSearchEngine::Naive || !objective.supports_delta()) {
    return local_search_naive(matrix, system, initial, objective, options);
  }
  return local_search_delta(matrix, system, initial, objective, options);
}

}  // namespace qp::core
