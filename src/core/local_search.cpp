#include "core/local_search.hpp"

#include <stdexcept>
#include <vector>

namespace qp::core {

LocalSearchResult local_search_placement(const net::LatencyMatrix& matrix,
                                         const quorum::QuorumSystem& system,
                                         const Placement& initial,
                                         const LocalSearchOptions& options) {
  initial.validate(matrix.size());
  if (!initial.one_to_one()) {
    throw std::invalid_argument{"local_search_placement: initial must be one-to-one"};
  }
  LocalSearchResult result;
  result.placement = initial;
  result.objective = average_uniform_network_delay(matrix, system, result.placement);

  std::vector<bool> used(matrix.size(), false);
  for (std::size_t site : result.placement.site_of) used[site] = true;

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    double best_objective = result.objective;
    std::size_t best_element = 0;
    std::size_t best_site = 0;
    bool found = false;
    // Best-improvement scan over all (element, unused site) relocations.
    for (std::size_t u = 0; u < result.placement.universe_size(); ++u) {
      const std::size_t original = result.placement.site_of[u];
      for (std::size_t w = 0; w < matrix.size(); ++w) {
        if (used[w]) continue;
        result.placement.site_of[u] = w;
        const double objective =
            average_uniform_network_delay(matrix, system, result.placement);
        if (objective < best_objective - options.min_improvement) {
          best_objective = objective;
          best_element = u;
          best_site = w;
          found = true;
        }
      }
      result.placement.site_of[u] = original;
    }
    if (!found) break;
    used[result.placement.site_of[best_element]] = false;
    used[best_site] = true;
    result.placement.site_of[best_element] = best_site;
    result.objective = best_objective;
    ++result.moves;
  }
  return result;
}

}  // namespace qp::core
