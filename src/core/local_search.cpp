#include "core/local_search.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/client_index.hpp"
#include "core/delta_eval.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qp::core {

namespace {

// Search telemetry (shared by both engines): candidates scanned, moves
// taken, rounds, and index rebuilds. Counts are tallied in bulk per round —
// never per candidate — so the instrumented hot loop is unchanged.
const obs::Counter c_ls_candidates = obs::counter("core.local_search.candidates");
const obs::Counter c_ls_moves = obs::counter("core.local_search.moves_accepted");
const obs::Counter c_ls_rounds = obs::counter("core.local_search.rounds");
const obs::Counter c_ls_rebuilds =
    obs::counter("core.local_search.index_rebuilds");
const obs::Counter c_ls_naive_runs = obs::counter("core.local_search.naive_runs");
const obs::Counter c_ls_delta_runs = obs::counter("core.local_search.delta_runs");

/// One relocation candidate: move `element` to (currently unused) `site`.
struct Candidate {
  std::size_t element;
  std::size_t site;
};

/// Candidates a Delta first-improvement round evaluates per parallel batch.
/// Any fixed value yields the same accepted move (the lowest improving index
/// is batch-independent); 256 keeps a shared pool busy without evaluating
/// far past the accepted candidate.
constexpr std::size_t kFirstImprovementBlock = 256;

LocalSearchResult local_search_naive(const net::LatencyMatrix& matrix,
                                     const quorum::QuorumSystem& system,
                                     const Placement& initial, const Objective& objective,
                                     const LocalSearchOptions& options) {
  QP_TRACE_SPAN("core.local_search.naive");
  c_ls_naive_runs.add();
  LocalSearchResult result;
  result.placement = initial;
  result.objective = objective.evaluate(matrix, system, result.placement);

  std::vector<bool> used(matrix.size(), false);
  for (std::size_t site : result.placement.site_of) used[site] = true;

  const bool first_improvement =
      options.strategy == LocalSearchStrategy::FirstImprovement;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    QP_TRACE_SPAN("core.local_search.pass");
    c_ls_rounds.add();
    std::size_t scanned = 0;
    double best_objective = result.objective;
    std::size_t best_element = 0;
    std::size_t best_site = 0;
    bool found = false;
    // Deterministic scan over all (element, unused site) relocations; the
    // first-improvement strategy stops at the first improving candidate.
    for (std::size_t u = 0; u < result.placement.universe_size(); ++u) {
      const std::size_t original = result.placement.site_of[u];
      for (std::size_t w = 0; w < matrix.size(); ++w) {
        if (used[w]) continue;
        result.placement.site_of[u] = w;
        const double candidate = objective.evaluate(matrix, system, result.placement);
        ++scanned;
        if (candidate < best_objective - options.min_improvement) {
          best_objective = candidate;
          best_element = u;
          best_site = w;
          found = true;
          if (first_improvement) break;
        }
      }
      result.placement.site_of[u] = original;
      if (found && first_improvement) break;
    }
    c_ls_candidates.add(scanned);
    if (!found) break;
    used[result.placement.site_of[best_element]] = false;
    used[best_site] = true;
    result.placement.site_of[best_element] = best_site;
    result.objective = best_objective;
    ++result.moves;
    c_ls_moves.add();
  }
  return result;
}

LocalSearchResult local_search_delta(const net::LatencySpace& space,
                                     const quorum::QuorumSystem& system,
                                     const Placement& initial, const Objective& objective,
                                     const LocalSearchOptions& options) {
  QP_TRACE_SPAN("core.local_search.delta");
  c_ls_delta_runs.add();
  const net::LatencyMatrix* matrix = space.as_matrix();
  DeltaEvaluator eval{space, system, initial, objective};

  // Sparse candidate machinery: a k-NN index over the space (borrowed, or a
  // brute-force one over the dense matrix), per-element target lists, and —
  // for closest objectives — the client candidate index that makes each
  // candidate's evaluation touch only affected clients.
  const net::KnnIndex* knn = options.knn;
  std::optional<net::KnnIndex> local_knn;
  const bool need_knn =
      options.candidate_knn > 0 || (options.client_index && eval.closest_strategy());
  if (knn == nullptr && need_knn) {
    if (matrix == nullptr) {
      throw std::invalid_argument{
          "local_search_placement: sparse candidate search over an implicit "
          "LatencySpace requires LocalSearchOptions::knn"};
    }
    local_knn.emplace(*matrix);
    knn = &*local_knn;
  }
  std::optional<ClientCandidateIndex> client_index;
  ClientCandidateIndex::Config index_config;
  if (options.client_index && eval.closest_strategy()) {
    ClientCandidateIndex::Config config;
    config.cap = options.client_index_cap;
    if (config.cap == 0 && matrix == nullptr) {
      // Implicit spaces default to capped lists: exact coverage of every
      // client's m1 is O(n) per far client before the search tightens the
      // placement (see client_index.hpp).
      config.cap = std::max<std::size_t>(64, options.candidate_knn);
    }
    client_index = ClientCandidateIndex::build(space, knn, eval.best_values(), config);
    eval.attach_candidate_index(&*client_index);
    index_config = config;
  }
  // Radius-shrinking rebuild schedule (uncapped lists only, see the option).
  const bool reindex = client_index.has_value() && !client_index->capped() &&
                       options.client_index_rebuild > 0;
  std::size_t moves_since_reindex = 0;

  std::vector<bool> used(space.size(), false);
  for (std::size_t site : initial.site_of) used[site] = true;

  // threads == 1 runs serial; 0 shares the global pool; n > 1 gets its own.
  std::optional<common::ThreadPool> dedicated;
  common::ThreadPool* pool = nullptr;
  if (options.threads == 0) {
    pool = &common::global_thread_pool();
  } else if (options.threads > 1) {
    dedicated.emplace(options.threads);
    pool = &*dedicated;
  }

  const bool first_improvement =
      options.strategy == LocalSearchStrategy::FirstImprovement;
  LocalSearchResult result;
  std::vector<Candidate> candidates;
  std::vector<double> objectives;
  std::vector<net::KnnIndex::Neighbor> neighbors;
  std::vector<std::size_t> targets;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    QP_TRACE_SPAN("core.local_search.pass");
    c_ls_rounds.add();
    const double current = eval.objective();
    candidates.clear();
    if (options.candidate_knn == 0) {
      for (std::size_t u = 0; u < eval.placement().universe_size(); ++u) {
        for (std::size_t w = 0; w < space.size(); ++w) {
          if (!used[w]) candidates.push_back(Candidate{u, w});
        }
      }
    } else {
      // Per-element targets: the candidate_knn unused sites nearest the
      // element's current site. Querying k + universe neighbors guarantees
      // enough unused ones; targets are re-sorted by site id so the
      // candidate order (and hence tie-breaking) matches the dense scan.
      const std::size_t universe = eval.placement().universe_size();
      const std::size_t query = std::min(space.size(), options.candidate_knn + universe);
      for (std::size_t u = 0; u < universe; ++u) {
        knn->nearest(eval.placement().site_of[u], query, neighbors);
        targets.clear();
        for (const auto& nb : neighbors) {
          if (targets.size() == options.candidate_knn) break;
          if (!used[nb.site]) targets.push_back(nb.site);
        }
        std::sort(targets.begin(), targets.end());
        for (std::size_t w : targets) candidates.push_back(Candidate{u, w});
      }
    }
    objectives.resize(candidates.size());
    const auto evaluate_range = [&](std::size_t begin, std::size_t end) {
      const auto evaluate_candidate = [&](std::size_t i) {
        objectives[i] = eval.objective_if_moved(candidates[i].element, candidates[i].site);
      };
      if (pool != nullptr) {
        pool->parallel_for(begin, end, evaluate_candidate);
      } else {
        for (std::size_t i = begin; i < end; ++i) evaluate_candidate(i);
      }
    };

    // Fixed-order accept: the decision always replays the serial scan over
    // the candidate-ordered objectives, so the selected move (and its
    // tie-breaking) is identical for any thread count.
    std::size_t best_index = candidates.size();
    std::size_t evaluated = 0;
    if (first_improvement) {
      // Evaluate fixed-size blocks and accept the lowest improving index;
      // which index wins does not depend on the block size.
      for (std::size_t begin = 0;
           begin < candidates.size() && best_index == candidates.size();
           begin += kFirstImprovementBlock) {
        const std::size_t end =
            std::min(candidates.size(), begin + kFirstImprovementBlock);
        evaluate_range(begin, end);
        evaluated += end - begin;
        for (std::size_t i = begin; i < end; ++i) {
          if (objectives[i] < current - options.min_improvement) {
            best_index = i;
            break;
          }
        }
      }
    } else {
      evaluate_range(0, candidates.size());
      evaluated = candidates.size();
      double best_objective = current;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (objectives[i] < best_objective - options.min_improvement) {
          best_objective = objectives[i];
          best_index = i;
        }
      }
    }
    c_ls_candidates.add(evaluated);
    if (best_index == candidates.size()) break;
    used[eval.placement().site_of[candidates[best_index].element]] = false;
    used[candidates[best_index].site] = true;
    eval.apply_move(candidates[best_index].element, candidates[best_index].site);
    ++result.moves;
    c_ls_moves.add();
    if (reindex && ++moves_since_reindex >= options.client_index_rebuild) {
      // Fresh lists match the current m1 radii (tight coverage, empty
      // overflow set); exactness never depended on the list contents.
      ClientCandidateIndex rebuilt =
          ClientCandidateIndex::build(space, knn, eval.best_values(), index_config);
      client_index = std::move(rebuilt);
      eval.attach_candidate_index(&*client_index);
      moves_since_reindex = 0;
      c_ls_rebuilds.add();
    }
  }

  result.placement = eval.placement();
  // Final objective via the canonical evaluator, so callers comparing against
  // Objective::evaluate (or average_uniform_network_delay) see the exact
  // same value. Implicit spaces report the incrementally maintained value
  // (reaccumulated from repaired tables on every move, so drift-free).
  result.objective = matrix != nullptr
                         ? objective.evaluate(*matrix, system, result.placement)
                         : eval.objective();
  return result;
}

}  // namespace

LocalSearchResult local_search_placement(const net::LatencySpace& space,
                                         const quorum::QuorumSystem& system,
                                         const Placement& initial,
                                         const LocalSearchOptions& options) {
  initial.validate(space.size());
  if (!initial.one_to_one()) {
    throw std::invalid_argument{"local_search_placement: initial must be one-to-one"};
  }
  const Objective& objective =
      options.objective != nullptr ? *options.objective : network_delay_objective();
  // Objectives the incremental engine cannot model (expectations over
  // failure sets, see Objective::supports_delta) silently take the naive
  // full-re-evaluation path; results are engine-independent either way.
  if (options.engine == LocalSearchEngine::Naive || !objective.supports_delta()) {
    const net::LatencyMatrix* matrix = space.as_matrix();
    if (matrix == nullptr) {
      throw std::invalid_argument{
          "local_search_placement: the Naive engine (and non-delta objectives) "
          "require a dense LatencyMatrix"};
    }
    return local_search_naive(*matrix, system, initial, objective, options);
  }
  return local_search_delta(space, system, initial, objective, options);
}

}  // namespace qp::core
