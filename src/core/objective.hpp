// Pluggable placement-search objectives.
//
// Every search layer (DeltaEvaluator, local_search, best_placement, the
// iterative alternation) optimizes an average over clients of the expected
// maximum of per-element values
//
//   J(f) = avg_v E_uniform-Q [ max_{u in Q} x_f(v, u) ],
//   x_f(v, u) = d(v, f(u)) + alpha * load_f(f(u))            (§4, eq. 4.1)
//
// under the balanced (uniform) access strategy with per-element execution
// (§8). The Objective interface captures the two axes a concrete objective
// chooses: the alpha coefficient and the load model (lambda_u per element,
// accumulated onto hosting sites). Two implementations cover the paper:
//   * NetworkDelayObjective — alpha = 0, the §6 pure-network-delay measure;
//   * LoadAwareObjective    — alpha = op_srv_time * demand > 0, the §7
//                             load-aware response time.
// Search code takes a `const Objective&` and never special-cases alpha.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/eval_workspace.hpp"
#include "core/placement.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

class Objective {
 public:
  virtual ~Objective() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Coefficient on the load term of (4.1); 0 means pure network delay.
  [[nodiscard]] virtual double alpha() const noexcept = 0;

  /// Per-element load contributions lambda_u: the load element u drags to
  /// whichever site hosts it, so load_f(w) = sum_{f(u)=w} lambda_u. An empty
  /// span means all-zero (the network-delay case). Spans must stay valid for
  /// the lifetime of the program (concrete objectives return memoized
  /// per-system tables, see QuorumSystem::uniform_load_cached).
  [[nodiscard]] virtual std::span<const double> element_loads(
      const quorum::QuorumSystem& system) const = 0;

  // ---- Shared machinery (identical for every objective). ----

  /// load_f(w) per site under this objective's load model; all zeros when
  /// alpha() == 0 or element_loads is empty.
  [[nodiscard]] std::vector<double> site_loads(const quorum::QuorumSystem& system,
                                               const Placement& placement,
                                               std::size_t site_count) const;

  /// x_f(client, u) into `out` for precomputed site loads.
  void fill_values(const net::LatencyMatrix& matrix, const Placement& placement,
                   std::span<const double> site_load, std::size_t client,
                   std::vector<double>& out) const;

  /// Naive full evaluation of J(f): the reference the incremental engine is
  /// checked against. Allocation-free in steady state via `workspace`.
  [[nodiscard]] double evaluate_ws(const net::LatencyMatrix& matrix,
                                   const quorum::QuorumSystem& system,
                                   const Placement& placement,
                                   EvalWorkspace& workspace) const;

  /// Convenience overload with a local workspace.
  [[nodiscard]] double evaluate(const net::LatencyMatrix& matrix,
                                const quorum::QuorumSystem& system,
                                const Placement& placement) const;
};

/// alpha = 0: J(f) = avg_v E_uniform[max d(v, f(u))] — identical to
/// average_uniform_network_delay.
class NetworkDelayObjective final : public Objective {
 public:
  [[nodiscard]] std::string name() const override { return "network-delay"; }
  [[nodiscard]] double alpha() const noexcept override { return 0.0; }
  [[nodiscard]] std::span<const double> element_loads(
      const quorum::QuorumSystem&) const override {
    return {};
  }
};

/// alpha > 0: the §7 response-time objective under the balanced strategy;
/// matches evaluate_balanced(...).avg_response_ms for per-element execution.
class LoadAwareObjective final : public Objective {
 public:
  /// Requires alpha >= 0 and finite.
  explicit LoadAwareObjective(double alpha);

  /// alpha = kQuWriteServiceMs * client_demand (§7's parameterization).
  [[nodiscard]] static LoadAwareObjective for_demand(double client_demand);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double alpha() const noexcept override { return alpha_; }
  [[nodiscard]] std::span<const double> element_loads(
      const quorum::QuorumSystem& system) const override;

 private:
  double alpha_;
};

/// Program-lifetime NetworkDelayObjective instance: the default objective of
/// every search entry point.
[[nodiscard]] const Objective& network_delay_objective() noexcept;

}  // namespace qp::core
