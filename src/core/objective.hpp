// Pluggable, demand-aware placement-search objectives.
//
// Every search layer (DeltaEvaluator, local_search, best_placement, the
// iterative alternation) minimizes a demand-weighted average over clients of
// the response time of the client's quorum access
//
//   J(f) = sum_v w_v * R_f(v),          w_v = demand_v / sum demand
//   x_f(v, u) = d(v, f(u)) + alpha * load_f(f(u))            (§4, eq. 4.1)
//
// where the access strategy decides both R_f(v) and the load model:
//   * Balanced (§7/§8): R_f(v) = E_uniform-Q [ max_{u in Q} x_f(v, u) ] and
//     load_f comes from the uniform per-element loads (demand-independent:
//     every client draws the same quorum distribution, so the weighted
//     average of identical per-client loads is the unweighted one);
//   * Closest (§6): R_f(v) = rho_f(v, Q_v*) for the argmin-network-delay
//     quorum Q_v* of client v, and load_f(w) = sum_v w_v |{u in Q_v* :
//     f(u) = w}| depends on the placement through every client's choice.
// An empty weight vector means uniform clients (w_v = 1/|V|), evaluated by
// the exact historical arithmetic so pre-demand results reproduce bitwise.
//
// The Objective interface captures the three axes a concrete objective
// chooses: the alpha coefficient, the per-client demand weights, and the
// access strategy (which implies the per-site load attribution). Three
// implementations cover the paper:
//   * NetworkDelayObjective    — alpha = 0, the §6 pure-network-delay
//                                measure (balanced strategy);
//   * LoadAwareObjective       — alpha = op_srv_time * demand > 0, the §7
//                                balanced-strategy response time;
//   * ClosestStrategyObjective — the §6 closest strategy: per-client argmin
//                                quorums plus the load they induce.
// Search code takes a `const Objective&` and never special-cases any axis.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/eval_workspace.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

/// How an objective's clients pick quorums (and hence how load attaches to
/// sites): Balanced = uniform over all quorums (§7), Closest = each client's
/// argmin-network-delay quorum (§6).
enum class AccessStrategy { Balanced, Closest };

class Objective {
 public:
  virtual ~Objective() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Coefficient on the load term of (4.1); 0 means pure network delay.
  [[nodiscard]] virtual double alpha() const noexcept = 0;

  /// Strategy governing the per-client response and the load attribution.
  [[nodiscard]] virtual AccessStrategy access_strategy() const noexcept {
    return AccessStrategy::Balanced;
  }

  /// Whether the incremental DeltaEvaluator models this objective exactly.
  /// Objectives whose value is not the (4.1) closest/balanced arithmetic —
  /// e.g. expectations over failure sets (FailureAwareObjective) — return
  /// false; local_search_placement then falls back to full re-evaluation
  /// (the Naive engine) and DeltaEvaluator refuses construction.
  [[nodiscard]] virtual bool supports_delta() const noexcept { return true; }

  /// Per-client demand shares w_v (normalized to sum 1); empty = uniform
  /// clients. A constant demand vector is collapsed to empty at
  /// construction, so uniform-demand evaluations reproduce the historical
  /// unweighted arithmetic exactly.
  [[nodiscard]] std::span<const double> client_weights() const noexcept { return weights_; }

  /// Per-element load contributions lambda_u under the balanced strategy:
  /// the load element u drags to whichever site hosts it, so
  /// load_f(w) = sum_{f(u)=w} lambda_u. An empty span means all-zero (the
  /// network-delay case, and the closest strategy, whose load is placement-
  /// dependent and computed by site_loads instead). Spans must stay valid
  /// for the lifetime of the program (concrete objectives return memoized
  /// per-system tables, see QuorumSystem::uniform_load_cached).
  [[nodiscard]] virtual std::span<const double> element_loads(
      const quorum::QuorumSystem& system) const = 0;

  /// load_f(w) per site under this objective's load model. The balanced
  /// default accumulates element_loads onto hosting sites (all zeros when
  /// alpha() == 0 or element_loads is empty); the closest strategy overrides
  /// with the demand-weighted loads its per-client quorum choices induce.
  [[nodiscard]] virtual std::vector<double> site_loads(
      const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
      const Placement& placement) const;

  /// x_f(client, u) into `out` for precomputed site loads.
  void fill_values(const net::LatencyMatrix& matrix, const Placement& placement,
                   std::span<const double> site_load, std::size_t client,
                   std::vector<double>& out) const;

  /// Exports the access strategy this objective models as explicit
  /// per-client quorum distributions — the hook the discrete-event engine
  /// (sim/engine) uses to simulate exactly the strategy an objective
  /// evaluates analytically. The closest strategy returns point masses on
  /// each client's argmin quorum (tie-breaking included); balanced
  /// objectives return nullopt, meaning "uniform over all quorums", which
  /// the engine samples analytically without enumeration. Exported rows are
  /// parity-audited (each distribution sums to 1) via QP_PARITY_ASSERT when
  /// QP_CHECK_LEVEL >= 2 (common/check.hpp; the asan preset arms it).
  [[nodiscard]] virtual std::optional<ExplicitStrategy> export_strategy(
      const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
      const Placement& placement) const;

  /// Naive full evaluation of J(f): the reference the incremental engine is
  /// checked against. Allocation-free in steady state via `workspace`. The
  /// balanced default covers NetworkDelay/LoadAware; the closest strategy
  /// overrides (it must match evaluate_closest, not evaluate_balanced).
  [[nodiscard]] virtual double evaluate_ws(const net::LatencyMatrix& matrix,
                                           const quorum::QuorumSystem& system,
                                           const Placement& placement,
                                           EvalWorkspace& workspace) const;

  /// Convenience overload with a local workspace.
  [[nodiscard]] double evaluate(const net::LatencyMatrix& matrix,
                                const quorum::QuorumSystem& system,
                                const Placement& placement) const;

 protected:
  Objective() = default;
  /// Normalizes `client_demand` to shares; empty or constant demand (and a
  /// zero-sum vector) collapses to the uniform (empty) representation.
  /// Throws on negative or non-finite entries.
  explicit Objective(std::span<const double> client_demand);

 private:
  std::vector<double> weights_;  // Demand shares; empty = uniform clients.
};

/// alpha = 0: J(f) = weighted avg_v E_uniform[max d(v, f(u))] — identical to
/// average_uniform_network_delay for uniform demand.
class NetworkDelayObjective final : public Objective {
 public:
  NetworkDelayObjective() = default;
  explicit NetworkDelayObjective(std::span<const double> client_demand)
      : Objective(client_demand) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double alpha() const noexcept override { return 0.0; }
  [[nodiscard]] std::span<const double> element_loads(
      const quorum::QuorumSystem&) const override {
    return {};
  }
};

/// alpha > 0: the §7 response-time objective under the balanced strategy;
/// matches evaluate_balanced(...).avg_response_ms for per-element execution
/// (demand-weighted when constructed from a demand vector).
class LoadAwareObjective final : public Objective {
 public:
  /// Requires alpha >= 0 and finite.
  explicit LoadAwareObjective(double alpha);
  LoadAwareObjective(double alpha, std::span<const double> client_demand);

  /// alpha = kQuWriteServiceMs * client_demand (§7's parameterization).
  [[nodiscard]] static LoadAwareObjective for_demand(double client_demand);
  /// Demand-weighted: alpha from the mean demand, weights from the vector.
  [[nodiscard]] static LoadAwareObjective for_demand(std::span<const double> client_demand);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double alpha() const noexcept override { return alpha_; }
  [[nodiscard]] std::span<const double> element_loads(
      const quorum::QuorumSystem& system) const override;

 private:
  double alpha_;
};

/// The §6 closest strategy: each client deterministically reads from its
/// minimum-network-delay quorum (QuorumSystem::best_quorum ties included),
/// the quorum choices induce the per-site loads, and the response is
/// rho_f(v, Q_v*) of (4.1). Matches evaluate_closest(...).avg_response_ms
/// (per-element execution), demand-weighted when built from a demand vector.
class ClosestStrategyObjective final : public Objective {
 public:
  /// Requires alpha >= 0 and finite.
  explicit ClosestStrategyObjective(double alpha);
  ClosestStrategyObjective(double alpha, std::span<const double> client_demand);

  [[nodiscard]] static ClosestStrategyObjective for_demand(double client_demand);
  [[nodiscard]] static ClosestStrategyObjective for_demand(
      std::span<const double> client_demand);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double alpha() const noexcept override { return alpha_; }
  [[nodiscard]] AccessStrategy access_strategy() const noexcept override {
    return AccessStrategy::Closest;
  }
  [[nodiscard]] std::span<const double> element_loads(
      const quorum::QuorumSystem&) const override {
    return {};  // Placement-dependent; see site_loads.
  }
  [[nodiscard]] std::vector<double> site_loads(const net::LatencyMatrix& matrix,
                                               const quorum::QuorumSystem& system,
                                               const Placement& placement) const override;
  [[nodiscard]] double evaluate_ws(const net::LatencyMatrix& matrix,
                                   const quorum::QuorumSystem& system,
                                   const Placement& placement,
                                   EvalWorkspace& workspace) const override;
  [[nodiscard]] std::optional<ExplicitStrategy> export_strategy(
      const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
      const Placement& placement) const override;

 private:
  double alpha_;
};

/// Program-lifetime NetworkDelayObjective instance: the default objective of
/// every search entry point.
[[nodiscard]] const Objective& network_delay_objective() noexcept;

}  // namespace qp::core
