// Quorum placements f : U -> V (§4) and the previously-known one-to-one
// placement algorithms (§4.1.1): Majority ball placement, the Grid inductive
// construction, the singleton/median placement, and the best-single-client
// outer loop that turns a single-client-optimal construction into a
// constant-factor approximation for all clients.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

class Objective;  // core/objective.hpp (which includes this header).

/// A placement maps universe element u to the site hosting it. Many-to-one
/// mappings are allowed (multiple elements on one site).
struct Placement {
  std::vector<std::size_t> site_of;

  [[nodiscard]] std::size_t universe_size() const noexcept { return site_of.size(); }

  /// Sorted, de-duplicated list of sites hosting at least one element
  /// (the support set f(U) of §4).
  [[nodiscard]] std::vector<std::size_t> support_set() const;

  [[nodiscard]] bool one_to_one() const;

  /// Throws unless every site index is < site_count.
  void validate(std::size_t site_count) const;
};

/// values[u] = rtt(client, f(u)) — the per-element distance vector that
/// quorum::QuorumSystem operations consume.
[[nodiscard]] std::vector<double> element_distances(const net::LatencyMatrix& matrix,
                                                    const Placement& placement,
                                                    std::size_t client);

/// Majority placement for a single client v0: an arbitrary one-to-one map
/// onto the ball B(v0, n) (all such maps have equal delay for v0; §4.1.1).
[[nodiscard]] Placement majority_ball_placement(const net::LatencyMatrix& matrix,
                                                std::size_t universe_size, std::size_t v0);

/// Grid placement for a single client v0 (§4.1.1): sort the ball's distances
/// in decreasing order and fill the grid in inductively growing squares, so
/// the closest nodes land on the last row and column (one cheap quorum).
[[nodiscard]] Placement grid_placement_for_client(const net::LatencyMatrix& matrix,
                                                  std::size_t side, std::size_t v0);

/// All universe elements on the graph median (Lin's 2-approximation).
[[nodiscard]] Placement singleton_placement(const net::LatencyMatrix& matrix,
                                            std::size_t universe_size = 1);

/// avg_v E_uniform-Q [ max_{u in Q} d(v, f(u)) ] — the network-delay
/// objective used to compare candidate placements.
[[nodiscard]] double average_uniform_network_delay(const net::LatencyMatrix& matrix,
                                                   const quorum::QuorumSystem& system,
                                                   const Placement& placement);

struct PlacementSearchResult {
  Placement placement;
  std::size_t anchor_client = 0;      // The v0 whose placement won.
  /// Objective value of the winner: the uniform-strategy network delay for
  /// the default objective, the load-aware response time otherwise.
  double avg_network_delay = 0.0;
};

/// §4.1.1 outer loop: builds the single-client placement for every candidate
/// v0 (all sites when `candidates` is empty), evaluates each under the
/// uniform access strategy, and returns the best. Candidates are evaluated
/// on the shared thread pool, so `build_for_client` must be thread-safe (a
/// pure function of v0, as all the built-in builders are); the reduction is
/// serial in candidate order, so the result is identical to a serial scan.
[[nodiscard]] PlacementSearchResult best_placement(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const std::function<Placement(std::size_t v0)>& build_for_client,
    std::span<const std::size_t> candidates = {});

/// Same outer loop scored by an arbitrary core::Objective (e.g. the
/// load-aware response time): the winning candidate minimizes
/// objective.evaluate over the built placements.
[[nodiscard]] PlacementSearchResult best_placement(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Objective& objective,
    const std::function<Placement(std::size_t v0)>& build_for_client,
    std::span<const std::size_t> candidates = {});

/// Convenience wrappers running best_placement with the matching builder.
[[nodiscard]] PlacementSearchResult best_majority_placement(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& majority,
    std::span<const std::size_t> candidates = {});
[[nodiscard]] PlacementSearchResult best_grid_placement(
    const net::LatencyMatrix& matrix, std::size_t side,
    std::span<const std::size_t> candidates = {});

}  // namespace qp::core
