#include "core/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "flow/mincost_flow.hpp"
#include "lp/revised_simplex.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qp::core {

namespace {

// Strategy-LP engine telemetry: which route each solve took (Auto's choice
// is otherwise invisible to callers that ignore solver_used), total simplex
// iterations, and whether a supplied warm basis carried the solve or
// stalled into the cold retry.
const obs::Counter c_slp_solves = obs::counter("lp.strategy.solves");
const obs::Counter c_slp_dense = obs::counter("lp.strategy.solver_dense");
const obs::Counter c_slp_revised = obs::counter("lp.strategy.solver_revised");
const obs::Counter c_slp_transportation =
    obs::counter("lp.strategy.solver_transportation");
const obs::Counter c_slp_iterations = obs::counter("lp.strategy.iterations");
const obs::Counter c_slp_warm_hit = obs::counter("lp.strategy.warm_start_hit");
const obs::Counter c_slp_warm_miss =
    obs::counter("lp.strategy.warm_start_miss");

}  // namespace

void ExplicitStrategy::validate(std::size_t client_count, std::size_t universe_size,
                                double tolerance) const {
  if (probability.size() != client_count) {
    throw std::invalid_argument{"ExplicitStrategy: wrong client count"};
  }
  for (const quorum::Quorum& quorum : quorums) {
    if (quorum.empty()) throw std::invalid_argument{"ExplicitStrategy: empty quorum"};
    for (std::size_t u : quorum) {
      if (u >= universe_size) throw std::out_of_range{"ExplicitStrategy: element out of range"};
    }
  }
  for (const std::vector<double>& row : probability) {
    if (row.size() != quorums.size()) {
      throw std::invalid_argument{"ExplicitStrategy: row size != quorum count"};
    }
    double sum = 0.0;
    for (double p : row) {
      if (p < -tolerance || p > 1.0 + tolerance) {
        throw std::invalid_argument{"ExplicitStrategy: probability out of [0,1]"};
      }
      sum += p;
    }
    if (std::abs(sum - 1.0) > tolerance) {
      throw std::invalid_argument{"ExplicitStrategy: row does not sum to 1"};
    }
  }
}

std::vector<double> ExplicitStrategy::average_distribution() const {
  std::vector<double> average(quorums.size(), 0.0);
  if (probability.empty()) return average;
  for (const std::vector<double>& row : probability) {
    for (std::size_t i = 0; i < average.size(); ++i) average[i] += row[i];
  }
  for (double& p : average) p /= static_cast<double>(probability.size());
  return average;
}

std::vector<quorum::Quorum> closest_quorums(const net::LatencyMatrix& matrix,
                                            const quorum::QuorumSystem& system,
                                            const Placement& placement) {
  std::vector<quorum::Quorum> result;
  result.reserve(matrix.size());
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    const std::vector<double> values = element_distances(matrix, placement, v);
    result.push_back(system.best_quorum(values));
  }
  return result;
}

std::vector<double> element_loads(std::span<const quorum::Quorum> quorums,
                                  std::span<const double> distribution,
                                  std::size_t universe_size) {
  if (quorums.size() != distribution.size()) {
    throw std::invalid_argument{"element_loads: size mismatch"};
  }
  std::vector<double> loads(universe_size, 0.0);
  for (std::size_t i = 0; i < quorums.size(); ++i) {
    for (std::size_t u : quorums[i]) {
      if (u >= universe_size) throw std::out_of_range{"element_loads: element out of range"};
      loads[u] += distribution[i];
    }
  }
  return loads;
}

namespace {

/// Adds the per-element loads onto their hosting sites.
std::vector<double> elements_to_sites(std::span<const double> element_loads,
                                      const Placement& placement, std::size_t site_count) {
  placement.validate(site_count);
  if (element_loads.size() != placement.universe_size()) {
    throw std::invalid_argument{"elements_to_sites: size mismatch"};
  }
  std::vector<double> site_loads(site_count, 0.0);
  for (std::size_t u = 0; u < element_loads.size(); ++u) {
    site_loads[placement.site_of[u]] += element_loads[u];
  }
  return site_loads;
}

/// Adds a single quorum access (weight p) onto site loads under the chosen
/// execution model.
void charge_quorum(const quorum::Quorum& quorum, const Placement& placement, double p,
                   ExecutionModel model, std::vector<double>& site_loads,
                   std::vector<std::size_t>& touched_scratch) {
  if (model == ExecutionModel::PerElement) {
    for (std::size_t u : quorum) site_loads[placement.site_of[u]] += p;
    return;
  }
  touched_scratch.clear();
  for (std::size_t u : quorum) touched_scratch.push_back(placement.site_of[u]);
  std::sort(touched_scratch.begin(), touched_scratch.end());
  touched_scratch.erase(std::unique(touched_scratch.begin(), touched_scratch.end()),
                        touched_scratch.end());
  for (std::size_t w : touched_scratch) site_loads[w] += p;
}

}  // namespace

std::vector<double> site_loads_closest(const net::LatencyMatrix& matrix,
                                       const quorum::QuorumSystem& system,
                                       const Placement& placement, ExecutionModel model) {
  const std::vector<quorum::Quorum> chosen = closest_quorums(matrix, system, placement);
  std::vector<double> site_loads(matrix.size(), 0.0);
  std::vector<std::size_t> scratch;
  const double weight = 1.0 / static_cast<double>(matrix.size());
  for (const quorum::Quorum& quorum : chosen) {
    charge_quorum(quorum, placement, weight, model, site_loads, scratch);
  }
  return site_loads;
}

std::vector<double> site_loads_closest(const net::LatencyMatrix& matrix,
                                       const quorum::QuorumSystem& system,
                                       const Placement& placement,
                                       std::span<const double> client_weights,
                                       ExecutionModel model) {
  if (client_weights.empty()) {
    return site_loads_closest(matrix, system, placement, model);
  }
  if (client_weights.size() != matrix.size()) {
    throw std::invalid_argument{"site_loads_closest: client weight count != clients"};
  }
  const std::vector<quorum::Quorum> chosen = closest_quorums(matrix, system, placement);
  std::vector<double> site_loads(matrix.size(), 0.0);
  std::vector<std::size_t> scratch;
  for (std::size_t v = 0; v < chosen.size(); ++v) {
    charge_quorum(chosen[v], placement, client_weights[v], model, site_loads, scratch);
  }
  return site_loads;
}

std::vector<double> site_loads_balanced(const quorum::QuorumSystem& system,
                                        const Placement& placement, std::size_t site_count,
                                        ExecutionModel model) {
  if (model == ExecutionModel::PerElement) {
    return elements_to_sites(system.uniform_load(), placement, site_count);
  }
  // Collapsed: load(w) = P(uniform quorum touches any element hosted on w).
  placement.validate(site_count);
  std::vector<std::vector<std::size_t>> hosted(site_count);
  for (std::size_t u = 0; u < placement.universe_size(); ++u) {
    hosted[placement.site_of[u]].push_back(u);
  }
  std::vector<double> site_loads(site_count, 0.0);
  for (std::size_t w = 0; w < site_count; ++w) {
    if (!hosted[w].empty()) {
      site_loads[w] = system.uniform_touch_probability(hosted[w]);
    }
  }
  return site_loads;
}

std::vector<double> site_loads_explicit(const ExplicitStrategy& strategy,
                                        const Placement& placement, std::size_t site_count,
                                        ExecutionModel model) {
  placement.validate(site_count);
  std::vector<double> site_loads(site_count, 0.0);
  std::vector<std::size_t> scratch;
  for (const std::vector<double>& row : strategy.probability) {
    if (row.size() != strategy.quorums.size()) {
      throw std::invalid_argument{"site_loads_explicit: row size mismatch"};
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] == 0.0) continue;
      charge_quorum(strategy.quorums[i], placement, row[i], model, site_loads, scratch);
    }
  }
  if (!strategy.probability.empty()) {
    for (double& load : site_loads) {
      load /= static_cast<double>(strategy.probability.size());
    }
  }
  return site_loads;
}

std::vector<double> site_loads_explicit(const ExplicitStrategy& strategy,
                                        const Placement& placement, std::size_t site_count,
                                        std::span<const double> client_weights,
                                        ExecutionModel model) {
  if (client_weights.empty()) {
    return site_loads_explicit(strategy, placement, site_count, model);
  }
  if (client_weights.size() != strategy.probability.size()) {
    throw std::invalid_argument{"site_loads_explicit: client weight count != clients"};
  }
  placement.validate(site_count);
  std::vector<double> site_loads(site_count, 0.0);
  std::vector<std::size_t> scratch;
  for (std::size_t v = 0; v < strategy.probability.size(); ++v) {
    const std::vector<double>& row = strategy.probability[v];
    if (row.size() != strategy.quorums.size()) {
      throw std::invalid_argument{"site_loads_explicit: row size mismatch"};
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] == 0.0) continue;
      charge_quorum(strategy.quorums[i], placement, client_weights[v] * row[i], model,
                    site_loads, scratch);
    }
  }
  return site_loads;
}

StrategyLpResult optimize_access_strategy(const net::LatencyMatrix& matrix,
                                          const quorum::QuorumSystem& system,
                                          const Placement& placement,
                                          std::span<const double> capacities,
                                          const StrategyLpOptions& options) {
  return optimize_access_strategy(matrix, system, placement, capacities,
                                  std::span<const double>{}, options);
}

namespace {

/// Copies LP variable values into per-client rows and normalizes each row to
/// sum exactly 1 (the solvers are only accurate to their tolerance).
void fill_strategy_rows(StrategyLpResult& result, std::span<const double> values,
                        std::size_t client_count, std::size_t m) {
  result.strategy.probability.assign(client_count, std::vector<double>(m, 0.0));
  for (std::size_t v = 0; v < client_count; ++v) {
    double sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double p = std::max(0.0, values[v * m + i]);
      result.strategy.probability[v][i] = p;
      sum += p;
    }
    if (sum <= 0.0) throw std::logic_error{"optimize_access_strategy: empty distribution"};
    for (double& p : result.strategy.probability[v]) p /= sum;
  }
}

/// True when no capacity row of the strategy LP can bind: even if every
/// client routed all its weight through the quorum that touches site w the
/// most, the induced load stays within cap_w. Then constraint set (4.4) is
/// vacuous and the LP decouples into one transportation column per client.
bool capacity_rows_cannot_bind(
    const std::vector<std::vector<std::pair<std::size_t, double>>>& quorum_sites,
    std::span<const std::size_t> support, std::span<const double> capacities,
    std::size_t site_count, double total_weight) {
  std::vector<double> max_count(site_count, 0.0);
  for (const auto& sites : quorum_sites) {
    for (const auto& [site, count] : sites) {
      max_count[site] = std::max(max_count[site], count);
    }
  }
  for (std::size_t w : support) {
    if (max_count[w] * total_weight > capacities[w]) return false;
  }
  return true;
}

/// The transportation specialization: with no binding capacity rows, the
/// optimal strategy is a min-cost assignment of one unit per client over the
/// client -> quorum bipartite graph (network-simplex semantics via
/// flow/mincost_flow). Costs are the LP objective coefficients, so the
/// reported objective matches the general path to solver tolerance.
StrategyLpResult solve_transportation(std::span<const double> delay_cost,
                                      std::size_t client_count, std::size_t m) {
  StrategyLpResult result;
  result.solver_used = StrategyLpSolver::Transportation;

  const std::size_t source = 0;
  const std::size_t sink = client_count + m + 1;
  flow::MinCostFlow network{client_count + m + 2};
  std::vector<std::size_t> edge_of(client_count * m, 0);
  for (std::size_t v = 0; v < client_count; ++v) {
    (void)network.add_edge(source, 1 + v, 1.0, 0.0);
  }
  for (std::size_t v = 0; v < client_count; ++v) {
    for (std::size_t i = 0; i < m; ++i) {
      edge_of[v * m + i] =
          network.add_edge(1 + v, 1 + client_count + i, 1.0, delay_cost[v * m + i]);
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    (void)network.add_edge(1 + client_count + i, sink,
                           static_cast<double>(client_count), 0.0);
  }

  const flow::MinCostFlow::Result flow_result =
      network.solve(source, sink, static_cast<double>(client_count));
  if (flow_result.flow < static_cast<double>(client_count) - 0.5) {
    // Cannot happen on this topology (every client reaches every quorum);
    // report it like any other numerical breakdown so callers can fall back.
    result.status = lp::SolveStatus::IterationLimit;
    return result;
  }

  result.status = lp::SolveStatus::Optimal;
  std::vector<double> values(client_count * m, 0.0);
  for (std::size_t var = 0; var < values.size(); ++var) {
    values[var] = network.flow_on(edge_of[var]);
  }
  // Objective in the same summation order as the simplex paths.
  result.avg_network_delay = 0.0;
  for (std::size_t var = 0; var < values.size(); ++var) {
    result.avg_network_delay += delay_cost[var] * values[var];
  }
  fill_strategy_rows(result, values, client_count, m);
  return result;
}

}  // namespace

StrategyLpResult optimize_access_strategy(const net::LatencyMatrix& matrix,
                                          const quorum::QuorumSystem& system,
                                          const Placement& placement,
                                          std::span<const double> capacities,
                                          std::span<const double> client_weights,
                                          const StrategyLpOptions& options) {
  QP_TRACE_SPAN("lp.strategy.optimize");
  c_slp_solves.add();
  placement.validate(matrix.size());
  if (capacities.size() != matrix.size()) {
    throw std::invalid_argument{"optimize_access_strategy: capacities size mismatch"};
  }
  if (!client_weights.empty()) {
    if (client_weights.size() != matrix.size()) {
      throw std::invalid_argument{
          "optimize_access_strategy: client weight count != clients"};
    }
    for (double weight : client_weights) {
      // A negative weight would reward delay and grant negative capacity
      // consumption; reject like the rest of the demand-weighting stack.
      if (!std::isfinite(weight) || weight < 0.0) {
        throw std::invalid_argument{
            "optimize_access_strategy: client weights must be finite and >= 0"};
      }
    }
  }
  const std::size_t client_count = matrix.size();
  const std::vector<quorum::Quorum> quorums = system.enumerate_quorums(options.quorum_limit);
  const std::size_t m = quorums.size();
  const double inv_clients = 1.0 / static_cast<double>(client_count);

  // Per-quorum site multiplicities: how many elements of Q_i live on site w.
  // (For one-to-one placements these are 0/1.)
  std::vector<std::vector<std::pair<std::size_t, double>>> quorum_sites(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<std::size_t> sites;
    sites.reserve(quorums[i].size());
    for (std::size_t u : quorums[i]) sites.push_back(placement.site_of[u]);
    std::sort(sites.begin(), sites.end());
    for (std::size_t a = 0; a < sites.size();) {
      std::size_t b = a;
      while (b < sites.size() && sites[b] == sites[a]) ++b;
      quorum_sites[i].emplace_back(sites[a], static_cast<double>(b - a));
      a = b;
    }
  }

  // Objective coefficients w_v * delta_f(v, Q_i), indexed v * m + i, with
  // w_v = demand share (the flat 1/|V| when unweighted). Computed once, in
  // the historical arithmetic order, so every engine prices the same LP and
  // the Dense path stays bitwise identical to the pre-specialization code.
  std::vector<double> delay_cost(client_count * m, 0.0);
  double total_weight = 0.0;
  for (std::size_t v = 0; v < client_count; ++v) {
    const std::vector<double>& row = matrix.row(v);
    const double weight = client_weights.empty() ? inv_clients : client_weights[v];
    total_weight += weight;
    for (std::size_t i = 0; i < m; ++i) {
      double delta = 0.0;
      for (const auto& [site, count] : quorum_sites[i]) {
        delta = std::max(delta, row[site]);
      }
      delay_cost[v * m + i] = delta * weight;
    }
  }

  const std::vector<std::size_t> support = placement.support_set();

  // Resolve the Auto/Transportation routes by LP shape.
  StrategyLpSolver engine = options.solver;
  if (engine == StrategyLpSolver::Auto || engine == StrategyLpSolver::Transportation) {
    const bool uncapacitated = capacity_rows_cannot_bind(quorum_sites, support, capacities,
                                                         matrix.size(), total_weight);
    if (engine == StrategyLpSolver::Auto) {
      engine = uncapacitated ? StrategyLpSolver::Transportation : StrategyLpSolver::Revised;
    } else if (!uncapacitated) {
      engine = StrategyLpSolver::Revised;  // Caps can bind: specialization unsound.
    }
  }

  if (engine == StrategyLpSolver::Transportation) {
    StrategyLpResult result = solve_transportation(delay_cost, client_count, m);
    if (result.status == lp::SolveStatus::Optimal) {
      c_slp_transportation.add();
      result.strategy.quorums = quorums;
      return result;
    }
    engine = StrategyLpSolver::Revised;  // Flow failed to saturate; solve exactly.
  }

  lp::LpProblem problem;
  for (double cost : delay_cost) (void)problem.add_variable(cost);

  // Capacity rows (4.4), one per support site.
  std::vector<std::size_t> capacity_row(matrix.size(), 0);
  for (std::size_t w : support) {
    capacity_row[w] = problem.add_row(lp::RowSense::LessEqual, capacities[w],
                                      "cap-" + std::to_string(w));
  }
  // Distribution rows (4.5).
  std::vector<std::size_t> simplex_row(client_count);
  for (std::size_t v = 0; v < client_count; ++v) {
    simplex_row[v] = problem.add_row(lp::RowSense::Equal, 1.0, "dist-" + std::to_string(v));
  }

  for (std::size_t v = 0; v < client_count; ++v) {
    const double weight = client_weights.empty() ? inv_clients : client_weights[v];
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t var = v * m + i;
      problem.add_coefficient(simplex_row[v], var, 1.0);
      for (const auto& [site, count] : quorum_sites[i]) {
        problem.add_coefficient(capacity_row[site], var, count * weight);
      }
    }
  }

  StrategyLpResult result;
  result.solver_used = engine;
  if (engine == StrategyLpSolver::Dense) {
    const lp::SimplexSolver solver{options.simplex};
    const lp::Solution solution = solver.solve(problem);
    c_slp_dense.add();
    c_slp_iterations.add(solution.iterations);
    result.status = solution.status;
    result.lp_iterations = solution.iterations;
    if (solution.status != lp::SolveStatus::Optimal) return result;
    result.avg_network_delay = solution.objective;
    result.strategy.quorums = quorums;
    fill_strategy_rows(result, solution.values, client_count, m);
    return result;
  }

  const lp::RevisedSimplexSolver solver{options.simplex};
  lp::SolveResult solution = solver.solve(problem);
  bool warm_stalled = false;
  if (solution.status == lp::SolveStatus::IterationLimit &&
      !options.simplex.initial_basis.empty()) {
    // A stale warm basis can stall on a reshaped LP; retry once from cold.
    warm_stalled = true;
    lp::SimplexOptions cold = options.simplex;
    cold.initial_basis = {};
    const std::size_t warm_iterations = solution.iterations;
    solution = lp::RevisedSimplexSolver{cold}.solve(problem);
    solution.iterations += warm_iterations;
  }
  c_slp_revised.add();
  c_slp_iterations.add(solution.iterations);
  if (!options.simplex.initial_basis.empty()) {
    (warm_stalled ? c_slp_warm_miss : c_slp_warm_hit).add();
  }
  result.status = solution.status;
  result.lp_iterations = solution.iterations;
  if (solution.status != lp::SolveStatus::Optimal) return result;
  result.avg_network_delay = solution.objective;
  result.basis = std::move(solution.basis);
  result.strategy.quorums = quorums;
  fill_strategy_rows(result, solution.values, client_count, m);
  return result;
}

}  // namespace qp::core
