// The iterative algorithm of §4.2: alternate the many-to-one placement
// (phase 1, with the average of the current per-client strategies) and the
// access-strategy LP (phase 2, with capacities pinned to the loads the new
// placement induces, so delay can only improve while loads are preserved).
// Halts when an iteration fails to reduce the expected response time and
// returns the previous iteration's placement and strategies.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/manytoone.hpp"
#include "core/objective.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

struct IterativeOptions {
  std::size_t max_iterations = 5;
  /// Anchor clients v0 tried by the placement search each iteration;
  /// empty = all sites (the paper's choice; slower).
  std::vector<std::size_t> anchor_candidates;
  ManyToOneOptions placement{};
  StrategyLpOptions strategy{};
  /// An iteration must improve response time by more than this to continue.
  double improvement_tolerance = 1e-9;
  /// Seed each round's phase-2 LP from the previous round's optimal basis
  /// (Revised engine only; applied when the placement support set — and so
  /// the LP shape — matches the round that produced the basis). The revised
  /// solver re-establishes feasibility in place, so warm and cold runs reach
  /// the same optimum; disable to pin cold-start iteration counts.
  bool warm_start = true;
};

/// Per-iteration measurements, recorded so Figure 8.9 can show the gain of
/// each phase separately.
struct IterationRecord {
  std::size_t iteration = 0;
  double response_after_placement = 0.0;  // Evaluated with last round's strategies.
  double network_after_placement = 0.0;
  double response_after_strategy = 0.0;   // Evaluated with the fresh LP strategies.
  double network_after_strategy = 0.0;
  double max_capacity_violation = 0.0;
  bool accepted = false;
  /// Simplex pivots the phase-2 LP took (0 on the Transportation route) and
  /// whether it was warm-started — fig8_9 and the bench report cold-vs-warm.
  std::size_t lp_iterations = 0;
  bool lp_warm_started = false;
};

struct IterativeResult {
  Placement placement;
  ExplicitStrategy strategy;
  double avg_response = 0.0;
  double avg_network_delay = 0.0;
  std::vector<IterationRecord> history;
};

/// Runs the alternation starting from the uniform access strategy. The
/// objective supplies the response-model alpha and the per-client demand
/// weights, which enter the halting criterion, the reported measurements,
/// AND the phase-2 LPs (demand-weighted delay objective and capacity-row
/// load coefficients — uniform-demand runs reproduce the unweighted (4.3)
/// arithmetic bitwise); `capacities` is the cap0 vector of §4.2. Throws
/// std::runtime_error if even the first iteration fails to produce a
/// feasible placement.
[[nodiscard]] IterativeResult iterative_placement(const net::LatencyMatrix& matrix,
                                                  const quorum::QuorumSystem& system,
                                                  std::span<const double> capacities,
                                                  const Objective& objective,
                                                  const IterativeOptions& options = {});

/// Bare-alpha convenience: runs against NetworkDelayObjective (alpha == 0)
/// or LoadAwareObjective{alpha}.
[[nodiscard]] IterativeResult iterative_placement(const net::LatencyMatrix& matrix,
                                                  const quorum::QuorumSystem& system,
                                                  std::span<const double> capacities,
                                                  double alpha,
                                                  const IterativeOptions& options = {});

}  // namespace qp::core
