// Degraded-mode placement objective: expected response time and
// unavailability under random site failures, with closest re-choice.
//
// Model: each site is independently down with probability p
// (FailureModel::site_failure_prob); optionally a whole region is down with
// probability region_failure_prob (correlated — every site of the region at
// once, the failure mode that actually separates placements, because i.i.d.
// site failures hit any one-to-one placement equally). A quorum is live
// when every element's hosting site is up; each client re-chooses the
// minimum-x live quorum (x = d(v, f(u)) + alpha * load, the same (4.1)
// surrogate the live objectives use), exactly what a client with a perfect
// failure detector would access — the analytic twin of the engine's
// FailoverMode::Oracle, which eval/sim_validation pins against it. When no
// live quorum exists the request is unavailable and charged a fixed
// penalty, so search trades response time against availability through one
// scalar.
//
// Per client v:   J_v = E[x-max of the best live quorum ; available]
//                       + P(no live quorum) * unavailable_penalty_ms
//                 J   = sum_v w_v J_v        (demand shares, empty = uniform)
//
// Evaluation dispatch (FailureAwareOptions):
//   * exact order statistics — Majority/Singleton-style systems expose
//     order_stat_weights-free structure: for MajorityQuorum(n, q) on a
//     one-to-one placement the best live quorum is the q cheapest live
//     elements, so E[..] = sum_{j>=q} x_(j) C(j-1, q-1) (1-p)^q p^(j-q)
//     in closed form (exact at the paper's n = 49);
//   * exact failure-set enumeration — any enumerable system (Grid,
//     Singleton, ...) whose support has at most exact_site_limit sites:
//     sum over all 2^s site up/down masks of P(mask) * best-live response
//     (exact for Grid at small k; handles many-to-one placements, whose
//     colocated elements fail together);
//   * Monte Carlo over failure sets — everything else, including every
//     regional-correlation model: mc_samples seeded masks, drawn per *site*
//     with a fresh rng per evaluation, so repeated evaluations are
//     identical and candidate placements share common random numbers (a
//     move changes the objective only through the placement, not through
//     resampling noise).
//
// The load term uses the fully-live closest per-site loads (documented
// approximation: failure-induced re-aiming of load is second-order at the
// small failure probabilities the model targets; the validation band in
// tests/fault_test.cpp bounds the end-to-end error against the engine).
//
// FailureAwareObjective plugs into the existing search API but is an
// expectation over failure sets, which the incremental DeltaEvaluator does
// not model: supports_delta() is false and local_search_placement falls
// back to full re-evaluation (LocalSearchEngine::Naive) automatically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/objective.hpp"

namespace qp::core {

/// Random-failure model: i.i.d. per-site failures plus optional correlated
/// regional failures (site down = own failure OR its region's failure).
struct FailureModel {
  /// Independent per-site down probability, in [0, 1).
  double site_failure_prob = 0.0;
  /// Whole-region down probability, in [0, 1); needs site_region.
  double region_failure_prob = 0.0;
  /// Per-site region id (sim::region_partition); empty = no regional term.
  std::vector<std::size_t> site_region;

  [[nodiscard]] bool regional() const noexcept {
    return region_failure_prob > 0.0 && !site_region.empty();
  }
  /// Throws std::invalid_argument on probabilities outside [0, 1).
  void validate() const;
};

struct FailureAwareOptions {
  /// Failure-set samples for the Monte-Carlo path.
  std::size_t mc_samples = 256;
  /// Seed of the per-evaluation rng (common random numbers across calls).
  std::uint64_t seed = 20070601;
  /// Exact enumeration bound: supports with at most this many sites (and an
  /// enumerable system, no regional term) enumerate all 2^s failure sets.
  std::size_t exact_site_limit = 10;
  /// Enumerability bound for the quorum-list evaluator.
  std::size_t quorum_limit = 50'000;
  /// Charge per unavailable request, ms — the knob trading mean response
  /// against availability.
  double unavailable_penalty_ms = 500.0;
};

/// evaluate_detailed's decomposition of the objective.
struct FailureAwareEvaluation {
  double objective_ms = 0.0;             // J: response mass + penalty mass.
  double expected_response_ms = 0.0;     // E[R | available] (completion-weighted).
  double unavailability = 0.0;           // Demand-weighted P(no live quorum).
};

class FailureAwareObjective final : public Objective {
 public:
  /// Requires alpha >= 0 and finite; validates the model.
  FailureAwareObjective(double alpha, FailureModel model,
                        FailureAwareOptions options = {});
  FailureAwareObjective(double alpha, FailureModel model,
                        std::span<const double> client_demand,
                        FailureAwareOptions options = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double alpha() const noexcept override { return alpha_; }
  [[nodiscard]] AccessStrategy access_strategy() const noexcept override {
    return AccessStrategy::Closest;
  }
  [[nodiscard]] bool supports_delta() const noexcept override { return false; }
  [[nodiscard]] std::span<const double> element_loads(
      const quorum::QuorumSystem&) const override {
    return {};  // Placement-dependent; see site_loads.
  }
  /// Fully-live closest loads (the alpha-term load model; see file comment).
  [[nodiscard]] std::vector<double> site_loads(const net::LatencyMatrix& matrix,
                                               const quorum::QuorumSystem& system,
                                               const Placement& placement) const override;
  [[nodiscard]] double evaluate_ws(const net::LatencyMatrix& matrix,
                                   const quorum::QuorumSystem& system,
                                   const Placement& placement,
                                   EvalWorkspace& workspace) const override;
  /// The fully-live closest strategy (what the engine's first attempts use).
  [[nodiscard]] std::optional<ExplicitStrategy> export_strategy(
      const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
      const Placement& placement) const override;

  /// Full decomposition: objective, conditional mean response, and
  /// unavailability. Throws std::invalid_argument when the system is
  /// neither Majority-shaped nor enumerable within quorum_limit, or when a
  /// regional model's site_region is shorter than the site count.
  [[nodiscard]] FailureAwareEvaluation evaluate_detailed(
      const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
      const Placement& placement) const;

  [[nodiscard]] const FailureModel& model() const noexcept { return model_; }
  [[nodiscard]] const FailureAwareOptions& options() const noexcept { return options_; }

 private:
  double alpha_;
  FailureModel model_;
  FailureAwareOptions options_;
};

}  // namespace qp::core
