#include "core/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "core/eval_workspace.hpp"
#include "core/objective.hpp"
#include "quorum/grid.hpp"

namespace qp::core {

std::vector<std::size_t> Placement::support_set() const {
  std::vector<std::size_t> support = site_of;
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  return support;
}

bool Placement::one_to_one() const { return support_set().size() == site_of.size(); }

void Placement::validate(std::size_t site_count) const {
  if (site_of.empty()) throw std::invalid_argument{"Placement: empty"};
  for (std::size_t site : site_of) {
    if (site >= site_count) throw std::out_of_range{"Placement: site out of range"};
  }
}

std::vector<double> element_distances(const net::LatencyMatrix& matrix,
                                      const Placement& placement, std::size_t client) {
  placement.validate(matrix.size());
  const std::vector<double>& row = matrix.row(client);
  std::vector<double> values(placement.universe_size());
  for (std::size_t u = 0; u < values.size(); ++u) values[u] = row[placement.site_of[u]];
  return values;
}

Placement majority_ball_placement(const net::LatencyMatrix& matrix,
                                  std::size_t universe_size, std::size_t v0) {
  if (universe_size == 0 || universe_size > matrix.size()) {
    throw std::invalid_argument{"majority_ball_placement: bad universe size"};
  }
  return Placement{matrix.ball(v0, universe_size)};
}

Placement grid_placement_for_client(const net::LatencyMatrix& matrix, std::size_t side,
                                    std::size_t v0) {
  const std::size_t n = side * side;
  if (side == 0 || n > matrix.size()) {
    throw std::invalid_argument{"grid_placement_for_client: bad grid side"};
  }
  // Ball nodes ordered by DECREASING distance from v0: rank 0 is farthest.
  std::vector<std::size_t> by_distance = matrix.ball(v0, n);
  std::reverse(by_distance.begin(), by_distance.end());

  // Inductive square construction (§4.1.1): the largest l^2 distances
  // occupy the top-left l x l square; growing to (l+1) x (l+1) appends the
  // next l ranks down column l and the following l+1 ranks across row l.
  // The nearest nodes therefore land on the last row/column, giving v0 one
  // very cheap quorum.
  std::vector<std::size_t> rank_of_cell(n, 0);
  std::size_t next_rank = 0;
  rank_of_cell[0] = next_rank++;  // Cell (0, 0).
  for (std::size_t l = 1; l < side; ++l) {
    for (std::size_t r = 0; r < l; ++r) rank_of_cell[r * side + l] = next_rank++;
    for (std::size_t c = 0; c <= l; ++c) rank_of_cell[l * side + c] = next_rank++;
  }

  Placement placement;
  placement.site_of.resize(n);
  for (std::size_t cell = 0; cell < n; ++cell) {
    placement.site_of[cell] = by_distance[rank_of_cell[cell]];
  }
  return placement;
}

Placement singleton_placement(const net::LatencyMatrix& matrix, std::size_t universe_size) {
  if (universe_size == 0) throw std::invalid_argument{"singleton_placement: empty universe"};
  const std::size_t median = matrix.median_site();
  return Placement{std::vector<std::size_t>(universe_size, median)};
}

double average_uniform_network_delay(const net::LatencyMatrix& matrix,
                                     const quorum::QuorumSystem& system,
                                     const Placement& placement) {
  placement.validate(matrix.size());
  EvalWorkspace workspace;
  return average_uniform_network_delay_ws(matrix, system, placement, workspace);
}

PlacementSearchResult best_placement(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const Objective& objective,
    const std::function<Placement(std::size_t v0)>& build_for_client,
    std::span<const std::size_t> candidates) {
  std::vector<std::size_t> all;
  if (candidates.empty()) {
    all.resize(matrix.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    candidates = all;
  }
  // Build and evaluate every candidate placement in parallel (the builders
  // are pure functions of v0), then reduce serially in candidate order so the
  // winner — including tie-breaking on equal delays — is identical to the
  // historical serial scan for any thread count. Only the delays are kept
  // (O(candidates) memory); the winning placement is rebuilt once at the end,
  // which purity makes exact.
  std::vector<double> delays(candidates.size());
  common::global_thread_pool().parallel_for(
      0, candidates.size(), [&](std::size_t i) {
        static thread_local EvalWorkspace workspace;
        const Placement placement = build_for_client(candidates[i]);
        placement.validate(matrix.size());
        delays[i] = objective.evaluate_ws(matrix, system, placement, workspace);
      });

  std::size_t best_index = candidates.size();
  double best_delay = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (delays[i] < best_delay) {
      best_delay = delays[i];
      best_index = i;
    }
  }
  if (best_index == candidates.size() || !std::isfinite(best_delay)) {
    throw std::invalid_argument{"best_placement: no candidate clients"};
  }
  PlacementSearchResult best;
  best.avg_network_delay = best_delay;
  best.anchor_client = candidates[best_index];
  best.placement = build_for_client(candidates[best_index]);
  return best;
}

PlacementSearchResult best_placement(
    const net::LatencyMatrix& matrix, const quorum::QuorumSystem& system,
    const std::function<Placement(std::size_t v0)>& build_for_client,
    std::span<const std::size_t> candidates) {
  return best_placement(matrix, system, network_delay_objective(), build_for_client,
                        candidates);
}

PlacementSearchResult best_majority_placement(const net::LatencyMatrix& matrix,
                                              const quorum::QuorumSystem& majority,
                                              std::span<const std::size_t> candidates) {
  return best_placement(
      matrix, majority,
      [&](std::size_t v0) {
        return majority_ball_placement(matrix, majority.universe_size(), v0);
      },
      candidates);
}

PlacementSearchResult best_grid_placement(const net::LatencyMatrix& matrix,
                                          std::size_t side,
                                          std::span<const std::size_t> candidates) {
  const quorum::GridQuorum grid{side};
  return best_placement(
      matrix, grid,
      [&](std::size_t v0) { return grid_placement_for_client(matrix, side, v0); },
      candidates);
}

}  // namespace qp::core
