// EvalWorkspace: flat, reusable scratch buffers for the placement-evaluation
// hot path. The paper's search loops (best-single-client placement, local
// search, figure sweeps) evaluate E[max over a quorum] of per-client value
// vectors millions of times; the original kernels allocated two vectors and
// sorted per client per call. The fill_* kernels below write into caller
// buffers instead, and average_uniform_network_delay_ws reuses one workspace
// across the whole client loop, so steady-state evaluation performs zero
// heap allocations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/placement.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

/// Scratch buffers sized on first use and reused afterwards. One workspace
/// per thread; the buffers are plain vectors, so moving/copying is cheap to
/// reason about and a default-constructed workspace is ready to use.
struct EvalWorkspace {
  /// x_u = d(v, f(u)) + alpha * load_f(f(u)) per element.
  std::vector<double> values;
  /// d(v, f(u)) per element.
  std::vector<double> distances;
  /// Working space handed to QuorumSystem::expected_max_uniform_scratch
  /// (sort buffer for Majority, row/column maxima for Grid).
  std::vector<double> scratch;
};

/// element_distances into a caller buffer: out[u] = rtt(client, f(u)).
/// No validation (the caller validates the placement once, not per client).
void fill_element_distances(const net::LatencyMatrix& matrix, const Placement& placement,
                            std::size_t client, std::vector<double>& out);

/// Per-element response values out[u] = d(v, f(u)) + alpha * load_f(f(u));
/// with these, max over f(Q) equals max over elements of Q for any placement.
void fill_element_values(const net::LatencyMatrix& matrix, const Placement& placement,
                         std::span<const double> site_load, double alpha,
                         std::size_t client, std::vector<double>& out);

/// avg_v E_uniform[max d] — same value as average_uniform_network_delay but
/// with all per-client buffers taken from `workspace`.
[[nodiscard]] double average_uniform_network_delay_ws(const net::LatencyMatrix& matrix,
                                                      const quorum::QuorumSystem& system,
                                                      const Placement& placement,
                                                      EvalWorkspace& workspace);

}  // namespace qp::core
