file(REMOVE_RECURSE
  "CMakeFiles/response_properties_test.dir/response_properties_test.cpp.o"
  "CMakeFiles/response_properties_test.dir/response_properties_test.cpp.o.d"
  "response_properties_test"
  "response_properties_test.pdb"
  "response_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/response_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
