# Empty dependencies file for collapsed_test.
# This may be replaced when dependencies are built.
