file(REMOVE_RECURSE
  "CMakeFiles/collapsed_test.dir/collapsed_test.cpp.o"
  "CMakeFiles/collapsed_test.dir/collapsed_test.cpp.o.d"
  "collapsed_test"
  "collapsed_test.pdb"
  "collapsed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapsed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
