# Empty dependencies file for manytoone_test.
# This may be replaced when dependencies are built.
