file(REMOVE_RECURSE
  "CMakeFiles/manytoone_test.dir/manytoone_test.cpp.o"
  "CMakeFiles/manytoone_test.dir/manytoone_test.cpp.o.d"
  "manytoone_test"
  "manytoone_test.pdb"
  "manytoone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manytoone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
