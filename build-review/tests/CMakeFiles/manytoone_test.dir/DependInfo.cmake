
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/manytoone_test.cpp" "tests/CMakeFiles/manytoone_test.dir/manytoone_test.cpp.o" "gcc" "tests/CMakeFiles/manytoone_test.dir/manytoone_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/eval/CMakeFiles/qp_eval.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/qp_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/qp_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/qp_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/quorum/CMakeFiles/qp_quorum.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/qp_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lp/CMakeFiles/qp_lp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/flow/CMakeFiles/qp_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
