file(REMOVE_RECURSE
  "CMakeFiles/delta_eval_test.dir/delta_eval_test.cpp.o"
  "CMakeFiles/delta_eval_test.dir/delta_eval_test.cpp.o.d"
  "delta_eval_test"
  "delta_eval_test.pdb"
  "delta_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
