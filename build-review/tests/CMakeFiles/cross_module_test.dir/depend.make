# Empty dependencies file for cross_module_test.
# This may be replaced when dependencies are built.
