# Empty compiler generated dependencies file for closest_objective_test.
# This may be replaced when dependencies are built.
