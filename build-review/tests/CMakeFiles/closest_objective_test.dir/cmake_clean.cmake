file(REMOVE_RECURSE
  "CMakeFiles/closest_objective_test.dir/closest_objective_test.cpp.o"
  "CMakeFiles/closest_objective_test.dir/closest_objective_test.cpp.o.d"
  "closest_objective_test"
  "closest_objective_test.pdb"
  "closest_objective_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closest_objective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
