file(REMOVE_RECURSE
  "CMakeFiles/quorum_properties_test.dir/quorum_properties_test.cpp.o"
  "CMakeFiles/quorum_properties_test.dir/quorum_properties_test.cpp.o.d"
  "quorum_properties_test"
  "quorum_properties_test.pdb"
  "quorum_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
