file(REMOVE_RECURSE
  "CMakeFiles/sparse_search_test.dir/sparse_search_test.cpp.o"
  "CMakeFiles/sparse_search_test.dir/sparse_search_test.cpp.o.d"
  "sparse_search_test"
  "sparse_search_test.pdb"
  "sparse_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
