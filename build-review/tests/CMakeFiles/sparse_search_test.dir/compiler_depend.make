# Empty compiler generated dependencies file for sparse_search_test.
# This may be replaced when dependencies are built.
