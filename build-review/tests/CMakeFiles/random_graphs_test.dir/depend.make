# Empty dependencies file for random_graphs_test.
# This may be replaced when dependencies are built.
