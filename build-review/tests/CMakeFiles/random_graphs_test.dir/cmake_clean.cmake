file(REMOVE_RECURSE
  "CMakeFiles/random_graphs_test.dir/random_graphs_test.cpp.o"
  "CMakeFiles/random_graphs_test.dir/random_graphs_test.cpp.o.d"
  "random_graphs_test"
  "random_graphs_test.pdb"
  "random_graphs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_graphs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
