file(REMOVE_RECURSE
  "CMakeFiles/fpp_test.dir/fpp_test.cpp.o"
  "CMakeFiles/fpp_test.dir/fpp_test.cpp.o.d"
  "fpp_test"
  "fpp_test.pdb"
  "fpp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
