# Empty compiler generated dependencies file for fpp_test.
# This may be replaced when dependencies are built.
