file(REMOVE_RECURSE
  "CMakeFiles/lp_robustness_test.dir/lp_robustness_test.cpp.o"
  "CMakeFiles/lp_robustness_test.dir/lp_robustness_test.cpp.o.d"
  "lp_robustness_test"
  "lp_robustness_test.pdb"
  "lp_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
