# Empty compiler generated dependencies file for lp_robustness_test.
# This may be replaced when dependencies are built.
