# Empty compiler generated dependencies file for lp_solver_test.
# This may be replaced when dependencies are built.
