file(REMOVE_RECURSE
  "CMakeFiles/lp_solver_test.dir/lp_solver_test.cpp.o"
  "CMakeFiles/lp_solver_test.dir/lp_solver_test.cpp.o.d"
  "lp_solver_test"
  "lp_solver_test.pdb"
  "lp_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
