file(REMOVE_RECURSE
  "CMakeFiles/race_stress_test.dir/race_stress_test.cpp.o"
  "CMakeFiles/race_stress_test.dir/race_stress_test.cpp.o.d"
  "race_stress_test"
  "race_stress_test.pdb"
  "race_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
