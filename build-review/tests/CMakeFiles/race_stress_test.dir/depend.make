# Empty dependencies file for race_stress_test.
# This may be replaced when dependencies are built.
