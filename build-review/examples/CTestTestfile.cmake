# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[examples.quickstart_smoke]=] "/root/repo/build-review/examples/quickstart")
set_tests_properties([=[examples.quickstart_smoke]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
