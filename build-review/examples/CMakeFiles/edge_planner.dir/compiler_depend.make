# Empty compiler generated dependencies file for edge_planner.
# This may be replaced when dependencies are built.
