file(REMOVE_RECURSE
  "CMakeFiles/edge_planner.dir/edge_planner.cpp.o"
  "CMakeFiles/edge_planner.dir/edge_planner.cpp.o.d"
  "edge_planner"
  "edge_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
