# Empty compiler generated dependencies file for demand_tuner.
# This may be replaced when dependencies are built.
