file(REMOVE_RECURSE
  "CMakeFiles/demand_tuner.dir/demand_tuner.cpp.o"
  "CMakeFiles/demand_tuner.dir/demand_tuner.cpp.o.d"
  "demand_tuner"
  "demand_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demand_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
