file(REMOVE_RECURSE
  "CMakeFiles/protocol_sim_demo.dir/protocol_sim_demo.cpp.o"
  "CMakeFiles/protocol_sim_demo.dir/protocol_sim_demo.cpp.o.d"
  "protocol_sim_demo"
  "protocol_sim_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_sim_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
