# Empty dependencies file for protocol_sim_demo.
# This may be replaced when dependencies are built.
