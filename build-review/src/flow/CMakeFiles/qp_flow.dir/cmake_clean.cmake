file(REMOVE_RECURSE
  "CMakeFiles/qp_flow.dir/assignment.cpp.o"
  "CMakeFiles/qp_flow.dir/assignment.cpp.o.d"
  "CMakeFiles/qp_flow.dir/mincost_flow.cpp.o"
  "CMakeFiles/qp_flow.dir/mincost_flow.cpp.o.d"
  "libqp_flow.a"
  "libqp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
