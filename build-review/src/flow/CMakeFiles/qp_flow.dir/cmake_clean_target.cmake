file(REMOVE_RECURSE
  "libqp_flow.a"
)
