# Empty dependencies file for qp_flow.
# This may be replaced when dependencies are built.
