# Empty dependencies file for qp_sim.
# This may be replaced when dependencies are built.
