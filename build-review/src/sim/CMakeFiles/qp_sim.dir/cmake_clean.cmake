file(REMOVE_RECURSE
  "CMakeFiles/qp_sim.dir/arrivals.cpp.o"
  "CMakeFiles/qp_sim.dir/arrivals.cpp.o.d"
  "CMakeFiles/qp_sim.dir/client_sites.cpp.o"
  "CMakeFiles/qp_sim.dir/client_sites.cpp.o.d"
  "CMakeFiles/qp_sim.dir/engine.cpp.o"
  "CMakeFiles/qp_sim.dir/engine.cpp.o.d"
  "CMakeFiles/qp_sim.dir/fault.cpp.o"
  "CMakeFiles/qp_sim.dir/fault.cpp.o.d"
  "CMakeFiles/qp_sim.dir/protocol_sim.cpp.o"
  "CMakeFiles/qp_sim.dir/protocol_sim.cpp.o.d"
  "CMakeFiles/qp_sim.dir/retry.cpp.o"
  "CMakeFiles/qp_sim.dir/retry.cpp.o.d"
  "CMakeFiles/qp_sim.dir/scenario.cpp.o"
  "CMakeFiles/qp_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/qp_sim.dir/service_queue.cpp.o"
  "CMakeFiles/qp_sim.dir/service_queue.cpp.o.d"
  "CMakeFiles/qp_sim.dir/strategy_sampler.cpp.o"
  "CMakeFiles/qp_sim.dir/strategy_sampler.cpp.o.d"
  "libqp_sim.a"
  "libqp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
