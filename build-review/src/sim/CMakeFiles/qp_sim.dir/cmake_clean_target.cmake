file(REMOVE_RECURSE
  "libqp_sim.a"
)
