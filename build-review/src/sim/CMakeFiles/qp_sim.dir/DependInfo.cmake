
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/arrivals.cpp" "src/sim/CMakeFiles/qp_sim.dir/arrivals.cpp.o" "gcc" "src/sim/CMakeFiles/qp_sim.dir/arrivals.cpp.o.d"
  "/root/repo/src/sim/client_sites.cpp" "src/sim/CMakeFiles/qp_sim.dir/client_sites.cpp.o" "gcc" "src/sim/CMakeFiles/qp_sim.dir/client_sites.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/qp_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/qp_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/sim/CMakeFiles/qp_sim.dir/fault.cpp.o" "gcc" "src/sim/CMakeFiles/qp_sim.dir/fault.cpp.o.d"
  "/root/repo/src/sim/protocol_sim.cpp" "src/sim/CMakeFiles/qp_sim.dir/protocol_sim.cpp.o" "gcc" "src/sim/CMakeFiles/qp_sim.dir/protocol_sim.cpp.o.d"
  "/root/repo/src/sim/retry.cpp" "src/sim/CMakeFiles/qp_sim.dir/retry.cpp.o" "gcc" "src/sim/CMakeFiles/qp_sim.dir/retry.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/qp_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/qp_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/service_queue.cpp" "src/sim/CMakeFiles/qp_sim.dir/service_queue.cpp.o" "gcc" "src/sim/CMakeFiles/qp_sim.dir/service_queue.cpp.o.d"
  "/root/repo/src/sim/strategy_sampler.cpp" "src/sim/CMakeFiles/qp_sim.dir/strategy_sampler.cpp.o" "gcc" "src/sim/CMakeFiles/qp_sim.dir/strategy_sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/qp_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/qp_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/quorum/CMakeFiles/qp_quorum.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/qp_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lp/CMakeFiles/qp_lp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/flow/CMakeFiles/qp_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
