file(REMOVE_RECURSE
  "libqp_lp.a"
)
