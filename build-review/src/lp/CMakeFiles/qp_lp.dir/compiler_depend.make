# Empty compiler generated dependencies file for qp_lp.
# This may be replaced when dependencies are built.
