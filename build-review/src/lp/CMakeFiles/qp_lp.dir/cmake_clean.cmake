file(REMOVE_RECURSE
  "CMakeFiles/qp_lp.dir/problem.cpp.o"
  "CMakeFiles/qp_lp.dir/problem.cpp.o.d"
  "CMakeFiles/qp_lp.dir/revised_simplex.cpp.o"
  "CMakeFiles/qp_lp.dir/revised_simplex.cpp.o.d"
  "CMakeFiles/qp_lp.dir/simplex.cpp.o"
  "CMakeFiles/qp_lp.dir/simplex.cpp.o.d"
  "libqp_lp.a"
  "libqp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
