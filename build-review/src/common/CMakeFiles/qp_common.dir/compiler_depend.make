# Empty compiler generated dependencies file for qp_common.
# This may be replaced when dependencies are built.
