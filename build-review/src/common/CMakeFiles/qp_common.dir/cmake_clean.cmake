file(REMOVE_RECURSE
  "CMakeFiles/qp_common.dir/combinatorics.cpp.o"
  "CMakeFiles/qp_common.dir/combinatorics.cpp.o.d"
  "CMakeFiles/qp_common.dir/rng.cpp.o"
  "CMakeFiles/qp_common.dir/rng.cpp.o.d"
  "CMakeFiles/qp_common.dir/stats.cpp.o"
  "CMakeFiles/qp_common.dir/stats.cpp.o.d"
  "CMakeFiles/qp_common.dir/thread_pool.cpp.o"
  "CMakeFiles/qp_common.dir/thread_pool.cpp.o.d"
  "libqp_common.a"
  "libqp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
