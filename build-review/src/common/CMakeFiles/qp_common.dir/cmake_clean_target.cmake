file(REMOVE_RECURSE
  "libqp_common.a"
)
