
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capacity.cpp" "src/core/CMakeFiles/qp_core.dir/capacity.cpp.o" "gcc" "src/core/CMakeFiles/qp_core.dir/capacity.cpp.o.d"
  "/root/repo/src/core/client_index.cpp" "src/core/CMakeFiles/qp_core.dir/client_index.cpp.o" "gcc" "src/core/CMakeFiles/qp_core.dir/client_index.cpp.o.d"
  "/root/repo/src/core/delta_eval.cpp" "src/core/CMakeFiles/qp_core.dir/delta_eval.cpp.o" "gcc" "src/core/CMakeFiles/qp_core.dir/delta_eval.cpp.o.d"
  "/root/repo/src/core/eval_workspace.cpp" "src/core/CMakeFiles/qp_core.dir/eval_workspace.cpp.o" "gcc" "src/core/CMakeFiles/qp_core.dir/eval_workspace.cpp.o.d"
  "/root/repo/src/core/failure_objective.cpp" "src/core/CMakeFiles/qp_core.dir/failure_objective.cpp.o" "gcc" "src/core/CMakeFiles/qp_core.dir/failure_objective.cpp.o.d"
  "/root/repo/src/core/iterative.cpp" "src/core/CMakeFiles/qp_core.dir/iterative.cpp.o" "gcc" "src/core/CMakeFiles/qp_core.dir/iterative.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/core/CMakeFiles/qp_core.dir/local_search.cpp.o" "gcc" "src/core/CMakeFiles/qp_core.dir/local_search.cpp.o.d"
  "/root/repo/src/core/manytoone.cpp" "src/core/CMakeFiles/qp_core.dir/manytoone.cpp.o" "gcc" "src/core/CMakeFiles/qp_core.dir/manytoone.cpp.o.d"
  "/root/repo/src/core/objective.cpp" "src/core/CMakeFiles/qp_core.dir/objective.cpp.o" "gcc" "src/core/CMakeFiles/qp_core.dir/objective.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/qp_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/qp_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/response.cpp" "src/core/CMakeFiles/qp_core.dir/response.cpp.o" "gcc" "src/core/CMakeFiles/qp_core.dir/response.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/core/CMakeFiles/qp_core.dir/strategy.cpp.o" "gcc" "src/core/CMakeFiles/qp_core.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/net/CMakeFiles/qp_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lp/CMakeFiles/qp_lp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/flow/CMakeFiles/qp_flow.dir/DependInfo.cmake"
  "/root/repo/build-review/src/quorum/CMakeFiles/qp_quorum.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/qp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
