file(REMOVE_RECURSE
  "libqp_core.a"
)
