file(REMOVE_RECURSE
  "CMakeFiles/qp_core.dir/capacity.cpp.o"
  "CMakeFiles/qp_core.dir/capacity.cpp.o.d"
  "CMakeFiles/qp_core.dir/client_index.cpp.o"
  "CMakeFiles/qp_core.dir/client_index.cpp.o.d"
  "CMakeFiles/qp_core.dir/delta_eval.cpp.o"
  "CMakeFiles/qp_core.dir/delta_eval.cpp.o.d"
  "CMakeFiles/qp_core.dir/eval_workspace.cpp.o"
  "CMakeFiles/qp_core.dir/eval_workspace.cpp.o.d"
  "CMakeFiles/qp_core.dir/failure_objective.cpp.o"
  "CMakeFiles/qp_core.dir/failure_objective.cpp.o.d"
  "CMakeFiles/qp_core.dir/iterative.cpp.o"
  "CMakeFiles/qp_core.dir/iterative.cpp.o.d"
  "CMakeFiles/qp_core.dir/local_search.cpp.o"
  "CMakeFiles/qp_core.dir/local_search.cpp.o.d"
  "CMakeFiles/qp_core.dir/manytoone.cpp.o"
  "CMakeFiles/qp_core.dir/manytoone.cpp.o.d"
  "CMakeFiles/qp_core.dir/objective.cpp.o"
  "CMakeFiles/qp_core.dir/objective.cpp.o.d"
  "CMakeFiles/qp_core.dir/placement.cpp.o"
  "CMakeFiles/qp_core.dir/placement.cpp.o.d"
  "CMakeFiles/qp_core.dir/response.cpp.o"
  "CMakeFiles/qp_core.dir/response.cpp.o.d"
  "CMakeFiles/qp_core.dir/strategy.cpp.o"
  "CMakeFiles/qp_core.dir/strategy.cpp.o.d"
  "libqp_core.a"
  "libqp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
