# Empty compiler generated dependencies file for qp_core.
# This may be replaced when dependencies are built.
