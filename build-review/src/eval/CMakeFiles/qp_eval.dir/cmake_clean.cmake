file(REMOVE_RECURSE
  "CMakeFiles/qp_eval.dir/figures.cpp.o"
  "CMakeFiles/qp_eval.dir/figures.cpp.o.d"
  "CMakeFiles/qp_eval.dir/sim_validation.cpp.o"
  "CMakeFiles/qp_eval.dir/sim_validation.cpp.o.d"
  "CMakeFiles/qp_eval.dir/sweeps.cpp.o"
  "CMakeFiles/qp_eval.dir/sweeps.cpp.o.d"
  "libqp_eval.a"
  "libqp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
