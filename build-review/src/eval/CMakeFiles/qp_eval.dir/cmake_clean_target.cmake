file(REMOVE_RECURSE
  "libqp_eval.a"
)
