# Empty dependencies file for qp_eval.
# This may be replaced when dependencies are built.
