file(REMOVE_RECURSE
  "CMakeFiles/qp_quorum.dir/fpp.cpp.o"
  "CMakeFiles/qp_quorum.dir/fpp.cpp.o.d"
  "CMakeFiles/qp_quorum.dir/grid.cpp.o"
  "CMakeFiles/qp_quorum.dir/grid.cpp.o.d"
  "CMakeFiles/qp_quorum.dir/majority.cpp.o"
  "CMakeFiles/qp_quorum.dir/majority.cpp.o.d"
  "CMakeFiles/qp_quorum.dir/order_stats.cpp.o"
  "CMakeFiles/qp_quorum.dir/order_stats.cpp.o.d"
  "CMakeFiles/qp_quorum.dir/quorum_system.cpp.o"
  "CMakeFiles/qp_quorum.dir/quorum_system.cpp.o.d"
  "CMakeFiles/qp_quorum.dir/singleton.cpp.o"
  "CMakeFiles/qp_quorum.dir/singleton.cpp.o.d"
  "CMakeFiles/qp_quorum.dir/tree.cpp.o"
  "CMakeFiles/qp_quorum.dir/tree.cpp.o.d"
  "libqp_quorum.a"
  "libqp_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
