# Empty compiler generated dependencies file for qp_quorum.
# This may be replaced when dependencies are built.
