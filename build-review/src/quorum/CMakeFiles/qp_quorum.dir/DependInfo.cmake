
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quorum/fpp.cpp" "src/quorum/CMakeFiles/qp_quorum.dir/fpp.cpp.o" "gcc" "src/quorum/CMakeFiles/qp_quorum.dir/fpp.cpp.o.d"
  "/root/repo/src/quorum/grid.cpp" "src/quorum/CMakeFiles/qp_quorum.dir/grid.cpp.o" "gcc" "src/quorum/CMakeFiles/qp_quorum.dir/grid.cpp.o.d"
  "/root/repo/src/quorum/majority.cpp" "src/quorum/CMakeFiles/qp_quorum.dir/majority.cpp.o" "gcc" "src/quorum/CMakeFiles/qp_quorum.dir/majority.cpp.o.d"
  "/root/repo/src/quorum/order_stats.cpp" "src/quorum/CMakeFiles/qp_quorum.dir/order_stats.cpp.o" "gcc" "src/quorum/CMakeFiles/qp_quorum.dir/order_stats.cpp.o.d"
  "/root/repo/src/quorum/quorum_system.cpp" "src/quorum/CMakeFiles/qp_quorum.dir/quorum_system.cpp.o" "gcc" "src/quorum/CMakeFiles/qp_quorum.dir/quorum_system.cpp.o.d"
  "/root/repo/src/quorum/singleton.cpp" "src/quorum/CMakeFiles/qp_quorum.dir/singleton.cpp.o" "gcc" "src/quorum/CMakeFiles/qp_quorum.dir/singleton.cpp.o.d"
  "/root/repo/src/quorum/tree.cpp" "src/quorum/CMakeFiles/qp_quorum.dir/tree.cpp.o" "gcc" "src/quorum/CMakeFiles/qp_quorum.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/qp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
