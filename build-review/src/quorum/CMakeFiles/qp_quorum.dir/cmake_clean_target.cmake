file(REMOVE_RECURSE
  "libqp_quorum.a"
)
