
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/embedding.cpp" "src/net/CMakeFiles/qp_net.dir/embedding.cpp.o" "gcc" "src/net/CMakeFiles/qp_net.dir/embedding.cpp.o.d"
  "/root/repo/src/net/graph.cpp" "src/net/CMakeFiles/qp_net.dir/graph.cpp.o" "gcc" "src/net/CMakeFiles/qp_net.dir/graph.cpp.o.d"
  "/root/repo/src/net/knn_index.cpp" "src/net/CMakeFiles/qp_net.dir/knn_index.cpp.o" "gcc" "src/net/CMakeFiles/qp_net.dir/knn_index.cpp.o.d"
  "/root/repo/src/net/latency_matrix.cpp" "src/net/CMakeFiles/qp_net.dir/latency_matrix.cpp.o" "gcc" "src/net/CMakeFiles/qp_net.dir/latency_matrix.cpp.o.d"
  "/root/repo/src/net/matrix_io.cpp" "src/net/CMakeFiles/qp_net.dir/matrix_io.cpp.o" "gcc" "src/net/CMakeFiles/qp_net.dir/matrix_io.cpp.o.d"
  "/root/repo/src/net/random_graphs.cpp" "src/net/CMakeFiles/qp_net.dir/random_graphs.cpp.o" "gcc" "src/net/CMakeFiles/qp_net.dir/random_graphs.cpp.o.d"
  "/root/repo/src/net/shortest_paths.cpp" "src/net/CMakeFiles/qp_net.dir/shortest_paths.cpp.o" "gcc" "src/net/CMakeFiles/qp_net.dir/shortest_paths.cpp.o.d"
  "/root/repo/src/net/synthetic.cpp" "src/net/CMakeFiles/qp_net.dir/synthetic.cpp.o" "gcc" "src/net/CMakeFiles/qp_net.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/qp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
