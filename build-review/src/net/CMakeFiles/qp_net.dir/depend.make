# Empty dependencies file for qp_net.
# This may be replaced when dependencies are built.
