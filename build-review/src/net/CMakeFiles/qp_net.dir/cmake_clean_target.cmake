file(REMOVE_RECURSE
  "libqp_net.a"
)
