file(REMOVE_RECURSE
  "CMakeFiles/qp_net.dir/embedding.cpp.o"
  "CMakeFiles/qp_net.dir/embedding.cpp.o.d"
  "CMakeFiles/qp_net.dir/graph.cpp.o"
  "CMakeFiles/qp_net.dir/graph.cpp.o.d"
  "CMakeFiles/qp_net.dir/knn_index.cpp.o"
  "CMakeFiles/qp_net.dir/knn_index.cpp.o.d"
  "CMakeFiles/qp_net.dir/latency_matrix.cpp.o"
  "CMakeFiles/qp_net.dir/latency_matrix.cpp.o.d"
  "CMakeFiles/qp_net.dir/matrix_io.cpp.o"
  "CMakeFiles/qp_net.dir/matrix_io.cpp.o.d"
  "CMakeFiles/qp_net.dir/random_graphs.cpp.o"
  "CMakeFiles/qp_net.dir/random_graphs.cpp.o.d"
  "CMakeFiles/qp_net.dir/shortest_paths.cpp.o"
  "CMakeFiles/qp_net.dir/shortest_paths.cpp.o.d"
  "CMakeFiles/qp_net.dir/synthetic.cpp.o"
  "CMakeFiles/qp_net.dir/synthetic.cpp.o.d"
  "libqp_net.a"
  "libqp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
