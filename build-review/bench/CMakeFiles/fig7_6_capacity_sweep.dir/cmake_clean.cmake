file(REMOVE_RECURSE
  "CMakeFiles/fig7_6_capacity_sweep.dir/fig7_6_capacity_sweep.cpp.o"
  "CMakeFiles/fig7_6_capacity_sweep.dir/fig7_6_capacity_sweep.cpp.o.d"
  "fig7_6_capacity_sweep"
  "fig7_6_capacity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_6_capacity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
