# Empty compiler generated dependencies file for fig7_6_capacity_sweep.
# This may be replaced when dependencies are built.
