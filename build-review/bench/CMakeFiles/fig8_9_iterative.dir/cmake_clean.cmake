file(REMOVE_RECURSE
  "CMakeFiles/fig8_9_iterative.dir/fig8_9_iterative.cpp.o"
  "CMakeFiles/fig8_9_iterative.dir/fig8_9_iterative.cpp.o.d"
  "fig8_9_iterative"
  "fig8_9_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_9_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
