# Empty compiler generated dependencies file for fig8_9_iterative.
# This may be replaced when dependencies are built.
