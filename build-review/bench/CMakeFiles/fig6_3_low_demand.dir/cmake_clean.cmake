file(REMOVE_RECURSE
  "CMakeFiles/fig6_3_low_demand.dir/fig6_3_low_demand.cpp.o"
  "CMakeFiles/fig6_3_low_demand.dir/fig6_3_low_demand.cpp.o.d"
  "fig6_3_low_demand"
  "fig6_3_low_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_3_low_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
