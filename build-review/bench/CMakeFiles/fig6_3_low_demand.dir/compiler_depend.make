# Empty compiler generated dependencies file for fig6_3_low_demand.
# This may be replaced when dependencies are built.
