file(REMOVE_RECURSE
  "CMakeFiles/bench_eval_kernels.dir/bench_eval_kernels.cpp.o"
  "CMakeFiles/bench_eval_kernels.dir/bench_eval_kernels.cpp.o.d"
  "bench_eval_kernels"
  "bench_eval_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eval_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
