# Empty dependencies file for bench_eval_kernels.
# This may be replaced when dependencies are built.
