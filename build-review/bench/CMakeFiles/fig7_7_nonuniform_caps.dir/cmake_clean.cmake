file(REMOVE_RECURSE
  "CMakeFiles/fig7_7_nonuniform_caps.dir/fig7_7_nonuniform_caps.cpp.o"
  "CMakeFiles/fig7_7_nonuniform_caps.dir/fig7_7_nonuniform_caps.cpp.o.d"
  "fig7_7_nonuniform_caps"
  "fig7_7_nonuniform_caps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_7_nonuniform_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
