# Empty dependencies file for fig7_7_nonuniform_caps.
# This may be replaced when dependencies are built.
