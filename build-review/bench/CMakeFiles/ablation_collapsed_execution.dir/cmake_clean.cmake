file(REMOVE_RECURSE
  "CMakeFiles/ablation_collapsed_execution.dir/ablation_collapsed_execution.cpp.o"
  "CMakeFiles/ablation_collapsed_execution.dir/ablation_collapsed_execution.cpp.o.d"
  "ablation_collapsed_execution"
  "ablation_collapsed_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collapsed_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
