# Empty dependencies file for ablation_collapsed_execution.
# This may be replaced when dependencies are built.
