file(REMOVE_RECURSE
  "CMakeFiles/bench_large_topology.dir/bench_large_topology.cpp.o"
  "CMakeFiles/bench_large_topology.dir/bench_large_topology.cpp.o.d"
  "bench_large_topology"
  "bench_large_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_large_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
