# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6_4_grid_demand.
