# Empty compiler generated dependencies file for fig6_4_grid_demand.
# This may be replaced when dependencies are built.
