file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_engine.dir/bench_sim_engine.cpp.o"
  "CMakeFiles/bench_sim_engine.dir/bench_sim_engine.cpp.o.d"
  "bench_sim_engine"
  "bench_sim_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
