# Empty dependencies file for bench_sim_engine.
# This may be replaced when dependencies are built.
