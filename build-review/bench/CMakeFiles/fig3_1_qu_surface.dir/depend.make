# Empty dependencies file for fig3_1_qu_surface.
# This may be replaced when dependencies are built.
