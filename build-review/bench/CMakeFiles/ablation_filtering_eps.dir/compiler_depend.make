# Empty compiler generated dependencies file for ablation_filtering_eps.
# This may be replaced when dependencies are built.
