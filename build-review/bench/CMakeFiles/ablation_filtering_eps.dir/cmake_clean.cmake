file(REMOVE_RECURSE
  "CMakeFiles/ablation_filtering_eps.dir/ablation_filtering_eps.cpp.o"
  "CMakeFiles/ablation_filtering_eps.dir/ablation_filtering_eps.cpp.o.d"
  "ablation_filtering_eps"
  "ablation_filtering_eps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_filtering_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
