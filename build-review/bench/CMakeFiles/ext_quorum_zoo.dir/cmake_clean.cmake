file(REMOVE_RECURSE
  "CMakeFiles/ext_quorum_zoo.dir/ext_quorum_zoo.cpp.o"
  "CMakeFiles/ext_quorum_zoo.dir/ext_quorum_zoo.cpp.o.d"
  "ext_quorum_zoo"
  "ext_quorum_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_quorum_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
