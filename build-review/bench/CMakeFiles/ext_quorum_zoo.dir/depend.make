# Empty dependencies file for ext_quorum_zoo.
# This may be replaced when dependencies are built.
