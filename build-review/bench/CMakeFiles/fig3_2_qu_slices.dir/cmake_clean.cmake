file(REMOVE_RECURSE
  "CMakeFiles/fig3_2_qu_slices.dir/fig3_2_qu_slices.cpp.o"
  "CMakeFiles/fig3_2_qu_slices.dir/fig3_2_qu_slices.cpp.o.d"
  "fig3_2_qu_slices"
  "fig3_2_qu_slices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_2_qu_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
