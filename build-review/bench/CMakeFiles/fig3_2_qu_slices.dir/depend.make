# Empty dependencies file for fig3_2_qu_slices.
# This may be replaced when dependencies are built.
