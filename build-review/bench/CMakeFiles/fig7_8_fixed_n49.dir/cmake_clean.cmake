file(REMOVE_RECURSE
  "CMakeFiles/fig7_8_fixed_n49.dir/fig7_8_fixed_n49.cpp.o"
  "CMakeFiles/fig7_8_fixed_n49.dir/fig7_8_fixed_n49.cpp.o.d"
  "fig7_8_fixed_n49"
  "fig7_8_fixed_n49.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_8_fixed_n49.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
