# Empty dependencies file for fig7_8_fixed_n49.
# This may be replaced when dependencies are built.
