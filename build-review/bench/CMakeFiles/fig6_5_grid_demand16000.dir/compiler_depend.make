# Empty compiler generated dependencies file for fig6_5_grid_demand16000.
# This may be replaced when dependencies are built.
