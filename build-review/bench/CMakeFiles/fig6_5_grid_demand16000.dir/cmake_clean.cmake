file(REMOVE_RECURSE
  "CMakeFiles/fig6_5_grid_demand16000.dir/fig6_5_grid_demand16000.cpp.o"
  "CMakeFiles/fig6_5_grid_demand16000.dir/fig6_5_grid_demand16000.cpp.o.d"
  "fig6_5_grid_demand16000"
  "fig6_5_grid_demand16000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_5_grid_demand16000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
