file(REMOVE_RECURSE
  "CMakeFiles/bench_all"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/bench_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
