// Figure 6.5: Grid on daxlist-161 with client_demand = 16000 — response time
// AND network delay for the closest and balanced strategies. The paper's
// headline here: the balanced response *decreases* with universe size while
// its network-delay component increases.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"

namespace {

const qp::net::LatencyMatrix& topology() {
  static const qp::net::LatencyMatrix m = qp::net::daxlist161_synth();
  return m;
}

// Timing kernel: closest-quorum selection for all 161 clients.
void BM_ClosestQuorums(benchmark::State& state) {
  const auto& m = topology();
  const auto k = static_cast<std::size_t>(state.range(0));
  const qp::quorum::GridQuorum system{k};
  const auto placement = qp::core::best_grid_placement(m, k).placement;
  for (auto _ : state) {
    auto quorums = qp::core::closest_quorums(m, system, placement);
    benchmark::DoNotOptimize(quorums);
  }
}
BENCHMARK(BM_ClosestQuorums)->Arg(6)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "# Figure 6.5: Grid on daxlist-161 (synthetic), demand = 16000\n";
  const std::vector<double> demands{16'000.0};
  // QP_POINT_SHARD (run_all.sh --points K/N) selects a slice of the
  // (side, demand) points so this expensive figure can fan out across hosts.
  const auto points = qp::eval::grid_demand_sweep(topology(), demands, 0, {},
                                                  qp::eval::point_shard_from_env());
  qp::eval::print_csv(std::cout, points);

  for (const auto& p : points) {
    qp::bench::register_point(
        "Fig6_5/" + p.strategy + "/n=" + std::to_string(p.universe),
        [p](benchmark::State& state) {
          state.counters["response_ms"] = p.response_ms;
          state.counters["network_delay_ms"] = p.network_delay_ms;
        });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
