// Ablation (§8 future work): the paper's per-element execution model charges
// a site once per hosted universe element a quorum touches; its proposed
// variant executes a request once per touching site. This bench quantifies
// how much the collapsed model would improve response time for placements
// with colocation (many-to-one / singleton), across demand levels.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/capacity.hpp"
#include "core/iterative.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "eval/figures.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"

namespace {

const qp::net::LatencyMatrix& topology() {
  static const qp::net::LatencyMatrix m = qp::net::planetlab50_synth();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qp;
  const auto& m = topology();
  const quorum::GridQuorum grid{5};

  // Three placements with increasing colocation.
  const core::Placement one_to_one = core::best_grid_placement(m, 5).placement;
  core::IterativeOptions options;
  options.anchor_candidates = eval::central_sites(m, 8);
  const core::IterativeResult iterative = core::iterative_placement(
      m, grid, core::uniform_capacities(m.size(), 0.6), /*alpha=*/0.0, options);
  const core::Placement singleton = core::singleton_placement(m, grid.universe_size());

  struct Row {
    const char* placement;
    double demand;
    double per_element_ms;
    double collapsed_ms;
  };
  std::vector<Row> rows;
  for (double demand : {1000.0, 4000.0, 16000.0}) {
    const double alpha = core::kQuWriteServiceMs * demand;
    const auto eval_pair = [&](const core::Placement& p, const char* name) {
      const auto pe =
          core::evaluate_balanced(m, grid, p, alpha, core::ExecutionModel::PerElement);
      const auto c =
          core::evaluate_balanced(m, grid, p, alpha, core::ExecutionModel::Collapsed);
      rows.push_back(Row{name, demand, pe.avg_response_ms, c.avg_response_ms});
    };
    eval_pair(one_to_one, "one-to-one");
    eval_pair(iterative.placement, "many-to-one");
    eval_pair(singleton, "singleton");
  }

  std::cout << "# Ablation: per-element vs collapsed execution (balanced strategy, "
               "Grid 5x5, Planetlab-50 synthetic)\n";
  std::cout << "placement,client_demand,per_element_response_ms,collapsed_response_ms\n";
  for (const Row& r : rows) {
    std::cout << r.placement << ',' << r.demand << ',' << r.per_element_ms << ','
              << r.collapsed_ms << '\n';
  }

  for (const Row& r : rows) {
    qp::bench::register_point(
        std::string("AblationCollapsed/") + r.placement +
            "/demand=" + std::to_string(static_cast<int>(r.demand)),
        [r](benchmark::State& state) {
          state.counters["per_element_ms"] = r.per_element_ms;
          state.counters["collapsed_ms"] = r.collapsed_ms;
        });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
