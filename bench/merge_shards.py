#!/usr/bin/env python3
"""Merge the output directories of sharded bench/run_all.sh runs.

Usage:
    bench/merge_shards.py MERGED_DIR SHARD_DIR [SHARD_DIR ...]

Each shard directory holds BENCH_<figure>.json (google-benchmark JSON) and
<figure>.csv files for the figure binaries that shard ran. Shards normally
produce disjoint figures, but the merge also handles overlapping files:

  * BENCH_*.json — "benchmarks" entries are concatenated, deduplicated by
    benchmark name (first occurrence wins); the first shard's "context" is
    kept and a warning is printed if another shard's git_sha differs (mixed
    revisions make the numbers non-comparable).
  * *.csv        — merged row-wise when the headers match: rows from later
    shards that are not already present are appended (per-point shards via
    run_all.sh --points produce disjoint row sets of one figure, and this
    union reassembles the full series). Two full runs of the same figure
    embed differing wall-clock columns; their rows are unioned too, with a
    warning, so check the data columns if an overlap was unexpected. A
    duplicate with a *different header* only warns and keeps the first.
  * OBS_*.json   — observability metric exports (run_all.sh --metrics, one
    per figure binary from the obs/metrics registry): metrics are unioned
    by name with the same order-independent semantics the registry uses to
    merge thread shards — counter values and histogram counts/buckets sum,
    gauges take the maximum over shards that set them, histogram min/max
    fold, and the p50/p95/p99 summaries are recomputed from the merged
    buckets. A name appearing with two different kinds warns and keeps the
    first.

Exit status is non-zero on malformed JSON or no inputs.
"""

import json
import math
import shutil
import sys
from pathlib import Path


def merge_json(target: Path, source: Path) -> None:
    with source.open() as fh:
        incoming = json.load(fh)
    if not target.exists():
        with target.open("w") as fh:
            json.dump(incoming, fh, indent=1)
            fh.write("\n")
        return
    with target.open() as fh:
        merged = json.load(fh)
    kept_sha = merged.get("context", {}).get("git_sha")
    incoming_sha = incoming.get("context", {}).get("git_sha")
    if kept_sha and incoming_sha and kept_sha != incoming_sha:
        print(
            f"warning: {source} git_sha {incoming_sha} differs from merged "
            f"{kept_sha}; numbers may not be comparable",
            file=sys.stderr,
        )
    seen = {b.get("name") for b in merged.get("benchmarks", [])}
    for bench in incoming.get("benchmarks", []):
        if bench.get("name") not in seen:
            merged.setdefault("benchmarks", []).append(bench)
            seen.add(bench.get("name"))
    with target.open("w") as fh:
        json.dump(merged, fh, indent=1)
        fh.write("\n")


def histogram_percentile(metric: dict, p: float) -> float:
    """Mirrors obs::HistogramSnapshot::percentile: the upper bound of the
    bucket holding rank ceil(count * p / 100), clamped to the observed max
    (bucket b's upper bound is 2^(b-21); the overflow bucket reports max)."""
    count = metric["count"]
    if count == 0:
        return 0.0
    if p <= 0.0:
        return metric["min"]
    rank = max(1, math.ceil(count * min(p, 100.0) / 100.0))
    seen = 0
    buckets = metric["buckets"]
    for b, n in enumerate(buckets):
        seen += n
        if seen >= rank:
            if b + 1 >= len(buckets):
                return metric["max"]
            return min(2.0 ** (b - 21), metric["max"])
    return metric["max"]


def merge_obs_metric(kept: dict, incoming: dict, source: Path) -> None:
    """Folds `incoming` into `kept` with the registry's shard-merge rules."""
    if kept.get("kind") != incoming.get("kind"):
        print(
            f"warning: {source}: metric {kept.get('name')!r} kind "
            f"{incoming.get('kind')} differs from merged {kept.get('kind')}; "
            f"keeping the first",
            file=sys.stderr,
        )
        return
    kind = kept.get("kind")
    if kind == "counter":
        kept["value"] += incoming["value"]
    elif kind == "gauge":
        if incoming.get("set"):
            if kept.get("set"):
                kept["value"] = max(kept["value"], incoming["value"])
            else:
                kept["set"] = True
                kept["value"] = incoming["value"]
    elif kind == "histogram":
        if incoming["count"] == 0:
            return
        if kept["count"] == 0:
            kept["min"], kept["max"] = incoming["min"], incoming["max"]
        else:
            kept["min"] = min(kept["min"], incoming["min"])
            kept["max"] = max(kept["max"], incoming["max"])
        kept["count"] += incoming["count"]
        kept["buckets"] = [a + b for a, b in zip(kept["buckets"], incoming["buckets"])]
        for key, p in (("p50", 50.0), ("p95", 95.0), ("p99", 99.0)):
            kept[key] = histogram_percentile(kept, p)


def merge_obs(target: Path, source: Path) -> None:
    with source.open() as fh:
        incoming = json.load(fh)
    if not target.exists():
        with target.open("w") as fh:
            json.dump(incoming, fh, indent=1)
            fh.write("\n")
        return
    with target.open() as fh:
        merged = json.load(fh)
    by_name = {m.get("name"): m for m in merged.get("metrics", [])}
    for metric in incoming.get("metrics", []):
        kept = by_name.get(metric.get("name"))
        if kept is None:
            merged.setdefault("metrics", []).append(metric)
            by_name[metric.get("name")] = metric
        else:
            merge_obs_metric(kept, metric, source)
    with target.open("w") as fh:
        json.dump(merged, fh, indent=1)
        fh.write("\n")


def merge_csv(target: Path, source: Path) -> None:
    if not target.exists():
        shutil.copyfile(source, target)
        return
    if target.read_bytes() == source.read_bytes():
        return
    merged_lines = target.read_text().splitlines()
    source_lines = source.read_text().splitlines()
    if not merged_lines or not source_lines or merged_lines[0] != source_lines[0]:
        print(
            f"warning: {source} header differs from already-merged "
            f"{target.name}; keeping the first",
            file=sys.stderr,
        )
        return
    # Same figure, different rows: a per-point shard (disjoint rows) or a
    # re-run (rows differing only in wall-clock columns). Union the rows in
    # first-seen order; warn so overlapping re-runs are noticed.
    seen = set(merged_lines)
    appended = [line for line in source_lines[1:] if line not in seen]
    if appended:
        print(
            f"note: appending {len(appended)} row(s) from {source} to "
            f"{target.name} (point-sharded figure or re-run; check the data "
            f"columns if an overlap was unexpected)",
            file=sys.stderr,
        )
        with target.open("a") as fh:
            for line in appended:
                fh.write(line + "\n")


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    merged_dir = Path(argv[1])
    merged_dir.mkdir(parents=True, exist_ok=True)
    merged_files = 0
    for shard in map(Path, argv[2:]):
        if not shard.is_dir():
            raise SystemExit(f"error: shard directory {shard} does not exist")
        for source in sorted(shard.glob("BENCH_*.json")):
            merge_json(merged_dir / source.name, source)
            merged_files += 1
        for source in sorted(shard.glob("OBS_*.json")):
            merge_obs(merged_dir / source.name, source)
        for source in sorted(shard.glob("*.csv")):
            merge_csv(merged_dir / source.name, source)
    if merged_files == 0:
        raise SystemExit("error: no BENCH_*.json files found in the shard dirs")
    print(f"Merged {merged_files} JSON files into {merged_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
