// Figure 7.8: the 7x7 Grid on Planetlab-50 at demand = 16000 — response time
// vs capacity level for uniform and non-uniform capacities, at fixed n = 49.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"

namespace {

const qp::net::LatencyMatrix& topology() {
  static const qp::net::LatencyMatrix m = qp::net::planetlab50_synth();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "# Figure 7.8: 7x7 Grid on Planetlab-50 (synthetic), demand = 16000\n";
  qp::eval::CapacitySweepConfig config;
  config.min_side = 7;
  config.max_side = 7;
  config.include_nonuniform = true;
  config.shard = qp::eval::point_shard_from_env();  // run_all.sh --points K/N.
  const auto points = qp::eval::capacity_sweep(topology(), config);
  qp::eval::print_csv(std::cout, points);

  for (const auto& p : points) {
    char level[32];
    std::snprintf(level, sizeof level, "%.3f", p.capacity_level);
    qp::bench::register_point(
        std::string("Fig7_8/") + (p.nonuniform ? "nonuniform" : "uniform") + "/cap=" + level,
        [p](benchmark::State& state) {
          state.counters["response_ms"] = p.response_ms;
          state.counters["network_delay_ms"] = p.network_delay_ms;
        });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
