// Evaluation-kernel benchmark: quantifies the three layers of the
// allocation-free evaluation subsystem on the paper's n=49 configurations
// (Grid 7x7 and Majority 25/49) over a 200-client topology:
//   * naive objective        — the seed code path: per-client allocation +
//                              copy + sort (+ lgamma-based CDF before the
//                              weight cache) per evaluation;
//   * workspace objective    — flat reusable buffers + cached order-stat
//                              weights (average_uniform_network_delay_ws);
//   * delta candidate        — DeltaEvaluator::objective_if_moved, O(log n)
//                              or O(k) per client instead of a full rebuild;
//   * local search           — naive vs delta engines end-to-end, plus the
//                              parallel neighborhood scan.
// The headline counter is speedup_vs_naive for delta local search, which the
// acceptance criteria pin at >= 5x.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/delta_eval.hpp"
#include "core/eval_workspace.hpp"
#include "core/local_search.hpp"
#include "core/placement.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"

namespace {

using namespace qp;

/// The seed's objective implementation: public allocating kernels per client.
double naive_objective(const net::LatencyMatrix& matrix,
                       const quorum::QuorumSystem& system,
                       const core::Placement& placement) {
  double total = 0.0;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    const std::vector<double> values = core::element_distances(matrix, placement, v);
    total += system.expected_max_uniform(values);
  }
  return total / static_cast<double>(matrix.size());
}

struct Config {
  std::string label;
  const quorum::QuorumSystem* system;
  core::Placement placement;
};

double time_local_search_ms(const net::LatencyMatrix& matrix,
                            const quorum::QuorumSystem& system,
                            const core::Placement& initial,
                            const core::LocalSearchOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const core::LocalSearchResult result =
      core::local_search_placement(matrix, system, initial, options);
  benchmark::DoNotOptimize(result.objective);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const net::LatencyMatrix matrix = net::small_synth(200, 2007);
  const quorum::GridQuorum grid{7};
  const quorum::MajorityQuorum majority{49, 25};

  common::Rng rng{2007};
  std::vector<Config> configs;
  configs.push_back(Config{"grid49", &grid,
                           core::Placement{rng.sample_without_replacement(matrix.size(), 49)}});
  configs.push_back(Config{"maj49", &majority,
                           core::Placement{rng.sample_without_replacement(matrix.size(), 49)}});

  // --- Headline comparison: naive vs delta local search, identical rounds.
  // Two rounds bound the naive runtime while exercising a full neighborhood
  // scan per round (49 elements x 151 free sites x 200 clients).
  core::LocalSearchOptions naive_options;
  naive_options.engine = core::LocalSearchEngine::Naive;
  naive_options.max_rounds = 2;
  core::LocalSearchOptions delta_options;
  delta_options.engine = core::LocalSearchEngine::Delta;
  delta_options.threads = 1;
  delta_options.max_rounds = 2;
  core::LocalSearchOptions parallel_options = delta_options;
  parallel_options.threads = 0;  // Shared pool (QP_THREADS / hardware).

  struct Row {
    std::string config;
    double naive_ms;
    double delta_ms;
    double parallel_ms;
    double speedup;
  };
  std::vector<Row> rows;
  for (const Config& config : configs) {
    const double naive_ms =
        time_local_search_ms(matrix, *config.system, config.placement, naive_options);
    const double delta_ms =
        time_local_search_ms(matrix, *config.system, config.placement, delta_options);
    const double parallel_ms =
        time_local_search_ms(matrix, *config.system, config.placement, parallel_options);
    rows.push_back(Row{config.label, naive_ms, delta_ms, parallel_ms,
                       naive_ms / delta_ms});
  }

  std::cout << "# Evaluation kernels: naive vs workspace vs delta (200 clients, n=49)\n"
            << "config,naive_search_ms,delta_search_ms,parallel_search_ms,speedup_vs_naive\n";
  for (const Row& row : rows) {
    std::cout << row.config << ',' << row.naive_ms << ',' << row.delta_ms << ','
              << row.parallel_ms << ',' << row.speedup << '\n';
  }

  for (const Row& row : rows) {
    qp::bench::register_point(
        "EvalKernels/local_search_speedup/" + row.config, [row](benchmark::State& state) {
          state.counters["naive_ms"] = row.naive_ms;
          state.counters["delta_ms"] = row.delta_ms;
          state.counters["parallel_ms"] = row.parallel_ms;
          state.counters["speedup_vs_naive"] = row.speedup;
        });
  }

  // --- Genuine timing benchmarks of the individual kernels.
  for (const Config& config : configs) {
    benchmark::RegisterBenchmark(
        ("EvalKernels/objective_naive/" + config.label).c_str(),
        [&matrix, &config](benchmark::State& state) {
          for (auto _ : state) {
            benchmark::DoNotOptimize(
                naive_objective(matrix, *config.system, config.placement));
          }
        });
    benchmark::RegisterBenchmark(
        ("EvalKernels/objective_workspace/" + config.label).c_str(),
        [&matrix, &config](benchmark::State& state) {
          core::EvalWorkspace workspace;
          for (auto _ : state) {
            benchmark::DoNotOptimize(core::average_uniform_network_delay_ws(
                matrix, *config.system, config.placement, workspace));
          }
        });
    benchmark::RegisterBenchmark(
        ("EvalKernels/delta_candidate/" + config.label).c_str(),
        [&matrix, &config](benchmark::State& state) {
          const core::DeltaEvaluator eval{matrix, *config.system, config.placement};
          std::size_t site = 0;
          std::size_t element = 0;
          for (auto _ : state) {
            site = (site + 1) % matrix.size();
            element = (element + 1) % config.placement.universe_size();
            benchmark::DoNotOptimize(eval.objective_if_moved(element, site));
          }
        });
  }

  return qp::bench::run_benchmarks(argc, argv);
}
