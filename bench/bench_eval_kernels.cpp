// Evaluation-kernel benchmark: quantifies the layers of the allocation-free
// evaluation subsystem on the paper's n=49 configurations (Grid 7x7 and
// Majority 25/49) over a 200-client topology:
//   * naive objective        — the seed code path: per-client allocation +
//                              copy + sort (+ lgamma-based CDF before the
//                              weight cache) per evaluation;
//   * workspace objective    — flat reusable buffers + cached order-stat
//                              weights (average_uniform_network_delay_ws);
//   * delta candidate        — DeltaEvaluator::objective_if_moved, O(log n)
//                              or O(k) per client instead of a full rebuild;
//   * local search           — naive vs delta engines end-to-end, for the
//                              network-delay (alpha = 0), load-aware
//                              (alpha > 0), and §6 closest-strategy
//                              objectives (uniform and demand-weighted),
//                              plus the parallel neighborhood scan and the
//                              first-improvement accept strategy;
//   * fill kernels           — the fill_element_distances gather, scalar on
//                              baseline x86-64 and vpgatherqpd under
//                              ENABLE_AVX2 (the avx2 counter records which
//                              variant this binary is);
//   * simd kernels           — the common/simd_kernels.hpp reductions every
//                              per-client evaluation bottoms out in.
// The headline counters are speedup_vs_naive for delta local search, which
// the acceptance criteria pin at >= 5x for alpha = 0, alpha > 0, AND the
// closest-strategy objective.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/simd_kernels.hpp"
#include "core/client_index.hpp"
#include "core/delta_eval.hpp"
#include "core/eval_workspace.hpp"
#include "core/local_search.hpp"
#include "core/objective.hpp"
#include "core/placement.hpp"
#include "net/knn_index.hpp"
#include "net/synthetic.hpp"
#include "obs/metrics.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace qp;

/// The seed's objective implementation: public allocating kernels per client.
double naive_objective(const net::LatencyMatrix& matrix,
                       const quorum::QuorumSystem& system,
                       const core::Placement& placement) {
  double total = 0.0;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    const std::vector<double> values = core::element_distances(matrix, placement, v);
    total += system.expected_max_uniform(values);
  }
  return total / static_cast<double>(matrix.size());
}

struct Config {
  std::string label;
  const quorum::QuorumSystem* system;
  core::Placement placement;
};

double time_local_search_ms(const net::LatencyMatrix& matrix,
                            const quorum::QuorumSystem& system,
                            const core::Placement& initial,
                            const core::LocalSearchOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const core::LocalSearchResult result =
      core::local_search_placement(matrix, system, initial, options);
  benchmark::DoNotOptimize(result.objective);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const net::LatencyMatrix matrix = net::small_synth(200, 2007);
  const quorum::GridQuorum grid{7};
  const quorum::MajorityQuorum majority{49, 25};

  common::Rng rng{2007};
  std::vector<Config> configs;
  configs.push_back(Config{"grid49", &grid,
                           core::Placement{rng.sample_without_replacement(matrix.size(), 49)}});
  configs.push_back(Config{"maj49", &majority,
                           core::Placement{rng.sample_without_replacement(matrix.size(), 49)}});

  // --- Headline comparison: naive vs delta local search, identical rounds,
  // across the objective zoo. Two rounds bound the naive runtime while
  // exercising a full neighborhood scan per round (49 elements x 151 free
  // sites x 200 clients). alpha = 0.007 * 4000 matches the §7 mid-demand
  // level; the closest rows add the §6 argmin-quorum objective, uniform and
  // Pareto-demand-weighted.
  const core::LoadAwareObjective load_aware = core::LoadAwareObjective::for_demand(4000.0);
  const core::ClosestStrategyObjective closest = core::ClosestStrategyObjective::for_demand(4000.0);
  std::vector<double> pareto_demand(matrix.size());
  {
    common::Rng demand_rng{2026};
    for (double& d : pareto_demand) {
      d = 4000.0 * std::pow(1.0 - demand_rng.uniform(), -1.0 / 1.6);
    }
  }
  const core::ClosestStrategyObjective closest_weighted =
      core::ClosestStrategyObjective::for_demand(std::span<const double>{pareto_demand});
  core::LocalSearchOptions naive_options;
  naive_options.engine = core::LocalSearchEngine::Naive;
  naive_options.max_rounds = 2;
  core::LocalSearchOptions delta_options;
  delta_options.engine = core::LocalSearchEngine::Delta;
  delta_options.threads = 1;
  delta_options.max_rounds = 2;
  core::LocalSearchOptions parallel_options = delta_options;
  parallel_options.threads = 0;  // Shared pool (QP_THREADS / hardware).

  struct Row {
    std::string config;
    std::string objective;
    double naive_ms;
    double delta_ms;
    double parallel_ms;
    double speedup;
  };
  const std::vector<std::pair<std::string, const core::Objective*>> objectives{
      {"alpha0", &core::network_delay_objective()},
      {"load_aware", &load_aware},
      {"closest", &closest},
      {"closest_weighted", &closest_weighted},
  };
  std::vector<Row> rows;
  for (const Config& config : configs) {
    for (const auto& [label, objective] : objectives) {
      core::LocalSearchOptions naive_obj = naive_options;
      core::LocalSearchOptions delta_obj = delta_options;
      core::LocalSearchOptions parallel_obj = parallel_options;
      naive_obj.objective = delta_obj.objective = parallel_obj.objective = objective;
      const double naive_ms =
          time_local_search_ms(matrix, *config.system, config.placement, naive_obj);
      const double delta_ms =
          time_local_search_ms(matrix, *config.system, config.placement, delta_obj);
      const double parallel_ms =
          time_local_search_ms(matrix, *config.system, config.placement, parallel_obj);
      rows.push_back(Row{config.label, label, naive_ms, delta_ms, parallel_ms,
                         naive_ms / delta_ms});
    }
  }

  std::cout << "# Evaluation kernels: naive vs workspace vs delta (200 clients, n=49)\n"
            << "config,objective,naive_search_ms,delta_search_ms,parallel_search_ms,"
               "speedup_vs_naive\n";
  for (const Row& row : rows) {
    std::cout << row.config << ',' << row.objective << ',' << row.naive_ms << ','
              << row.delta_ms << ',' << row.parallel_ms << ',' << row.speedup << '\n';
  }

  for (const Row& row : rows) {
    qp::bench::register_point(
        "EvalKernels/local_search_speedup/" + row.config + "/" + row.objective,
        [row](benchmark::State& state) {
          state.counters["naive_ms"] = row.naive_ms;
          state.counters["delta_ms"] = row.delta_ms;
          state.counters["parallel_ms"] = row.parallel_ms;
          state.counters["speedup_vs_naive"] = row.speedup;
        });
  }

  // --- Accept strategies: best- vs first-improvement to a full local
  // optimum (delta engine, serial scan, network-delay objective).
  struct StrategyRow {
    std::string config;
    double best_ms;
    double first_ms;
    std::size_t best_moves;
    std::size_t first_moves;
  };
  std::vector<StrategyRow> strategy_rows;
  for (const Config& config : configs) {
    core::LocalSearchOptions best;
    best.threads = 1;
    best.max_rounds = 1000;  // Both strategies run to a genuine local optimum.
    core::LocalSearchOptions first = best;
    first.strategy = core::LocalSearchStrategy::FirstImprovement;
    const auto best_start = std::chrono::steady_clock::now();
    const core::LocalSearchResult best_result =
        core::local_search_placement(matrix, *config.system, config.placement, best);
    const double best_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - best_start)
                               .count();
    const auto first_start = std::chrono::steady_clock::now();
    const core::LocalSearchResult first_result =
        core::local_search_placement(matrix, *config.system, config.placement, first);
    const double first_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - first_start)
                                .count();
    strategy_rows.push_back(StrategyRow{config.label, best_ms, first_ms,
                                        best_result.moves, first_result.moves});
  }

  std::cout << "# Accept strategies: best vs first improvement (delta engine)\n"
            << "config,best_ms,first_ms,best_moves,first_moves\n";
  for (const StrategyRow& row : strategy_rows) {
    std::cout << row.config << ',' << row.best_ms << ',' << row.first_ms << ','
              << row.best_moves << ',' << row.first_moves << '\n';
  }
  for (const StrategyRow& row : strategy_rows) {
    qp::bench::register_point(
        "EvalKernels/accept_strategy/" + row.config, [row](benchmark::State& state) {
          state.counters["best_ms"] = row.best_ms;
          state.counters["first_ms"] = row.first_ms;
          state.counters["best_moves"] = static_cast<double>(row.best_moves);
          state.counters["first_moves"] = static_cast<double>(row.first_moves);
        });
  }

  // --- Observability overhead guard: the instrumented delta local search
  // with obs metrics recording ON vs OFF (runtime toggle; the binary
  // compiles the instrumentation in either way), best-of-5 alternating runs
  // so one scheduler hiccup cannot fake a regression either direction. The
  // hot-loop contract is batch tallying — a handful of shard stores per
  // candidate/round, never per client — and CI pins overhead_pct <= 3 on
  // this row. Results are bitwise identical on/off (tests/obs_test.cpp).
  {
    core::LocalSearchOptions options;
    options.threads = 0;  // Shared pool: thread_pool instrumentation included.
    options.max_rounds = 2;
    const bool was_enabled = qp::obs::enabled();
    double on_ms = std::numeric_limits<double>::infinity();
    double off_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 5; ++rep) {
      qp::obs::set_enabled(true);
      on_ms = std::min(
          on_ms, time_local_search_ms(matrix, grid, configs[0].placement, options));
      qp::obs::set_enabled(false);
      off_ms = std::min(
          off_ms, time_local_search_ms(matrix, grid, configs[0].placement, options));
    }
    qp::obs::set_enabled(was_enabled);
    const double overhead_pct = 100.0 * (on_ms - off_ms) / off_ms;
    std::cout << "# Observability overhead: instrumented local search, obs on vs off\n"
              << "on_ms,off_ms,overhead_pct\n"
              << on_ms << ',' << off_ms << ',' << overhead_pct << '\n';
    qp::bench::register_point("EvalKernels/obs_overhead/local_search",
                              [on_ms, off_ms, overhead_pct](benchmark::State& state) {
                                state.counters["on_ms"] = on_ms;
                                state.counters["off_ms"] = off_ms;
                                state.counters["overhead_pct"] = overhead_pct;
                              });
  }

  // --- Genuine timing benchmarks of the individual kernels.
  for (const Config& config : configs) {
    benchmark::RegisterBenchmark(
        ("EvalKernels/objective_naive/" + config.label).c_str(),
        [&matrix, &config](benchmark::State& state) {
          for (auto _ : state) {
            benchmark::DoNotOptimize(
                naive_objective(matrix, *config.system, config.placement));
          }
        });
    benchmark::RegisterBenchmark(
        ("EvalKernels/objective_workspace/" + config.label).c_str(),
        [&matrix, &config](benchmark::State& state) {
          core::EvalWorkspace workspace;
          for (auto _ : state) {
            benchmark::DoNotOptimize(core::average_uniform_network_delay_ws(
                matrix, *config.system, config.placement, workspace));
          }
        });
    benchmark::RegisterBenchmark(
        ("EvalKernels/delta_candidate/" + config.label).c_str(),
        [&matrix, &config](benchmark::State& state) {
          const core::DeltaEvaluator eval{matrix, *config.system, config.placement};
          std::size_t site = 0;
          std::size_t element = 0;
          for (auto _ : state) {
            site = (site + 1) % matrix.size();
            element = (element + 1) % config.placement.universe_size();
            benchmark::DoNotOptimize(eval.objective_if_moved(element, site));
          }
        });
    benchmark::RegisterBenchmark(
        ("EvalKernels/delta_candidate_load_aware/" + config.label).c_str(),
        [&matrix, &config, &load_aware](benchmark::State& state) {
          const core::DeltaEvaluator eval{matrix, *config.system, config.placement,
                                          load_aware};
          std::size_t site = 0;
          std::size_t element = 0;
          for (auto _ : state) {
            site = (site + 1) % matrix.size();
            element = (element + 1) % config.placement.universe_size();
            benchmark::DoNotOptimize(eval.objective_if_moved(element, site));
          }
        });
    benchmark::RegisterBenchmark(
        ("EvalKernels/delta_candidate_closest/" + config.label).c_str(),
        [&matrix, &config, &closest](benchmark::State& state) {
          const core::DeltaEvaluator eval{matrix, *config.system, config.placement,
                                          closest};
          std::size_t site = 0;
          std::size_t element = 0;
          for (auto _ : state) {
            site = (site + 1) % matrix.size();
            element = (element + 1) % config.placement.universe_size();
            benchmark::DoNotOptimize(eval.objective_if_moved(element, site));
          }
        });
  }

  // --- The closest-strategy candidate-scan hotspot, before/after: on
  // synthetic-500, objective_if_moved repriced every client's chosen quorum
  // per candidate (~68us). Attaching the ClientCandidateIndex routes the
  // candidate through the site->clients inverted lists instead, touching
  // only the clients whose choice the move can flip or whose loads it
  // shifts — and classifies each with the O(k) grid-argmin reconstruction,
  // so a list client whose winning cell is unchanged costs a handful of
  // min/max selections instead of the k*k rescan. The "after" row is the
  // capped-64 production configuration the 10k-50k searches run (~39us vs
  // ~60us scan); the genuine win is still asymptotic, per-move cost k*O(n)
  // instead of O(n^2) — bench_large_topology's scaling table is the
  // figure. The _exact row is the uncapped parity mode (audited against
  // the full scan at level 2): its coverage lists are nearly dense at
  // n=500, yet the pruned classification keeps it under the scan (~47us).
  {
    auto scenario = std::make_shared<sim::Scenario>(sim::synthetic500_scenario());
    auto grid500 = std::make_shared<quorum::GridQuorum>(7);
    auto closest500 =
        std::make_shared<core::ClosestStrategyObjective>(scenario->closest_objective());
    auto placement500 = std::make_shared<core::Placement>(
        core::best_grid_placement(scenario->matrix, 7).placement);
    benchmark::RegisterBenchmark(
        "EvalKernels/closest_candidate_scan/synth500",
        [scenario, grid500, closest500, placement500](benchmark::State& state) {
          const core::DeltaEvaluator eval{scenario->matrix, *grid500, *placement500,
                                          *closest500};
          std::size_t site = 0;
          std::size_t element = 0;
          for (auto _ : state) {
            site = (site + 1) % scenario->matrix.size();
            element = (element + 1) % placement500->universe_size();
            benchmark::DoNotOptimize(eval.objective_if_moved(element, site));
          }
        });
    for (const std::size_t cap : {std::size_t{64}, std::size_t{0}}) {
      const std::string name = cap == 0 ? "EvalKernels/closest_candidate_indexed_exact/synth500"
                                        : "EvalKernels/closest_candidate_indexed/synth500";
      benchmark::RegisterBenchmark(
          name.c_str(),
          [scenario, grid500, closest500, placement500, cap](benchmark::State& state) {
            core::DeltaEvaluator eval{scenario->matrix, *grid500, *placement500,
                                      *closest500};
            const net::KnnIndex knn{scenario->matrix};
            core::ClientCandidateIndex::Config config;
            config.cap = cap;
            const core::ClientCandidateIndex index = core::ClientCandidateIndex::build(
                scenario->matrix, &knn, eval.best_values(), config);
            eval.attach_candidate_index(&index);
            std::size_t site = 0;
            std::size_t element = 0;
            for (auto _ : state) {
              site = (site + 1) % scenario->matrix.size();
              element = (element + 1) % placement500->universe_size();
              benchmark::DoNotOptimize(eval.objective_if_moved(element, site));
            }
          });
    }
  }

  // --- Client-index rebuild schedule, before/after: the exact-mode lists
  // above are built from the INITIAL placement's m1 radii and the old
  // search kept them for the whole run. As the search moves, per-client m1
  // drifts both ways: clients whose radius shrank carry needlessly dense
  // lists, and clients whose radius outgrew their coverage fall into the
  // always-rechecked overflow set. The schedule rebuilds the lists from
  // the current radii every client_index_rebuild accepted moves, keeping
  // lists as tight as the current placement allows and the overflow set
  // empty. Rows, all on the same locally-improved placement: the dense
  // scan, the stale initial-radii lists (before), and lists rebuilt from
  // the current radii (after) — the after row is what the scheduled search
  // actually evaluates candidates with.
  {
    auto scenario = std::make_shared<sim::Scenario>(sim::synthetic500_scenario());
    auto grid500 = std::make_shared<quorum::GridQuorum>(7);
    auto closest500 =
        std::make_shared<core::ClosestStrategyObjective>(scenario->closest_objective());
    auto initial500 = std::make_shared<core::Placement>(
        core::best_grid_placement(scenario->matrix, 7).placement);
    core::LocalSearchOptions tighten;
    tighten.objective = closest500.get();
    tighten.threads = 1;
    tighten.strategy = core::LocalSearchStrategy::FirstImprovement;
    tighten.max_rounds = 60;
    auto tightened = std::make_shared<core::Placement>(
        core::local_search_placement(scenario->matrix, *grid500, *initial500, tighten)
            .placement);
    const auto register_candidate_row = [&](const std::string& name, bool stale_radii,
                                            bool indexed) {
      benchmark::RegisterBenchmark(
          name.c_str(), [scenario, grid500, closest500, initial500, tightened,
                         stale_radii, indexed](benchmark::State& state) {
            core::DeltaEvaluator eval{scenario->matrix, *grid500, *tightened,
                                      *closest500};
            const net::KnnIndex knn{scenario->matrix};
            std::optional<core::ClientCandidateIndex> index;
            if (indexed) {
              // Stale = the initial placement's radii (what the search held
              // before the schedule); fresh = the tightened placement's.
              const core::DeltaEvaluator initial_eval{scenario->matrix, *grid500,
                                                      *initial500, *closest500};
              index = core::ClientCandidateIndex::build(
                  scenario->matrix, &knn,
                  stale_radii ? initial_eval.best_values() : eval.best_values(), {});
              eval.attach_candidate_index(&*index);
            }
            std::size_t site = 0;
            std::size_t element = 0;
            for (auto _ : state) {
              site = (site + 1) % scenario->matrix.size();
              element = (element + 1) % tightened->universe_size();
              benchmark::DoNotOptimize(eval.objective_if_moved(element, site));
            }
          });
    };
    register_candidate_row("EvalKernels/closest_localopt_scan/synth500", false, false);
    register_candidate_row("EvalKernels/closest_localopt_exact_stale/synth500", true,
                           true);
    register_candidate_row("EvalKernels/closest_localopt_exact_rebuilt/synth500", false,
                           true);
  }

  // --- The fill_element_distances gather (scalar on baseline x86-64,
  // 4-lane vpgatherqpd under ENABLE_AVX2, 8-lane masked under
  // ENABLE_AVX512). The avx2/avx512 counters record the variant, so the
  // builds' rows land side by side after merge_shards.py. n = 49 is
  // the paper's largest universe; n = 2048 is a many-to-one stress shape.
  for (const std::size_t universe : {std::size_t{49}, std::size_t{2048}}) {
    common::Rng gather_rng{universe};
    core::Placement placement;
    placement.site_of.resize(universe);
    for (std::size_t u = 0; u < universe; ++u) {
      placement.site_of[u] = static_cast<std::size_t>(gather_rng.below(matrix.size()));
    }
    benchmark::RegisterBenchmark(
        ("EvalKernels/fill_element_distances/n=" + std::to_string(universe)).c_str(),
        [&matrix, placement](benchmark::State& state) {
          std::vector<double> out;
          std::size_t client = 0;
          for (auto _ : state) {
            client = (client + 1) % matrix.size();
            core::fill_element_distances(matrix, placement, client, out);
            benchmark::DoNotOptimize(out.data());
          }
#if defined(__AVX2__)
          state.counters["avx2"] = 1.0;
#else
          state.counters["avx2"] = 0.0;
#endif
#if defined(__AVX512F__)
          state.counters["avx512"] = 1.0;
#else
          state.counters["avx512"] = 0.0;
#endif
        });
  }

  // --- The vectorized reduction kernels the evaluations bottom out in.
  {
    common::Rng kernel_rng{11};
    auto values = std::make_shared<std::vector<double>>(4096);
    auto weights = std::make_shared<std::vector<double>>(4096);
    for (double& x : *values) x = kernel_rng.uniform();
    for (double& x : *weights) x = kernel_rng.uniform();
    benchmark::RegisterBenchmark(
        "EvalKernels/simd_max_reduce/4096", [values](benchmark::State& state) {
          for (auto _ : state) {
            benchmark::DoNotOptimize(common::max_reduce(*values));
          }
        });
    benchmark::RegisterBenchmark(
        "EvalKernels/simd_weighted_dot/4096",
        [values, weights](benchmark::State& state) {
          for (auto _ : state) {
            benchmark::DoNotOptimize(common::weighted_dot(*values, *weights));
          }
        });
  }

  return qp::bench::run_benchmarks(argc, argv);
}
