// Figure 3.2: two slices of the Q/U surface —
//   (a) 100 clients, varying the fault threshold t (universe n = 5t+1);
//   (b) t = 4 (n = 21), varying the number of clients 10..110.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"

namespace {

const qp::net::LatencyMatrix& topology() {
  static const qp::net::LatencyMatrix m = qp::net::planetlab50_synth();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  // Slice (a): clients fixed at 100, t = 1..5.
  std::cout << "# Figure 3.2a: 100 clients, t = 1..5\n";
  qp::eval::QuSweepConfig slice_a;
  slice_a.client_counts = {100};
  slice_a.duration_ms = 10'000.0;
  slice_a.warmup_ms = 2'000.0;
  slice_a.per_message_cpu_ms = 0.3;  // See fig3_1_qu_surface.cpp.
  const auto points_a = qp::eval::qu_response_surface(topology(), slice_a);
  qp::eval::print_csv(std::cout, points_a);

  // Slice (b): t = 4, clients 10..110.
  std::cout << "# Figure 3.2b: t = 4 (n = 21), clients 10..110\n";
  qp::eval::QuSweepConfig slice_b;
  slice_b.t_values = {4};
  slice_b.client_counts = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110};
  slice_b.duration_ms = 10'000.0;
  slice_b.warmup_ms = 2'000.0;
  slice_b.per_message_cpu_ms = 0.3;
  const auto points_b = qp::eval::qu_response_surface(topology(), slice_b);
  qp::eval::print_csv(std::cout, points_b);

  for (const auto& p : points_a) {
    qp::bench::register_point("Fig3_2a/t=" + std::to_string(p.t),
                              [p](benchmark::State& state) {
                                state.counters["response_ms"] = p.response_ms;
                                state.counters["network_delay_ms"] = p.network_delay_ms;
                              });
  }
  for (const auto& p : points_b) {
    qp::bench::register_point("Fig3_2b/clients=" + std::to_string(p.clients),
                              [p](benchmark::State& state) {
                                state.counters["response_ms"] = p.response_ms;
                                state.counters["network_delay_ms"] = p.network_delay_ms;
                              });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
