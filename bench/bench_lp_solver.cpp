// bench_lp_solver: the strategy-LP solver stack (ISSUE 9) on the phase-LP
// sequences the capacity sweep and the iterative alternation actually solve
// — one placement, a descending ladder of capacity levels over the same
// support set, each level warm-startable from the previous optimal basis.
//
// Rows per topology size n (grid 7x7 universe, best-grid placement):
//   LpSolver/phase_ladder_cold_dense/nN    — historical tableau simplex,
//                                            every level from scratch
//                                            (skipped at n=2000: the dense
//                                            tableau alone is ~1.6 GB);
//   LpSolver/phase_ladder_cold_revised/nN  — sparse revised simplex, every
//                                            level from scratch;
//   LpSolver/phase_ladder_warm_revised/nN  — sparse revised simplex, each
//                                            level warm-started from the
//                                            previous level's basis.
// Counters: ms_total over the ladder, simplex iterations summed, max
// relative objective disagreement vs the dense reference (<= 1e-9 on every
// config the reference can afford), and speedup vs the cold dense row.
// The ladder starts at the uncapacitated optimum's peak site load and
// tightens in 4% steps while the LP stays feasible, so the capacity rows
// genuinely bind (the transportation specialization is the separate
// uncapacitated fast path and is pinned by tests, not timed here).
//
// Genuine timing benchmarks (per-iteration, benchmark-looped):
//   LpSolver/warm_resolve/n161|n500        — one warm re-solve at the
//                                            tightest feasible level;
//   LpSolver/cold_revised_solve/n161       — the same solve from scratch.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstddef>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "lp/revised_simplex.hpp"
#include "net/latency_matrix.hpp"
#include "quorum/grid.hpp"
#include "sim/scenario.hpp"

namespace {

using qp::core::StrategyLpOptions;
using qp::core::StrategyLpResult;
using qp::core::StrategyLpSolver;

struct LadderResult {
  double ms_total = 0.0;
  std::size_t iterations = 0;
  std::vector<double> objectives;  // One per solved level.
};

/// Solves the whole capacity ladder with one engine, optionally chaining
/// each level's optimal basis into the next solve.
LadderResult run_ladder(const qp::net::LatencyMatrix& matrix,
                        const qp::quorum::QuorumSystem& system,
                        const qp::core::Placement& placement,
                        const std::vector<std::vector<double>>& ladder,
                        StrategyLpSolver solver, bool warm) {
  LadderResult out;
  qp::lp::Basis basis;
  const auto start = std::chrono::steady_clock::now();
  for (const std::vector<double>& caps : ladder) {
    StrategyLpOptions options;
    options.solver = solver;
    if (warm) options.simplex.initial_basis = basis;
    const StrategyLpResult lp =
        qp::core::optimize_access_strategy(matrix, system, placement, caps, options);
    if (lp.status != qp::lp::SolveStatus::Optimal) {
      throw std::runtime_error{"bench_lp_solver: ladder level not optimal"};
    }
    out.iterations += lp.lp_iterations;
    out.objectives.push_back(lp.avg_network_delay);
    if (warm) basis = lp.basis;
  }
  const auto stop = std::chrono::steady_clock::now();
  out.ms_total = std::chrono::duration<double, std::milli>(stop - start).count();
  return out;
}

double max_rel_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    worst = std::max(worst,
                     std::abs(a[i] - b[i]) / std::max(1.0, std::abs(b[i])));
  }
  return worst;
}

struct SizedCase {
  std::string label;
  std::shared_ptr<qp::net::LatencyMatrix> matrix;
  std::shared_ptr<qp::core::Placement> placement;
  std::shared_ptr<std::vector<std::vector<double>>> ladder;
  bool dense_affordable = true;
};

SizedCase make_case(qp::sim::Scenario scenario, const qp::quorum::QuorumSystem& system,
                    bool dense_affordable) {
  SizedCase out;
  const std::size_t n = scenario.site_count();
  out.label = "n" + std::to_string(n);
  out.matrix = std::make_shared<qp::net::LatencyMatrix>(std::move(scenario.matrix));
  out.placement = std::make_shared<qp::core::Placement>(
      qp::core::best_grid_placement(*out.matrix, 7).placement);
  out.dense_affordable = dense_affordable;

  // Uncapacitated optimum -> peak site load L; ladder = fractions of L that
  // stay feasible. Infeasible levels end the ladder (every engine solves
  // the identical level list).
  const std::vector<double> loose(n, 1e9);
  const StrategyLpResult free_lp =
      qp::core::optimize_access_strategy(*out.matrix, system, *out.placement, loose);
  if (free_lp.status != qp::lp::SolveStatus::Optimal) {
    throw std::runtime_error{"bench_lp_solver: uncapacitated solve failed"};
  }
  const std::vector<double> load = qp::core::site_loads_explicit(
      free_lp.strategy, *out.placement, n);
  double peak = 0.0;
  for (double l : load) peak = std::max(peak, l);

  out.ladder = std::make_shared<std::vector<std::vector<double>>>();
  for (double fraction : {1.00, 0.96, 0.92, 0.88, 0.84, 0.80}) {
    std::vector<double> caps(n, fraction * peak);
    StrategyLpOptions probe;
    probe.solver = StrategyLpSolver::Revised;
    const StrategyLpResult lp = qp::core::optimize_access_strategy(
        *out.matrix, system, *out.placement, caps, probe);
    if (lp.status != qp::lp::SolveStatus::Optimal) break;
    out.ladder->push_back(std::move(caps));
  }
  if (out.ladder->empty()) {
    throw std::runtime_error{"bench_lp_solver: no feasible ladder level"};
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto grid = std::make_shared<qp::quorum::GridQuorum>(7);

  std::vector<SizedCase> cases;
  {
    qp::sim::ScenarioConfig small;
    small.site_count = 49;
    cases.push_back(make_case(qp::sim::make_scenario(small), *grid, true));
  }
  cases.push_back(make_case(qp::sim::daxlist161_scenario(), *grid, true));
  cases.push_back(make_case(qp::sim::synthetic500_scenario(), *grid, true));
  {
    qp::sim::ScenarioConfig large;
    large.site_count = 2000;
    cases.push_back(make_case(qp::sim::make_scenario(large), *grid, false));
  }

  std::cout << "case,engine,levels,ms_total,iterations,max_rel_diff,speedup_vs_cold_dense\n";
  for (const SizedCase& sized : cases) {
    const LadderResult cold_revised = run_ladder(
        *sized.matrix, *grid, *sized.placement, *sized.ladder,
        StrategyLpSolver::Revised, /*warm=*/false);
    const LadderResult warm_revised = run_ladder(
        *sized.matrix, *grid, *sized.placement, *sized.ladder,
        StrategyLpSolver::Revised, /*warm=*/true);
    LadderResult cold_dense;
    if (sized.dense_affordable) {
      cold_dense = run_ladder(*sized.matrix, *grid, *sized.placement, *sized.ladder,
                              StrategyLpSolver::Dense, /*warm=*/false);
    }
    const std::vector<double>& reference =
        sized.dense_affordable ? cold_dense.objectives : cold_revised.objectives;

    struct Row {
      const char* engine;
      const LadderResult* result;
    };
    std::vector<Row> rows;
    if (sized.dense_affordable) rows.push_back({"cold_dense", &cold_dense});
    rows.push_back({"cold_revised", &cold_revised});
    rows.push_back({"warm_revised", &warm_revised});
    for (const Row& row : rows) {
      const double diff = max_rel_diff(row.result->objectives, reference);
      const double speedup = sized.dense_affordable && row.result->ms_total > 0.0
                                 ? cold_dense.ms_total / row.result->ms_total
                                 : 0.0;
      std::cout << sized.label << ',' << row.engine << ','
                << row.result->objectives.size() << ',' << row.result->ms_total << ','
                << row.result->iterations << ',' << diff << ',' << speedup << '\n';
      const double ms = row.result->ms_total;
      const double iters = static_cast<double>(row.result->iterations);
      qp::bench::register_point(
          "LpSolver/phase_ladder_" + std::string{row.engine} + "/" + sized.label,
          [ms, iters, diff, speedup](benchmark::State& state) {
            state.counters["ms_total"] = ms;
            state.counters["iterations"] = iters;
            state.counters["max_rel_diff"] = diff;
            state.counters["speedup_vs_cold_dense"] = speedup;
          });
    }
  }

  // Genuine timing rows: one solve per benchmark iteration at the tightest
  // feasible level, warm-started from that level's own converged basis
  // (what a capacity-sweep re-solve or a converged alternation pays) and
  // from scratch.
  for (const SizedCase& sized : cases) {
    if (sized.label != "n161" && sized.label != "n500") continue;
    const std::vector<double>& caps = sized.ladder->back();
    StrategyLpOptions converged;
    converged.solver = StrategyLpSolver::Revised;
    const StrategyLpResult seed = qp::core::optimize_access_strategy(
        *sized.matrix, *grid, *sized.placement, caps, converged);
    const auto basis = std::make_shared<qp::lp::Basis>(seed.basis);
    benchmark::RegisterBenchmark(
        ("LpSolver/warm_resolve/" + sized.label).c_str(),
        [&sized, grid, basis, &caps](benchmark::State& state) {
          for (auto _ : state) {
            StrategyLpOptions options;
            options.solver = StrategyLpSolver::Revised;
            options.simplex.initial_basis = *basis;
            const StrategyLpResult lp = qp::core::optimize_access_strategy(
                *sized.matrix, *grid, *sized.placement, caps, options);
            benchmark::DoNotOptimize(lp.avg_network_delay);
          }
        });
    if (sized.label == "n161") {
      benchmark::RegisterBenchmark(
          "LpSolver/cold_revised_solve/n161",
          [&sized, grid, &caps](benchmark::State& state) {
            for (auto _ : state) {
              StrategyLpOptions options;
              options.solver = StrategyLpSolver::Revised;
              const StrategyLpResult lp = qp::core::optimize_access_strategy(
                  *sized.matrix, *grid, *sized.placement, caps, options);
              benchmark::DoNotOptimize(lp.avg_network_delay);
            }
          });
    }
  }

  return qp::bench::run_benchmarks(argc, argv);
}
