// Figure 7.7: Grid on Planetlab-50, demand = 16000 — uniform vs non-uniform
// node capacities ([beta,gamma] = [L_opt, c_i]) across universe sizes.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/capacity.hpp"
#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"

namespace {

const qp::net::LatencyMatrix& topology() {
  static const qp::net::LatencyMatrix m = qp::net::planetlab50_synth();
  return m;
}

// Timing kernel: the non-uniform capacity assignment itself.
void BM_NonuniformCapacities(benchmark::State& state) {
  const auto& m = topology();
  std::vector<std::size_t> support;
  for (std::size_t v = 0; v < 25; ++v) support.push_back(v);
  for (auto _ : state) {
    auto caps = qp::core::nonuniform_capacities(m, support, 0.36, 0.9);
    benchmark::DoNotOptimize(caps);
  }
}
BENCHMARK(BM_NonuniformCapacities);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "# Figure 7.7: Grid on Planetlab-50 (synthetic), demand = 16000,\n"
            << "# uniform vs non-uniform capacities\n";
  qp::eval::CapacitySweepConfig config;
  config.include_nonuniform = true;
  config.shard = qp::eval::point_shard_from_env();  // run_all.sh --points K/N.
  const auto points = qp::eval::capacity_sweep(topology(), config);
  qp::eval::print_csv(std::cout, points);

  for (const auto& p : points) {
    char level[32];
    std::snprintf(level, sizeof level, "%.3f", p.capacity_level);
    qp::bench::register_point(
        std::string("Fig7_7/") + (p.nonuniform ? "nonuniform" : "uniform") +
            "/n=" + std::to_string(p.universe) + "/cap=" + level,
        [p](benchmark::State& state) {
          state.counters["response_ms"] = p.response_ms;
          state.counters["network_delay_ms"] = p.network_delay_ms;
        });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
