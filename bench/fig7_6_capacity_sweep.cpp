// Figure 7.6: Grid on Planetlab-50 under demand = 16000, LP-optimized access
// strategies for the uniform capacity levels c_i = L_opt + i*(1-L_opt)/10,
// across universe sizes 4..49.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/capacity.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"

namespace {

const qp::net::LatencyMatrix& topology() {
  static const qp::net::LatencyMatrix m = qp::net::planetlab50_synth();
  return m;
}

// Timing kernel: one access-strategy LP solve (the workhorse of §7).
void BM_StrategyLp(benchmark::State& state) {
  const auto& m = topology();
  const auto k = static_cast<std::size_t>(state.range(0));
  const qp::quorum::GridQuorum system{k};
  const auto placement = qp::core::best_grid_placement(m, k).placement;
  const auto caps =
      qp::core::uniform_capacities(m.size(), system.optimal_load() * 1.5);
  for (auto _ : state) {
    auto lp = qp::core::optimize_access_strategy(m, system, placement, caps);
    benchmark::DoNotOptimize(lp);
  }
}
BENCHMARK(BM_StrategyLp)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "# Figure 7.6: Grid on Planetlab-50 (synthetic), demand = 16000,\n"
            << "# LP access strategies at uniform capacity levels\n";
  qp::eval::CapacitySweepConfig config;  // Defaults: sides 2..7, 10 levels.
  config.shard = qp::eval::point_shard_from_env();  // run_all.sh --points K/N.
  const auto points = qp::eval::capacity_sweep(topology(), config);
  qp::eval::print_csv(std::cout, points);

  for (const auto& p : points) {
    char level[32];
    std::snprintf(level, sizeof level, "%.3f", p.capacity_level);
    qp::bench::register_point(
        "Fig7_6/n=" + std::to_string(p.universe) + "/cap=" + level,
        [p](benchmark::State& state) {
          state.counters["response_ms"] = p.response_ms;
          state.counters["network_delay_ms"] = p.network_delay_ms;
          state.counters["feasible"] = p.feasible ? 1.0 : 0.0;
        });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
