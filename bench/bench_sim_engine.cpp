// Sim-validation figure: the discrete-event queueing engine (sim/engine)
// cross-checked against the analytic closest/balanced/LP objectives.
//
// Rows: {Grid(7x7), Majority(25/49)} on Planetlab-50 at rho in
// {0.3, 0.6, 0.9} for closest + balanced (+ the LP-exported explicit
// strategy on the Grid), one outage row and one bursty MMPP row per
// system, plus demand-weighted scenario rows on daxlist-161 and
// synthetic-500. divergence_pct is the figure's payload: ~0 at rho 0.3
// (the 3% band the engine tests enforce), growing at 0.6/0.9 and under
// bursts/outages as the linear alpha*load surrogate stops modelling
// queueing. The timing benchmark records engine event throughput.
//
// QP_SIM_SMOKE=1 shrinks the simulated horizon for CI smoke runs;
// QP_POINT_SHARD (run_all.sh --points K/N) shards the row set.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "core/local_search.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "eval/sim_validation.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "sim/engine.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace qp;

// Timing kernel: engine requests-per-second on the Grid at rho =
// range(0)/10 — the genuine cost of a validation row, in simulated
// requests completed per wall-clock second. The typed-event queue
// (EventQueue<EngineEvent>, replacing per-event std::function heap
// allocations) moved the rho = 0.9 row from 21.6 ms to 17.6 ms per
// replication (161.8k -> 197.2k simulated requests/s, ~1.23x,
// bitwise-identical results).
void BM_EngineGridRho(benchmark::State& state) {
  const double rho = static_cast<double>(state.range(0)) / 10.0;
  const net::LatencyMatrix matrix = net::planetlab50_synth();
  const quorum::GridQuorum grid{7};
  const core::Placement placement = core::best_grid_placement(matrix, 7).placement;
  const std::vector<double> site_load =
      core::site_loads_balanced(grid, placement, matrix.size());
  const std::vector<double> rates = sim::scale_rates_to_peak_utilization(
      std::vector<double>(matrix.size(), 1.0), site_load, 1.0, rho);
  sim::EngineConfig config;
  config.warmup_ms = 200.0;
  config.duration_ms = 1'000.0;
  config.replications = 1;
  std::size_t completed = 0;
  for (auto _ : state) {
    const sim::EngineResult result = run_engine(matrix, grid, placement, rates, config);
    completed += result.completed;
    ++config.master_seed;
    benchmark::DoNotOptimize(result.mean_response_ms);
  }
  state.counters["sim_requests_per_s"] =
      benchmark::Counter(static_cast<double>(completed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineGridRho)->Arg(6)->Arg(9)->Unit(benchmark::kMillisecond);

/// Placement-pipeline row: hill-climb the constructive Grid placement
/// (core/local_search over the delta evaluator on the shared pool), re-solve
/// the strategy LP on the improved placement, then run the engine on it with
/// time-series probes enabled. One row that walks all four instrumented
/// layers — the CI trace smoke (QP_TRACE + tools/check_trace.py) relies on
/// it to see core.local_search, lp.*, sim.engine, and common.thread_pool
/// spans in a single binary run. QP_TIMESERIES=<path> additionally writes
/// the probe rows as CSV (sim::write_engine_timeseries_csv).
void run_pipeline_row(bool smoke) {
  const net::LatencyMatrix matrix = net::planetlab50_synth();
  const quorum::GridQuorum grid{7};
  const core::Placement seed = core::best_grid_placement(matrix, 7).placement;
  // A dedicated 2-thread pool so the pooled parallel_for path (and its
  // common.thread_pool trace spans) runs even on single-core machines,
  // where the shared global pool degrades to inline execution. Results are
  // bit-identical for any thread setting.
  common::ThreadPool pool{2};
  core::LocalSearchOptions search_options;
  search_options.max_rounds = smoke ? 4 : 64;
  search_options.threads = 2;
  const core::LocalSearchResult search =
      core::local_search_placement(matrix, grid, seed, search_options);

  const std::vector<double> caps(matrix.size(), 1.25 * grid.optimal_load());
  const core::StrategyLpResult lp =
      core::optimize_access_strategy(matrix, grid, search.placement, caps);

  sim::EngineConfig config;
  config.warmup_ms = 200.0;
  config.duration_ms = smoke ? 1'000.0 : 5'000.0;
  config.replications = smoke ? 1 : 3;
  config.master_seed = 71;
  config.probe_interval_ms = smoke ? 100.0 : 250.0;
  config.pool = &pool;
  if (lp.status == lp::SolveStatus::Optimal) {
    config.strategy = sim::EngineStrategy::Explicit;
  }
  const std::vector<double> site_load =
      lp.status == lp::SolveStatus::Optimal
          ? core::site_loads_explicit(lp.strategy, search.placement, matrix.size())
          : core::site_loads_balanced(grid, search.placement, matrix.size());
  const std::vector<double> rates = sim::scale_rates_to_peak_utilization(
      std::vector<double>(matrix.size(), 1.0), site_load, 1.0, 0.6);
  sim::EngineResult result;
  {
    // Scope the explicit strategy to outlive the run only.
    config.explicit_strategy =
        lp.status == lp::SolveStatus::Optimal ? &lp.strategy : nullptr;
    result = run_engine(matrix, grid, search.placement, rates, config);
  }

  std::size_t probes = 0;
  for (const sim::ReplicationResult& r : result.replications) probes += r.probes.size();
  if (const char* path = std::getenv("QP_TIMESERIES")) {
    std::ofstream out{path};
    if (out) sim::write_engine_timeseries_csv(result, out);
  }

  const double search_moves = static_cast<double>(search.moves);
  const double lp_iterations = static_cast<double>(lp.lp_iterations);
  const double probe_rows = static_cast<double>(probes);
  const double completed = static_cast<double>(result.completed);
  qp::bench::register_point(
      "SimValidation/pipeline/local-search+lp+probed-engine",
      [=, mean = result.mean_response_ms](benchmark::State& state) {
        state.counters["search_moves"] = search_moves;
        state.counters["lp_iterations"] = lp_iterations;
        state.counters["probe_rows"] = probe_rows;
        state.counters["completed"] = completed;
        state.counters["simulated_ms"] = mean;
      });
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "# Sim validation: analytic objectives vs discrete-event engine\n";
  const bool smoke = std::getenv("QP_SIM_SMOKE") != nullptr;

  eval::SimValidationConfig config;
  config.rho_values = {0.3, 0.6, 0.9};
  config.include_lp = true;
  config.include_outage = true;
  config.include_mmpp = true;
  config.include_fault = true;
  config.shard = eval::point_shard_from_env();  // run_all.sh --points K/N.
  if (smoke) {
    config.rho_values = {0.3};
    config.include_lp = false;
    config.warmup_ms = 200.0;
    config.duration_ms = 1'000.0;
    config.replications = 1;
  }
  std::vector<eval::SimValidationPoint> points =
      eval::sim_validation_sweep(net::planetlab50_synth(), config);

  eval::SimValidationConfig scenario_config = config;
  scenario_config.rho_values = smoke ? std::vector<double>{0.3}
                                     : std::vector<double>{0.3, 0.6};
  scenario_config.include_lp = false;
  scenario_config.include_outage = false;
  scenario_config.include_mmpp = false;
  scenario_config.include_fault = false;
  for (const sim::Scenario& scenario :
       {sim::daxlist161_scenario(), sim::synthetic500_scenario()}) {
    const auto rows = eval::sim_validation_scenario(scenario, scenario_config);
    points.insert(points.end(), rows.begin(), rows.end());
  }
  eval::print_csv(std::cout, points);
  run_pipeline_row(smoke);

  for (const auto& p : points) {
    char rho[32];
    std::snprintf(rho, sizeof rho, "%.2f", p.target_rho);
    std::string name = "SimValidation/" + p.scenario + "/" + p.system + "/" + p.strategy +
                       "/" + p.arrivals + "/rho=" + rho;
    if (p.outage) name += "/outage";
    if (p.fault) name += "/fault";
    qp::bench::register_point(name, [p](benchmark::State& state) {
      state.counters["analytic_ms"] = p.analytic_ms;
      state.counters["simulated_ms"] = p.simulated_ms;
      state.counters["divergence_pct"] = p.divergence_pct;
      state.counters["p99_ms"] = p.p99_ms;
      state.counters["peak_utilization"] = p.peak_utilization;
      state.counters["dropped_messages"] = static_cast<double>(p.dropped_messages);
      if (p.fault) {
        state.counters["unavailability_analytic"] = p.unavailability_analytic;
        state.counters["unavailability_sim"] = p.unavailability_sim;
        state.counters["retries"] = static_cast<double>(p.retries);
        state.counters["abandoned"] = static_cast<double>(p.abandoned);
      }
    });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
