// Large-topology figure (beyond the paper's §7): constructive placements vs
// local optima on daxlist-161 (n = 49, 161 clients) and the synthetic
// 500-site scenario, both with power-law client demand — under the
// demand-weighted load-aware (§7 balanced) AND closest-strategy (§6)
// objectives. Exercises the whole new stack end-to-end: scenario generator
// -> demand-weighted objective-scored constructive placement -> incremental
// local search (quorum-choice tables for the closest rows) -> figure rows.
// The local-opt rows quantify how much response time the paper's
// constructions leave on the table once load matters; stage_ms records the
// wall-clock the DeltaEvaluator engine needs at 500 sites.
//
// The sparse-scaling section is the time-vs-n table of the O(n^2)-wall work:
// embedding-space scenarios at n in {500, 2k, 10k, 50k} (QP_LT_SCALING
// overrides the list; QP_LT_ROUNDS bounds the search rounds, QP_LT_DENSE=0
// skips the dense sweeps above for CI smoke). Each row runs the full sparse
// stack — O(n) generation, kd-tree k-NN index, capped client candidate
// lists, candidate_knn-restricted local search — and reports per-move and
// per-candidate cost, whose sub-quadratic growth is the acceptance check.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/client_index.hpp"
#include "core/delta_eval.hpp"
#include "core/local_search.hpp"
#include "core/objective.hpp"
#include "core/placement.hpp"
#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/knn_index.hpp"
#include "quorum/grid.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace qp;

const sim::Scenario& synth500() {
  static const sim::Scenario scenario = sim::synthetic500_scenario();
  return scenario;
}

// Timing kernel: one load-aware candidate evaluation on the 500-site
// scenario (Grid 7x7) — the inner operation the local search performs
// ~22k times per round. Demand-weighted (the scenario's Pareto vector).
void BM_LoadAwareDeltaCandidate500(benchmark::State& state) {
  const sim::Scenario& scenario = synth500();
  const quorum::GridQuorum grid{7};
  const core::LoadAwareObjective objective = scenario.load_objective();
  const core::Placement placement =
      core::best_grid_placement(scenario.matrix, 7).placement;
  const core::DeltaEvaluator eval{scenario.matrix, grid, placement, objective};
  std::size_t site = 0;
  std::size_t element = 0;
  for (auto _ : state) {
    site = (site + 1) % scenario.matrix.size();
    element = (element + 1) % placement.universe_size();
    benchmark::DoNotOptimize(eval.objective_if_moved(element, site));
  }
}
BENCHMARK(BM_LoadAwareDeltaCandidate500)->Unit(benchmark::kMicrosecond);

// Same shape for the §6 closest-strategy objective: the quorum-choice
// tables answer the candidate, repricing only flipped choices — but
// scanning all 500 clients per candidate (the pre-index hotspot).
void BM_ClosestDeltaCandidate500(benchmark::State& state) {
  const sim::Scenario& scenario = synth500();
  const quorum::GridQuorum grid{7};
  const core::ClosestStrategyObjective objective = scenario.closest_objective();
  const core::Placement placement =
      core::best_grid_placement(scenario.matrix, 7).placement;
  const core::DeltaEvaluator eval{scenario.matrix, grid, placement, objective};
  std::size_t site = 0;
  std::size_t element = 0;
  for (auto _ : state) {
    site = (site + 1) % scenario.matrix.size();
    element = (element + 1) % placement.universe_size();
    benchmark::DoNotOptimize(eval.objective_if_moved(element, site));
  }
}
BENCHMARK(BM_ClosestDeltaCandidate500)->Unit(benchmark::kMicrosecond);

// The fix: route the candidate through the site->clients index, touching
// only the clients the move can affect. cap=0 is the exact parity mode —
// its covering lists are nearly dense while the placement is still poor
// (coverage radius = the quorum cost m1), so it exists for correctness, not
// speed; cap=64 is the capped production configuration the 10k-50k search
// runs (approximate ranking, exact applies).
void BM_ClosestDeltaCandidate500Indexed(benchmark::State& state) {
  const sim::Scenario& scenario = synth500();
  const quorum::GridQuorum grid{7};
  const core::ClosestStrategyObjective objective = scenario.closest_objective();
  const core::Placement placement =
      core::best_grid_placement(scenario.matrix, 7).placement;
  core::DeltaEvaluator eval{scenario.matrix, grid, placement, objective};
  const net::KnnIndex knn{scenario.matrix};
  core::ClientCandidateIndex::Config config;
  config.cap = static_cast<std::size_t>(state.range(0));
  const core::ClientCandidateIndex index = core::ClientCandidateIndex::build(
      scenario.matrix, &knn, eval.best_values(), config);
  eval.attach_candidate_index(&index);
  std::size_t site = 0;
  std::size_t element = 0;
  for (auto _ : state) {
    site = (site + 1) % scenario.matrix.size();
    element = (element + 1) % placement.universe_size();
    benchmark::DoNotOptimize(eval.objective_if_moved(element, site));
  }
}
BENCHMARK(BM_ClosestDeltaCandidate500Indexed)->Arg(0)->Arg(64)->Unit(benchmark::kMicrosecond);

// Env knob parsing for the scaling table. QP_LT_SCALING="10000" runs one
// row (the CI smoke shape); "off" disables the section.
std::vector<std::size_t> scaling_sizes() {
  const char* env = std::getenv("QP_LT_SCALING");
  const std::string spec = env != nullptr ? env : "500,2000,10000,50000";
  std::vector<std::size_t> sizes;
  if (spec == "off" || spec == "0") return sizes;
  std::stringstream stream{spec};
  std::string token;
  while (std::getline(stream, token, ',')) {
    const unsigned long long n = std::stoull(token);
    if (n > 0) sizes.push_back(static_cast<std::size_t>(n));
  }
  return sizes;
}

std::size_t scaling_rounds() {
  const char* env = std::getenv("QP_LT_ROUNDS");
  return env != nullptr ? static_cast<std::size_t>(std::stoull(env)) : 10;
}

std::size_t scaling_knn() {
  const char* env = std::getenv("QP_LT_KNN");
  return env != nullptr ? static_cast<std::size_t>(std::stoull(env)) : 64;
}

struct ScalingRow {
  std::size_t n = 0;
  double gen_ms = 0.0;
  double knn_build_ms = 0.0;
  double search_ms = 0.0;
  std::size_t moves = 0;
  double per_move_ms = 0.0;
  double per_candidate_us = 0.0;
  double response_ms = 0.0;
};

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   since)
      .count();
}

/// One scaling row: sparse scenario -> kd-tree -> candidate_knn-restricted
/// local search of a Grid 7x7 under the demand-weighted closest objective,
/// from a deterministic stride placement (one site every n/49).
ScalingRow run_scaling_point(std::size_t n, std::size_t max_rounds,
                             std::size_t candidate_knn) {
  ScalingRow row;
  row.n = n;

  auto start = std::chrono::steady_clock::now();
  sim::ScenarioConfig config;
  config.site_count = n;
  const sim::SparseScenario scenario = sim::make_sparse_scenario(config);
  row.gen_ms = elapsed_ms(start);

  start = std::chrono::steady_clock::now();
  const net::KnnIndex knn{scenario.space};
  row.knn_build_ms = elapsed_ms(start);

  const quorum::GridQuorum grid{7};
  const core::ClosestStrategyObjective objective = scenario.closest_objective();
  core::Placement initial;
  initial.site_of.resize(grid.universe_size());
  const std::size_t stride = std::max<std::size_t>(1, n / grid.universe_size());
  for (std::size_t u = 0; u < grid.universe_size(); ++u) {
    initial.site_of[u] = u * stride;
  }

  core::LocalSearchOptions options;
  options.objective = &objective;
  options.max_rounds = max_rounds;
  options.candidate_knn = candidate_knn;
  options.knn = &knn;
  options.threads = 1;

  start = std::chrono::steady_clock::now();
  const core::LocalSearchResult result =
      core::local_search_placement(scenario.space, grid, initial, options);
  row.search_ms = elapsed_ms(start);

  row.moves = result.moves;
  row.response_ms = result.objective;
  // BestImprovement scans the full candidate list every round; the last
  // round (if within max_rounds) finds nothing and stops.
  const std::size_t rounds = std::min(max_rounds, result.moves + 1);
  const double candidates = static_cast<double>(rounds) *
                            static_cast<double>(grid.universe_size() * candidate_knn);
  row.per_move_ms = row.search_ms / static_cast<double>(std::max<std::size_t>(1, result.moves));
  row.per_candidate_us = candidates > 0.0 ? row.search_ms * 1000.0 / candidates : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<eval::LargeTopologyPoint> points;
  const char* dense_env = std::getenv("QP_LT_DENSE");
  if (dense_env == nullptr || std::string{dense_env} != "0") {
    std::cout << "# Large topologies: constructive vs load-aware local optimum\n";
    const sim::Scenario daxlist = sim::daxlist161_scenario();
    for (const sim::Scenario* scenario : {&daxlist, &synth500()}) {
      const auto rows = eval::large_topology_sweep(*scenario);
      points.insert(points.end(), rows.begin(), rows.end());
    }
    eval::print_csv(std::cout, points);
  }

  for (const auto& p : points) {
    qp::bench::register_point(
        "LargeTopology/" + p.scenario + "/" + p.system + "/" + p.objective + "/" + p.stage,
        [p](benchmark::State& state) {
          state.counters["response_ms"] = p.response_ms;
          state.counters["network_delay_ms"] = p.network_delay_ms;
          state.counters["moves"] = static_cast<double>(p.moves);
          state.counters["stage_ms"] = p.stage_ms;
        });
  }

  // --- Time-vs-n scaling of the sparse stack (the O(n^2)-wall table).
  const std::size_t rounds = scaling_rounds();
  const std::size_t knn_k = scaling_knn();
  std::vector<ScalingRow> scaling;
  for (const std::size_t n : scaling_sizes()) {
    scaling.push_back(run_scaling_point(n, rounds, knn_k));
  }
  if (!scaling.empty()) {
    std::cout << "# Sparse scaling: closest objective, Grid 7x7, candidate_knn=" << knn_k
              << ", " << rounds << " rounds max\n"
              << "n,gen_ms,knn_build_ms,search_ms,moves,per_move_ms,per_candidate_us,"
                 "response_ms\n";
    for (const ScalingRow& row : scaling) {
      std::cout << row.n << ',' << row.gen_ms << ',' << row.knn_build_ms << ','
                << row.search_ms << ',' << row.moves << ',' << row.per_move_ms << ','
                << row.per_candidate_us << ',' << row.response_ms << '\n';
    }
  }
  for (const ScalingRow& row : scaling) {
    qp::bench::register_point(
        "LargeTopology/scaling/n=" + std::to_string(row.n),
        [row](benchmark::State& state) {
          state.counters["gen_ms"] = row.gen_ms;
          state.counters["knn_build_ms"] = row.knn_build_ms;
          state.counters["search_ms"] = row.search_ms;
          state.counters["moves"] = static_cast<double>(row.moves);
          state.counters["per_move_ms"] = row.per_move_ms;
          state.counters["per_candidate_us"] = row.per_candidate_us;
          state.counters["response_ms"] = row.response_ms;
        });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
