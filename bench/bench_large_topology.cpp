// Large-topology figure (beyond the paper's §7): constructive placements vs
// local optima on daxlist-161 (n = 49, 161 clients) and the synthetic
// 500-site scenario, both with power-law client demand — under the
// demand-weighted load-aware (§7 balanced) AND closest-strategy (§6)
// objectives. Exercises the whole new stack end-to-end: scenario generator
// -> demand-weighted objective-scored constructive placement -> incremental
// local search (quorum-choice tables for the closest rows) -> figure rows.
// The local-opt rows quantify how much response time the paper's
// constructions leave on the table once load matters; stage_ms records the
// wall-clock the DeltaEvaluator engine needs at 500 sites.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/delta_eval.hpp"
#include "core/objective.hpp"
#include "core/placement.hpp"
#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "quorum/grid.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace qp;

const sim::Scenario& synth500() {
  static const sim::Scenario scenario = sim::synthetic500_scenario();
  return scenario;
}

// Timing kernel: one load-aware candidate evaluation on the 500-site
// scenario (Grid 7x7) — the inner operation the local search performs
// ~22k times per round. Demand-weighted (the scenario's Pareto vector).
void BM_LoadAwareDeltaCandidate500(benchmark::State& state) {
  const sim::Scenario& scenario = synth500();
  const quorum::GridQuorum grid{7};
  const core::LoadAwareObjective objective = scenario.load_objective();
  const core::Placement placement =
      core::best_grid_placement(scenario.matrix, 7).placement;
  const core::DeltaEvaluator eval{scenario.matrix, grid, placement, objective};
  std::size_t site = 0;
  std::size_t element = 0;
  for (auto _ : state) {
    site = (site + 1) % scenario.matrix.size();
    element = (element + 1) % placement.universe_size();
    benchmark::DoNotOptimize(eval.objective_if_moved(element, site));
  }
}
BENCHMARK(BM_LoadAwareDeltaCandidate500)->Unit(benchmark::kMicrosecond);

// Same shape for the §6 closest-strategy objective: the quorum-choice
// tables answer the candidate, repricing only flipped choices.
void BM_ClosestDeltaCandidate500(benchmark::State& state) {
  const sim::Scenario& scenario = synth500();
  const quorum::GridQuorum grid{7};
  const core::ClosestStrategyObjective objective = scenario.closest_objective();
  const core::Placement placement =
      core::best_grid_placement(scenario.matrix, 7).placement;
  const core::DeltaEvaluator eval{scenario.matrix, grid, placement, objective};
  std::size_t site = 0;
  std::size_t element = 0;
  for (auto _ : state) {
    site = (site + 1) % scenario.matrix.size();
    element = (element + 1) % placement.universe_size();
    benchmark::DoNotOptimize(eval.objective_if_moved(element, site));
  }
}
BENCHMARK(BM_ClosestDeltaCandidate500)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "# Large topologies: constructive vs load-aware local optimum\n";
  std::vector<eval::LargeTopologyPoint> points;
  const sim::Scenario daxlist = sim::daxlist161_scenario();
  for (const sim::Scenario* scenario : {&daxlist, &synth500()}) {
    const auto rows = eval::large_topology_sweep(*scenario);
    points.insert(points.end(), rows.begin(), rows.end());
  }
  eval::print_csv(std::cout, points);

  for (const auto& p : points) {
    qp::bench::register_point(
        "LargeTopology/" + p.scenario + "/" + p.system + "/" + p.objective + "/" + p.stage,
        [p](benchmark::State& state) {
          state.counters["response_ms"] = p.response_ms;
          state.counters["network_delay_ms"] = p.network_delay_ms;
          state.counters["moves"] = static_cast<double>(p.moves);
          state.counters["stage_ms"] = p.stage_ms;
        });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
