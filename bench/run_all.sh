#!/usr/bin/env bash
# Build a Release+LTO tree and run every figure benchmark, writing one
# BENCH_<name>.json (google-benchmark JSON) plus the figure's CSV series
# per binary.  Seeds the perf trajectory the ROADMAP north-star tracks.
#
# Usage:  bench/run_all.sh [output-dir] [--shard K/N] [--points K/N] [--metrics]
#   --shard K/N    run only the K-th of N shards (1-based): every N-th
#                  figure binary, interleaved, so N hosts (or processes) can
#                  split the sweep and later combine their output dirs with
#                  bench/merge_shards.py.
#   --points K/N   per-point sharding *below* figure granularity: every
#                  figure binary runs, but each one computes only the K-th of
#                  N interleaved point slices of its sweep (exported as
#                  QP_POINT_SHARD; see eval::point_shard_from_env). Lets one
#                  expensive figure (e.g. fig6_5 at 16000 demand, or the
#                  bench_sim_engine validation rows, which simulate tens of
#                  thousands of quorum operations per (system, strategy, rho)
#                  point) fan out across hosts; recombine with
#                  bench/merge_shards.py, which unions the per-figure
#                  benchmark arrays and CSV rows.
#   --metrics      drop each figure binary's observability metrics (the
#                  obs/metrics registry: counters, gauges, histograms) as
#                  OBS_<name>.json next to its BENCH_<name>.json, via the
#                  QP_OBS_EXPORT at-exit hook. merge_shards.py unions these
#                  across shard dirs (counters and histogram buckets sum,
#                  gauges and min/max fold).
#   BUILD_DIR=...  override the build tree (default: build/release)
#   FILTER=regex   only run benchmarks whose name matches the regex
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${ROOT}/build/release}"
FILTER="${FILTER:-}"

OUT_DIR=""
SHARD=""
POINTS=""
METRICS=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --metrics)
      METRICS=1
      shift
      ;;
    --shard)
      SHARD="${2:?--shard requires K/N}"
      shift 2
      ;;
    --shard=*)
      SHARD="${1#--shard=}"
      shift
      ;;
    --points)
      POINTS="${2:?--points requires K/N}"
      shift 2
      ;;
    --points=*)
      POINTS="${1#--points=}"
      shift
      ;;
    *)
      if [[ -n "${OUT_DIR}" ]]; then
        echo "error: unexpected argument '$1'" >&2
        exit 1
      fi
      OUT_DIR="$1"
      shift
      ;;
  esac
done
OUT_DIR="${OUT_DIR:-${ROOT}/bench/results}"

SHARD_K=1
SHARD_N=1
if [[ -n "${SHARD}" ]]; then
  if [[ ! "${SHARD}" =~ ^([0-9]+)/([0-9]+)$ ]]; then
    echo "error: --shard expects K/N (e.g. --shard 2/4), got '${SHARD}'" >&2
    exit 1
  fi
  SHARD_K="${BASH_REMATCH[1]}"
  SHARD_N="${BASH_REMATCH[2]}"
  if (( SHARD_N < 1 || SHARD_K < 1 || SHARD_K > SHARD_N )); then
    echo "error: --shard K/N requires 1 <= K <= N" >&2
    exit 1
  fi
fi

if [[ -n "${POINTS}" ]]; then
  if [[ ! "${POINTS}" =~ ^([0-9]+)/([0-9]+)$ ]]; then
    echo "error: --points expects K/N (e.g. --points 2/4), got '${POINTS}'" >&2
    exit 1
  fi
  if (( BASH_REMATCH[2] < 1 || BASH_REMATCH[1] < 1 || BASH_REMATCH[1] > BASH_REMATCH[2] )); then
    echo "error: --points K/N requires 1 <= K <= N" >&2
    exit 1
  fi
  # The figure binaries read this themselves (eval::point_shard_from_env).
  export QP_POINT_SHARD="${POINTS}"
fi

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_INTERPROCEDURAL_OPTIMIZATION=ON
fi
if grep -q '^benchmark_DIR:PATH=.*-NOTFOUND' "${BUILD_DIR}/CMakeCache.txt"; then
  echo "error: google-benchmark not available; bench targets were not configured" >&2
  exit 1
fi
if ! grep -q '^CMAKE_BUILD_TYPE:[A-Z]*=Release$' "${BUILD_DIR}/CMakeCache.txt"; then
  echo "error: ${BUILD_DIR} is not a Release tree; refusing to record perf numbers" >&2
  echo "       (point BUILD_DIR at a Release build or remove it to reconfigure)" >&2
  exit 1
fi
cmake --build "${BUILD_DIR}" --target bench_all -j "$(nproc)"

mkdir -p "${OUT_DIR}"

# Provenance: embed git SHA, UTC date, and build type into every JSON's
# "context" object (google-benchmark --benchmark_context), so the perf
# trajectory is attributable across PRs.
GIT_SHA="$(git -C "${ROOT}" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
if [[ -n "$(git -C "${ROOT}" status --porcelain 2>/dev/null)" ]]; then
  GIT_SHA="${GIT_SHA}-dirty"
fi
RUN_DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' "${BUILD_DIR}/CMakeCache.txt")"

benches=("${BUILD_DIR}"/bench/*)
ran=0
slot=0
for bin in "${benches[@]}"; do
  [[ -f "${bin}" && -x "${bin}" ]] || continue
  name="$(basename "${bin}")"
  if [[ -n "${FILTER}" && ! "${name}" =~ ${FILTER} ]]; then
    continue
  fi
  # Interleaved shard assignment over the (sorted, filtered) binary list, so
  # every shard sees the same numbering regardless of which host runs it.
  slot=$((slot + 1))
  if (( (slot - 1) % SHARD_N != SHARD_K - 1 )); then
    continue
  fi
  echo "== ${name}"
  # --metrics: the obs registry writes its JSON export at process exit.
  if (( METRICS )); then
    export QP_OBS_EXPORT="${OUT_DIR}/OBS_${name}.json"
  fi
  # stdout is the figure's CSV series followed by google-benchmark's console
  # table (which starts at a dashed separator); keep only the CSV part.
  "${bin}" \
    --benchmark_out="${OUT_DIR}/BENCH_${name}.json" \
    --benchmark_out_format=json \
    --benchmark_context=git_sha="${GIT_SHA}" \
    --benchmark_context=date="${RUN_DATE}" \
    --benchmark_context=build_type="${BUILD_TYPE}" \
    | awk '/^----/{table=1} !table {print}' > "${OUT_DIR}/${name}.csv"
  ran=$((ran + 1))
done

if [[ "${ran}" -eq 0 ]]; then
  echo "error: no benchmark binaries matched under ${BUILD_DIR}/bench" >&2
  echo "       (shard ${SHARD_K}/${SHARD_N}, filter '${FILTER}')" >&2
  exit 1
fi

if (( SHARD_N > 1 )) || [[ -n "${POINTS}" ]]; then
  echo "Wrote ${ran} BENCH_*.json files to ${OUT_DIR} (shard ${SHARD_K}/${SHARD_N}, points ${POINTS:-1/1})"
  echo "Combine shard output dirs with: bench/merge_shards.py <merged-dir> <shard-dir>..."
else
  echo "Wrote ${ran} BENCH_*.json files to ${OUT_DIR}"
fi
