#!/usr/bin/env bash
# Build a Release+LTO tree and run every figure benchmark, writing one
# BENCH_<name>.json (google-benchmark JSON) plus the figure's CSV series
# per binary.  Seeds the perf trajectory the ROADMAP north-star tracks.
#
# Usage:  bench/run_all.sh [output-dir]
#   BUILD_DIR=...  override the build tree (default: build/release)
#   FILTER=regex   only run benchmarks whose name matches the regex
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
OUT_DIR="${1:-${ROOT}/bench/results}"
BUILD_DIR="${BUILD_DIR:-${ROOT}/build/release}"
FILTER="${FILTER:-}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_INTERPROCEDURAL_OPTIMIZATION=ON
fi
if grep -q '^benchmark_DIR:PATH=.*-NOTFOUND' "${BUILD_DIR}/CMakeCache.txt"; then
  echo "error: google-benchmark not available; bench targets were not configured" >&2
  exit 1
fi
if ! grep -q '^CMAKE_BUILD_TYPE:[A-Z]*=Release$' "${BUILD_DIR}/CMakeCache.txt"; then
  echo "error: ${BUILD_DIR} is not a Release tree; refusing to record perf numbers" >&2
  echo "       (point BUILD_DIR at a Release build or remove it to reconfigure)" >&2
  exit 1
fi
cmake --build "${BUILD_DIR}" --target bench_all -j "$(nproc)"

mkdir -p "${OUT_DIR}"

# Provenance: embed git SHA, UTC date, and build type into every JSON's
# "context" object (google-benchmark --benchmark_context), so the perf
# trajectory is attributable across PRs.
GIT_SHA="$(git -C "${ROOT}" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
if [[ -n "$(git -C "${ROOT}" status --porcelain 2>/dev/null)" ]]; then
  GIT_SHA="${GIT_SHA}-dirty"
fi
RUN_DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' "${BUILD_DIR}/CMakeCache.txt")"

benches=("${BUILD_DIR}"/bench/*)
ran=0
for bin in "${benches[@]}"; do
  [[ -f "${bin}" && -x "${bin}" ]] || continue
  name="$(basename "${bin}")"
  if [[ -n "${FILTER}" && ! "${name}" =~ ${FILTER} ]]; then
    continue
  fi
  echo "== ${name}"
  # stdout is the figure's CSV series followed by google-benchmark's console
  # table (which starts at a dashed separator); keep only the CSV part.
  "${bin}" \
    --benchmark_out="${OUT_DIR}/BENCH_${name}.json" \
    --benchmark_out_format=json \
    --benchmark_context=git_sha="${GIT_SHA}" \
    --benchmark_context=date="${RUN_DATE}" \
    --benchmark_context=build_type="${BUILD_TYPE}" \
    | awk '/^----/{table=1} !table {print}' > "${OUT_DIR}/${name}.csv"
  ran=$((ran + 1))
done

if [[ "${ran}" -eq 0 ]]; then
  echo "error: no benchmark binaries found under ${BUILD_DIR}/bench" >&2
  exit 1
fi

echo "Wrote ${ran} BENCH_*.json files to ${OUT_DIR}"
