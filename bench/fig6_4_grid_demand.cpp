// Figure 6.4: Grid on daxlist-161, closest vs balanced access strategies at
// client_demand in {1000, 4000}, response time vs universe size.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"

namespace {

const qp::net::LatencyMatrix& topology() {
  static const qp::net::LatencyMatrix m = qp::net::daxlist161_synth();
  return m;
}

// Timing kernel: balanced evaluation of a k x k grid on 161 sites.
void BM_BalancedEvaluation(benchmark::State& state) {
  const auto& m = topology();
  const auto k = static_cast<std::size_t>(state.range(0));
  const qp::quorum::GridQuorum system{k};
  const auto placement = qp::core::best_grid_placement(m, k).placement;
  for (auto _ : state) {
    auto eval = qp::core::evaluate_balanced(m, system, placement, 28.0);
    benchmark::DoNotOptimize(eval);
  }
}
BENCHMARK(BM_BalancedEvaluation)->Arg(5)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "# Figure 6.4: Grid on daxlist-161 (synthetic), closest vs balanced\n";
  const std::vector<double> demands{1000.0, 4000.0};
  // QP_POINT_SHARD (run_all.sh --points K/N) selects a slice of the
  // (side, demand) points so the figure can fan out across hosts.
  const auto points = qp::eval::grid_demand_sweep(topology(), demands, 0, {},
                                                  qp::eval::point_shard_from_env());
  qp::eval::print_csv(std::cout, points);

  for (const auto& p : points) {
    qp::bench::register_point(
        "Fig6_4/" + p.strategy + "/demand=" + std::to_string(static_cast<int>(p.client_demand)) +
            "/n=" + std::to_string(p.universe),
        [p](benchmark::State& state) {
          state.counters["response_ms"] = p.response_ms;
          state.counters["network_delay_ms"] = p.network_delay_ms;
        });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
