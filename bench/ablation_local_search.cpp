// Ablation: how close is the paper's constructive Grid placement (§4.1.1,
// best-single-client inductive construction) to a local optimum of the
// average uniform network delay? We compare, per grid side:
//   * the constructed placement,
//   * the constructed placement polished by relocation local search,
//   * local search started from a random one-to-one placement.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/local_search.hpp"
#include "core/placement.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"

int main(int argc, char** argv) {
  using namespace qp;
  const net::LatencyMatrix m = net::planetlab50_synth();

  struct Row {
    std::size_t side;
    double constructed;
    double polished;
    double from_random;
    std::size_t polish_moves;
  };
  std::vector<Row> rows;
  common::Rng rng{2007};
  for (std::size_t side = 2; side <= 6; ++side) {
    const quorum::GridQuorum grid{side};
    const core::PlacementSearchResult constructed = core::best_grid_placement(m, side);
    const core::LocalSearchResult polished =
        core::local_search_placement(m, grid, constructed.placement);
    const core::Placement random{
        rng.sample_without_replacement(m.size(), grid.universe_size())};
    const core::LocalSearchResult from_random =
        core::local_search_placement(m, grid, random);
    rows.push_back(Row{side, constructed.avg_network_delay, polished.objective,
                       from_random.objective, polished.moves});
  }

  std::cout << "# Ablation: constructive Grid placement vs relocation local search\n"
            << "# (avg uniform network delay, ms, Planetlab-50 synthetic)\n";
  std::cout << "side,constructed_ms,polished_ms,from_random_ms,polish_moves\n";
  for (const Row& r : rows) {
    std::cout << r.side << ',' << r.constructed << ',' << r.polished << ','
              << r.from_random << ',' << r.polish_moves << '\n';
  }

  for (const Row& r : rows) {
    qp::bench::register_point("AblationLocalSearch/k=" + std::to_string(r.side),
                              [r](benchmark::State& state) {
                                state.counters["constructed_ms"] = r.constructed;
                                state.counters["polished_ms"] = r.polished;
                                state.counters["from_random_ms"] = r.from_random;
                              });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
