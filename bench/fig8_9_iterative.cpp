// Figure 8.9: network delay of the iterative many-to-one algorithm for a
// 5x5 Grid on Planetlab-50, per iteration/phase, vs the one-to-one
// placement, across node-capacity levels.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "bench_util.hpp"
#include "core/capacity.hpp"
#include "core/manytoone.hpp"
#include "core/placement.hpp"
#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"

namespace {

const qp::net::LatencyMatrix& topology() {
  static const qp::net::LatencyMatrix m = qp::net::planetlab50_synth();
  return m;
}

// Timing kernel: one many-to-one placement LP + rounding.
void BM_ManyToOnePlacement(benchmark::State& state) {
  const auto& m = topology();
  const qp::quorum::GridQuorum system{static_cast<std::size_t>(state.range(0))};
  const std::size_t quorum_count = system.universe_size();
  const std::vector<double> probs(quorum_count, 1.0 / static_cast<double>(quorum_count));
  const auto caps = qp::core::uniform_capacities(m.size(), 0.6);
  for (auto _ : state) {
    auto result = qp::core::many_to_one_placement(m, system, probs, caps, 0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ManyToOnePlacement)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "# Figure 8.9: iterative many-to-one, 5x5 Grid on Planetlab-50 (synthetic)\n"
            << "# (anchor search restricted to the 12 most central sites)\n";
  qp::eval::IterativeSweepConfig config;  // side = 5, 10 levels, 12 anchors.
  config.shard = qp::eval::point_shard_from_env();  // run_all.sh --points K/N.
  // QP_ITER_WARM=0 disables phase-2 LP warm starts (CI compares the two runs'
  // objectives; they must agree — warm starts change speed, not optima).
  if (const char* warm = std::getenv("QP_ITER_WARM")) {
    config.warm_start = std::strcmp(warm, "0") != 0;
  }
  const auto points = qp::eval::iterative_sweep(topology(), config);
  qp::eval::print_csv(std::cout, points);

  for (const auto& p : points) {
    char level[32];
    std::snprintf(level, sizeof level, "%.3f", p.capacity_level);
    qp::bench::register_point(
        "Fig8_9/" + p.stage + "/cap=" + level, [p](benchmark::State& state) {
          state.counters["network_delay_ms"] = p.network_delay_ms;
          state.counters["response_ms"] = p.response_ms;
        });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
