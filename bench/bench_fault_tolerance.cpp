// Fault-tolerance figure: failure-aware vs failure-oblivious placement
// under regional fault storms.
//
// Two placements of Majority(5/9) on a 50-site WAN whose densest region
// (us-east, 20 of 50 sites) is also the latency center, both local-search
// optima from the same region-spread start (round-robin over regions —
// starting spread matters: colocation is a plateau no single relocation
// escapes, since unavailability only drops once at most q-1 elements share
// a region, so the searches differ in what they *keep*, not what they find):
//   * oblivious — ClosestStrategyObjective (latency only, the live model):
//                 greedily drifts back into full colocation in the dense
//                 central region;
//   * aware     — core::FailureAwareObjective with correlated regional
//                 failures + i.i.d. site failures (exact enumeration at this
//                 support size, Naive-fallback search): accepts the same
//                 latency-improving moves only while the availability
//                 penalty stays paid, ending spread 4/3/2 across regions.
// The objective's unavailable_penalty_ms is set to the engine's give-up
// wall-clock (full retry chain: max_attempts timeouts + backoffs), so the
// analytic J prices an unserved request at exactly what the client pays.
//
// Both placements then face the same injected fault storms (sim/fault:
// every site cycling through crash/recovery plus whole-region blackouts)
// in the queueing engine with timeouts, bounded retries, and Suspicion
// failover — the realistic reactive detector, not the oracle. The horizon
// is long (1 h simulated) because storm schedules over short horizons are
// dominated by seed luck. Payload columns: completed-request p99, the
// degraded-mode p99 (abandoned requests scored at their give-up time —
// immune to the survivorship bias where a placement that abandons its
// storm-time requests drops them from the percentile), and measured
// unavailability. A regional blackout takes out exactly the colocated
// quorum elements, so the latency-only placement abandons every request
// for the duration of each central-region storm while the failure-aware
// one fails over and keeps completing.
//
// Operating point notes (probed): retry amplification is metastable — at
// max_attempts >= 5 or suspicion TTLs that outlive storms, timed-out
// retries from the whole WAN concentrate on the few spread survivors,
// congestion-suspect live sites, and collapse the run; 4 attempts with a
// 2 s TTL stays stable at rho 0.25.
//
// QP_SIM_SMOKE=1 shrinks the horizon and search for CI smoke runs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/failure_objective.hpp"
#include "core/local_search.hpp"
#include "core/objective.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "net/synthetic.hpp"
#include "quorum/majority.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace qp;

struct BenchSetup {
  net::SyntheticTopology topology;
  quorum::MajorityQuorum system{9, 5};
  core::FailureModel model;
  core::FailureAwareOptions options;
  sim::RetryPolicy retry;
  bool smoke = false;
};

BenchSetup make_setup() {
  net::SyntheticConfig topo;
  topo.seed = 20070601;
  // One dense region at the latency center of the demand: the setting where
  // the latency-only optimum is maximally fragile to a regional blackout.
  topo.regions = {{"us-east", 40.0, -75.0, 4.0, 20},
                  {"us-west", 37.0, -122.0, 4.0, 10},
                  {"eu", 50.0, 8.0, 5.0, 12},
                  {"asia", 35.0, 130.0, 5.0, 8}};
  BenchSetup setup{.topology = net::generate_topology(topo),
                   .model = {},
                   .options = {},
                   .retry = {}};
  setup.smoke = std::getenv("QP_SIM_SMOKE") != nullptr;
  setup.model.site_failure_prob = 0.02;
  setup.model.region_failure_prob = 0.05;
  setup.model.site_region = sim::region_partition(setup.topology.sites);

  // One client SLA for both placements: timeout covers the worst RTT in the
  // whole matrix (placement-tuned timeouts would hand the spread placement a
  // longer giveup chain and poison the p99 comparison).
  const net::LatencyMatrix& matrix = setup.topology.matrix;
  double global_max_rtt = 0.0;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    for (std::size_t w = 0; w < matrix.size(); ++w) {
      global_max_rtt = std::max(global_max_rtt, matrix.rtt(v, w));
    }
  }
  setup.retry.timeout_ms = 1.25 * global_max_rtt + 25.0;
  setup.retry.max_attempts = 4;
  setup.retry.backoff_base_ms = 5.0;
  setup.retry.jitter_frac = 0.25;

  // Price an unserved request at the client's give-up wall-clock (the whole
  // retry chain, jitter aside) — the analytic twin of the degraded-mode p99.
  double giveup = 0.0;
  for (std::size_t attempt = 1; attempt <= setup.retry.max_attempts; ++attempt) {
    giveup += setup.retry.timeout_ms;
    if (attempt < setup.retry.max_attempts) {
      giveup += std::min(setup.retry.backoff_base_ms * static_cast<double>(1u << (attempt - 1)),
                         setup.retry.backoff_max_ms);
    }
  }
  setup.options.unavailable_penalty_ms = giveup;
  return setup;
}

/// Round-robin one-to-one placement over the regions, most-central sites of
/// each region first — the spread starting point both searches refine.
core::Placement spread_initial(const BenchSetup& setup) {
  const net::LatencyMatrix& matrix = setup.topology.matrix;
  const std::vector<std::size_t>& region = setup.model.site_region;
  const std::size_t regions =
      1 + *std::max_element(region.begin(), region.end());
  std::vector<std::size_t> order(matrix.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> total(matrix.size(), 0.0);
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    for (std::size_t w = 0; w < matrix.size(); ++w) total[v] += matrix.rtt(v, w);
  }
  std::sort(order.begin(), order.end(),
            [&total](std::size_t a, std::size_t b) { return total[a] < total[b]; });
  std::vector<std::vector<std::size_t>> by_region(regions);
  for (std::size_t site : order) by_region[region[site]].push_back(site);
  core::Placement placement;
  std::vector<std::size_t> next(regions, 0);
  for (std::size_t u = 0; u < setup.system.universe_size(); ++u) {
    std::size_t r = u % regions;
    while (next[r] >= by_region[r].size()) r = (r + 1) % regions;
    placement.site_of.push_back(by_region[r][next[r]++]);
  }
  return placement;
}

struct PlacementRow {
  std::string name;
  core::Placement placement;
  double objective_ms = 0.0;             // FailureAware J of this placement.
  double unavailability_analytic = 0.0;  // FailureAware prediction.
  sim::EngineResult result;
};

/// Runs the fault-storm engine on one placement: uniform clients at peak
/// rho 0.25, per-site + regional fault injection drawn from the same law the
/// aware objective optimizes for, retries with Suspicion failover.
sim::EngineResult run_storm(const BenchSetup& setup, const core::Placement& placement) {
  const net::LatencyMatrix& matrix = setup.topology.matrix;
  const std::vector<double> site_load =
      core::site_loads_closest(matrix, setup.system, placement);
  const double service = 1.0;
  const std::vector<double> rates = sim::scale_rates_to_peak_utilization(
      std::vector<double>(matrix.size(), 1.0), site_load, service, 0.25);

  sim::EngineConfig engine;
  engine.service_time_ms = service;
  engine.strategy = sim::EngineStrategy::Closest;
  engine.warmup_ms = setup.smoke ? 500.0 : 2'000.0;
  engine.duration_ms = setup.smoke ? 30'000.0 : 3'600'000.0;
  engine.replications = 1;
  engine.master_seed = 424242;

  sim::FaultInjectorConfig fault;
  fault.seed = 0x5707'1113ULL;
  fault.horizon_ms = engine.warmup_ms + engine.duration_ms;
  fault.site =
      sim::FaultProcess::for_down_probability(setup.model.site_failure_prob, 2'500.0);
  fault.regional = sim::FaultProcess::for_down_probability(
      setup.model.region_failure_prob, 2'000.0);
  fault.site_region = setup.model.site_region;
  engine.outages = sim::FaultInjector{fault}.schedule(matrix.size());

  engine.retry = setup.retry;
  engine.failover = sim::FailoverMode::Suspicion;
  return run_engine(matrix, setup.system, placement, rates, engine);
}

// Timing kernel: Monte-Carlo failure-set evaluations per second — the
// per-candidate cost the failure-aware search pays beyond the exact-
// enumeration regime (exact_site_limit = 0 forces the MC path).
void BM_FailureAwareEvaluate(benchmark::State& state) {
  const BenchSetup setup = make_setup();
  const core::Placement placement =
      core::best_majority_placement(setup.topology.matrix, setup.system).placement;
  core::FailureAwareOptions options = setup.options;
  options.exact_site_limit = 0;
  options.mc_samples = 20'000;
  const core::FailureAwareObjective objective{0.0, setup.model, options};
  std::size_t evals = 0;
  for (auto _ : state) {
    const auto detailed =
        objective.evaluate_detailed(setup.topology.matrix, setup.system, placement);
    benchmark::DoNotOptimize(detailed.objective_ms);
    ++evals;
  }
  state.counters["evals_per_s"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FailureAwareEvaluate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "# Fault tolerance: failure-aware vs failure-oblivious placement\n";
  const BenchSetup setup = make_setup();
  const net::LatencyMatrix& matrix = setup.topology.matrix;

  const core::Placement initial = spread_initial(setup);
  // Support is 9 sites <= exact_site_limit, so the search evaluates the
  // failure law exactly — no Monte-Carlo noise in move comparisons.
  const core::FailureAwareObjective aware_objective{0.0, setup.model, setup.options};

  core::LocalSearchOptions search;
  search.max_rounds = setup.smoke ? 8 : 30;

  const core::ClosestStrategyObjective oblivious_objective{0.0};
  search.objective = &oblivious_objective;
  const core::Placement oblivious =
      core::local_search_placement(matrix, setup.system, initial, search).placement;

  search.objective = &aware_objective;  // supports_delta() false -> Naive.
  const core::Placement aware =
      core::local_search_placement(matrix, setup.system, initial, search).placement;

  std::vector<PlacementRow> rows;
  for (auto& [name, placement] :
       {std::pair<std::string, const core::Placement&>{"oblivious", oblivious},
        std::pair<std::string, const core::Placement&>{"aware", aware}}) {
    PlacementRow row;
    row.name = name;
    row.placement = placement;
    const auto detailed = aware_objective.evaluate_detailed(matrix, setup.system, placement);
    row.objective_ms = detailed.objective_ms;
    row.unavailability_analytic = detailed.unavailability;
    row.result = run_storm(setup, placement);
    rows.push_back(std::move(row));
  }

  std::cout << "placement,system,objective_ms,unavailability_analytic,mean_ms,"
               "p99_ms,degraded_p99_ms,unavailability_sim,retries,abandoned,completed\n";
  for (const PlacementRow& row : rows) {
    std::cout << row.name << ',' << setup.system.name() << ',' << row.objective_ms << ','
              << row.unavailability_analytic << ',' << row.result.mean_response_ms << ','
              << row.result.p99_ms << ',' << row.result.degraded_p99_ms << ','
              << row.result.unavailability << ',' << row.result.retries << ','
              << row.result.abandoned << ',' << row.result.completed << '\n';
  }

  for (const PlacementRow& row : rows) {
    const std::string name =
        "FaultTolerance/world-50/" + setup.system.name() + "/" + row.name;
    const double objective_ms = row.objective_ms;
    const double unavailability_analytic = row.unavailability_analytic;
    const sim::EngineResult result = row.result;
    qp::bench::register_point(name, [=](benchmark::State& state) {
      state.counters["objective_ms"] = objective_ms;
      state.counters["unavailability_analytic"] = unavailability_analytic;
      state.counters["mean_ms"] = result.mean_response_ms;
      state.counters["p99_ms"] = result.p99_ms;
      state.counters["degraded_p99_ms"] = result.degraded_p99_ms;
      state.counters["unavailability_sim"] = result.unavailability;
      state.counters["retries"] = static_cast<double>(result.retries);
      state.counters["abandoned"] = static_cast<double>(result.abandoned);
    });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
