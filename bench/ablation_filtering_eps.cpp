// Ablation: the Lin–Vitter filtering parameter eps in the many-to-one
// placement pipeline trades delay against capacity violation — small eps
// keeps assignments close to the fractional optimum's distances but
// renormalizes more mass onto fewer nodes (bigger violation); large eps
// tolerates farther nodes but respects capacities more tightly.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/capacity.hpp"
#include "core/manytoone.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"

int main(int argc, char** argv) {
  using namespace qp;
  const net::LatencyMatrix m = net::planetlab50_synth();
  const quorum::GridQuorum grid{4};
  const std::size_t quorum_count = grid.universe_size();
  const std::vector<double> probs(quorum_count, 1.0 / static_cast<double>(quorum_count));
  const auto caps = core::uniform_capacities(m.size(), 0.55);
  const std::size_t v0 = 0;

  struct Row {
    double eps;
    double lp_bound;
    double achieved_delay;
    double violation;
  };
  std::vector<Row> rows;
  const auto quorums = grid.enumerate_quorums(1000);
  for (double eps : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::ManyToOneOptions options;
    options.epsilon = eps;
    const auto result = core::many_to_one_placement(m, grid, probs, caps, v0, options);
    if (result.status != lp::SolveStatus::Optimal) continue;
    const double delay = core::average_network_delay_under_distribution(
        m, quorums, probs, result.placement);
    rows.push_back(Row{eps, result.lp_delay_bound, delay, result.max_capacity_violation});
  }

  std::cout << "# Ablation: Lin-Vitter filtering epsilon (Grid 4x4, Planetlab-50 synthetic,"
               " cap 0.55)\n";
  std::cout << "epsilon,lp_delay_bound_ms,avg_network_delay_ms,max_capacity_violation\n";
  for (const Row& r : rows) {
    std::cout << r.eps << ',' << r.lp_bound << ',' << r.achieved_delay << ','
              << r.violation << '\n';
  }

  for (const Row& r : rows) {
    qp::bench::register_point(
        "AblationFiltering/eps=" + std::to_string(r.eps).substr(0, 4),
        [r](benchmark::State& state) {
          state.counters["lp_bound_ms"] = r.lp_bound;
          state.counters["network_delay_ms"] = r.achieved_delay;
          state.counters["capacity_violation"] = r.violation;
        });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
