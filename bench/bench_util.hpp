// Shared helpers for the figure benches: every binary prints its figure's
// series as CSV (exact regeneration of the paper plot's data), registers one
// google-benchmark entry per data point carrying the values as counters, and
// registers at least one genuine timing benchmark of the kernel involved.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

namespace qp::bench {

/// Registers a no-op benchmark whose counters carry a figure data point.
template <typename Fill>
void register_point(const std::string& name, Fill fill) {
  benchmark::RegisterBenchmark(name.c_str(), [fill](benchmark::State& state) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(&state);
    }
    fill(state);
  })->Iterations(1);
}

inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace qp::bench
