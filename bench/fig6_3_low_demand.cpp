// Figure 6.3: response times on Planetlab-50, alpha = 0, closest access
// strategy, for the three Majority families, Grid, and the singleton, as
// universe size grows.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/placement.hpp"
#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"
#include "quorum/majority.hpp"

namespace {

const qp::net::LatencyMatrix& topology() {
  static const qp::net::LatencyMatrix m = qp::net::planetlab50_synth();
  return m;
}

// Genuine timing benchmark: one full best-placement search + closest-strategy
// evaluation for the (t+1,2t+1) majority at t = 5 (n = 11).
void BM_MajorityPlacementSearch(benchmark::State& state) {
  const auto& m = topology();
  const qp::quorum::MajorityQuorum system =
      qp::quorum::make_majority(qp::quorum::MajorityFamily::SimpleMajority,
                                static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = qp::core::best_majority_placement(m, system);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MajorityPlacementSearch)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "# Figure 6.3: closest strategy, alpha = 0, Planetlab-50 (synthetic)\n";
  const auto points = qp::eval::low_demand_sweep(topology());
  qp::eval::print_csv(std::cout, points);

  for (const auto& p : points) {
    qp::bench::register_point(
        "Fig6_3/" + p.system + "/n=" + std::to_string(p.universe),
        [p](benchmark::State& state) {
          state.counters["universe"] = static_cast<double>(p.universe);
          state.counters["response_ms"] = p.response_ms;
        });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
