// Extension figure: the paper's Figure 6.3 comparison (closest strategy,
// alpha = 0) extended with the Tree and finite-projective-plane systems, to
// place the extensions on the quorum-size / network-delay spectrum.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "net/synthetic.hpp"
#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/singleton.hpp"
#include "quorum/tree.hpp"

namespace {

struct Row {
  std::string system;
  std::size_t universe;
  double quorum_size;  // Size of the system's smallest quorum.
  double response_ms;
  double load;
};

Row evaluate(const qp::net::LatencyMatrix& m, const qp::quorum::QuorumSystem& system) {
  using namespace qp;
  // Generic placement: best ball placement over all anchors (optimal for
  // majorities, a sensible default for the others).
  const core::PlacementSearchResult placed = core::best_placement(
      m, system, [&](std::size_t v0) {
        return core::majority_ball_placement(m, system.universe_size(), v0);
      });
  const core::Evaluation eval =
      core::evaluate_closest(m, system, placed.placement, /*alpha=*/0.0);
  std::size_t smallest = system.universe_size();
  for (const auto& quorum : system.enumerate_quorums(100'000)) {
    smallest = std::min(smallest, quorum.size());
  }
  return Row{system.name(), system.universe_size(), static_cast<double>(smallest),
             eval.avg_response_ms, system.optimal_load()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qp;
  const net::LatencyMatrix m = net::planetlab50_synth();

  std::vector<Row> rows;
  rows.push_back(evaluate(m, quorum::SingletonQuorum{}));
  for (std::size_t t : {1u, 3u, 5u}) {
    rows.push_back(evaluate(m, quorum::make_majority(quorum::MajorityFamily::SimpleMajority, t)));
  }
  for (std::size_t k : {3u, 5u, 7u}) {
    const quorum::GridQuorum grid{k};
    // Grid gets its specialized construction.
    const auto placed = core::best_grid_placement(m, k);
    const auto eval = core::evaluate_closest(m, grid, placed.placement, 0.0);
    rows.push_back(Row{grid.name(), grid.universe_size(),
                       static_cast<double>(2 * k - 1), eval.avg_response_ms,
                       grid.optimal_load()});
  }
  for (std::size_t h : {1u, 2u, 3u, 4u}) {
    rows.push_back(evaluate(m, quorum::TreeQuorum{h}));
  }
  for (std::size_t q : {2u, 3u, 5u}) {
    rows.push_back(evaluate(m, quorum::FppQuorum{q}));
  }

  std::cout << "# Extension: closest-strategy response (alpha=0) for the full quorum zoo\n"
            << "# on Planetlab-50 (synthetic); load = L_opt of the system\n";
  std::cout << "system,universe,min_quorum_size,response_ms,optimal_load\n";
  for (const Row& r : rows) {
    std::cout << r.system << ',' << r.universe << ',' << r.quorum_size << ','
              << r.response_ms << ',' << r.load << '\n';
  }

  for (const Row& r : rows) {
    qp::bench::register_point("QuorumZoo/" + r.system, [r](benchmark::State& state) {
      state.counters["response_ms"] = r.response_ms;
      state.counters["optimal_load"] = r.load;
    });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
