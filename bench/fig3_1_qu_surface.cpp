// Figure 3.1: the Q/U response-time / network-delay surface over
// (number of clients, universe size), reproduced with the discrete-event
// simulator in place of the paper's Modelnet testbed.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/placement.hpp"
#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"
#include "quorum/majority.hpp"
#include "sim/client_sites.hpp"
#include "sim/protocol_sim.hpp"

namespace {

const qp::net::LatencyMatrix& topology() {
  static const qp::net::LatencyMatrix m = qp::net::planetlab50_synth();
  return m;
}

// Timing kernel: one simulated second of the t=2 system with 50 clients.
void BM_ProtocolSimulation(benchmark::State& state) {
  const auto& m = topology();
  const qp::quorum::MajorityQuorum system =
      qp::quorum::make_majority(qp::quorum::MajorityFamily::QuThreshold, 2);
  const auto placement = qp::core::best_majority_placement(m, system).placement;
  const auto clients = qp::sim::representative_client_sites(m, system, placement, 10);
  qp::sim::ProtocolSimConfig config;
  config.clients_per_site = 5;
  config.duration_ms = 1000.0;
  config.warmup_ms = 100.0;
  for (auto _ : state) {
    auto result = qp::sim::run_protocol_sim(m, system, placement, clients, config);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ProtocolSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "# Figure 3.1: Q/U response time & network delay surface (DES)\n";
  qp::eval::QuSweepConfig config;
  config.duration_ms = 10'000.0;
  config.warmup_ms = 2'000.0;
  // Emulate the real Q/U implementation's per-message CPU cost (absent from
  // the paper's stated 1 ms model but present in its testbed numbers).
  config.per_message_cpu_ms = 0.3;
  const auto points = qp::eval::qu_response_surface(topology(), config);
  qp::eval::print_csv(std::cout, points);

  for (const auto& p : points) {
    qp::bench::register_point(
        "Fig3_1/t=" + std::to_string(p.t) + "/clients=" + std::to_string(p.clients),
        [p](benchmark::State& state) {
          state.counters["response_ms"] = p.response_ms;
          state.counters["network_delay_ms"] = p.network_delay_ms;
        });
  }
  return qp::bench::run_benchmarks(argc, argv);
}
