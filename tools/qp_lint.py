#!/usr/bin/env python3
"""qp-lint: the project determinism linter.

Encodes the reproducibility invariants this codebase depends on — bit-identical
results for any QP_THREADS, delta engines provably equal to fresh rebuilds,
all randomness flowing through common/rng — as mechanical lint rules over
src/, tests/, and bench/. Regex + a lightweight C++ tokenizer (comment and
string stripping), no compiler needed.

Rules (ID / name / scope):
  QPL001 unordered-iter     src,bench  Iterating std::unordered_{map,set}
                                       produces implementation-defined order;
                                       result-producing code must use ordered
                                       containers or index loops.
  QPL002 nondeterministic-rng  all     std::rand / std::random_device /
                                       std::mt19937 & friends vary across
                                       stdlibs or runs; use common/rng (Rng).
                                       (src/common/rng.* itself is exempt.)
  QPL003 fp-accumulation    src,bench  std::reduce / std::transform_reduce /
                                       std::atomic<double|float> accumulate
                                       floating point in nondeterministic
                                       order; reduce serially into
                                       index-addressed slots instead.
  QPL004 naked-assert       src        Bare assert() arms by build type
                                       (NDEBUG); use QP_CHECK /
                                       QP_CHECK_EQ_EPS / QP_PARITY_ASSERT
                                       from common/check.hpp, leveled by
                                       QP_CHECK_LEVEL. (static_assert is
                                       fine; common/check.hpp is exempt.)
  QPL005 omp-pragma         all        #pragma omp is allowed only in
                                       common/simd_kernels.hpp (pragma-only
                                       `omp simd`, no runtime threads).
  QPL006 parity-reference   src        Every DeltaEvaluator fast-path file
                                       (src/**/delta_eval*.cpp) must carry a
                                       QP_PARITY_ASSERT reference so the
                                       level-2 audit cannot silently vanish.
  QPL007 hot-path-sync      src/core, src/lp, src/sim
                                       Direct std::atomic / mutex /
                                       condition_variable use in the compute
                                       layers; telemetry belongs in the obs::
                                       thread-local shard API (src/obs), and
                                       real synchronization belongs in
                                       common/thread_pool.
  QPL000 bad-annotation     all        An allow-annotation naming an unknown
                                       rule (never suppressible).

Suppression: a finding is allowed by an annotation naming its rule, either
trailing the offending line or on the line directly above it:

    // qp-lint: allow(unordered-iter)  -- why this iteration is order-safe
    for (const auto& [name, table] : cache_) ...

For the file-scoped QPL006 the annotation may sit anywhere in the file.
Annotations must carry valid rule names; several rules separated by commas
are accepted: `// qp-lint: allow(unordered-iter, fp-accumulation)`.

Usage:
    qp_lint.py [--root DIR] [--list-rules] [file ...]

With no files, scans src/ tests/ bench/ under --root (default: the
repository root containing this tools/ directory). Exit status: 0 clean,
1 findings, 2 usage error.
"""

import argparse
import re
import sys
from pathlib import Path

EXTENSIONS = {".cpp", ".cc", ".hpp", ".h"}
SCAN_DIRS = ("src", "tests", "bench")

ANNOTATION_RE = re.compile(r"qp-lint:\s*allow\(([^)]*)\)")


class Finding:
    def __init__(self, path, line, rule_id, rule_name, message):
        self.path = path
        self.line = line
        self.rule_id = rule_id
        self.rule_name = rule_name
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule_id} [{self.rule_name}] {self.message}"


def split_code_and_comments(text):
    """Returns (code_lines, comment_lines): per-line source with comments and
    string/char literal *contents* blanked out of the code, and the comment
    text collected separately (so annotations are read from comments only).
    Handles //, /* */, "...", '...', and R"delim(...)delim" raw strings."""
    code = []
    comments = []
    code_line = []
    comment_line = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_terminator = ""

    def flush():
        code.append("".join(code_line))
        comments.append("".join(comment_line))
        code_line.clear()
        comment_line.clear()

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            flush()
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if ch == "R" and nxt == '"':
                m = re.match(r'R"([^()\\ \n]*)\(', text[i:])
                if m:
                    raw_terminator = ")" + m.group(1) + '"'
                    code_line.append('R""')
                    state = "raw"
                    i += m.end()
                    continue
            if ch == '"':
                code_line.append('"')
                state = "string"
                i += 1
                continue
            if ch == "'":
                code_line.append("'")
                state = "char"
                i += 1
                continue
            code_line.append(ch)
            i += 1
        elif state == "line_comment":
            comment_line.append(ch)
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                comment_line.append(ch)
                i += 1
        elif state == "string":
            if ch == "\\":
                i += 2
            elif ch == '"':
                code_line.append('"')
                state = "code"
                i += 1
            else:
                i += 1
        elif state == "char":
            if ch == "\\":
                i += 2
            elif ch == "'":
                code_line.append("'")
                state = "code"
                i += 1
            else:
                i += 1
        elif state == "raw":
            if text.startswith(raw_terminator, i):
                code_line.append('""')
                state = "code"
                i += len(raw_terminator)
            else:
                i += 1
    flush()
    return code, comments


class FileScan:
    """One linted file: stripped code, comment text, and allow-annotations."""

    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel  # repo-relative posix path, used for scoping
        self.code, self.comments = split_code_and_comments(text)
        # line number (1-based) -> set of allowed rule names on that line.
        self.allows = {}
        self.bad_annotations = []  # (line, bad-name)
        for lineno, comment in enumerate(self.comments, start=1):
            for match in ANNOTATION_RE.finditer(comment):
                names = {name.strip() for name in match.group(1).split(",") if name.strip()}
                for name in names:
                    if name not in RULE_NAMES:
                        self.bad_annotations.append((lineno, name))
                self.allows.setdefault(lineno, set()).update(names & RULE_NAMES)

    def allowed(self, lineno, rule_name):
        """An annotation suppresses findings on its own line and the next."""
        return rule_name in self.allows.get(lineno, set()) or rule_name in self.allows.get(
            lineno - 1, set()
        )

    def allowed_anywhere(self, rule_name):
        return any(rule_name in names for names in self.allows.values())


def in_dirs(rel, *dirs):
    return any(rel == d or rel.startswith(d + "/") for d in dirs)


# --- rules -----------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:multi)?(?:map|set)\s*<.*>[&\s]*(\w+)\s*[;={(,)]"
)
UNORDERED_TYPE_RE = re.compile(r"\bstd::unordered_(?:multi)?(?:map|set)\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*:\s*([A-Za-z_]\w*(?:\.\w+|->\w+)*)\s*\)")
# Only begin()/cbegin(): an iteration necessarily starts there, whereas
# end() alone also appears in benign `find(...) != end()` membership tests.
BEGIN_END_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")
RNG_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\bstd::random_device\b|\brandom_device\s+\w|"
    r"\bstd::mt19937(?:_64)?\b|\bstd::default_random_engine\b|\bstd::minstd_rand"
)
FP_ACCUM_RE = re.compile(
    r"\bstd::(?:transform_)?reduce\b|\bstd::atomic\s*<\s*(?:double|float|long\s+double)\b"
)
NAKED_ASSERT_RE = re.compile(r"(?<![\w_])(?<!static_)assert\s*\(")
OMP_PRAGMA_RE = re.compile(r"#\s*pragma\s+omp\b")
HOT_SYNC_RE = re.compile(
    r"\bstd::(?:atomic(?:_ref|_flag)?\s*<|atomic_flag\b|"
    r"(?:recursive_|timed_|shared_)*mutex\b|"
    r"lock_guard\b|unique_lock\b|scoped_lock\b|shared_lock\b|"
    r"condition_variable(?:_any)?\b|call_once\b|once_flag\b|"
    r"atomic_(?:load|store|exchange|fetch_add|fetch_sub|thread_fence)\b)"
)


def rule_unordered_iter(scan):
    if not in_dirs(scan.rel, "src", "bench"):
        return
    tracked = set()
    for code in scan.code:
        for match in UNORDERED_DECL_RE.finditer(code):
            tracked.add(match.group(1))
    for lineno, code in enumerate(scan.code, start=1):
        hit = None
        for match in RANGE_FOR_RE.finditer(code):
            target = match.group(1).split(".")[-1].split("->")[-1]
            if target in tracked:
                hit = f"range-for over unordered container '{match.group(1)}'"
        # A range-for over a freshly named unordered type on the same line.
        if hit is None and UNORDERED_TYPE_RE.search(code) and RANGE_FOR_RE.search(code):
            hit = "range-for over an unordered container"
        if hit is None:
            for match in BEGIN_END_RE.finditer(code):
                if match.group(1) in tracked:
                    hit = f"iterator walk of unordered container '{match.group(1)}'"
        if hit:
            yield lineno, (
                f"{hit}: iteration order is implementation-defined and breaks "
                "bit-reproducibility; use an ordered container, an index loop, or "
                "annotate why the order cannot reach results"
            )


def rule_nondeterministic_rng(scan):
    if scan.rel.startswith("src/common/rng."):
        return
    for lineno, code in enumerate(scan.code, start=1):
        if RNG_RE.search(code):
            yield lineno, (
                "nondeterministically-seeded or stdlib-dependent RNG; all randomness "
                "must flow through common/rng (qp::common::Rng, fixed 64-bit seeds)"
            )


def rule_fp_accumulation(scan):
    if not in_dirs(scan.rel, "src", "bench"):
        return
    for lineno, code in enumerate(scan.code, start=1):
        if FP_ACCUM_RE.search(code):
            yield lineno, (
                "unordered floating-point accumulation (std::reduce / std::atomic "
                "float): reduction order must be deterministic — accumulate into "
                "index-addressed slots and reduce serially (see common/thread_pool)"
            )


def rule_naked_assert(scan):
    if not in_dirs(scan.rel, "src") or scan.rel == "src/common/check.hpp":
        return
    for lineno, code in enumerate(scan.code, start=1):
        if NAKED_ASSERT_RE.search(code):
            yield lineno, (
                "naked assert() arms by build type; use QP_CHECK / QP_CHECK_EQ_EPS / "
                "QP_PARITY_ASSERT from common/check.hpp (leveled by QP_CHECK_LEVEL)"
            )


def rule_omp_pragma(scan):
    if scan.rel == "src/common/simd_kernels.hpp":
        return
    for lineno, code in enumerate(scan.code, start=1):
        if OMP_PRAGMA_RE.search(code):
            yield lineno, (
                "#pragma omp outside common/simd_kernels.hpp: OpenMP threading is "
                "banned (determinism flows through common/thread_pool); pragma-only "
                "`omp simd` lives in simd_kernels.hpp exclusively"
            )


def rule_parity_reference(scan):
    if not in_dirs(scan.rel, "src"):
        return
    name = scan.rel.rsplit("/", 1)[-1]
    if not (name.startswith("delta_eval") and name.endswith(".cpp")):
        return
    if not any("QP_PARITY_ASSERT" in code for code in scan.code):
        yield 1, (
            "DeltaEvaluator fast-path file has no QP_PARITY_ASSERT reference: every "
            "incremental engine must audit itself against a fresh evaluation at "
            "QP_CHECK_LEVEL=2"
        )


def rule_hot_path_sync(scan):
    if not in_dirs(scan.rel, "src/core", "src/lp", "src/sim"):
        return
    for lineno, code in enumerate(scan.code, start=1):
        if HOT_SYNC_RE.search(code):
            yield lineno, (
                "direct synchronization primitive in a compute layer: counters and "
                "gauges must go through the obs:: thread-local shard API (obs/metrics), "
                "and thread coordination through common/thread_pool — a stray atomic "
                "here is either hidden telemetry that skews the overhead budget or a "
                "determinism hazard"
            )


RULES = [
    ("QPL001", "unordered-iter", rule_unordered_iter, False),
    ("QPL002", "nondeterministic-rng", rule_nondeterministic_rng, False),
    ("QPL003", "fp-accumulation", rule_fp_accumulation, False),
    ("QPL004", "naked-assert", rule_naked_assert, False),
    ("QPL005", "omp-pragma", rule_omp_pragma, False),
    ("QPL006", "parity-reference", rule_parity_reference, True),  # file-scoped
    ("QPL007", "hot-path-sync", rule_hot_path_sync, False),
]
RULE_NAMES = {name for _, name, _, _ in RULES}


def lint_file(path, root):
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as error:
        raise SystemExit(f"qp-lint: cannot read {path}: {error}")
    scan = FileScan(path, rel, text)
    findings = []
    for lineno, bad in scan.bad_annotations:
        findings.append(
            Finding(
                path,
                lineno,
                "QPL000",
                "bad-annotation",
                f"allow-annotation names unknown rule '{bad}' "
                f"(known: {', '.join(sorted(RULE_NAMES))})",
            )
        )
    for rule_id, rule_name, rule, file_scoped in RULES:
        for lineno, message in rule(scan) or ():
            suppressed = (
                scan.allowed_anywhere(rule_name)
                if file_scoped
                else scan.allowed(lineno, rule_name)
            )
            if not suppressed:
                findings.append(Finding(path, lineno, rule_id, rule_name, message))
    return findings


def collect_files(root, explicit):
    if explicit:
        return [Path(f) for f in explicit]
    files = []
    for directory in SCAN_DIRS:
        base = root / directory
        if not base.is_dir():
            continue
        files.extend(
            p for p in sorted(base.rglob("*")) if p.is_file() and p.suffix in EXTENSIONS
        )
    return files


def main(argv):
    parser = argparse.ArgumentParser(prog="qp-lint", description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the parent of tools/)",
    )
    parser.add_argument("--list-rules", action="store_true", help="print rules and exit")
    parser.add_argument("files", nargs="*", help="lint only these files")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_name, _, file_scoped in RULES:
            scope = "file" if file_scoped else "line"
            print(f"{rule_id}  {rule_name}  ({scope}-scoped)")
        return 0

    if not args.root.is_dir():
        print(f"qp-lint: --root {args.root} is not a directory", file=sys.stderr)
        return 2

    findings = []
    files = collect_files(args.root, args.files)
    for path in files:
        findings.extend(lint_file(path, args.root))

    for finding in findings:
        print(finding)
    if findings:
        print(
            f"qp-lint: {len(findings)} finding(s) in {len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"qp-lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
