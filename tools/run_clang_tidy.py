#!/usr/bin/env python3
"""Run clang-tidy over the project's first-party sources.

Reads compile_commands.json from the build directory (every preset exports
it via CMAKE_EXPORT_COMPILE_COMMANDS), filters to translation units under
src/, and runs clang-tidy on each with the checked-in .clang-tidy config.
Any diagnostic that is not NOLINT-annotated fails the run — this is the
second half of the `lint` CMake target and the CI lint job, next to
tools/qp_lint.py.

Usage:
    run_clang_tidy.py -p <build-dir> [--clang-tidy BIN] [--jobs N]
                      [--filter REGEX]

Exit status: 0 clean, 1 diagnostics emitted, 2 usage/setup error.
"""

import argparse
import json
import multiprocessing
import re
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path


def load_compile_commands(build_dir):
    database = build_dir / "compile_commands.json"
    if not database.is_file():
        print(
            f"run_clang_tidy: {database} not found — configure with "
            "CMAKE_EXPORT_COMPILE_COMMANDS=ON (all presets do)",
            file=sys.stderr,
        )
        return None
    return json.loads(database.read_text())


def main(argv):
    parser = argparse.ArgumentParser(prog="run_clang_tidy")
    parser.add_argument("-p", "--build-dir", type=Path, required=True,
                        help="build directory containing compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary (default: clang-tidy on PATH)")
    parser.add_argument("--jobs", type=int, default=max(1, multiprocessing.cpu_count()),
                        help="parallel clang-tidy processes")
    parser.add_argument("--filter", default=r"/src/.*\.cpp$",
                        help="regex selecting translation units (default: src/*.cpp)")
    args = parser.parse_args(argv)

    commands = load_compile_commands(args.build_dir)
    if commands is None:
        return 2
    pattern = re.compile(args.filter)
    files = sorted({entry["file"] for entry in commands if pattern.search(entry["file"])})
    if not files:
        print(f"run_clang_tidy: no TUs match {args.filter!r}", file=sys.stderr)
        return 2

    def run_one(path):
        result = subprocess.run(
            [args.clang_tidy, "-p", str(args.build_dir), "--quiet", path],
            capture_output=True,
            text=True,
        )
        # clang-tidy prints "N warnings generated" chatter to stderr; the
        # diagnostics themselves go to stdout.
        return path, result.returncode, result.stdout.strip()

    failures = 0
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, returncode, output in pool.map(run_one, files):
            if output or returncode != 0:
                failures += 1
                print(f"--- {path}")
                if output:
                    print(output)
    print(
        f"run_clang_tidy: {len(files)} TU(s), {failures} with diagnostics",
        file=sys.stderr,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
