#!/usr/bin/env python3
"""check_trace: validates a Chrome trace-event JSON file from obs/trace.

Checks the structural contract the tracing layer promises:
  * the file parses as a JSON array (a truncated tail — no closing ']' —
    is repaired first, since the format tolerates it and obs/trace only
    writes the tail on a clean stop_trace);
  * every event is a complete ("ph": "X") event carrying name, ts, dur,
    pid, and tid with sane types and non-negative times;
  * optionally (--require-span-prefix, repeatable) at least one event name
    starts with each required prefix — CI uses this to prove the trace
    actually covers every instrumented layer, not just that tracing works.

Usage:
    check_trace.py TRACE.json [--require-span-prefix PREFIX]...
                   [--min-events N]

Exit status: 0 valid, 1 invalid, 2 usage error.
"""

import argparse
import json
import sys
from pathlib import Path

REQUIRED_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


def load_events(path):
    text = path.read_text(encoding="utf-8")
    if not text.strip():
        raise ValueError("trace file is empty")
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        # A live/killed process leaves the array unterminated (and possibly
        # a trailing comma); the Chrome format explicitly allows this.
        repaired = text.rstrip().rstrip(",")
        try:
            return json.loads(repaired + "\n]")
        except json.JSONDecodeError as error:
            raise ValueError(f"not a JSON array even after tail repair: {error}")


def validate(events, require_prefixes, min_events):
    errors = []
    if not isinstance(events, list):
        return [f"top-level JSON is {type(events).__name__}, expected array"]
    if len(events) < min_events:
        errors.append(f"only {len(events)} event(s), expected >= {min_events}")
    names = set()
    for index, event in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in event]
        if missing:
            errors.append(f"{where}: missing key(s) {', '.join(missing)}")
            continue
        if event["ph"] != "X":
            errors.append(f"{where}: ph={event['ph']!r}, expected complete event 'X'")
        if not isinstance(event["name"], str) or not event["name"]:
            errors.append(f"{where}: name must be a non-empty string")
        else:
            names.add(event["name"])
        for key in ("ts", "dur"):
            if not isinstance(event[key], (int, float)) or event[key] < 0:
                errors.append(f"{where}: {key}={event[key]!r} must be a non-negative number")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int) or event[key] < 0:
                errors.append(f"{where}: {key}={event[key]!r} must be a non-negative int")
    for prefix in require_prefixes:
        if not any(name.startswith(prefix) for name in names):
            errors.append(
                f"no span with prefix '{prefix}' (saw {len(names)} distinct name(s): "
                f"{', '.join(sorted(names)[:8])}{', ...' if len(names) > 8 else ''})"
            )
    return errors


def main(argv):
    parser = argparse.ArgumentParser(
        prog="check_trace", description=__doc__.splitlines()[0]
    )
    parser.add_argument("trace", type=Path, help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require-span-prefix",
        action="append",
        default=[],
        metavar="PREFIX",
        help="require at least one event whose name starts with PREFIX (repeatable)",
    )
    parser.add_argument(
        "--min-events", type=int, default=1, help="minimum event count (default 1)"
    )
    args = parser.parse_args(argv)

    if not args.trace.is_file():
        print(f"check_trace: {args.trace}: no such file", file=sys.stderr)
        return 2
    try:
        events = load_events(args.trace)
    except ValueError as error:
        print(f"check_trace: {args.trace}: {error}", file=sys.stderr)
        return 1

    errors = validate(events, args.require_span_prefix, args.min_events)
    for error in errors[:20]:
        print(f"check_trace: {args.trace}: {error}", file=sys.stderr)
    if errors:
        if len(errors) > 20:
            print(f"check_trace: ... and {len(errors) - 20} more", file=sys.stderr)
        return 1
    distinct = len({e["name"] for e in events})
    print(f"check_trace: OK — {len(events)} event(s), {distinct} distinct span name(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
