#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <set>
#include <vector>

#include "common/combinatorics.hpp"
#include "common/rng.hpp"
#include "common/simd_kernels.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace qp::common {
namespace {

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestoresStream) {
  Rng rng{7};
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.next());
  rng.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next(), first[i]);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{9};
  Rng child = parent.fork(1);
  // The child must not replay the parent's stream.
  Rng parent_again{9};
  EXPECT_NE(child.next(), parent_again.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{11};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng{13};
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Rng rng{17};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng{1};
  EXPECT_THROW((void)rng.below(0), std::invalid_argument);
}

TEST(Rng, BetweenInclusive) {
  Rng rng{19};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW((void)rng.between(3, 1), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng{23};
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng{29};
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) {
    const double x = rng.exponential(3.0);
    EXPECT_GT(x, 0.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, LognormalMedian) {
  Rng rng{31};
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) xs.push_back(rng.lognormal(0.0, 0.5));
  // Median of lognormal(0, sigma) is exp(0) = 1.
  EXPECT_NEAR(percentile(xs, 50.0), 1.0, 0.05);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng{37};
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(20, 8);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (std::size_t v : sample) EXPECT_LT(v, 20u);
  }
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementUniform) {
  Rng rng{41};
  std::vector<int> hits(10, 0);
  const int trials = 50'000;
  for (int trial = 0; trial < trials; ++trial) {
    for (std::size_t v : rng.sample_without_replacement(10, 3)) hits[v] += 1;
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.3, 0.02);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng{43};
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> hits(3, 0);
  const int trials = 40'000;
  for (int trial = 0; trial < trials; ++trial) hits[rng.weighted_index(weights)] += 1;
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[0]) / trials, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(hits[2]) / trials, 0.75, 0.02);
  EXPECT_THROW((void)rng.weighted_index(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)rng.weighted_index(std::vector<double>{-1.0, 2.0}),
               std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{47};
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

// ------------------------------------------------------- SimdKernels

TEST(SimdKernels, GatherIndexedMatchesScalarForAllTailLengths) {
  // gather_indexed only moves data, so whichever gate is compiled in
  // (scalar / AVX2 4-lane / AVX-512 8-lane masked tail) must reproduce the
  // scalar reference bit-for-bit. Sizes 0..33 cover every masked-tail
  // remainder of both vector widths; indices repeat and jump around so a
  // lane-ordering bug cannot cancel out.
  Rng rng{2024};
  std::vector<double> base(257);
  for (double& v : base) v = rng.normal(0.0, 1e6);
  base[0] = 0.0;
  base[1] = -0.0;
  base[2] = std::numeric_limits<double>::denorm_min();
  base[3] = -std::numeric_limits<double>::infinity();
  for (std::size_t n = 0; n <= 33; ++n) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = rng.below(base.size());
    std::vector<double> out(n + 2, 42.0);  // Canary slots past the end.
    gather_indexed(base.data(), idx.data(), n, out.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
                std::bit_cast<std::uint64_t>(base[idx[i]]))
          << "n=" << n << " i=" << i;
    }
    EXPECT_EQ(out[n], 42.0) << "tail overwrote past the end at n=" << n;
    EXPECT_EQ(out[n + 1], 42.0);
  }
}

// ---------------------------------------------------------------- Stats

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng{53};
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Stats, MeanAndPercentile) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 101.0), std::invalid_argument);
}

TEST(Stats, Correlation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(correlation(xs, zs), -1.0, 1e-12);
  const std::vector<double> constant{5.0, 5.0, 5.0, 5.0};
  EXPECT_EQ(correlation(xs, constant), 0.0);
  EXPECT_THROW((void)correlation(xs, std::vector<double>{1.0}), std::invalid_argument);
}

// --------------------------------------------------------- Combinatorics

TEST(Combinatorics, ExactSmallValues) {
  EXPECT_EQ(binomial_exact(5, 2), 10u);
  EXPECT_EQ(binomial_exact(10, 0), 1u);
  EXPECT_EQ(binomial_exact(10, 10), 1u);
  EXPECT_EQ(binomial_exact(10, 11), 0u);
  EXPECT_EQ(binomial_exact(52, 5), 2'598'960u);
}

TEST(Combinatorics, DoubleMatchesExact) {
  for (std::size_t n = 0; n <= 30; ++n) {
    for (std::size_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(binomial(n, k), static_cast<double>(binomial_exact(n, k)),
                  1e-6 * static_cast<double>(binomial_exact(n, k)) + 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Combinatorics, LogBinomialHandlesHugeArguments) {
  // C(161, 80) overflows doubles in linear space but not in log space.
  const double log_value = log_binomial(161, 80);
  EXPECT_TRUE(std::isfinite(log_value));
  EXPECT_GT(log_value, 100.0);
  EXPECT_EQ(log_binomial(5, 6), -std::numeric_limits<double>::infinity());
}

TEST(Combinatorics, BinomialRatioStable) {
  // C(100, 10) / C(200, 10) computed stably.
  const double ratio = binomial_ratio(100, 200, 10);
  const double expected = binomial(100, 10) / binomial(200, 10);
  EXPECT_NEAR(ratio, expected, 1e-12);
  EXPECT_EQ(binomial_ratio(5, 10, 6), 0.0);
}

TEST(Combinatorics, AllSubsetsEnumeration) {
  const auto subsets = all_subsets(5, 3);
  EXPECT_EQ(subsets.size(), 10u);
  // Lexicographic order, all distinct, all sorted.
  std::set<std::vector<std::size_t>> unique(subsets.begin(), subsets.end());
  EXPECT_EQ(unique.size(), subsets.size());
  for (const auto& s : subsets) {
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(s.size(), 3u);
  }
  EXPECT_EQ(subsets.front(), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(subsets.back(), (std::vector<std::size_t>{2, 3, 4}));
}

TEST(Combinatorics, AllSubsetsEdgeCases) {
  EXPECT_EQ(all_subsets(4, 0).size(), 1u);  // The empty subset.
  EXPECT_EQ(all_subsets(4, 4).size(), 1u);
  EXPECT_TRUE(all_subsets(3, 4).empty());
  EXPECT_THROW((void)all_subsets(100, 50), std::invalid_argument);
}

TEST(Combinatorics, BinomialRatioRowPinsDirectComputation) {
  // The memoized CDF rows feeding the order-statistic fast path must equal
  // the direct (uncached) computation exactly, including the zero prefix and
  // the row[n] == 1 terminal value.
  for (const auto& [n, k] : {std::pair<std::size_t, std::size_t>{10, 4},
                             {49, 25},
                             {161, 80},
                             {7, 7},
                             {5, 1}}) {
    const std::vector<double>& row = binomial_ratio_row(n, k);
    ASSERT_EQ(row.size(), n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
      EXPECT_EQ(row[i], binomial_ratio(i, n, k)) << "n=" << n << " k=" << k << " i=" << i;
    }
    EXPECT_DOUBLE_EQ(row[n], 1.0);
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(row[i], 0.0);
  }
}

TEST(Combinatorics, BinomialRatioRowReturnsStableReference) {
  const std::vector<double>& first = binomial_ratio_row(12, 5);
  // Populating other rows must not invalidate or move the first.
  for (std::size_t n = 2; n < 40; ++n) (void)binomial_ratio_row(n, n / 2 + 1);
  const std::vector<double>& again = binomial_ratio_row(12, 5);
  EXPECT_EQ(&first, &again);
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> order;
  pool.parallel_for(3, 8, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{3, 4, 5, 6, 7}));
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool{2};
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, NestedParallelForRunsSeriallyWithoutDeadlock) {
  ThreadPool pool{3};
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(0, 8, [&](std::size_t outer) {
    pool.parallel_for(0, 8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesBodyExceptions) {
  ThreadPool pool{2};
  EXPECT_THROW(pool.parallel_for(0, 16,
                                 [&](std::size_t i) {
                                   if (i == 7) throw std::runtime_error{"boom"};
                                 }),
               std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool{2};
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(0, 100, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, GlobalPoolIsASingleton) {
  EXPECT_EQ(&global_thread_pool(), &global_thread_pool());
  EXPECT_GE(global_thread_pool().thread_count(), 1u);
}

TEST(Combinatorics, SplitMixIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  std::uint64_t replay = 0;
  EXPECT_EQ(splitmix64(replay), first);
}

}  // namespace
}  // namespace qp::common
