#!/usr/bin/env python3
"""CTest coverage for bench/merge_shards.py.

Builds two synthetic shard directories and checks:
  * BENCH_*.json benchmark arrays are unioned, deduplicated by name;
  * a differing git_sha between shards prints the mismatch warning;
  * CSVs with a shared header merge row-wise (per-point shards), while a
    differing header keeps the first copy and warns;
  * OBS_*.json metric exports (run_all.sh --metrics) union by name with the
    registry's shard-merge semantics: counters and histogram buckets sum,
    gauges take the max, histogram min/max fold and percentiles are
    recomputed from the merged buckets.

Usage: merge_shards_test.py <path-to-merge_shards.py>
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

FAILURES = []


def check(condition, message):
    if not condition:
        FAILURES.append(message)
        print(f"FAIL: {message}", file=sys.stderr)
    else:
        print(f"ok: {message}")


def bench_json(git_sha, names):
    return {
        "context": {"git_sha": git_sha, "date": "2026-07-26T00:00:00Z"},
        "benchmarks": [{"name": name, "real_time": i + 1.0} for i, name in enumerate(names)],
    }


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    merge_script = Path(argv[1]).resolve()
    check(merge_script.is_file(), f"merge script exists at {merge_script}")

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        shard_a = root / "shard_a"
        shard_b = root / "shard_b"
        merged = root / "merged"
        shard_a.mkdir()
        shard_b.mkdir()

        # Overlapping figure, disjoint points, differing git_sha.
        (shard_a / "BENCH_fig.json").write_text(
            json.dumps(bench_json("aaaa11112222", ["Fig/n=4", "Fig/n=9"])))
        (shard_b / "BENCH_fig.json").write_text(
            json.dumps(bench_json("bbbb33334444", ["Fig/n=9", "Fig/n=16"])))
        # A figure only shard B ran.
        (shard_b / "BENCH_solo.json").write_text(
            json.dumps(bench_json("bbbb33334444", ["Solo/point"])))
        # Point-sharded CSV halves of one figure (shared header).
        (shard_a / "fig.csv").write_text("universe,response_ms\n4,10.5\n")
        (shard_b / "fig.csv").write_text("universe,response_ms\n9,12.5\n16,14.5\n")
        # Same name, different header: first copy must win.
        (shard_a / "other.csv").write_text("a,b\n1,2\n")
        (shard_b / "other.csv").write_text("a,b,c\n1,2,3\n")
        # The sim-validation figure (bench_sim_engine): point-sharded rows
        # with the full 15-column header must union like any other figure.
        sim_header = ("scenario,system,strategy,arrivals,target_rho,analytic_ms,"
                      "simulated_ms,divergence_pct,p50_ms,p95_ms,p99_ms,"
                      "peak_utilization,completed,dropped_messages,outage")
        sim_row_a = "planetlab-50,Grid(7x7),closest,poisson,0.3,115.8,118.1,1.97,94.7,203.2,248.8,0.30,328,0,0"
        sim_row_b = "planetlab-50,Grid(7x7),balanced,poisson,0.3,196.3,198.9,1.36,197.1,294.0,318.5,0.32,1110,0,0"
        (shard_a / "BENCH_bench_sim_engine.json").write_text(
            json.dumps(bench_json("aaaa11112222",
                                  ["SimValidation/planetlab-50/Grid(7x7)/closest/poisson/rho=0.30"])))
        (shard_b / "BENCH_bench_sim_engine.json").write_text(
            json.dumps(bench_json("aaaa11112222",
                                  ["SimValidation/planetlab-50/Grid(7x7)/balanced/poisson/rho=0.30"])))
        (shard_a / "bench_sim_engine.csv").write_text(f"{sim_header}\n{sim_row_a}\n")
        (shard_b / "bench_sim_engine.csv").write_text(f"{sim_header}\n{sim_row_b}\n")

        # Observability metric exports (--metrics): counters sum, gauges max,
        # histogram counts/buckets sum with min/max folded.
        def obs_histogram(count, lo, hi, bucket, n):
            buckets = [0] * 64
            buckets[bucket] = n
            buckets[bucket + 1] = count - n
            return {"name": "sim.engine.response_ms", "kind": "histogram",
                    "count": count, "min": lo, "max": hi, "p50": 0.0,
                    "p95": 0.0, "p99": 0.0, "buckets": buckets}

        (shard_a / "OBS_bench_sim_engine.json").write_text(json.dumps({
            "qp_obs_version": 1, "enabled": True, "metrics": [
                {"name": "sim.engine.runs", "kind": "counter", "value": 3},
                {"name": "lp.revised.eta_len_max", "kind": "gauge",
                 "set": True, "value": 17.0},
                obs_histogram(10, 1.0, 40.0, 26, 4),
            ]}))
        (shard_b / "OBS_bench_sim_engine.json").write_text(json.dumps({
            "qp_obs_version": 1, "enabled": True, "metrics": [
                {"name": "sim.engine.runs", "kind": "counter", "value": 5},
                {"name": "lp.revised.eta_len_max", "kind": "gauge",
                 "set": True, "value": 42.0},
                obs_histogram(6, 0.5, 80.0, 26, 6),
                {"name": "sim.engine.retries", "kind": "counter", "value": 2},
            ]}))

        result = subprocess.run(
            [sys.executable, str(merge_script), str(merged), str(shard_a), str(shard_b)],
            capture_output=True,
            text=True,
            check=False,
        )
        print(result.stdout)
        print(result.stderr, file=sys.stderr)
        check(result.returncode == 0, "merge exits 0")
        check("git_sha bbbb33334444 differs" in result.stderr,
              "git_sha mismatch warning names the conflicting sha")

        with (merged / "BENCH_fig.json").open() as fh:
            fig = json.load(fh)
        names = [b["name"] for b in fig["benchmarks"]]
        check(names == ["Fig/n=4", "Fig/n=9", "Fig/n=16"],
              f"benchmark arrays unioned, first copy wins dedup (got {names})")
        check(fig["context"]["git_sha"] == "aaaa11112222", "first shard's context kept")
        with (merged / "BENCH_solo.json").open() as fh:
            check([b["name"] for b in json.load(fh)["benchmarks"]] == ["Solo/point"],
                  "single-shard figure copied through")

        fig_csv = (merged / "fig.csv").read_text().splitlines()
        check(fig_csv == ["universe,response_ms", "4,10.5", "9,12.5", "16,14.5"],
              f"point-sharded CSV rows unioned in order (got {fig_csv})")
        check((merged / "other.csv").read_text() == "a,b\n1,2\n",
              "differing-header CSV keeps the first copy")
        check("header differs" in result.stderr, "differing-header CSV warns")

        sim_csv = (merged / "bench_sim_engine.csv").read_text().splitlines()
        check(sim_csv == [sim_header, sim_row_a, sim_row_b],
              f"sim-validation CSV rows unioned (got {sim_csv})")
        with (merged / "BENCH_bench_sim_engine.json").open() as fh:
            sim_names = [b["name"] for b in json.load(fh)["benchmarks"]]
        check(len(sim_names) == 2 and all("SimValidation/" in n for n in sim_names),
              f"sim-validation benchmark rows unioned (got {sim_names})")

        with (merged / "OBS_bench_sim_engine.json").open() as fh:
            obs = {m["name"]: m for m in json.load(fh)["metrics"]}
        check(obs["sim.engine.runs"]["value"] == 8, "obs counters sum across shards")
        check(obs["sim.engine.retries"]["value"] == 2,
              "obs metric present in one shard copies through")
        check(obs["lp.revised.eta_len_max"]["value"] == 42.0,
              "obs gauges merge by max")
        hist = obs["sim.engine.response_ms"]
        check(hist["count"] == 16 and hist["min"] == 0.5 and hist["max"] == 80.0,
              f"obs histogram count/min/max fold (got {hist['count']}, "
              f"{hist['min']}, {hist['max']})")
        check(hist["buckets"][26] == 10 and hist["buckets"][27] == 6,
              "obs histogram buckets sum elementwise")
        # p50 rank 8 falls in bucket 26 -> upper bound 2^(26-21) = 32;
        # p99 rank 16 in bucket 27 -> 2^6 = 64, both below the folded max.
        check(hist["p50"] == 32.0 and hist["p99"] == 64.0,
              f"obs histogram percentiles recomputed (got {hist['p50']}, {hist['p99']})")

        # Malformed JSON must fail the merge.
        bad = root / "bad_shard"
        bad.mkdir()
        (bad / "BENCH_fig.json").write_text("{not json")
        bad_run = subprocess.run(
            [sys.executable, str(merge_script), str(root / "merged2"), str(bad)],
            capture_output=True,
            text=True,
            check=False,
        )
        check(bad_run.returncode != 0, "malformed shard JSON fails the merge")

    if FAILURES:
        print(f"{len(FAILURES)} check(s) failed", file=sys.stderr)
        return 1
    print("all merge_shards checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
