// Robustness tests for the simplex solver: redundant rows (residual
// zero-level artificials), duals on >= / = rows, scaling behavior, and
// structured instances shaped like the paper's LPs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace qp::lp {
namespace {

Solution solve(LpProblem& problem, SimplexOptions options = {}) {
  return SimplexSolver{options}.solve(problem);
}

TEST(SimplexRobustness, DuplicatedEqualityRowsAreHandled) {
  // x + y = 1 stated twice: the second row is redundant; its artificial can
  // never leave the basis through a regular pivot, exercising the
  // zero-level-artificial path.
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t y = p.add_variable(2.0);
  for (int copy = 0; copy < 3; ++copy) {
    const std::size_t row = p.add_row(RowSense::Equal, 1.0);
    p.add_coefficient(row, x, 1.0);
    p.add_coefficient(row, y, 1.0);
  }
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-9);
  EXPECT_NEAR(s.values[x], 1.0, 1e-9);
  EXPECT_NEAR(s.values[y], 0.0, 1e-9);
}

TEST(SimplexRobustness, RedundantMixedRows) {
  // A >= row implied by an = row; plus an irrelevant <= row.
  LpProblem p;
  const std::size_t x = p.add_variable(3.0);
  const std::size_t eq = p.add_row(RowSense::Equal, 4.0);
  p.add_coefficient(eq, x, 2.0);
  const std::size_t ge = p.add_row(RowSense::GreaterEqual, 1.0);
  p.add_coefficient(ge, x, 1.0);
  const std::size_t le = p.add_row(RowSense::LessEqual, 100.0);
  p.add_coefficient(le, x, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, 6.0, 1e-9);
}

TEST(SimplexRobustness, DualsOnMixedSenses) {
  // min 2x + 3y s.t. x + y >= 4, x <= 3  ->  x=3, y=1, objective 9.
  // Strong duality: 4*y1 + 3*y2 = 9 with y1 dual of >=, y2 dual of <=.
  LpProblem p;
  const std::size_t x = p.add_variable(2.0);
  const std::size_t y = p.add_variable(3.0);
  const std::size_t ge = p.add_row(RowSense::GreaterEqual, 4.0);
  p.add_coefficient(ge, x, 1.0);
  p.add_coefficient(ge, y, 1.0);
  const std::size_t le = p.add_row(RowSense::LessEqual, 3.0);
  p.add_coefficient(le, x, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-9);
  ASSERT_EQ(s.duals.size(), 2u);
  EXPECT_NEAR(4.0 * s.duals[0] + 3.0 * s.duals[1], 9.0, 1e-8);
  // For a minimization, the >= row's dual is non-negative, the <= row's
  // non-positive.
  EXPECT_GE(s.duals[0], -1e-9);
  EXPECT_LE(s.duals[1], 1e-9);
}

TEST(SimplexRobustness, ScalingInvariance) {
  // Scaling all costs by a constant scales the objective, not the argmin.
  common::Rng rng{123};
  LpProblem a, b;
  const std::size_t vars = 6;
  for (std::size_t j = 0; j < vars; ++j) {
    const double c = rng.uniform(1.0, 10.0);
    (void)a.add_variable(c);
    (void)b.add_variable(1000.0 * c);
  }
  for (LpProblem* p : {&a, &b}) {
    const std::size_t row = p->add_row(RowSense::Equal, 1.0);
    for (std::size_t j = 0; j < vars; ++j) p->add_coefficient(row, j, 1.0);
  }
  const Solution sa = solve(a);
  const Solution sb = solve(b);
  ASSERT_EQ(sa.status, SolveStatus::Optimal);
  ASSERT_EQ(sb.status, SolveStatus::Optimal);
  EXPECT_NEAR(sb.objective, 1000.0 * sa.objective, 1e-6 * sb.objective);
  for (std::size_t j = 0; j < vars; ++j) {
    EXPECT_NEAR(sa.values[j], sb.values[j], 1e-8);
  }
}

TEST(SimplexRobustness, TinyAndHugeCoefficients) {
  // min x s.t. 1e-6 x >= 1  ->  x = 1e6.
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t row = p.add_row(RowSense::GreaterEqual, 1.0);
  p.add_coefficient(row, x, 1e-6);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.values[x], 1e6, 1.0);
}

TEST(SimplexRobustness, AccessStrategyShapedInstanceRandomSweep) {
  // Instances with the exact structure of LP (4.3)-(4.6): per-client
  // equality rows + shared capacity rows. The uniform distribution is
  // always feasible when caps >= quorum_size/options; the solver must find
  // something at least as good as uniform.
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    common::Rng rng{seed};
    const std::size_t clients = 10, options_count = 8, sites = 6;
    // Random "quorum -> sites" incidence, 3 sites per option.
    std::vector<std::vector<std::size_t>> option_sites(options_count);
    for (auto& sites_of : option_sites) {
      sites_of = rng.sample_without_replacement(sites, 3);
    }
    std::vector<std::vector<double>> delay(clients, std::vector<double>(options_count));
    for (auto& row : delay) {
      for (double& d : row) d = rng.uniform(10.0, 200.0);
    }
    const double cap = 3.0 / static_cast<double>(sites) * 1.4;

    LpProblem p;
    for (std::size_t v = 0; v < clients; ++v) {
      for (std::size_t i = 0; i < options_count; ++i) {
        (void)p.add_variable(delay[v][i] / clients);
      }
    }
    std::vector<std::size_t> cap_row(sites);
    for (std::size_t w = 0; w < sites; ++w) {
      cap_row[w] = p.add_row(RowSense::LessEqual, cap);
    }
    for (std::size_t v = 0; v < clients; ++v) {
      const std::size_t eq = p.add_row(RowSense::Equal, 1.0);
      for (std::size_t i = 0; i < options_count; ++i) {
        p.add_coefficient(eq, v * options_count + i, 1.0);
        for (std::size_t w : option_sites[i]) {
          p.add_coefficient(cap_row[w], v * options_count + i, 1.0 / clients);
        }
      }
    }
    const Solution s = solve(p);
    ASSERT_EQ(s.status, SolveStatus::Optimal) << "seed=" << seed;
    EXPECT_LE(p.max_violation(s.values), 1e-7);
    // Uniform baseline objective.
    double uniform = 0.0;
    for (std::size_t v = 0; v < clients; ++v) {
      for (std::size_t i = 0; i < options_count; ++i) {
        uniform += delay[v][i] / clients / options_count;
      }
    }
    EXPECT_LE(s.objective, uniform + 1e-7) << "seed=" << seed;
  }
}

TEST(SimplexRobustness, RepeatedSolveIsDeterministic) {
  common::Rng rng{55};
  LpProblem p;
  for (int j = 0; j < 12; ++j) (void)p.add_variable(rng.uniform(-1.0, 2.0));
  for (int i = 0; i < 6; ++i) {
    const std::size_t row = p.add_row(RowSense::LessEqual, rng.uniform(1.0, 4.0));
    for (int j = 0; j < 12; ++j) p.add_coefficient(row, j, rng.uniform(0.1, 1.0));
  }
  const Solution a = solve(p);
  const Solution b = solve(p);
  ASSERT_EQ(a.status, b.status);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.values, b.values);
}

TEST(SimplexRobustness, ZeroRhsEqualityForcesZero) {
  // x - y = 0 with min x + y and x,y >= 0: optimum at the origin.
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t y = p.add_variable(1.0);
  const std::size_t eq = p.add_row(RowSense::Equal, 0.0);
  p.add_coefficient(eq, x, 1.0);
  p.add_coefficient(eq, y, -1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
}

}  // namespace
}  // namespace qp::lp
