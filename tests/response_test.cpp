#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/placement.hpp"
#include "core/response.hpp"
#include "core/strategy.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/singleton.hpp"

namespace qp::core {
namespace {

using net::LatencyMatrix;

LatencyMatrix tiny() {
  return LatencyMatrix{{{0.0, 10.0, 20.0},  //
                        {10.0, 0.0, 14.0},
                        {20.0, 14.0, 0.0}}};
}

TEST(Rho, MatchesDefinition) {
  const LatencyMatrix m = tiny();
  const Placement p{{0, 1}};
  const std::vector<double> load{0.5, 0.25, 0.0};
  const quorum::Quorum quorum{0, 1};
  // client 2: max( d(2,0) + a*0.5, d(2,1) + a*0.25 ) with a = 8:
  //           max( 20 + 4, 14 + 2 ) = 24.
  EXPECT_DOUBLE_EQ(rho(m, p, load, 8.0, 2, quorum), 24.0);
  // alpha = 0 reduces to pure network delay.
  EXPECT_DOUBLE_EQ(rho(m, p, load, 0.0, 2, quorum), 20.0);
}

TEST(EvaluateClosest, AlphaZeroSingletonIsAverageDistance) {
  const LatencyMatrix m = tiny();
  const quorum::SingletonQuorum s;
  const Placement p = singleton_placement(m);  // Median = site 1.
  const Evaluation eval = evaluate_closest(m, s, p, 0.0);
  EXPECT_DOUBLE_EQ(eval.avg_response_ms, (10.0 + 0.0 + 14.0) / 3.0);
  EXPECT_DOUBLE_EQ(eval.avg_network_delay_ms, eval.avg_response_ms);
}

TEST(EvaluateClosest, LoadTermIncreasesResponse) {
  const LatencyMatrix m = net::small_synth(12, 7);
  const quorum::GridQuorum grid{2};
  const Placement p = best_grid_placement(m, 2).placement;
  const Evaluation low = evaluate_closest(m, grid, p, 0.0);
  const Evaluation high = evaluate_closest(m, grid, p, 50.0);
  EXPECT_GT(high.avg_response_ms, low.avg_response_ms);
  // Network-delay component is unchanged by alpha.
  EXPECT_DOUBLE_EQ(high.avg_network_delay_ms, low.avg_network_delay_ms);
}

TEST(EvaluateBalanced, MatchesExplicitUniform) {
  // The analytic balanced evaluation must equal an explicit strategy whose
  // rows are all uniform.
  const LatencyMatrix m = net::small_synth(10, 9);
  const quorum::GridQuorum grid{2};
  const Placement p = best_grid_placement(m, 2).placement;
  const double alpha = 30.0;

  const Evaluation balanced = evaluate_balanced(m, grid, p, alpha);

  ExplicitStrategy uniform;
  uniform.quorums = grid.enumerate_quorums(100);
  uniform.probability.assign(
      m.size(), std::vector<double>(uniform.quorums.size(),
                                    1.0 / static_cast<double>(uniform.quorums.size())));
  const Evaluation explicit_eval = evaluate_explicit(m, grid, p, alpha, uniform);

  EXPECT_NEAR(balanced.avg_response_ms, explicit_eval.avg_response_ms, 1e-9);
  EXPECT_NEAR(balanced.avg_network_delay_ms, explicit_eval.avg_network_delay_ms, 1e-9);
  for (std::size_t w = 0; w < m.size(); ++w) {
    EXPECT_NEAR(balanced.site_load[w], explicit_eval.site_load[w], 1e-9);
  }
}

TEST(EvaluateBalanced, MajorityAnalyticMatchesEnumeration) {
  const LatencyMatrix m = net::small_synth(9, 13);
  const quorum::MajorityQuorum majority{5, 3};
  const Placement p = best_majority_placement(m, majority).placement;
  const double alpha = 12.0;

  const Evaluation analytic = evaluate_balanced(m, majority, p, alpha);

  ExplicitStrategy uniform;
  uniform.quorums = majority.enumerate_quorums(100);
  uniform.probability.assign(
      m.size(), std::vector<double>(uniform.quorums.size(),
                                    1.0 / static_cast<double>(uniform.quorums.size())));
  const Evaluation enumerated = evaluate_explicit(m, majority, p, alpha, uniform);
  EXPECT_NEAR(analytic.avg_response_ms, enumerated.avg_response_ms, 1e-9);
  EXPECT_NEAR(analytic.avg_network_delay_ms, enumerated.avg_network_delay_ms, 1e-9);
}

TEST(EvaluateClosest, BeatsBalancedAtZeroAlpha) {
  // With no load term, picking the closest quorum can only reduce delay.
  const LatencyMatrix m = net::small_synth(14, 19);
  const quorum::GridQuorum grid{3};
  const Placement p = best_grid_placement(m, 3).placement;
  const Evaluation closest = evaluate_closest(m, grid, p, 0.0);
  const Evaluation balanced = evaluate_balanced(m, grid, p, 0.0);
  EXPECT_LE(closest.avg_response_ms, balanced.avg_response_ms + 1e-9);
}

TEST(EvaluateBalanced, BeatsClosestAtHugeAlpha) {
  // The paper's central tension: under very high demand the balanced
  // strategy wins because closest concentrates load.
  const LatencyMatrix m = net::small_synth(14, 19);
  const quorum::GridQuorum grid{3};
  const Placement p = best_grid_placement(m, 3).placement;
  const double alpha = kQuWriteServiceMs * 100'000;  // Extreme demand.
  const Evaluation closest = evaluate_closest(m, grid, p, alpha);
  const Evaluation balanced = evaluate_balanced(m, grid, p, alpha);
  EXPECT_LT(balanced.avg_response_ms, closest.avg_response_ms);
}

TEST(Evaluation, PerClientVectorConsistent) {
  const LatencyMatrix m = net::small_synth(8, 23);
  const quorum::GridQuorum grid{2};
  const Placement p = best_grid_placement(m, 2).placement;
  const Evaluation eval = evaluate_closest(m, grid, p, 5.0);
  ASSERT_EQ(eval.per_client_response.size(), m.size());
  double sum = 0.0;
  for (double r : eval.per_client_response) sum += r;
  EXPECT_NEAR(eval.avg_response_ms, sum / static_cast<double>(m.size()), 1e-12);
}

TEST(Evaluation, ResponseAlwaysAtLeastNetworkDelay) {
  const LatencyMatrix m = net::small_synth(12, 29);
  const quorum::GridQuorum grid{2};
  const Placement p = best_grid_placement(m, 2).placement;
  for (double alpha : {0.0, 1.0, 10.0, 112.0}) {
    const Evaluation closest = evaluate_closest(m, grid, p, alpha);
    EXPECT_GE(closest.avg_response_ms + 1e-12, closest.avg_network_delay_ms);
    const Evaluation balanced = evaluate_balanced(m, grid, p, alpha);
    EXPECT_GE(balanced.avg_response_ms + 1e-12, balanced.avg_network_delay_ms);
  }
}

TEST(Evaluation, ManyToOnePlacementSupported) {
  // All elements on one site: response = d + alpha * total load.
  const LatencyMatrix m = tiny();
  const quorum::GridQuorum grid{2};
  const Placement p{{1, 1, 1, 1}};
  const double alpha = 2.0;
  const Evaluation eval = evaluate_balanced(m, grid, p, alpha);
  // Site 1 carries the whole load: sum of uniform loads = 4 * 3/4 = 3.
  EXPECT_DOUBLE_EQ(eval.site_load[1], 3.0);
  // Each client's response = d(v,1) + alpha * 3.
  const double expected = ((10.0 + 6.0) + (0.0 + 6.0) + (14.0 + 6.0)) / 3.0;
  EXPECT_NEAR(eval.avg_response_ms, expected, 1e-12);
}

}  // namespace
}  // namespace qp::core
