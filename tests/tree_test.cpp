#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "quorum/tree.hpp"

namespace qp::quorum {
namespace {

TEST(Tree, SizesAndCounts) {
  // n = 2^(h+1) - 1; counts follow C(h)=1, C(d) = 2C(d+1) + C(d+1)^2.
  const TreeQuorum h0{0};
  EXPECT_EQ(h0.universe_size(), 1u);
  EXPECT_DOUBLE_EQ(h0.quorum_count(), 1.0);

  const TreeQuorum h1{1};
  EXPECT_EQ(h1.universe_size(), 3u);
  EXPECT_DOUBLE_EQ(h1.quorum_count(), 3.0);

  const TreeQuorum h2{2};
  EXPECT_EQ(h2.universe_size(), 7u);
  EXPECT_DOUBLE_EQ(h2.quorum_count(), 15.0);

  const TreeQuorum h3{3};
  EXPECT_EQ(h3.universe_size(), 15u);
  EXPECT_DOUBLE_EQ(h3.quorum_count(), 255.0);

  EXPECT_THROW(TreeQuorum{5}, std::invalid_argument);
}

TEST(Tree, EnumerationMatchesCountAndIsDistinct) {
  for (std::size_t h : {0u, 1u, 2u, 3u}) {
    const TreeQuorum tree{h};
    const auto quorums = tree.enumerate_quorums(100'000);
    EXPECT_EQ(static_cast<double>(quorums.size()), tree.quorum_count()) << "h=" << h;
    std::set<Quorum> unique(quorums.begin(), quorums.end());
    EXPECT_EQ(unique.size(), quorums.size()) << "h=" << h;
    for (const Quorum& quorum : quorums) {
      EXPECT_TRUE(std::is_sorted(quorum.begin(), quorum.end()));
    }
  }
}

TEST(Tree, HeightOneQuorumsExplicit) {
  const TreeQuorum tree{1};
  const auto quorums = tree.enumerate_quorums(100);
  const std::set<Quorum> expected{{0, 1}, {0, 2}, {1, 2}};
  EXPECT_EQ(std::set<Quorum>(quorums.begin(), quorums.end()), expected);
}

TEST(Tree, IntersectionProperty) {
  for (std::size_t h : {1u, 2u, 3u}) {
    EXPECT_TRUE(TreeQuorum{h}.verify_intersection(100'000)) << "h=" << h;
  }
}

TEST(Tree, BestQuorumMatchesBruteForce) {
  common::Rng rng{31};
  for (int trial = 0; trial < 30; ++trial) {
    const TreeQuorum tree{2};
    std::vector<double> values(7);
    for (double& v : values) v = rng.uniform(0.0, 100.0);
    const Quorum best = tree.best_quorum(values);
    double best_max = 0.0;
    for (std::size_t u : best) best_max = std::max(best_max, values[u]);
    double brute = 1e300;
    for (const Quorum& quorum : tree.enumerate_quorums(1000)) {
      double worst = 0.0;
      for (std::size_t u : quorum) worst = std::max(worst, values[u]);
      brute = std::min(brute, worst);
    }
    EXPECT_NEAR(best_max, brute, 1e-12);
    // The returned quorum must actually be one of the system's quorums.
    const auto all = tree.enumerate_quorums(1000);
    EXPECT_NE(std::find(all.begin(), all.end(), best), all.end());
  }
}

TEST(Tree, SmallestQuorumIsRootToLeafPath) {
  const TreeQuorum tree{3};
  std::size_t smallest = 1000;
  for (const Quorum& quorum : tree.enumerate_quorums(1000)) {
    smallest = std::min(smallest, quorum.size());
  }
  EXPECT_EQ(smallest, 4u);  // Height 3 -> path of 4 nodes.
}

TEST(Tree, UniformLoadSumsToAverageQuorumSize) {
  const TreeQuorum tree{2};
  const auto load = tree.uniform_load();
  const auto quorums = tree.enumerate_quorums(1000);
  double total_size = 0.0;
  for (const Quorum& quorum : quorums) total_size += static_cast<double>(quorum.size());
  double total_load = 0.0;
  for (double l : load) total_load += l;
  EXPECT_NEAR(total_load, total_size / static_cast<double>(quorums.size()), 1e-12);
  // Counter-intuitively the root is the LEAST loaded element under the
  // uniform strategy: the quadratic "both children" branch means deeper
  // nodes appear in more quorums. optimal_load() reports the true maximum.
  for (std::size_t u = 1; u < load.size(); ++u) EXPECT_LE(load[0], load[u] + 1e-12);
  EXPECT_NEAR(tree.optimal_load(), *std::max_element(load.begin(), load.end()), 1e-12);
}

TEST(Tree, ExpectedMaxUniformMatchesEnumeration) {
  common::Rng rng{37};
  const TreeQuorum tree{2};
  std::vector<double> values(7);
  for (double& v : values) v = rng.uniform(0.0, 10.0);
  double total = 0.0;
  const auto quorums = tree.enumerate_quorums(1000);
  for (const Quorum& quorum : quorums) {
    double worst = 0.0;
    for (std::size_t u : quorum) worst = std::max(worst, values[u]);
    total += worst;
  }
  EXPECT_NEAR(tree.expected_max_uniform(values),
              total / static_cast<double>(quorums.size()), 1e-12);
}

TEST(Tree, SampledQuorumsAreUniform) {
  const TreeQuorum tree{1};  // 3 quorums; easy to histogram.
  common::Rng rng{41};
  std::map<Quorum, int> histogram;
  const int trials = 30'000;
  for (const Quorum& quorum : tree.sample_quorums(trials, rng)) histogram[quorum] += 1;
  ASSERT_EQ(histogram.size(), 3u);
  for (const auto& [quorum, count] : histogram) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 1.0 / 3.0, 0.02);
  }
}

TEST(Tree, SampledQuorumsAreValidQuorums) {
  const TreeQuorum tree{3};
  common::Rng rng{43};
  const auto all = tree.enumerate_quorums(1000);
  const std::set<Quorum> valid(all.begin(), all.end());
  for (const Quorum& quorum : tree.sample_quorums(200, rng)) {
    EXPECT_TRUE(valid.count(quorum)) << "sampled quorum is not a tree quorum";
  }
}

TEST(Tree, TouchProbabilityDefaultEnumeration) {
  const TreeQuorum tree{2};
  // P(touch root) = fraction of quorums containing element 0.
  const auto quorums = tree.enumerate_quorums(1000);
  int with_root = 0;
  for (const Quorum& quorum : quorums) {
    with_root += std::binary_search(quorum.begin(), quorum.end(), std::size_t{0});
  }
  const std::vector<std::size_t> root{0};
  EXPECT_NEAR(tree.uniform_touch_probability(root),
              static_cast<double>(with_root) / static_cast<double>(quorums.size()), 1e-12);
  EXPECT_DOUBLE_EQ(tree.uniform_touch_probability({}), 0.0);
  const std::vector<std::size_t> bad{99};
  EXPECT_THROW((void)tree.uniform_touch_probability(bad), std::out_of_range);
}

}  // namespace
}  // namespace qp::quorum
