// Unit tests for the eval drivers themselves (configuration handling,
// row bookkeeping, helper behavior) — the figure *shapes* are asserted in
// integration_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"

namespace qp::eval {
namespace {

const net::LatencyMatrix& topo12() {
  static const net::LatencyMatrix m = net::small_synth(12, 2024);
  return m;
}

TEST(Figures, CentralSitesSortedByAverageRtt) {
  const auto sites = central_sites(topo12(), 5);
  ASSERT_EQ(sites.size(), 5u);
  // Every returned site has average RTT no larger than every excluded site.
  std::set<std::size_t> chosen(sites.begin(), sites.end());
  double worst_chosen = 0.0;
  for (std::size_t s : sites) worst_chosen = std::max(worst_chosen, topo12().average_rtt_from(s));
  for (std::size_t s = 0; s < topo12().size(); ++s) {
    if (!chosen.count(s)) {
      EXPECT_GE(topo12().average_rtt_from(s) + 1e-12, worst_chosen);
    }
  }
  // Count is clamped to the topology size.
  EXPECT_EQ(central_sites(topo12(), 99).size(), topo12().size());
}

TEST(Figures, GridDemandSweepRespectsMaxSide) {
  const std::vector<double> demands{1000.0};
  const auto points = grid_demand_sweep(topo12(), demands, 2);
  for (const auto& p : points) EXPECT_EQ(p.universe, 4u);
  // Two strategies per (universe, demand) pair.
  EXPECT_EQ(points.size(), 2u);
}

TEST(Figures, GridDemandSweepAutoSide) {
  const std::vector<double> demands{1000.0};
  const auto points = grid_demand_sweep(topo12(), demands, 0);
  std::set<std::size_t> universes;
  for (const auto& p : points) universes.insert(p.universe);
  // 12 sites: k = 2 and k = 3 fit.
  EXPECT_EQ(universes, (std::set<std::size_t>{4, 9}));
}

TEST(Figures, CapacitySweepRowCountAndFlags) {
  CapacitySweepConfig config;
  config.min_side = 2;
  config.max_side = 3;
  config.levels = 4;
  config.include_nonuniform = true;
  const auto points = capacity_sweep(topo12(), config);
  // 2 sides x 4 levels x 2 variants.
  EXPECT_EQ(points.size(), 16u);
  std::size_t nonuniform = 0;
  for (const auto& p : points) nonuniform += p.nonuniform;
  EXPECT_EQ(nonuniform, 8u);
  for (const auto& p : points) {
    EXPECT_TRUE(p.feasible);
    EXPECT_GT(p.response_ms, 0.0);
    EXPECT_GE(p.response_ms + 1e-9, p.network_delay_ms);
  }
}

TEST(Figures, QuSweepSkipsOversizedUniverses) {
  QuSweepConfig config;
  config.t_values = {1, 2, 3};  // t=3 needs n=16 > 12 sites: skipped.
  config.client_counts = {4};
  config.client_site_count = 4;
  config.duration_ms = 500.0;
  config.warmup_ms = 100.0;
  const auto points = qu_response_surface(topo12(), config);
  EXPECT_EQ(points.size(), 2u);
  for (const auto& p : points) {
    EXPECT_EQ(p.universe, 5 * p.t + 1);
    EXPECT_GT(p.throughput_rps, 0.0);
  }
}

TEST(Figures, QuSweepClientRoundingIsConsistent) {
  QuSweepConfig config;
  config.t_values = {1};
  config.client_counts = {6};  // 6 / 4 sites -> 1 per site -> 4 clients.
  config.client_site_count = 4;
  config.duration_ms = 500.0;
  config.warmup_ms = 100.0;
  const auto points = qu_response_surface(topo12(), config);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].clients, 4u);
}

TEST(Figures, IterativeSweepStageRows) {
  IterativeSweepConfig config;
  config.side = 2;
  config.levels = 2;
  config.anchor_count = 4;
  const auto points = iterative_sweep(topo12(), config);
  // Every capacity level emits a one-to-one row plus phase rows.
  EXPECT_EQ(rows_for_stage(points, "one-to-one").size(), 2u);
  EXPECT_EQ(rows_for_stage(points, "iter1-phase1").size(), 2u);
  EXPECT_EQ(rows_for_stage(points, "iter1-phase2").size(), 2u);
  EXPECT_TRUE(rows_for_stage(points, "bogus").empty());
  // One-to-one rows are identical across levels (the baseline ignores caps).
  const auto baseline = rows_for_stage(points, "one-to-one");
  EXPECT_DOUBLE_EQ(baseline[0].network_delay_ms, baseline[1].network_delay_ms);
}

TEST(Figures, IterativeSweepRejectsOversizedGrid) {
  IterativeSweepConfig config;
  config.side = 4;  // 16 > 12 sites.
  EXPECT_THROW((void)iterative_sweep(topo12(), config), std::invalid_argument);
}

TEST(Figures, CsvEscapesNothingButIsParseable) {
  std::ostringstream out;
  print_csv(out, std::vector<GridDemandPoint>{{9, 1000.0, "closest", 12.5, 10.0}});
  EXPECT_EQ(out.str(),
            "universe,client_demand,strategy,response_ms,network_delay_ms\n"
            "9,1000,closest,12.5,10\n");
  std::ostringstream out2;
  print_csv(out2, std::vector<QuPoint>{{1, 6, 40, 90.0, 95.0, 400.0}});
  EXPECT_NE(out2.str().find("1,6,40,90,95,400"), std::string::npos);
  std::ostringstream out3;
  print_csv(out3, std::vector<CapacityPoint>{{9, 0.5, true, 100.0, 90.0, true}});
  EXPECT_NE(out3.str().find("9,0.5,1,1,100,90"), std::string::npos);
}

}  // namespace
}  // namespace qp::eval
