// Unit tests for the eval drivers themselves (configuration handling,
// row bookkeeping, helper behavior) — the figure *shapes* are asserted in
// integration_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"

namespace qp::eval {
namespace {

const net::LatencyMatrix& topo12() {
  static const net::LatencyMatrix m = net::small_synth(12, 2024);
  return m;
}

TEST(Figures, CentralSitesSortedByAverageRtt) {
  const auto sites = central_sites(topo12(), 5);
  ASSERT_EQ(sites.size(), 5u);
  // Every returned site has average RTT no larger than every excluded site.
  std::set<std::size_t> chosen(sites.begin(), sites.end());
  double worst_chosen = 0.0;
  for (std::size_t s : sites) worst_chosen = std::max(worst_chosen, topo12().average_rtt_from(s));
  for (std::size_t s = 0; s < topo12().size(); ++s) {
    if (!chosen.count(s)) {
      EXPECT_GE(topo12().average_rtt_from(s) + 1e-12, worst_chosen);
    }
  }
  // Count is clamped to the topology size.
  EXPECT_EQ(central_sites(topo12(), 99).size(), topo12().size());
}

TEST(Figures, GridDemandSweepRespectsMaxSide) {
  const std::vector<double> demands{1000.0};
  const auto points = grid_demand_sweep(topo12(), demands, 2);
  for (const auto& p : points) EXPECT_EQ(p.universe, 4u);
  // Two strategies per (universe, demand) pair.
  EXPECT_EQ(points.size(), 2u);
}

TEST(Figures, GridDemandSweepAutoSide) {
  const std::vector<double> demands{1000.0};
  const auto points = grid_demand_sweep(topo12(), demands, 0);
  std::set<std::size_t> universes;
  for (const auto& p : points) universes.insert(p.universe);
  // 12 sites: k = 2 and k = 3 fit.
  EXPECT_EQ(universes, (std::set<std::size_t>{4, 9}));
}

TEST(Figures, CapacitySweepRowCountAndFlags) {
  CapacitySweepConfig config;
  config.min_side = 2;
  config.max_side = 3;
  config.levels = 4;
  config.include_nonuniform = true;
  const auto points = capacity_sweep(topo12(), config);
  // 2 sides x 4 levels x 2 variants.
  EXPECT_EQ(points.size(), 16u);
  std::size_t nonuniform = 0;
  for (const auto& p : points) nonuniform += p.nonuniform;
  EXPECT_EQ(nonuniform, 8u);
  for (const auto& p : points) {
    EXPECT_TRUE(p.feasible);
    EXPECT_GT(p.response_ms, 0.0);
    EXPECT_GE(p.response_ms + 1e-9, p.network_delay_ms);
  }
}

TEST(Figures, QuSweepSkipsOversizedUniverses) {
  QuSweepConfig config;
  config.t_values = {1, 2, 3};  // t=3 needs n=16 > 12 sites: skipped.
  config.client_counts = {4};
  config.client_site_count = 4;
  config.duration_ms = 500.0;
  config.warmup_ms = 100.0;
  const auto points = qu_response_surface(topo12(), config);
  EXPECT_EQ(points.size(), 2u);
  for (const auto& p : points) {
    EXPECT_EQ(p.universe, 5 * p.t + 1);
    EXPECT_GT(p.throughput_rps, 0.0);
  }
}

TEST(Figures, QuSweepClientRoundingIsConsistent) {
  QuSweepConfig config;
  config.t_values = {1};
  config.client_counts = {6};  // 6 / 4 sites -> 1 per site -> 4 clients.
  config.client_site_count = 4;
  config.duration_ms = 500.0;
  config.warmup_ms = 100.0;
  const auto points = qu_response_surface(topo12(), config);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].clients, 4u);
}

TEST(Figures, IterativeSweepStageRows) {
  IterativeSweepConfig config;
  config.side = 2;
  config.levels = 2;
  config.anchor_count = 4;
  const auto points = iterative_sweep(topo12(), config);
  // Every capacity level emits a one-to-one row plus phase rows.
  EXPECT_EQ(rows_for_stage(points, "one-to-one").size(), 2u);
  EXPECT_EQ(rows_for_stage(points, "iter1-phase1").size(), 2u);
  EXPECT_EQ(rows_for_stage(points, "iter1-phase2").size(), 2u);
  EXPECT_TRUE(rows_for_stage(points, "bogus").empty());
  // One-to-one rows are identical across levels (the baseline ignores caps).
  const auto baseline = rows_for_stage(points, "one-to-one");
  EXPECT_DOUBLE_EQ(baseline[0].network_delay_ms, baseline[1].network_delay_ms);
}

TEST(Figures, IterativeSweepRejectsOversizedGrid) {
  IterativeSweepConfig config;
  config.side = 4;  // 16 > 12 sites.
  EXPECT_THROW((void)iterative_sweep(topo12(), config), std::invalid_argument);
}

TEST(PointShard, ParsesOneBasedSpecs) {
  EXPECT_EQ(parse_point_shard(nullptr).count, 1u);
  EXPECT_EQ(parse_point_shard("").count, 1u);
  const PointShard shard = parse_point_shard("2/4");
  EXPECT_EQ(shard.index, 1u);
  EXPECT_EQ(shard.count, 4u);
  EXPECT_FALSE(shard.contains(0));
  EXPECT_TRUE(shard.contains(1));
  EXPECT_TRUE(shard.contains(5));
  EXPECT_TRUE(PointShard{}.contains(17));
  EXPECT_THROW((void)parse_point_shard("0/4"), std::invalid_argument);
  EXPECT_THROW((void)parse_point_shard("5/4"), std::invalid_argument);
  EXPECT_THROW((void)parse_point_shard("banana"), std::invalid_argument);
  EXPECT_THROW((void)parse_point_shard("2/4x"), std::invalid_argument);
  // Signed specs must throw, not wrap through std::stoul.
  EXPECT_THROW((void)parse_point_shard("2/-1"), std::invalid_argument);
  EXPECT_THROW((void)parse_point_shard("-1/4"), std::invalid_argument);
  EXPECT_THROW((void)parse_point_shard("+2/4"), std::invalid_argument);
}

TEST(PointShard, EmptyShardSkipsTheIterativeBaseline) {
  IterativeSweepConfig config;
  config.side = 2;
  config.levels = 2;
  config.anchor_count = 4;
  config.shard = PointShard{7, 8};  // Selects none of the 2 levels.
  EXPECT_TRUE(iterative_sweep(topo12(), config).empty());
}

TEST(PointShard, GridDemandShardsPartitionTheFullSweep) {
  // Interleaved shards of one figure reassemble exactly the unsharded rows.
  const std::vector<double> demands{1000.0, 4000.0, 16000.0};
  const auto full = grid_demand_sweep(topo12(), demands, 0);
  std::vector<GridDemandPoint> merged;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto part = grid_demand_sweep(topo12(), demands, 0, {}, PointShard{i, 2});
    merged.insert(merged.end(), part.begin(), part.end());
    EXPECT_LT(part.size(), full.size());
  }
  ASSERT_EQ(merged.size(), full.size());
  // Same multiset of rows (shards interleave, so order differs).
  const auto key = [](const GridDemandPoint& p) {
    return std::tuple<std::size_t, double, std::string>{p.universe, p.client_demand,
                                                        p.strategy};
  };
  std::vector<std::tuple<std::size_t, double, std::string>> full_keys;
  std::vector<std::tuple<std::size_t, double, std::string>> merged_keys;
  for (const auto& p : full) full_keys.push_back(key(p));
  for (const auto& p : merged) merged_keys.push_back(key(p));
  std::sort(full_keys.begin(), full_keys.end());
  std::sort(merged_keys.begin(), merged_keys.end());
  EXPECT_EQ(full_keys, merged_keys);
  // Shard values equal the unsharded values exactly (same placements, same
  // arithmetic).
  for (const auto& p : merged) {
    const auto match = std::find_if(full.begin(), full.end(), [&](const auto& q) {
      return key(q) == key(p);
    });
    ASSERT_NE(match, full.end());
    EXPECT_EQ(p.response_ms, match->response_ms);
    EXPECT_EQ(p.network_delay_ms, match->network_delay_ms);
  }
}

TEST(PointShard, CapacityAndIterativeSweepsShard) {
  CapacitySweepConfig capacity;
  capacity.min_side = 2;
  capacity.max_side = 3;
  capacity.levels = 4;
  const auto full = capacity_sweep(topo12(), capacity);
  std::size_t sharded_total = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    capacity.shard = PointShard{i, 4};
    sharded_total += capacity_sweep(topo12(), capacity).size();
  }
  EXPECT_EQ(sharded_total, full.size());

  IterativeSweepConfig iterative;
  iterative.side = 2;
  iterative.levels = 2;
  iterative.anchor_count = 4;
  iterative.shard = PointShard{0, 2};
  const auto half = iterative_sweep(topo12(), iterative);
  EXPECT_EQ(rows_for_stage(half, "one-to-one").size(), 1u);
}

TEST(Figures, GridDemandConstantProfileReproducesUniformExactly) {
  // The demand-weighted sweep with a constant profile must reproduce the
  // uniform-demand rows bitwise (the PR-3 regression parity guarantee).
  const std::vector<double> demands{1000.0, 16000.0};
  const auto uniform = grid_demand_sweep(topo12(), demands, 3);
  const std::vector<double> constant_profile(topo12().size(), 7.5);
  const auto weighted = grid_demand_sweep(topo12(), demands, 3, constant_profile);
  ASSERT_EQ(weighted.size(), uniform.size());
  for (std::size_t i = 0; i < uniform.size(); ++i) {
    EXPECT_EQ(weighted[i].response_ms, uniform[i].response_ms) << "row " << i;
    EXPECT_EQ(weighted[i].network_delay_ms, uniform[i].network_delay_ms) << "row " << i;
    EXPECT_EQ(weighted[i].strategy, uniform[i].strategy) << "row " << i;
  }
  // A genuinely skewed profile changes the evaluations.
  std::vector<double> skewed(topo12().size(), 1.0);
  skewed[0] = 500.0;
  const auto skewed_rows = grid_demand_sweep(topo12(), demands, 3, skewed);
  bool any_differs = false;
  for (std::size_t i = 0; i < uniform.size(); ++i) {
    any_differs = any_differs || skewed_rows[i].response_ms != uniform[i].response_ms;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Figures, CsvEscapesNothingButIsParseable) {
  std::ostringstream out;
  print_csv(out, std::vector<GridDemandPoint>{{9, 1000.0, "closest", 12.5, 10.0}});
  EXPECT_EQ(out.str(),
            "universe,client_demand,strategy,response_ms,network_delay_ms\n"
            "9,1000,closest,12.5,10\n");
  std::ostringstream out2;
  print_csv(out2, std::vector<QuPoint>{{1, 6, 40, 90.0, 95.0, 400.0}});
  EXPECT_NE(out2.str().find("1,6,40,90,95,400"), std::string::npos);
  std::ostringstream out3;
  print_csv(out3, std::vector<CapacityPoint>{{9, 0.5, true, 100.0, 90.0, true}});
  EXPECT_NE(out3.str().find("9,0.5,1,1,100,90"), std::string::npos);
}

}  // namespace
}  // namespace qp::eval
