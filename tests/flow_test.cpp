#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "flow/assignment.hpp"
#include "flow/mincost_flow.hpp"

namespace qp::flow {
namespace {

TEST(MinCostFlow, SimplePath) {
  MinCostFlow net{3};
  const auto e1 = net.add_edge(0, 1, 5.0, 2.0);
  const auto e2 = net.add_edge(1, 2, 3.0, 1.0);
  const auto result = net.solve(0, 2);
  EXPECT_DOUBLE_EQ(result.flow, 3.0);
  EXPECT_DOUBLE_EQ(result.cost, 9.0);
  EXPECT_DOUBLE_EQ(net.flow_on(e1), 3.0);
  EXPECT_DOUBLE_EQ(net.flow_on(e2), 3.0);
}

TEST(MinCostFlow, PrefersCheaperParallelRoute) {
  MinCostFlow net{4};
  const auto cheap1 = net.add_edge(0, 1, 2.0, 1.0);
  const auto cheap2 = net.add_edge(1, 3, 2.0, 1.0);
  const auto expensive = net.add_edge(0, 3, 10.0, 10.0);
  (void)net.add_edge(0, 2, 10.0, 3.0);
  (void)net.add_edge(2, 3, 10.0, 3.0);
  const auto result = net.solve(0, 3, 4.0);
  EXPECT_DOUBLE_EQ(result.flow, 4.0);
  // 2 units via the 1+1 route, 2 via the 3+3 route; the cost-10 edge unused.
  EXPECT_DOUBLE_EQ(result.cost, 2.0 * 2.0 + 2.0 * 6.0);
  EXPECT_DOUBLE_EQ(net.flow_on(cheap1), 2.0);
  EXPECT_DOUBLE_EQ(net.flow_on(cheap2), 2.0);
  EXPECT_DOUBLE_EQ(net.flow_on(expensive), 0.0);
}

TEST(MinCostFlow, RespectsMaxFlowCap) {
  MinCostFlow net{2};
  (void)net.add_edge(0, 1, 100.0, 1.0);
  const auto result = net.solve(0, 1, 7.5);
  EXPECT_DOUBLE_EQ(result.flow, 7.5);
  EXPECT_DOUBLE_EQ(result.cost, 7.5);
}

TEST(MinCostFlow, HandlesNegativeCosts) {
  // Negative edge on the cheap route; Bellman-Ford potentials handle it.
  MinCostFlow net{3};
  const auto neg = net.add_edge(0, 1, 1.0, -5.0);
  (void)net.add_edge(1, 2, 1.0, 1.0);
  (void)net.add_edge(0, 2, 1.0, 0.5);
  const auto result = net.solve(0, 2);
  EXPECT_DOUBLE_EQ(result.flow, 2.0);
  EXPECT_DOUBLE_EQ(result.cost, -4.0 + 0.5);
  EXPECT_DOUBLE_EQ(net.flow_on(neg), 1.0);
}

TEST(MinCostFlow, DisconnectedSinkGivesZeroFlow) {
  MinCostFlow net{3};
  (void)net.add_edge(0, 1, 1.0, 1.0);
  const auto result = net.solve(0, 2);
  EXPECT_DOUBLE_EQ(result.flow, 0.0);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

TEST(MinCostFlow, ApiMisuse) {
  MinCostFlow net{2};
  EXPECT_THROW((void)net.add_edge(0, 5, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW((void)net.add_edge(0, 1, -1.0, 1.0), std::invalid_argument);
  (void)net.add_edge(0, 1, 1.0, 1.0);
  EXPECT_THROW((void)net.solve(0, 0), std::invalid_argument);
  (void)net.solve(0, 1);
  EXPECT_THROW((void)net.solve(0, 1), std::logic_error);
  EXPECT_THROW((void)net.flow_on(99), std::out_of_range);
}

// ------------------------------------------------------------- Assignment

TEST(Assignment, PicksMinimumCostPerfectMatching) {
  // 3 items, 3 unit slots, complete cost matrix.
  const std::vector<std::size_t> caps{1, 1, 1};
  std::vector<AssignmentEdge> edges;
  const double cost[3][3] = {{4.0, 1.0, 3.0}, {2.0, 0.0, 5.0}, {3.0, 2.0, 2.0}};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t s = 0; s < 3; ++s) edges.push_back({i, s, cost[i][s]});
  }
  const auto result = min_cost_assignment(3, caps, edges);
  ASSERT_TRUE(result.has_value());
  // Hungarian optimum: item0->slot1 (1), item1->slot0 (2), item2->slot2 (2).
  EXPECT_DOUBLE_EQ(result->total_cost, 5.0);
  EXPECT_EQ(result->slot_of[0], 1u);
  EXPECT_EQ(result->slot_of[1], 0u);
  EXPECT_EQ(result->slot_of[2], 2u);
}

TEST(Assignment, SlotCapacityAboveOne) {
  const std::vector<std::size_t> caps{2, 1};
  std::vector<AssignmentEdge> edges{{0, 0, 1.0}, {1, 0, 1.0}, {2, 0, 1.0},
                                    {0, 1, 0.5}, {1, 1, 0.5}, {2, 1, 0.5}};
  const auto result = min_cost_assignment(3, caps, edges);
  ASSERT_TRUE(result.has_value());
  // One item on the cheap slot, two on the big slot.
  int on_slot0 = 0;
  for (std::size_t s : result->slot_of) on_slot0 += (s == 0);
  EXPECT_EQ(on_slot0, 2);
  EXPECT_DOUBLE_EQ(result->total_cost, 2.5);
}

TEST(Assignment, InfeasibleWhenCapacityShort) {
  const std::vector<std::size_t> caps{1};
  const std::vector<AssignmentEdge> edges{{0, 0, 1.0}, {1, 0, 1.0}};
  EXPECT_FALSE(min_cost_assignment(2, caps, edges).has_value());
}

TEST(Assignment, InfeasibleWhenItemHasNoEdges) {
  const std::vector<std::size_t> caps{5, 5};
  const std::vector<AssignmentEdge> edges{{0, 0, 1.0}};  // Item 1 has none.
  EXPECT_FALSE(min_cost_assignment(2, caps, edges).has_value());
}

TEST(Assignment, RejectsBadEdgeIndices) {
  const std::vector<std::size_t> caps{1};
  EXPECT_THROW((void)min_cost_assignment(1, caps, {{0, 7, 1.0}}), std::out_of_range);
  EXPECT_THROW((void)min_cost_assignment(1, caps, {{7, 0, 1.0}}), std::out_of_range);
}

// Property sweep: random instances cross-checked against brute force.
class AssignmentSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssignmentSweep, MatchesBruteForce) {
  common::Rng rng{GetParam()};
  const std::size_t items = 2 + rng.below(4);   // 2..5
  const std::size_t slots = items + rng.below(2);
  std::vector<std::size_t> caps(slots, 1);
  std::vector<std::vector<double>> cost(items, std::vector<double>(slots));
  std::vector<AssignmentEdge> edges;
  for (std::size_t i = 0; i < items; ++i) {
    for (std::size_t s = 0; s < slots; ++s) {
      cost[i][s] = rng.uniform(0.0, 10.0);
      edges.push_back({i, s, cost[i][s]});
    }
  }
  const auto result = min_cost_assignment(items, caps, edges);
  ASSERT_TRUE(result.has_value());

  // Brute force over all injective assignments.
  std::vector<std::size_t> perm(slots);
  for (std::size_t s = 0; s < slots; ++s) perm[s] = s;
  double best = 1e300;
  std::sort(perm.begin(), perm.end());
  do {
    double total = 0.0;
    for (std::size_t i = 0; i < items; ++i) total += cost[i][perm[i]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(result->total_cost, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));

}  // namespace
}  // namespace qp::flow
