#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/embedding.hpp"
#include "net/synthetic.hpp"
#include "sim/scenario.hpp"

namespace qp::net {
namespace {

// ----------------------------------------------------- LatencyEmbedding

TEST(LatencyEmbedding, RttMatchesHeightModel) {
  // Two sites 3-4-5 apart in 2-d with heights 1 and 2: rtt = 5 + 1 + 2.
  const LatencyEmbedding space{2, {0.0, 0.0, 3.0, 4.0}, {1.0, 2.0}};
  EXPECT_DOUBLE_EQ(space.rtt(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(space.rtt(1, 0), 8.0);  // Symmetric by construction.
  EXPECT_DOUBLE_EQ(space.rtt(0, 0), 0.0);  // Self-RTT is 0, not 2 * height.
}

TEST(LatencyEmbedding, MinRttFloorsSmallDistances) {
  const LatencyEmbedding space{1, {0.0, 0.1}, {0.0, 0.0}, /*min_rtt_ms=*/0.5};
  EXPECT_DOUBLE_EQ(space.rtt(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(space.rtt(0, 0), 0.0);  // The floor never applies to self.
}

TEST(LatencyEmbedding, ValidatesInputs) {
  EXPECT_THROW((LatencyEmbedding{2, {0.0, 0.0, 1.0}, {0.0}}), std::invalid_argument);
  EXPECT_THROW((LatencyEmbedding{2, {0.0, 0.0}, {-1.0}}), std::invalid_argument);
  EXPECT_THROW((LatencyEmbedding{0, {}, {}}), std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((LatencyEmbedding{1, {nan}, {0.0}}), std::invalid_argument);
  EXPECT_THROW((LatencyEmbedding{1, {0.0}, {0.0}, -1.0}), std::invalid_argument);
}

TEST(LatencyEmbedding, SatisfiesTriangleInequality) {
  // The height model is a metric by construction; spot-check every triple of
  // a generated 40-site embedding (the property placement algorithms lean
  // on when they treat rtt as a distance).
  sim::ScenarioConfig config;
  config.site_count = 40;
  const sim::SparseScenario scenario = sim::make_sparse_scenario(config);
  const LatencyEmbedding& space = scenario.space;
  for (std::size_t a = 0; a < space.size(); ++a) {
    for (std::size_t b = 0; b < space.size(); ++b) {
      for (std::size_t c = 0; c < space.size(); ++c) {
        EXPECT_LE(space.rtt(a, c), space.rtt(a, b) + space.rtt(b, c) + 1e-9);
      }
    }
  }
}

TEST(LatencyEmbedding, DensifyMatchesRttBitwise) {
  sim::ScenarioConfig config;
  config.site_count = 60;
  const sim::SparseScenario scenario = sim::make_sparse_scenario(config);
  const LatencyMatrix dense = scenario.space.densify();
  ASSERT_EQ(dense.size(), scenario.space.size());
  for (std::size_t a = 0; a < dense.size(); ++a) {
    for (std::size_t b = 0; b < dense.size(); ++b) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(dense.rtt(a, b)),
                std::bit_cast<std::uint64_t>(scenario.space.rtt(a, b)))
          << "pair (" << a << ", " << b << ")";
    }
  }
}

TEST(LatencyEmbedding, FillRttsMatchesRtt) {
  sim::ScenarioConfig config;
  config.site_count = 50;
  const sim::SparseScenario scenario = sim::make_sparse_scenario(config);
  std::vector<std::size_t> sites;
  for (std::size_t s = 0; s < scenario.space.size(); s += 3) sites.push_back(s);
  std::vector<double> out(sites.size());
  scenario.space.fill_rtts(7, sites.data(), sites.size(), out.data());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(out[i], scenario.space.rtt(7, sites[i]));
  }
}

// ------------------------------------------------- fit_latency_embedding

TEST(FitLatencyEmbedding, DeterministicAcrossRunsAndThreads) {
  // The fit is serial by design, so two runs — one of them on a different
  // thread — must agree bitwise, both in the coordinates (via rtt) and the
  // reported error stats. This is the "cannot depend on QP_THREADS" pin.
  const LatencyMatrix measured = planetlab50_synth();
  const FittedEmbedding first = fit_latency_embedding(measured);

  FittedEmbedding* second = nullptr;
  std::thread worker(
      [&] { second = new FittedEmbedding{fit_latency_embedding(measured)}; });
  worker.join();
  ASSERT_NE(second, nullptr);

  ASSERT_EQ(first.embedding.size(), second->embedding.size());
  for (std::size_t a = 0; a < measured.size(); ++a) {
    for (std::size_t b = 0; b < measured.size(); ++b) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(first.embedding.rtt(a, b)),
                std::bit_cast<std::uint64_t>(second->embedding.rtt(a, b)));
    }
  }
  EXPECT_EQ(first.stats.sample_pairs, second->stats.sample_pairs);
  EXPECT_EQ(first.stats.mean_rel_error, second->stats.mean_rel_error);
  EXPECT_EQ(first.stats.median_rel_error, second->stats.median_rel_error);
  EXPECT_EQ(first.stats.p95_rel_error, second->stats.p95_rel_error);
  EXPECT_EQ(first.stats.max_abs_error_ms, second->stats.max_abs_error_ms);
  delete second;
}

TEST(FitLatencyEmbedding, ErrorStatsWithinBounds) {
  // The synthetic planetlab-50 matrix is generated from embedded coordinates
  // plus bounded noise, so a 5-d fit should recover it well. The bounds are
  // loose pins (~2x the observed values) so a regression that breaks the
  // relaxation — not ordinary FP drift — trips them.
  const FittedEmbedding fitted = fit_latency_embedding(planetlab50_synth());
  EXPECT_GT(fitted.stats.sample_pairs, 0u);
  EXPECT_GT(fitted.stats.mean_rel_error, 0.0);  // A perfect fit is a bug too.
  EXPECT_LT(fitted.stats.mean_rel_error, 0.25);
  EXPECT_LE(fitted.stats.median_rel_error, fitted.stats.p95_rel_error);
  EXPECT_LT(fitted.stats.p95_rel_error, 0.60);
}

TEST(FitLatencyEmbedding, HonorsConfigDimensions) {
  const LatencyMatrix measured = planetlab50_synth();
  EmbeddingConfig config;
  config.dimensions = 3;
  config.iterations = 8;
  const FittedEmbedding fitted = fit_latency_embedding(measured, config);
  EXPECT_EQ(fitted.embedding.dimensions(), 3u);
  EXPECT_EQ(fitted.embedding.size(), measured.size());
}

// --------------------------------------------------------- SparseScenario

TEST(SparseScenario, SitePlacementMatchesDenseGeneratorBitwise) {
  // make_sparse_scenario promises the same world template and seeded streams
  // as make_scenario: locations and demand must match the dense generator
  // exactly for equal configs.
  sim::ScenarioConfig config;
  config.site_count = 80;
  const sim::Scenario dense = sim::make_scenario(config);
  const sim::SparseScenario sparse = sim::make_sparse_scenario(config);
  ASSERT_EQ(dense.sites.size(), sparse.sites.size());
  for (std::size_t s = 0; s < dense.sites.size(); ++s) {
    EXPECT_EQ(dense.sites[s].latitude_deg, sparse.sites[s].latitude_deg);
    EXPECT_EQ(dense.sites[s].longitude_deg, sparse.sites[s].longitude_deg);
  }
  ASSERT_EQ(dense.client_demand.size(), sparse.client_demand.size());
  for (std::size_t s = 0; s < dense.client_demand.size(); ++s) {
    EXPECT_EQ(dense.client_demand[s], sparse.client_demand[s]);
  }
}

}  // namespace
}  // namespace qp::net
