#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/rng.hpp"
#include "net/graph.hpp"
#include "net/latency_matrix.hpp"
#include "net/matrix_io.hpp"
#include "net/shortest_paths.hpp"
#include "net/synthetic.hpp"

namespace qp::net {
namespace {

Graph diamond() {
  // 0 --1-- 1 --1-- 3, plus a slow direct edge 0 --5-- 3 and 0 --1-- 2 --1-- 3.
  Graph g{4};
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 3, 5.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  return g;
}

// ------------------------------------------------------------------ Graph

TEST(Graph, BasicProperties) {
  const Graph g = diamond();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.neighbors(0).size(), 3u);
}

TEST(Graph, RejectsBadEdges) {
  Graph g{3};
  EXPECT_THROW(g.add_edge(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -2.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), std::out_of_range);
}

TEST(Graph, CapacitiesAndNames) {
  Graph g{2};
  EXPECT_DOUBLE_EQ(g.capacity(0), 1.0);
  g.set_capacity(0, 0.25);
  EXPECT_DOUBLE_EQ(g.capacity(0), 0.25);
  EXPECT_THROW(g.set_capacity(0, -1.0), std::invalid_argument);
  g.set_name(1, "tokyo");
  EXPECT_EQ(g.name(1), "tokyo");
}

TEST(Graph, DisconnectedDetection) {
  Graph g{3};
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(g.connected());
}

// --------------------------------------------------------- Shortest paths

TEST(ShortestPaths, DijkstraTakesCheapRoute) {
  const Graph g = diamond();
  const auto dist = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[3], 2.0);  // Via node 1 or 2, not the direct 5.0 edge.
}

TEST(ShortestPaths, DijkstraUnreachableIsInfinite) {
  Graph g{3};
  g.add_edge(0, 1, 2.0);
  const auto dist = dijkstra(g, 0);
  EXPECT_TRUE(std::isinf(dist[2]));
}

TEST(ShortestPaths, AllPairsSymmetric) {
  const Graph g = diamond();
  const auto dist = all_pairs_shortest_paths(g);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      EXPECT_DOUBLE_EQ(dist[a][b], dist[b][a]);
    }
  }
}

TEST(ShortestPaths, FloydWarshallMatchesDijkstra) {
  const Graph g = diamond();
  const auto via_dijkstra = all_pairs_shortest_paths(g);
  // Build the direct-edge matrix and close it.
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> direct(4, std::vector<double>(4, inf));
  for (std::size_t v = 0; v < 4; ++v) {
    direct[v][v] = 0.0;
    for (const Edge& e : g.neighbors(v)) direct[v][e.to] = e.length;
  }
  const auto closed = floyd_warshall(direct);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      EXPECT_NEAR(closed[a][b], via_dijkstra[a][b], 1e-12);
    }
  }
}

TEST(ShortestPaths, FloydWarshallRejectsBadInput) {
  EXPECT_THROW((void)floyd_warshall({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW((void)floyd_warshall({{1.0}}), std::invalid_argument);
}

// ---------------------------------------------------------- LatencyMatrix

TEST(LatencyMatrix, ValidatesInput) {
  EXPECT_THROW(LatencyMatrix({{0.0, 1.0}, {2.0, 0.0}}), std::invalid_argument);  // Asymmetric.
  EXPECT_THROW(LatencyMatrix(std::vector<std::vector<double>>{{1.0}}),
               std::invalid_argument);  // Nonzero diagonal.
  EXPECT_THROW(LatencyMatrix({{0.0, -1.0}, {-1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(LatencyMatrix({{0.0, 1.0}}), std::invalid_argument);  // Non-square.
}

TEST(LatencyMatrix, FromGraphIsMetricClosure) {
  const LatencyMatrix m = LatencyMatrix::from_graph(diamond());
  EXPECT_EQ(m.size(), 4u);
  EXPECT_DOUBLE_EQ(m.rtt(0, 3), 2.0);
  EXPECT_TRUE(m.satisfies_triangle_inequality());
}

TEST(LatencyMatrix, FromGraphRejectsDisconnected) {
  Graph g{3};
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW((void)LatencyMatrix::from_graph(g), std::invalid_argument);
}

TEST(LatencyMatrix, MetricClosureFixesTriangleViolation) {
  const LatencyMatrix raw{{{0.0, 1.0, 10.0}, {1.0, 0.0, 1.0}, {10.0, 1.0, 0.0}}};
  EXPECT_FALSE(raw.satisfies_triangle_inequality());
  const LatencyMatrix closed = raw.metric_closure();
  EXPECT_TRUE(closed.satisfies_triangle_inequality());
  EXPECT_DOUBLE_EQ(closed.rtt(0, 2), 2.0);
}

TEST(LatencyMatrix, MedianMinimizesDistanceSum) {
  // Line topology 0 - 1 - 2: the middle node is the median.
  const LatencyMatrix m{{{0.0, 1.0, 2.0}, {1.0, 0.0, 1.0}, {2.0, 1.0, 0.0}}};
  EXPECT_EQ(m.median_site(), 1u);
}

TEST(LatencyMatrix, BallOrdering) {
  const LatencyMatrix m{{{0.0, 3.0, 1.0, 2.0},
                         {3.0, 0.0, 2.0, 5.0},
                         {1.0, 2.0, 0.0, 4.0},
                         {2.0, 5.0, 4.0, 0.0}}};
  const auto ball = m.ball(0, 3);
  EXPECT_EQ(ball, (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_THROW((void)m.ball(0, 5), std::invalid_argument);
}

TEST(LatencyMatrix, AverageIncludesSelf) {
  const LatencyMatrix m{{{0.0, 2.0}, {2.0, 0.0}}};
  EXPECT_DOUBLE_EQ(m.average_rtt_from(0), 1.0);
}

// -------------------------------------------------------------- Synthetic

TEST(Synthetic, GreatCircleKnownDistances) {
  // New York (40.7, -74.0) to London (51.5, -0.1): ~5570 km.
  const double km = great_circle_km(40.7, -74.0, 51.5, -0.1);
  EXPECT_NEAR(km, 5570.0, 60.0);
  EXPECT_NEAR(great_circle_km(10.0, 20.0, 10.0, 20.0), 0.0, 1e-9);
}

TEST(Synthetic, Planetlab50Shape) {
  const LatencyMatrix m = planetlab50_synth();
  EXPECT_EQ(m.size(), 50u);
  EXPECT_TRUE(m.satisfies_triangle_inequality(1e-6));
  // WAN-like statistics: some short and some intercontinental RTTs.
  double min_rtt = 1e9, max_rtt = 0.0;
  for (std::size_t a = 0; a < m.size(); ++a) {
    for (std::size_t b = a + 1; b < m.size(); ++b) {
      min_rtt = std::min(min_rtt, m.rtt(a, b));
      max_rtt = std::max(max_rtt, m.rtt(a, b));
    }
  }
  EXPECT_LT(min_rtt, 20.0);   // Intra-cluster pairs are tens of ms at most.
  EXPECT_GT(max_rtt, 120.0);  // Trans-Pacific pairs exceed 120 ms.
  EXPECT_LT(max_rtt, 600.0);  // But nothing absurd.
}

TEST(Synthetic, Daxlist161Shape) {
  const LatencyMatrix m = daxlist161_synth();
  EXPECT_EQ(m.size(), 161u);
  EXPECT_TRUE(m.satisfies_triangle_inequality(1e-6));
}

TEST(Synthetic, DeterministicInSeed) {
  const LatencyMatrix a = planetlab50_synth(99);
  const LatencyMatrix b = planetlab50_synth(99);
  const LatencyMatrix c = planetlab50_synth(100);
  EXPECT_DOUBLE_EQ(a.rtt(3, 17), b.rtt(3, 17));
  EXPECT_NE(a.rtt(3, 17), c.rtt(3, 17));
}

TEST(Synthetic, IntraRegionFasterThanInterRegion) {
  const SyntheticTopology topo = generate_topology([] {
    SyntheticConfig config;
    config.seed = 5;
    config.regions = {{"us", 40.0, -90.0, 3.0, 10}, {"asia", 35.0, 135.0, 3.0, 10}};
    return config;
  }());
  double intra = 0.0, inter = 0.0;
  int intra_n = 0, inter_n = 0;
  for (std::size_t a = 0; a < topo.sites.size(); ++a) {
    for (std::size_t b = a + 1; b < topo.sites.size(); ++b) {
      if (topo.sites[a].region == topo.sites[b].region) {
        intra += topo.matrix.rtt(a, b);
        ++intra_n;
      } else {
        inter += topo.matrix.rtt(a, b);
        ++inter_n;
      }
    }
  }
  EXPECT_LT(intra / intra_n, inter / inter_n / 3.0);
}

TEST(Synthetic, SmallSynthSizes) {
  for (std::size_t n : {3u, 10u, 16u}) {
    EXPECT_EQ(small_synth(n).size(), n);
  }
  EXPECT_THROW((void)small_synth(0), std::invalid_argument);
}

TEST(Synthetic, RejectsEmptyConfig) {
  EXPECT_THROW((void)generate_topology(SyntheticConfig{}), std::invalid_argument);
}

// -------------------------------------------------------------- Matrix IO

TEST(MatrixIo, RoundTrip) {
  const LatencyMatrix original = small_synth(8, 3);
  std::stringstream buffer;
  write_matrix(buffer, original);
  const LatencyMatrix parsed = read_matrix(buffer);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t a = 0; a < parsed.size(); ++a) {
    EXPECT_EQ(parsed.site_name(a), original.site_name(a));
    for (std::size_t b = 0; b < parsed.size(); ++b) {
      EXPECT_NEAR(parsed.rtt(a, b), original.rtt(a, b), 1e-4);
    }
  }
}

TEST(MatrixIo, ParsesWithoutNamesAndWithComments) {
  std::stringstream in{"# comment\n2\n0 5.5\n5.5 0 # trailing\n"};
  const LatencyMatrix m = read_matrix(in);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.rtt(0, 1), 5.5);
  EXPECT_EQ(m.site_name(0), "site-0");
}

TEST(MatrixIo, RejectsMalformedInput) {
  std::stringstream empty{""};
  EXPECT_THROW((void)read_matrix(empty), std::runtime_error);
  std::stringstream truncated{"3\n0 1 2\n1 0 3\n"};
  EXPECT_THROW((void)read_matrix(truncated), std::runtime_error);
  std::stringstream asym{"2\n0 1\n9 0\n"};
  EXPECT_THROW((void)read_matrix(asym), std::runtime_error);
  EXPECT_THROW((void)read_matrix_file("/nonexistent/path.txt"), std::runtime_error);
}

}  // namespace
}  // namespace qp::net
